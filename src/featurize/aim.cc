#include "featurize/aim.h"

#include "cbo/cost_model.h"

namespace fgro {

Result<std::vector<AimEntry>> ComputeAim(const Stage& stage, int instance_idx,
                                         AimMode mode) {
  std::vector<AimEntry> aim(stage.operators.size());
  if (mode == AimMode::kOff) return aim;
  if (instance_idx < 0 || instance_idx >= stage.instance_count()) {
    return Status::InvalidArgument("instance_idx out of range");
  }
  const InstanceMeta& meta =
      stage.instances[static_cast<size_t>(instance_idx)];

  // Instance share of each leaf. simu2 additionally knows the hidden
  // per-instance skew (unrealistic ground truth, as in the paper).
  double share = meta.input_fraction;
  if (mode == AimMode::kSimu2) share *= meta.hidden_skew;

  const bool use_truth_selectivity =
      mode == AimMode::kSimu1 || mode == AimMode::kSimu2;

  CostModel cm;
  std::vector<double> leaf_rows(stage.operators.size(), 0.0);
  for (const Operator& op : stage.operators) {
    if (!op.is_leaf()) continue;
    const double stage_rows = use_truth_selectivity
                                  ? op.truth.input_rows
                                  : op.estimate.input_rows;
    leaf_rows[static_cast<size_t>(op.id)] = stage_rows * share;
  }
  Result<std::vector<OperatorCardinality>> cards =
      cm.PropagateCardinality(stage, leaf_rows, use_truth_selectivity);
  if (!cards.ok()) return cards.status();

  for (size_t i = 0; i < stage.operators.size(); ++i) {
    const Operator& op = stage.operators[i];
    aim[i].input_rows = cards.value()[i].input_rows;
    aim[i].output_rows = cards.value()[i].output_rows;
    const double row_size = use_truth_selectivity ? op.truth.avg_row_size
                                                  : op.estimate.avg_row_size;
    // Partition count 1: the cost of this operator inside ONE instance.
    aim[i].cost =
        cm.Cost(op.type, cards.value()[i], row_size, /*partition_count=*/1)
            .total();
  }
  return aim;
}

}  // namespace fgro
