#ifndef FGRO_FEATURIZE_VALIDATE_H_
#define FGRO_FEATURIZE_VALIDATE_H_

#include "cluster/machine.h"
#include "cluster/resource.h"
#include "common/status.h"
#include "plan/stage.h"

namespace fgro {

/// Input validation at the featurizer boundary. Corrupt traces, buggy
/// generators, or bit-flipped imports must be rejected with
/// kInvalidArgument before NaN/Inf or out-of-range values reach GPR/Pareto
/// math, where a single non-finite feature silently poisons every
/// downstream prediction.

/// Rejects an out-of-range instance index and non-finite / negative
/// instance meta (rows, bytes, fraction, hidden skew).
Status ValidateInstanceMeta(const Stage& stage, int instance_idx);

/// Rejects non-finite or non-positive resource plans, system-state
/// utilizations outside [0, 1], an out-of-range hardware type, and a
/// discretization degree no bucketing can honor.
Status ValidateChannels(const ResourceConfig& theta, const SystemState& state,
                        int hardware_type, int discretization_degree);

}  // namespace fgro

#endif  // FGRO_FEATURIZE_VALIDATE_H_
