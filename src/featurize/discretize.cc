#include "featurize/discretize.h"

#include <algorithm>

namespace fgro {

int DiscretizeIndex(double util, int dd) {
  dd = std::max(1, dd);
  int idx = static_cast<int>(util * dd);
  return std::clamp(idx, 0, dd - 1);
}

double DiscretizeValue(double util, int dd) {
  return (DiscretizeIndex(util, dd) + 0.5) / std::max(1, dd);
}

SystemState DiscretizeState(const SystemState& state, int dd) {
  return SystemState{DiscretizeValue(state.cpu_util, dd),
                     DiscretizeValue(state.mem_util, dd),
                     DiscretizeValue(state.io_util, dd)};
}

long NumStateCombinations(int dd) {
  long d = std::max(1, dd);
  return d * d * d;
}

}  // namespace fgro
