#include "featurize/channels.h"

#include <cmath>

#include "common/math_utils.h"
#include "featurize/discretize.h"

namespace fgro {

Vec OperatorFeatureRow(const Operator& op, int partition_count,
                       const AimEntry& aim, const ChannelMask& mask) {
  Vec row(static_cast<size_t>(kOpFeatureDim), 0.0);
  if (!mask.ch1) return row;
  int off = 0;
  // One-hot operator type (CT1).
  row[static_cast<size_t>(off + static_cast<int>(op.type))] = 1.0;
  off += kOpTypeOneHotDim;
  // CT2: CBO/HBO statistics.
  row[static_cast<size_t>(off + 0)] = Log1pSafe(op.estimate.input_rows);
  row[static_cast<size_t>(off + 1)] = Log1pSafe(op.estimate.output_rows);
  row[static_cast<size_t>(off + 2)] = op.estimate.selectivity;
  row[static_cast<size_t>(off + 3)] = Log1pSafe(op.estimate.avg_row_size);
  row[static_cast<size_t>(off + 4)] = Log1pSafe(partition_count);
  row[static_cast<size_t>(off + 5)] = Log1pSafe(op.estimate.cost);
  off += kOpCt2Dim;
  // CT3: IO-related properties.
  row[static_cast<size_t>(off)] =
      op.location == DataLocation::kNetwork ? 1.0 : 0.0;
  row[static_cast<size_t>(off + 1 + static_cast<int>(op.shuffle))] = 1.0;
  off += kOpCt3Dim;
  // Customized features, zero-padded to the uniform width.
  for (int i = 0; i < kNumCustomFeatures; ++i) {
    row[static_cast<size_t>(off + i)] = op.custom[i];
  }
  off += kNumCustomFeatures;
  // AIM augmentation.
  if (mask.aim != AimMode::kOff) {
    row[static_cast<size_t>(off + 0)] = Log1pSafe(aim.input_rows);
    row[static_cast<size_t>(off + 1)] = Log1pSafe(aim.output_rows);
    row[static_cast<size_t>(off + 2)] = Log1pSafe(aim.cost);
  }
  return row;
}

Vec Ch2FeatureVector(const Stage& stage, int instance_idx,
                     const ChannelMask& mask) {
  Vec out(static_cast<size_t>(kCh2Dim), 0.0);
  if (!mask.ch2) return out;
  const InstanceMeta& meta =
      stage.instances[static_cast<size_t>(instance_idx)];
  out[0] = Log1pSafe(meta.input_rows);
  out[1] = Log1pSafe(meta.input_bytes);
  // Skew ratio: this instance's share relative to a uniform partition.
  out[2] = meta.input_fraction * stage.instance_count();
  return out;
}

Vec ContextFeatureVector(const ResourceConfig& theta, const SystemState& state,
                         int hardware_type, const ChannelMask& mask,
                         int discretization_degree) {
  Vec out(static_cast<size_t>(kContextDim), 0.0);
  ContextFeatureRowInto(theta, state, hardware_type, mask,
                        discretization_degree, out.data());
  return out;
}

void ContextFeatureRowInto(const ResourceConfig& theta,
                           const SystemState& state, int hardware_type,
                           const ChannelMask& mask, int discretization_degree,
                           double* out) {
  for (int i = 0; i < kContextDim; ++i) out[i] = 0.0;
  int off = 0;
  if (mask.ch3) {
    out[off + 0] = std::log2(std::max(0.125, theta.cores));
    out[off + 1] = std::log2(std::max(0.25, theta.memory_gb));
    out[off + 2] = theta.cores;
  }
  off += kCh3Dim;
  if (mask.ch4) {
    SystemState d = DiscretizeState(state, discretization_degree);
    out[off + 0] = d.cpu_util;
    out[off + 1] = d.mem_util;
    out[off + 2] = d.io_util;
  }
  off += kCh4Dim;
  if (mask.ch5 && hardware_type >= 0 && hardware_type < kNumHardwareTypes) {
    out[off + hardware_type] = 1.0;
  }
}

}  // namespace fgro
