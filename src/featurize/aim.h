#ifndef FGRO_FEATURIZE_AIM_H_
#define FGRO_FEATURIZE_AIM_H_

#include <vector>

#include "common/status.h"
#include "plan/stage.h"

namespace fgro {

/// Which cardinalities seed the AIM derivation (Expt 3 / Fig. 9(b)):
///  kCalibrated — CBO's estimated selectivities (all_on+calib, the default);
///  kSimu1      — ground-truth stage-level selectivities (all_on+simu1);
///  kSimu2      — ground-truth instance-level cardinalities, i.e. including
///                the per-instance skew hidden from calib/simu1 (all_on+simu2).
enum class AimMode { kOff, kCalibrated, kSimu1, kSimu2 };

/// Additional Instance Meta for one operator: the instance-level
/// cardinalities and cost re-derived through the CBO cost model with the
/// partition count set to one (Section 4.1).
struct AimEntry {
  double input_rows = 0.0;
  double output_rows = 0.0;
  double cost = 0.0;
};

/// Derives the AIM features of one instance: leaf cardinalities are scaled
/// by the instance's input fraction (what Channel 2 exposes), propagated
/// through stage-level selectivities, then costed with partition count 1.
Result<std::vector<AimEntry>> ComputeAim(const Stage& stage, int instance_idx,
                                         AimMode mode);

}  // namespace fgro

#endif  // FGRO_FEATURIZE_AIM_H_
