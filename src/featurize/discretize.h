#ifndef FGRO_FEATURIZE_DISCRETIZE_H_
#define FGRO_FEATURIZE_DISCRETIZE_H_

#include "cluster/machine.h"

namespace fgro {

/// Maps a utilization in [0,1] to its bucket index under discretization
/// degree `dd` (Expt 4 / Fig. 22: higher dd = finer states = better model,
/// but exponentially more machine-state combinations for the optimizer).
int DiscretizeIndex(double util, int dd);

/// The bucket's midpoint value — what the model actually sees in Channel 4.
double DiscretizeValue(double util, int dd);

/// A discretized system state (all three utilizations).
SystemState DiscretizeState(const SystemState& state, int dd);

/// Number of distinct discretized (cpu, mem, io) combinations: dd^3.
long NumStateCombinations(int dd);

}  // namespace fgro

#endif  // FGRO_FEATURIZE_DISCRETIZE_H_
