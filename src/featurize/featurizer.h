#ifndef FGRO_FEATURIZE_FEATURIZER_H_
#define FGRO_FEATURIZE_FEATURIZER_H_

#include "common/status.h"
#include "featurize/channels.h"
#include "nn/graph_embedder.h"
#include "plan/dag_to_tree.h"

namespace fgro {

/// Turns (stage, instance, resource plan, machine) into the model inputs of
/// the MCI framework: a plan graph (Channel 1 + AIM, per instance because
/// AIM is instance-specific) and a flat instance/context vector
/// (Channels 2-5). Also builds the DAG-to-tree variant for the
/// tree-structured baselines.
class Featurizer {
 public:
  Featurizer() = default;
  Featurizer(ChannelMask mask, int discretization_degree)
      : mask_(mask), dd_(discretization_degree) {}

  /// Channel 1 (+AIM) as a DAG for the graph embedder.
  Result<PlanGraph> BuildPlanGraph(const Stage& stage,
                                   int instance_idx) const;

  /// Channel 1 (+AIM) as a tree for TLSTM/QPPNet (artificial root nodes get
  /// zero features and type kArtificialRootType).
  Result<PlanGraph> BuildPlanTree(const Stage& stage, int instance_idx,
                                  int* root) const;

  Vec Ch2Features(const Stage& stage, int instance_idx) const {
    return Ch2FeatureVector(stage, instance_idx, mask_);
  }
  Vec ContextFeatures(const ResourceConfig& theta, const SystemState& state,
                      int hardware_type) const {
    return ContextFeatureVector(theta, state, hardware_type, mask_, dd_);
  }
  /// Concatenated Channels 2-5.
  Vec InstanceFeatures(const Stage& stage, int instance_idx,
                       const ResourceConfig& theta, const SystemState& state,
                       int hardware_type) const;

  const ChannelMask& mask() const { return mask_; }
  int discretization_degree() const { return dd_; }

  static constexpr int kArtificialRootType = -1;

 private:
  Result<std::vector<Vec>> OperatorRows(const Stage& stage,
                                        int instance_idx) const;

  ChannelMask mask_;
  int dd_ = 10;
};

}  // namespace fgro

#endif  // FGRO_FEATURIZE_FEATURIZER_H_
