#include "featurize/featurizer.h"

#include "featurize/validate.h"

namespace fgro {

Result<std::vector<Vec>> Featurizer::OperatorRows(const Stage& stage,
                                                  int instance_idx) const {
  FGRO_RETURN_IF_ERROR(ValidateInstanceMeta(stage, instance_idx));
  Result<std::vector<AimEntry>> aim =
      ComputeAim(stage, instance_idx, mask_.ch1 ? mask_.aim : AimMode::kOff);
  if (!aim.ok()) return aim.status();
  std::vector<Vec> rows;
  rows.reserve(stage.operators.size());
  for (const Operator& op : stage.operators) {
    rows.push_back(OperatorFeatureRow(
        op, stage.instance_count(),
        aim.value()[static_cast<size_t>(op.id)], mask_));
  }
  return rows;
}

Result<PlanGraph> Featurizer::BuildPlanGraph(const Stage& stage,
                                             int instance_idx) const {
  Result<std::vector<Vec>> rows = OperatorRows(stage, instance_idx);
  if (!rows.ok()) return rows.status();
  PlanGraph graph;
  graph.node_features = std::move(rows).value();
  graph.children.reserve(stage.operators.size());
  graph.node_types.reserve(stage.operators.size());
  for (const Operator& op : stage.operators) {
    graph.children.push_back(op.children);
    graph.node_types.push_back(static_cast<int>(op.type));
  }
  return graph;
}

Result<PlanGraph> Featurizer::BuildPlanTree(const Stage& stage,
                                            int instance_idx,
                                            int* root) const {
  Result<std::vector<Vec>> rows = OperatorRows(stage, instance_idx);
  if (!rows.ok()) return rows.status();
  Result<PlanTree> tree = ConvertDagToTree(stage);
  if (!tree.ok()) return tree.status();

  PlanGraph graph;
  const int n = tree.value().size();
  graph.node_features.reserve(static_cast<size_t>(n));
  graph.children.reserve(static_cast<size_t>(n));
  graph.node_types.reserve(static_cast<size_t>(n));
  for (const PlanTreeNode& node : tree.value().nodes) {
    if (node.op_id == PlanTreeNode::kArtificialRoot) {
      graph.node_features.emplace_back(static_cast<size_t>(kOpFeatureDim),
                                       0.0);
      graph.node_types.push_back(kArtificialRootType);
    } else {
      graph.node_features.push_back(
          rows.value()[static_cast<size_t>(node.op_id)]);
      graph.node_types.push_back(static_cast<int>(
          stage.operators[static_cast<size_t>(node.op_id)].type));
    }
    graph.children.push_back(node.children);
  }
  *root = tree.value().root;
  return graph;
}

Vec Featurizer::InstanceFeatures(const Stage& stage, int instance_idx,
                                 const ResourceConfig& theta,
                                 const SystemState& state,
                                 int hardware_type) const {
  Vec ch2 = Ch2Features(stage, instance_idx);
  Vec ctx = ContextFeatures(theta, state, hardware_type);
  ch2.insert(ch2.end(), ctx.begin(), ctx.end());
  return ch2;
}

}  // namespace fgro
