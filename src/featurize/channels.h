#ifndef FGRO_FEATURIZE_CHANNELS_H_
#define FGRO_FEATURIZE_CHANNELS_H_

#include <vector>

#include "cluster/machine.h"
#include "cluster/resource.h"
#include "featurize/aim.h"
#include "nn/param.h"
#include "plan/stage.h"

namespace fgro {

/// Which of the five MCI channels (and the AIM augmentation of Channel 1)
/// are active. Leave-one-out masks drive the Expt 2 ablation; disabled
/// channels are zeroed so every model variant shares one architecture.
struct ChannelMask {
  bool ch1 = true;  // query plan (operator matrix + DAG)
  bool ch2 = true;  // instance meta
  bool ch3 = true;  // resource plan
  bool ch4 = true;  // machine system states (discretized)
  bool ch5 = true;  // hardware type
  AimMode aim = AimMode::kCalibrated;
};

/// Fixed feature layout. Operator rows: one-hot type | CT2 statistics |
/// CT3 IO properties | customized features (zero-padded) | AIM.
constexpr int kOpTypeOneHotDim = kNumOperatorTypes;   // 13
constexpr int kOpCt2Dim = 6;
constexpr int kOpCt3Dim = 1 + 4;                      // location + shuffle
constexpr int kOpAimDim = 3;
constexpr int kOpFeatureDim =
    kOpTypeOneHotDim + kOpCt2Dim + kOpCt3Dim + kNumCustomFeatures + kOpAimDim;

constexpr int kNumHardwareTypes = 5;
constexpr int kCh2Dim = 3;
// Resource plan: log2 cores, log2 memory, raw cores. Log-scale features
// make the power-law latency response linearly learnable in log space.
constexpr int kCh3Dim = 3;
constexpr int kCh4Dim = 3;
constexpr int kCh5Dim = kNumHardwareTypes;
constexpr int kContextDim = kCh3Dim + kCh4Dim + kCh5Dim;
constexpr int kInstanceFeatureDim = kCh2Dim + kContextDim;

/// One operator's feature row (Channel 1 + AIM), honoring the mask.
Vec OperatorFeatureRow(const Operator& op, int partition_count,
                       const AimEntry& aim, const ChannelMask& mask);

/// Channel 2 features of one instance.
Vec Ch2FeatureVector(const Stage& stage, int instance_idx,
                     const ChannelMask& mask);

/// Channels 3-5 (resource plan, discretized machine state, hardware type).
Vec ContextFeatureVector(const ResourceConfig& theta, const SystemState& state,
                         int hardware_type, const ChannelMask& mask,
                         int discretization_degree);

/// Same features written into a caller buffer of kContextDim doubles — the
/// allocation-free form the batched feature-matrix assembly uses. `out` is
/// fully overwritten (disabled channels are zeroed).
void ContextFeatureRowInto(const ResourceConfig& theta,
                           const SystemState& state, int hardware_type,
                           const ChannelMask& mask, int discretization_degree,
                           double* out);

}  // namespace fgro

#endif  // FGRO_FEATURIZE_CHANNELS_H_
