#include "featurize/validate.h"

#include <cmath>
#include <string>

#include "featurize/channels.h"

namespace fgro {

namespace {

bool FiniteNonNegative(double v) { return std::isfinite(v) && v >= 0.0; }

std::string Where(const Stage& stage, int instance_idx) {
  return "stage " + std::to_string(stage.id) + " instance " +
         std::to_string(instance_idx);
}

}  // namespace

Status ValidateInstanceMeta(const Stage& stage, int instance_idx) {
  if (instance_idx < 0 || instance_idx >= stage.instance_count()) {
    return Status::InvalidArgument(
        "instance index " + std::to_string(instance_idx) +
        " out of range for stage " + std::to_string(stage.id) + " with " +
        std::to_string(stage.instance_count()) + " instances");
  }
  const InstanceMeta& meta =
      stage.instances[static_cast<size_t>(instance_idx)];
  if (!FiniteNonNegative(meta.input_rows) ||
      !FiniteNonNegative(meta.input_bytes)) {
    return Status::InvalidArgument(Where(stage, instance_idx) +
                                   ": non-finite or negative input rows/bytes");
  }
  if (!std::isfinite(meta.input_fraction) || meta.input_fraction < 0.0 ||
      meta.input_fraction > 1.0 + 1e-9) {
    return Status::InvalidArgument(Where(stage, instance_idx) +
                                   ": input fraction outside [0, 1]");
  }
  if (!std::isfinite(meta.hidden_skew) || meta.hidden_skew <= 0.0) {
    return Status::InvalidArgument(Where(stage, instance_idx) +
                                   ": non-finite or non-positive skew factor");
  }
  return Status::OK();
}

Status ValidateChannels(const ResourceConfig& theta, const SystemState& state,
                        int hardware_type, int discretization_degree) {
  if (!std::isfinite(theta.cores) || theta.cores <= 0.0 ||
      !std::isfinite(theta.memory_gb) || theta.memory_gb <= 0.0) {
    return Status::InvalidArgument(
        "resource plan must be finite and positive, got cores=" +
        std::to_string(theta.cores) +
        " memory_gb=" + std::to_string(theta.memory_gb));
  }
  for (double util : {state.cpu_util, state.mem_util, state.io_util}) {
    if (!std::isfinite(util) || util < 0.0 || util > 1.0 + 1e-9) {
      return Status::InvalidArgument(
          "system-state utilization outside [0, 1]: " + std::to_string(util));
    }
  }
  if (hardware_type < 0 || hardware_type >= kNumHardwareTypes) {
    return Status::InvalidArgument("hardware type " +
                                   std::to_string(hardware_type) +
                                   " outside the catalog of " +
                                   std::to_string(kNumHardwareTypes));
  }
  if (discretization_degree < 1) {
    return Status::InvalidArgument(
        "discretization degree must be >= 1, got " +
        std::to_string(discretization_degree));
  }
  return Status::OK();
}

}  // namespace fgro
