#include "env/cost.h"

#include <algorithm>

#include "common/logging.h"

namespace fgro {

StageObjectives AggregateStageObjectives(
    const std::vector<double>& instance_latencies,
    const std::vector<ResourceConfig>& thetas, const CostWeights& weights) {
  FGRO_CHECK(instance_latencies.size() == thetas.size())
      << instance_latencies.size() << " vs " << thetas.size();
  StageObjectives out;
  for (size_t i = 0; i < instance_latencies.size(); ++i) {
    out.latency = std::max(out.latency, instance_latencies[i]);
    out.cost += instance_latencies[i] * weights.Rate(thetas[i]);
  }
  return out;
}

}  // namespace fgro
