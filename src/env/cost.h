#ifndef FGRO_ENV_COST_H_
#define FGRO_ENV_COST_H_

#include <vector>

#include "cluster/resource.h"

namespace fgro {

/// The two default stage-level objectives of the paper: latency aggregates
/// instances with max, cloud cost with sum.
struct StageObjectives {
  double latency = 0.0;  // max over instance latencies (seconds)
  double cost = 0.0;     // sum of latency * (w . theta) over instances ($)
};

/// Aggregates per-instance latencies/configurations into stage objectives.
StageObjectives AggregateStageObjectives(
    const std::vector<double>& instance_latencies,
    const std::vector<ResourceConfig>& thetas, const CostWeights& weights);

}  // namespace fgro

#endif  // FGRO_ENV_COST_H_
