#include "env/ground_truth.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace fgro {

LatencyBreakdown GroundTruthEnv::ExpectedLatency(
    const Stage& stage, int instance_idx, const Machine& machine,
    const ResourceConfig& theta) const {
  const InstanceMeta& meta =
      stage.instances[static_cast<size_t>(instance_idx)];
  const double share = meta.input_fraction * meta.hidden_skew;
  const HardwareType& hw = machine.hardware();
  const SystemState& st = machine.state();

  // Per-operator true work for this instance (CBO cost units with the true
  // cardinalities scaled down to the instance's share).
  double cpu_work = 0.0;
  double io_work = 0.0;
  double working_set_bytes = 0.0;
  LatencyBreakdown out;
  out.op_seconds.assign(stage.operators.size(), 0.0);

  // Useful parallelism is capped by the instance's data size.
  double instance_rows = 0.0;
  for (const Operator& op : stage.operators) {
    if (op.is_leaf()) instance_rows += op.truth.input_rows * share;
  }
  const double core_cap = std::max(
      1.0, instance_rows / options_.parallel_rows_per_core);
  const double eff_cores = std::pow(
      std::min({theta.cores, core_cap, options_.max_effective_cores}),
      options_.cpu_core_exponent);
  const double cpu_slowdown =
      (1.0 + options_.cpu_contention * st.cpu_util * st.cpu_util) /
      (hw.cpu_speed * std::max(0.05, eff_cores));
  const double io_slowdown =
      (1.0 + options_.io_contention * std::pow(st.io_util, 1.5)) /
      hw.io_bandwidth;

  for (const Operator& op : stage.operators) {
    OperatorCardinality card{op.truth.input_rows * share,
                             op.truth.output_rows * share};
    OperatorCost cost =
        cost_model_.Cost(op.type, card, op.truth.avg_row_size,
                         /*partition_count=*/1);
    cpu_work += cost.cpu;
    io_work += cost.io;
    // Pipeline breakers must materialize their input.
    switch (op.type) {
      case OperatorType::kHashJoin:
      case OperatorType::kMergeJoin:
      case OperatorType::kHashAgg:
      case OperatorType::kSortedAgg:
      case OperatorType::kSort:
      case OperatorType::kWindow:
        working_set_bytes =
            std::max(working_set_bytes,
                     card.input_rows * op.truth.avg_row_size *
                         options_.mem_bytes_per_row_factor);
        break;
      default:
        break;
    }
    out.op_seconds[static_cast<size_t>(op.id)] =
        cost.cpu * options_.cpu_seconds_per_work * cpu_slowdown +
        cost.io * options_.io_seconds_per_unit * io_slowdown;
  }

  out.cpu_seconds = cpu_work * options_.cpu_seconds_per_work * cpu_slowdown;
  out.io_seconds = io_work * options_.io_seconds_per_unit * io_slowdown;

  // Memory spill: running below the working set inflates everything.
  const double mem_bytes = theta.memory_gb * 1e9;
  if (working_set_bytes > mem_bytes && mem_bytes > 0.0) {
    out.spill_factor =
        1.0 + options_.spill_penalty * (working_set_bytes / mem_bytes - 1.0);
    out.spill_factor = std::min(out.spill_factor, 8.0);
  }

  out.startup_seconds = options_.startup_seconds / hw.cpu_speed;
  out.total = (out.cpu_seconds + out.io_seconds) * out.spill_factor *
                  machine.hidden_dynamics() +
              out.startup_seconds;
  for (double& s : out.op_seconds) {
    s *= out.spill_factor * machine.hidden_dynamics();
  }
  return out;
}

double GroundTruthEnv::SampleLatency(const Stage& stage, int instance_idx,
                                     const Machine& machine,
                                     const ResourceConfig& theta,
                                     Rng* rng) const {
  LatencyBreakdown exp = ExpectedLatency(stage, instance_idx, machine, theta);
  // IO time is noisier than CPU time (shared disks/links), which is what
  // makes StreamLineWrite/TableScan/MergeJoin the top error contributors.
  const double io_noise = rng->LogNormal(0.0, options_.io_noise_sigma);
  const double overall_noise = rng->LogNormal(0.0, options_.noise_sigma);
  double body = (exp.cpu_seconds + exp.io_seconds * io_noise) *
                exp.spill_factor * machine.hidden_dynamics();
  return std::max(0.01, (body + exp.startup_seconds) * overall_noise);
}

}  // namespace fgro
