#ifndef FGRO_ENV_GROUND_TRUTH_H_
#define FGRO_ENV_GROUND_TRUTH_H_

#include "cbo/cost_model.h"
#include "cluster/machine.h"
#include "cluster/resource.h"
#include "common/rng.h"
#include "plan/stage.h"

namespace fgro {

/// Knobs of the hidden latency function. The per-workload noise sigmas are
/// how we calibrate the irreducible prediction error of each trace (the
/// paper's workloads have different noise floors: A cleanest, B noisiest).
struct GroundTruthOptions {
  double cpu_seconds_per_work = 6.0e-6;   // seconds per CBO cpu-work unit
  double io_seconds_per_unit = 5.0e-6;    // seconds per CBO io-work unit
  double cpu_core_exponent = 0.78;        // Amdahl-style diminishing returns
  double max_effective_cores = 16.0;
  // Parallelism saturates with instance size: an instance with R input rows
  // cannot use more than max(1, R / parallel_rows_per_core) cores. This is
  // the mechanism behind the paper's Example 1 — extra resources on
  // short-running instances buy no latency, only cost.
  double parallel_rows_per_core = 6.0e4;
  double cpu_contention = 1.6;            // scales with cpu_util^2
  double io_contention = 2.2;             // scales with io_util^1.5
  double mem_bytes_per_row_factor = 1.4;  // working set vs pipeline input
  double spill_penalty = 0.9;             // slowdown per unit of mem deficit
  double startup_seconds = 0.4;
  double noise_sigma = 0.07;              // lognormal on the whole latency
  double io_noise_sigma = 0.16;           // extra lognormal on the IO part
};

/// Deterministic decomposition of one instance's latency.
struct LatencyBreakdown {
  double cpu_seconds = 0.0;
  double io_seconds = 0.0;
  double startup_seconds = 0.0;
  double spill_factor = 1.0;
  double total = 0.0;
  /// Per-operator share of (cpu+io) work, for error-attribution experiments.
  std::vector<double> op_seconds;
};

/// The hidden ground truth: what latency an instance of `stage` would truly
/// have on `machine` under resource configuration `theta`. Models never see
/// this function — they only see traces sampled from it — preserving the
/// paper's causal structure between model error and optimization benefit.
///
/// Shape: cpu time scales with true per-instance work, divided by
/// hardware speed and a sublinear core-scaling term, inflated by CPU
/// contention; IO time scales with bytes over hardware bandwidth and IO
/// contention and is insensitive to cores (that is what makes IO-heavy
/// operators both hard to predict and resistant to core scaling); memory
/// below the working set triggers a spill penalty.
class GroundTruthEnv {
 public:
  explicit GroundTruthEnv(GroundTruthOptions options) : options_(options) {}

  /// Expected latency (all hidden factors included, sampled noise excluded).
  LatencyBreakdown ExpectedLatency(const Stage& stage, int instance_idx,
                                   const Machine& machine,
                                   const ResourceConfig& theta) const;

  /// One draw of the actual latency (expected value times sampled noise).
  double SampleLatency(const Stage& stage, int instance_idx,
                       const Machine& machine, const ResourceConfig& theta,
                       Rng* rng) const;

  /// Cloud cost of an instance that ran for `latency_seconds` under theta.
  double InstanceCost(double latency_seconds,
                      const ResourceConfig& theta) const {
    return latency_seconds * cost_weights_.Rate(theta);
  }

  const GroundTruthOptions& options() const { return options_; }
  const CostWeights& cost_weights() const { return cost_weights_; }

 private:
  GroundTruthOptions options_;
  CostModel cost_model_;
  CostWeights cost_weights_;
};

}  // namespace fgro

#endif  // FGRO_ENV_GROUND_TRUTH_H_
