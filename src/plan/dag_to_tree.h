#ifndef FGRO_PLAN_DAG_TO_TREE_H_
#define FGRO_PLAN_DAG_TO_TREE_H_

#include <vector>

#include "common/status.h"
#include "plan/stage.h"

namespace fgro {

/// A node of the tree produced by ConvertDagToTree. `op_id` refers back to
/// the stage's operator, or is kArtificialRoot for the synthetic root added
/// when the DAG has multiple sinks.
struct PlanTreeNode {
  static constexpr int kArtificialRoot = -1;
  int op_id = kArtificialRoot;
  std::vector<int> children;  // indices into PlanTree::nodes
};

struct PlanTree {
  std::vector<PlanTreeNode> nodes;
  int root = 0;

  int size() const { return static_cast<int>(nodes.size()); }
};

/// Converts an arbitrary operator DAG into a tree, as required by the
/// tree-structured model baselines (TLSTM, QPPNet). Following Appendix C of
/// the paper: nodes with multiple parents have their subtree forked once per
/// parent, and multiple roots are joined under one artificial root.
///
/// Forking can blow up exponentially on adversarial DAGs; `max_nodes` caps
/// the output (default generous for our plan sizes) and the conversion fails
/// with ResourceExhausted beyond it.
Result<PlanTree> ConvertDagToTree(const Stage& stage, int max_nodes = 4096);

}  // namespace fgro

#endif  // FGRO_PLAN_DAG_TO_TREE_H_
