#ifndef FGRO_PLAN_OPERATOR_H_
#define FGRO_PLAN_OPERATOR_H_

#include <string>
#include <vector>

namespace fgro {

/// Physical operator taxonomy. The names mirror the MaxCompute operators the
/// paper calls out (TableScan, MergeJoin, StreamLineWrite/Read are the
/// IO-intensive ones responsible for most model error in Expt 1).
enum class OperatorType {
  kTableScan = 0,
  kFilter,
  kProject,
  kHashJoin,
  kMergeJoin,
  kHashAgg,
  kSortedAgg,
  kSort,
  kTopN,
  kWindow,
  kUnion,
  kStreamLineRead,   // shuffle read (stage input from an upstream stage)
  kStreamLineWrite,  // shuffle write (stage output to a downstream stage)
  kNumOperatorTypes,
};

constexpr int kNumOperatorTypes =
    static_cast<int>(OperatorType::kNumOperatorTypes);

const char* OperatorTypeName(OperatorType type);

/// True if the operator's cost is dominated by disk/network IO. These are
/// the operators whose latency the paper finds hardest to predict.
bool IsIoIntensive(OperatorType type);

/// Where an operator reads its input from (CT3 feature in Channel 1).
enum class DataLocation { kLocalDisk = 0, kNetwork = 1 };

/// Shuffle strategy for StreamLine operators (CT3 feature in Channel 1).
enum class ShuffleStrategy { kNone = 0, kHash = 1, kRange = 2, kBroadcast = 3 };

/// Stage-level statistics of one operator. Two copies exist per operator:
/// the hidden ground truth (used only by the environment) and the CBO
/// estimate (what models and optimizers are allowed to see).
struct OperatorStats {
  double input_rows = 0.0;    // total rows entering, summed over instances
  double output_rows = 0.0;   // total rows produced
  double selectivity = 1.0;   // output_rows / input_rows
  double avg_row_size = 64;   // bytes per row
  double cost = 0.0;          // CBO cost units (see cbo::CostModel)
};

/// Maximum number of operator-specific ("customized") features. Operators
/// with fewer features are zero-padded into this uniform width, exactly as
/// the plan embedder does in the paper.
constexpr int kNumCustomFeatures = 4;

/// One physical operator inside a stage DAG.
struct Operator {
  int id = 0;                 // index within the stage
  OperatorType type = OperatorType::kTableScan;
  std::vector<int> children;  // operators feeding this one (upstream)

  OperatorStats truth;        // hidden: only env/ may read this
  OperatorStats estimate;     // CBO output: visible to models/optimizers

  DataLocation location = DataLocation::kLocalDisk;
  ShuffleStrategy shuffle = ShuffleStrategy::kNone;

  // Operator-specific features (e.g. join fan-out, aggregation group count),
  // zero-padded to kNumCustomFeatures.
  double custom[kNumCustomFeatures] = {0, 0, 0, 0};

  bool is_leaf() const { return children.empty(); }
};

}  // namespace fgro

#endif  // FGRO_PLAN_OPERATOR_H_
