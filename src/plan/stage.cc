#include "plan/stage.h"

#include <algorithm>
#include <queue>
#include <string>

namespace fgro {

std::vector<int> Stage::LeafOperators() const {
  std::vector<int> leaves;
  for (const Operator& op : operators) {
    if (op.is_leaf()) leaves.push_back(op.id);
  }
  return leaves;
}

std::vector<int> Stage::RootOperators() const {
  std::vector<bool> consumed(operators.size(), false);
  for (const Operator& op : operators) {
    for (int c : op.children) {
      if (c >= 0 && c < static_cast<int>(operators.size())) {
        consumed[static_cast<size_t>(c)] = true;
      }
    }
  }
  std::vector<int> roots;
  for (const Operator& op : operators) {
    if (!consumed[static_cast<size_t>(op.id)]) roots.push_back(op.id);
  }
  return roots;
}

Result<std::vector<int>> Stage::TopologicalOrder() const {
  const int n = operator_count();
  std::vector<int> in_degree(static_cast<size_t>(n), 0);
  // Edge child -> parent; parent's in-degree is its child count.
  for (const Operator& op : operators) {
    for (int c : op.children) {
      if (c < 0 || c >= n) {
        return Status::InvalidArgument("dangling child index " +
                                       std::to_string(c));
      }
    }
    in_degree[static_cast<size_t>(op.id)] =
        static_cast<int>(op.children.size());
  }
  // Kahn's algorithm starting from leaves.
  std::vector<std::vector<int>> parents(static_cast<size_t>(n));
  for (const Operator& op : operators) {
    for (int c : op.children) parents[static_cast<size_t>(c)].push_back(op.id);
  }
  std::queue<int> ready;
  for (int i = 0; i < n; ++i) {
    if (in_degree[static_cast<size_t>(i)] == 0) ready.push(i);
  }
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n));
  while (!ready.empty()) {
    int u = ready.front();
    ready.pop();
    order.push_back(u);
    for (int p : parents[static_cast<size_t>(u)]) {
      if (--in_degree[static_cast<size_t>(p)] == 0) ready.push(p);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return Status::InvalidArgument("operator graph has a cycle");
  }
  return order;
}

Status Stage::Validate() const {
  if (operators.empty()) {
    return Status::InvalidArgument("stage has no operators");
  }
  for (size_t i = 0; i < operators.size(); ++i) {
    if (operators[i].id != static_cast<int>(i)) {
      return Status::InvalidArgument("operator ids must be dense indices");
    }
  }
  Result<std::vector<int>> topo = TopologicalOrder();
  if (!topo.ok()) return topo.status();
  if (instances.empty()) {
    return Status::InvalidArgument("stage has no instances");
  }
  double fraction_total = 0.0;
  for (const InstanceMeta& im : instances) {
    if (im.input_fraction < 0.0 || im.input_rows < 0.0) {
      return Status::InvalidArgument("negative instance meta");
    }
    fraction_total += im.input_fraction;
  }
  if (fraction_total > 1.0 + 1e-6 || fraction_total < 1.0 - 1e-6) {
    return Status::InvalidArgument("instance fractions must sum to 1, got " +
                                   std::to_string(fraction_total));
  }
  return Status::OK();
}

double Stage::EstimatedInputRows() const {
  double total = 0.0;
  for (const Operator& op : operators) {
    if (op.is_leaf()) total += op.estimate.input_rows;
  }
  return total;
}

double Stage::EstimatedInputBytes() const {
  double total = 0.0;
  for (const Operator& op : operators) {
    if (op.is_leaf()) total += op.estimate.input_rows * op.estimate.avg_row_size;
  }
  return total;
}

}  // namespace fgro
