#include "plan/dag_to_tree.h"

#include <functional>
#include <string>

namespace fgro {

Result<PlanTree> ConvertDagToTree(const Stage& stage, int max_nodes) {
  Result<std::vector<int>> topo = stage.TopologicalOrder();
  if (!topo.ok()) return topo.status();

  PlanTree tree;
  bool exhausted = false;

  // Recursively copy the subtree rooted at `op_id`, forking shared subtrees.
  std::function<int(int)> copy_subtree = [&](int op_id) -> int {
    if (exhausted) return -1;
    if (tree.size() >= max_nodes) {
      exhausted = true;
      return -1;
    }
    int node_index = tree.size();
    tree.nodes.push_back(PlanTreeNode{op_id, {}});
    const Operator& op = stage.operators[static_cast<size_t>(op_id)];
    for (int child_op : op.children) {
      int child_node = copy_subtree(child_op);
      if (exhausted) return -1;
      tree.nodes[static_cast<size_t>(node_index)].children.push_back(
          child_node);
    }
    return node_index;
  };

  std::vector<int> roots = stage.RootOperators();
  if (roots.size() == 1) {
    tree.root = copy_subtree(roots[0]);
  } else {
    // Multi-root DAG: join under an artificial root whose children are the
    // subtrees of every sink.
    int root_index = tree.size();
    tree.nodes.push_back(PlanTreeNode{PlanTreeNode::kArtificialRoot, {}});
    for (int r : roots) {
      int child = copy_subtree(r);
      if (exhausted) break;
      tree.nodes[static_cast<size_t>(root_index)].children.push_back(child);
    }
    tree.root = root_index;
  }
  if (exhausted) {
    return Status::ResourceExhausted(
        "DAG-to-tree fork exceeded " + std::to_string(max_nodes) + " nodes");
  }
  return tree;
}

}  // namespace fgro
