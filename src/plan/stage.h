#ifndef FGRO_PLAN_STAGE_H_
#define FGRO_PLAN_STAGE_H_

#include <vector>

#include "common/status.h"
#include "plan/operator.h"

namespace fgro {

/// Per-instance metadata (Channel 2). An instance processes the fraction
/// `input_fraction` of every leaf input of its stage; fractions over all
/// instances of a stage sum to 1. `skew` is a hidden multiplicative factor
/// the environment applies on top (uneven data, stragglers) that is NOT
/// visible to models.
struct InstanceMeta {
  double input_rows = 0.0;    // visible: rows entering this instance
  double input_bytes = 0.0;   // visible: bytes entering this instance
  double input_fraction = 0;  // visible: share of the stage's leaf inputs
  double hidden_skew = 1.0;   // hidden: environment-only straggler factor
};

/// A stage: a DAG of operators executed by `instance_count` parallel
/// instances, each over one partition of the input.
class Stage {
 public:
  Stage() = default;

  int id = 0;
  int job_id = 0;
  // Identifies the recurring topology this stage was instantiated from;
  // HBO keys its history on this, and data splitting stratifies on it.
  int template_id = 0;

  std::vector<Operator> operators;
  std::vector<InstanceMeta> instances;

  int instance_count() const { return static_cast<int>(instances.size()); }
  int operator_count() const { return static_cast<int>(operators.size()); }

  /// Operators with no upstream inside the stage (TableScan/StreamLineRead).
  std::vector<int> LeafOperators() const;
  /// Operators no other operator consumes (StreamLineWrite or final sinks).
  std::vector<int> RootOperators() const;

  /// Operator ids in a topological order (children before parents).
  /// Fails if the operator graph has a cycle or dangling child index.
  Result<std::vector<int>> TopologicalOrder() const;

  /// Structural and statistical sanity checks used by tests and generators.
  Status Validate() const;

  /// Total estimated (CBO) stage input in rows/bytes, summed over leaves.
  double EstimatedInputRows() const;
  double EstimatedInputBytes() const;
};

}  // namespace fgro

#endif  // FGRO_PLAN_STAGE_H_
