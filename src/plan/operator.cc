#include "plan/operator.h"

namespace fgro {

const char* OperatorTypeName(OperatorType type) {
  switch (type) {
    case OperatorType::kTableScan: return "TableScan";
    case OperatorType::kFilter: return "Filter";
    case OperatorType::kProject: return "Project";
    case OperatorType::kHashJoin: return "HashJoin";
    case OperatorType::kMergeJoin: return "MergeJoin";
    case OperatorType::kHashAgg: return "HashAgg";
    case OperatorType::kSortedAgg: return "SortedAgg";
    case OperatorType::kSort: return "Sort";
    case OperatorType::kTopN: return "TopN";
    case OperatorType::kWindow: return "Window";
    case OperatorType::kUnion: return "Union";
    case OperatorType::kStreamLineRead: return "StreamLineRead";
    case OperatorType::kStreamLineWrite: return "StreamLineWrite";
    case OperatorType::kNumOperatorTypes: break;
  }
  return "Unknown";
}

bool IsIoIntensive(OperatorType type) {
  switch (type) {
    case OperatorType::kTableScan:
    case OperatorType::kMergeJoin:  // external sort-merge spills
    case OperatorType::kStreamLineRead:
    case OperatorType::kStreamLineWrite:
      return true;
    default:
      return false;
  }
}

}  // namespace fgro
