#include "plan/job.h"

#include <queue>
#include <string>

namespace fgro {

Result<std::vector<int>> Job::TopologicalOrder() const {
  const int n = stage_count();
  if (static_cast<int>(stage_deps.size()) != n) {
    return Status::InvalidArgument("stage_deps size mismatch");
  }
  std::vector<int> in_degree(static_cast<size_t>(n), 0);
  std::vector<std::vector<int>> downstream(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    for (int d : stage_deps[static_cast<size_t>(s)]) {
      if (d < 0 || d >= n) {
        return Status::InvalidArgument("dangling stage dependency " +
                                       std::to_string(d));
      }
      downstream[static_cast<size_t>(d)].push_back(s);
      in_degree[static_cast<size_t>(s)]++;
    }
  }
  std::queue<int> ready;
  for (int s = 0; s < n; ++s) {
    if (in_degree[static_cast<size_t>(s)] == 0) ready.push(s);
  }
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n));
  while (!ready.empty()) {
    int u = ready.front();
    ready.pop();
    order.push_back(u);
    for (int v : downstream[static_cast<size_t>(u)]) {
      if (--in_degree[static_cast<size_t>(v)] == 0) ready.push(v);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return Status::InvalidArgument("stage graph has a cycle");
  }
  return order;
}

Status Job::Validate() const {
  if (stages.empty()) return Status::InvalidArgument("job has no stages");
  Result<std::vector<int>> topo = TopologicalOrder();
  if (!topo.ok()) return topo.status();
  for (const Stage& stage : stages) {
    FGRO_RETURN_IF_ERROR(stage.Validate());
  }
  return Status::OK();
}

}  // namespace fgro
