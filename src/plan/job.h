#ifndef FGRO_PLAN_JOB_H_
#define FGRO_PLAN_JOB_H_

#include <vector>

#include "common/status.h"
#include "plan/stage.h"

namespace fgro {

/// A job: a DAG of stages where edges are data-shuffle dependencies. A stage
/// becomes schedulable once all its upstream stages finish.
class Job {
 public:
  int id = 0;
  double arrival_time = 0.0;  // seconds since trace start

  std::vector<Stage> stages;
  /// stage_deps[s] lists upstream stage indices that must complete before s.
  std::vector<std::vector<int>> stage_deps;

  int stage_count() const { return static_cast<int>(stages.size()); }

  /// Stage indices in a valid execution order (upstream first).
  Result<std::vector<int>> TopologicalOrder() const;

  Status Validate() const;
};

}  // namespace fgro

#endif  // FGRO_PLAN_JOB_H_
