#ifndef FGRO_OBS_OBS_H_
#define FGRO_OBS_OBS_H_

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fgro {
namespace obs {

/// The observability hookup threaded through the hot layers (simulator ->
/// SchedulingContext -> StageOptimizer/RAA; LatencyModel via set_obs; the
/// RO service shares its registry the same way). Both pointers default to
/// null = disabled: every instrumentation site guards on them, so the
/// disabled hot path costs one branch and zero allocations, and replay
/// results are byte-identical either way (metrics observe outcomes, they
/// never feed back into decisions or RNG streams).
struct Obs {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  bool enabled() const { return metrics != nullptr || tracer != nullptr; }
};

}  // namespace obs
}  // namespace fgro

#endif  // FGRO_OBS_OBS_H_
