#include "obs/trace.h"

#include <chrono>

namespace fgro {
namespace obs {

namespace {

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer::Tracer(ClockFn clock) : clock_(std::move(clock)) {
  if (clock_ == nullptr) clock_ = SteadyNowSeconds;
}

int Tracer::Begin(const char* name, int parent_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Span span;
  span.id = static_cast<int>(spans_.size());
  span.parent_id = parent_id;
  span.name = name;
  span.start_seconds = clock_();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::End(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  spans_[static_cast<std::size_t>(id)].end_seconds = clock_();
}

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

}  // namespace obs
}  // namespace fgro
