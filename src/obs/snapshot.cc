#include "obs/snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace fgro {
namespace obs {

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string EscapeJson(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendHistogramView(const MetricsRegistry::HistogramView& view,
                         std::string* out) {
  *out += "{\"count\": " + std::to_string(view.count);
  *out += ", \"sum\": " + FormatDouble(view.sum);
  *out += ", \"p50\": " + FormatDouble(view.p50);
  *out += ", \"p95\": " + FormatDouble(view.p95);
  *out += ", \"p99\": " + FormatDouble(view.p99);
  *out += ", \"buckets\": [";
  bool first = true;
  for (const auto& [bound, count] : view.buckets) {
    if (count == 0) continue;
    if (!first) *out += ", ";
    first = false;
    *out += "{\"le\": ";
    *out += std::isinf(bound) ? "\"inf\"" : FormatDouble(bound);
    *out += ", \"n\": " + std::to_string(count) + "}";
  }
  *out += "]}";
}

void AppendSpans(const std::vector<Span>& spans, std::string* out) {
  *out += "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    if (i > 0) *out += ", ";
    *out += "{\"id\": " + std::to_string(span.id);
    *out += ", \"parent\": " + std::to_string(span.parent_id);
    *out += ", \"name\": \"" + EscapeJson(span.name) + "\"";
    *out += ", \"start\": " + FormatDouble(span.start_seconds);
    *out += ", \"end\": " + FormatDouble(span.end_seconds) + "}";
  }
  *out += "]";
}

}  // namespace

std::string SnapshotJson(const MetricsRegistry& registry,
                         const Tracer* tracer) {
  const MetricsRegistry::Snapshot snapshot = registry.Snap();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + EscapeJson(name) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + EscapeJson(name) + "\": " + FormatDouble(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, view] : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + EscapeJson(name) + "\": ";
    AppendHistogramView(view, &out);
  }
  out += first ? "}" : "\n  }";
  if (tracer != nullptr) {
    out += ",\n  \"spans\": ";
    AppendSpans(tracer->spans(), &out);
  }
  out += "\n}\n";
  return out;
}

std::string SpansJson(const Tracer& tracer) {
  std::string out;
  AppendSpans(tracer.spans(), &out);
  return out;
}

std::string PhaseBreakdownJson(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snapshot = registry.Snap();
  auto histogram_of = [&](const std::string& name) {
    const auto it = snapshot.histograms.find(name);
    return it != snapshot.histograms.end() ? it->second
                                           : MetricsRegistry::HistogramView{};
  };
  auto append_phase = [](const std::string& key, uint64_t count,
                         double seconds, double p95, std::string* out) {
    *out += "    \"" + key + "\": {\"count\": " + std::to_string(count) +
            ", \"seconds\": " + FormatDouble(seconds) +
            ", \"p95_ms\": " + FormatDouble(p95 * 1e3) + "}";
  };

  // Predict rolls up the per-hardware-type counters: timed full passes
  // (model.predict_seconds.hw*), the untimed embedding-path fast calls, and
  // the rows that went through the batched GEMM path (model.predict_batch_
  // rows counts exactly the predictions that bypass the scalar counters, so
  // the rollup stays a complete prediction count in batched replays).
  uint64_t predict_calls = 0;
  double predict_seconds = 0.0, predict_p95 = 0.0;
  for (const auto& [name, view] : snapshot.histograms) {
    if (name.rfind("model.predict_seconds.", 0) == 0 ||
        name == "model.predict_batch_seconds") {
      predict_seconds += view.sum;
      predict_p95 = std::max(predict_p95, view.p95);
    }
  }
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("model.predict_calls.", 0) == 0 ||
        name.rfind("model.predict_fast_calls.", 0) == 0 ||
        name == "model.predict_batch_rows") {
      predict_calls += value;
    }
  }

  std::string out = "{\n";
  const MetricsRegistry::HistogramView ipa =
      histogram_of("so.placement_seconds");
  const MetricsRegistry::HistogramView raa = histogram_of("so.raa_seconds");
  const MetricsRegistry::HistogramView wun = histogram_of("so.wun_seconds");
  const MetricsRegistry::HistogramView wait =
      histogram_of("svc.queue_wait_seconds");
  const MetricsRegistry::HistogramView service =
      histogram_of("svc.service_seconds");
  append_phase("ipa", ipa.count, ipa.sum, ipa.p95, &out);
  out += ",\n";
  append_phase("raa", raa.count, raa.sum, raa.p95, &out);
  out += ",\n";
  append_phase("wun", wun.count, wun.sum, wun.p95, &out);
  out += ",\n";
  append_phase("predict", predict_calls, predict_seconds, predict_p95, &out);
  out += ",\n";
  append_phase("queue_wait", wait.count, wait.sum, wait.p95, &out);
  out += ",\n";
  append_phase("service", service.count, service.sum, service.p95, &out);
  out += "\n}";
  return out;
}

Status WriteJsonFile(const std::string& json, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace fgro
