#ifndef FGRO_OBS_METRICS_H_
#define FGRO_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fgro {
namespace obs {

/// Monotonic counter. Increment-only by construction: there is no Set or
/// Decrement, so a registry snapshot can never observe a counter move
/// backwards. Relaxed atomics — counters are statistics, not
/// synchronization.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (queue depth, brown-out level, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram: `upper_bounds` are the finite bucket upper
/// bounds (sorted ascending); one implicit overflow bucket catches
/// everything above the last bound. Observe() is lock-free (relaxed atomic
/// bucket bumps), so workers can record on the hot path without touching
/// the registry lock.
///
/// Quantile() walks the cumulative bucket counts and interpolates linearly
/// inside the winning bucket (the first bucket interpolates from 0, the
/// overflow bucket reports the last finite bound). The error is therefore
/// bounded by one bucket width — pick boundaries accordingly.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double Quantile(double q) const;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; index bounds_.size() is overflow.
  uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::size_t num_buckets() const { return buckets_.size(); }

  /// `count` bounds growing geometrically from `start` by `factor`.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               int count);
  /// Default latency boundaries: 0.1 ms .. ~1.9e3 s in x1.4 steps (50
  /// buckets + overflow), shared by every *_seconds histogram so
  /// breakdowns compare like with like.
  static const std::vector<double>& LatencyBounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exact sample quantile (sorts a copy; 0 when empty). The one shared
/// implementation of the hand-rolled percentile that used to live in the
/// RO service: use this for small rolling windows where exactness matters,
/// and Histogram::Quantile for unbounded streams.
double QuantileOfSamples(std::vector<double> values, double q);

/// Lock-striped name -> metric registry. Get-or-create takes one stripe
/// mutex (stripe chosen by name hash) and returns a pointer that stays
/// valid for the registry's lifetime, so hot paths resolve their handles
/// once and never touch a lock again. Metrics with the same name and type
/// are shared; a histogram re-lookup ignores the boundary argument and
/// returns the existing instance.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& upper_bounds);
  Histogram* GetLatencyHistogram(const std::string& name) {
    return GetHistogram(name, Histogram::LatencyBounds());
  }

  /// Point-in-time copy of every metric, name-sorted (std::map) so two
  /// snapshots of identical registries serialize identically.
  struct HistogramView {
    uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// (upper bound, count) per bucket; the overflow bucket carries an
    /// infinite bound.
    std::vector<std::pair<double, uint64_t>> buckets;
  };
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramView> histograms;
  };
  Snapshot Snap() const;

 private:
  static constexpr std::size_t kStripes = 16;
  struct Stripe {
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };
  Stripe& StripeOf(const std::string& name) {
    return stripes_[std::hash<std::string>{}(name) % kStripes];
  }

  Stripe stripes_[kStripes];
};

}  // namespace obs
}  // namespace fgro

#endif  // FGRO_OBS_METRICS_H_
