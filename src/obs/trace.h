#ifndef FGRO_OBS_TRACE_H_
#define FGRO_OBS_TRACE_H_

#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace fgro {
namespace obs {

/// One timed interval in a Dapper-style span tree. Spans are parent-linked
/// by id (-1 = root); ids are allocated in Begin order, so a single-threaded
/// trace with an injected clock is fully deterministic (the golden-tree
/// test relies on this).
struct Span {
  int id = -1;
  int parent_id = -1;
  std::string name;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
};

/// Span collector. The clock is injected exactly like CircuitBreaker's:
/// tests pass a fake returning scripted seconds; production uses the
/// default steady clock. Begin/End are mutex-serialized — spans mark
/// once-per-decision boundaries (one per stage decision, placement, RAA),
/// not per-predict events, so the lock is off the per-call hot path.
class Tracer {
 public:
  using ClockFn = std::function<double()>;

  /// Null clock = process steady clock.
  explicit Tracer(ClockFn clock = nullptr);

  /// Opens a span and returns its id. `parent_id` of -1 makes a root.
  int Begin(const char* name, int parent_id = -1);
  void End(int id);

  /// Copy of all spans begun so far, ordered by id. Spans still open have
  /// end_seconds 0.
  std::vector<Span> spans() const;
  void Clear();

 private:
  ClockFn clock_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
};

/// RAII span handle. A null tracer makes every operation a no-op with no
/// allocation — the disabled hot path costs one branch. Parenting is
/// explicit (pass the parent span or its id), never thread-local, so the
/// tree shape does not depend on which worker ran the code.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name, int parent_id = -1)
      : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->Begin(name, parent_id);
  }
  ScopedSpan(Tracer* tracer, const char* name, const ScopedSpan& parent)
      : ScopedSpan(tracer, name, parent.id()) {}
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->End(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// -1 when tracing is disabled; safe to pass on as a child's parent_id.
  int id() const { return id_; }
  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  int id_ = -1;
};

}  // namespace obs
}  // namespace fgro

#endif  // FGRO_OBS_TRACE_H_
