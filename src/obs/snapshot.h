#ifndef FGRO_OBS_SNAPSHOT_H_
#define FGRO_OBS_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fgro {
namespace obs {

/// Serializes a registry snapshot (and optionally a span tree) as JSON.
/// Keys are name-sorted and doubles use %.17g, so identical state produces
/// byte-identical output — the golden-tree test diffs this string.
/// Histogram buckets are emitted sparsely (zero-count buckets dropped);
/// the overflow bucket serializes with "le": "inf".
std::string SnapshotJson(const MetricsRegistry& registry,
                         const Tracer* tracer = nullptr);

/// Just the span array (the "spans" value of SnapshotJson).
std::string SpansJson(const Tracer& tracer);

/// Compact per-phase rollup for the perf benches: seconds and call counts
/// for the optimizer phases (ipa = placement, raa, wun), model predicts,
/// and the service queue, pulled from the standard metric names (DESIGN.md
/// §10). Phases with no data emit zeros, so the JSON schema is stable.
std::string PhaseBreakdownJson(const MetricsRegistry& registry);

/// Writes `json` to `path`, trace_io style (kInternal on open/write
/// failure).
Status WriteJsonFile(const std::string& json, const std::string& path);

}  // namespace obs
}  // namespace fgro

#endif  // FGRO_OBS_SNAPSHOT_H_
