#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fgro {
namespace obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double value) {
  // lower_bound: the first bound >= value, i.e. buckets are (lower, upper]
  // — inclusive on the upper side, matching the "le" label the snapshot
  // serializes and the (lower, upper] range Quantile interpolates over.
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation, 1-based (matches the exact sample
  // percentile convention of QuantileOfSamples).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i == bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    const double fraction = static_cast<double>(rank - cumulative) /
                            static_cast<double>(in_bucket);
    return lower + (upper - lower) * fraction;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(std::max(0, count)));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

const std::vector<double>& Histogram::LatencyBounds() {
  static const std::vector<double> kBounds =
      ExponentialBounds(1e-4, 1.4, 50);
  return kBounds;
}

double QuantileOfSamples(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= values.size()) idx = values.size() - 1;
  return values[idx];
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Stripe& stripe = StripeOf(name);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  std::unique_ptr<Counter>& slot = stripe.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Stripe& stripe = StripeOf(name);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  std::unique_ptr<Gauge>& slot = stripe.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(
    const std::string& name, const std::vector<double>& upper_bounds) {
  Stripe& stripe = StripeOf(name);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  std::unique_ptr<Histogram>& slot = stripe.histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(upper_bounds);
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  Snapshot snapshot;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    for (const auto& [name, counter] : stripe.counters) {
      snapshot.counters[name] = counter->value();
    }
    for (const auto& [name, gauge] : stripe.gauges) {
      snapshot.gauges[name] = gauge->value();
    }
    for (const auto& [name, histogram] : stripe.histograms) {
      HistogramView view;
      view.count = histogram->count();
      view.sum = histogram->sum();
      view.p50 = histogram->Quantile(0.50);
      view.p95 = histogram->Quantile(0.95);
      view.p99 = histogram->Quantile(0.99);
      const std::vector<double>& bounds = histogram->upper_bounds();
      view.buckets.reserve(histogram->num_buckets());
      for (std::size_t i = 0; i < histogram->num_buckets(); ++i) {
        const double bound = i < bounds.size()
                                 ? bounds[i]
                                 : std::numeric_limits<double>::infinity();
        view.buckets.emplace_back(bound, histogram->bucket_count(i));
      }
      snapshot.histograms[name] = std::move(view);
    }
  }
  return snapshot;
}

}  // namespace obs
}  // namespace fgro
