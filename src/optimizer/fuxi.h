#ifndef FGRO_OPTIMIZER_FUXI_H_
#define FGRO_OPTIMIZER_FUXI_H_

#include "optimizer/scheduler_types.h"

namespace fgro {

/// The production Fuxi scheduler baseline (Section 5): (1) identify the key
/// (bottleneck) resource of the cluster, (2) pick the machines with the
/// lowest watermark on that resource, (3) assign instances in instance-id
/// order, all with HBO's uniform resource plan theta0. No model, no
/// awareness of per-instance latency.
StageDecision FuxiSchedule(const SchedulingContext& context);

}  // namespace fgro

#endif  // FGRO_OPTIMIZER_FUXI_H_
