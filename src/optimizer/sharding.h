#ifndef FGRO_OPTIMIZER_SHARDING_H_
#define FGRO_OPTIMIZER_SHARDING_H_

#include <cstdint>
#include <vector>

#include "optimizer/scheduler_types.h"

namespace fgro {

/// POP-style problem sharding (Narayanan et al., "Solving Large-Scale
/// Granular Resource Allocation Problems Efficiently with POP"): randomly
/// partition the machines and the instances of one stage decision into k
/// independent subproblems, solve each on its own machine slice, and merge.
/// Granular allocation tolerates this split because any shard holds a
/// statistically similar cross-section of the fleet — POP reports ~1%
/// allocation-quality loss for ~100x speedups, and the k=1 path stays
/// bit-identical to the legacy whole-fleet solve as the quality oracle.

/// Minimum machines a shard must keep for the split to be worth taking;
/// EffectiveShardCount() lowers k until this holds.
inline constexpr int kMinMachinesPerShard = 2;

/// One deterministic partition of a stage decision's machines + instances.
struct ShardPlan {
  int shard_count = 1;
  /// Disjoint machine ids per shard, ascending within each shard; the union
  /// over shards is exactly the machine universe handed to Plan().
  std::vector<std::vector<int>> machines_of_shard;
  /// Disjoint instance indices per shard, ascending; union = [0, m).
  std::vector<std::vector<int>> instances_of_shard;
};

class ShardPlanner {
 public:
  /// Deterministic stratified, load-balanced deal. Machines: within each
  /// stratum (same hardware class = interchangeable capacity), order by
  /// descending load (ties by MixSeed(seed, id)) and snake-deal with a
  /// seed-rotated offset, so every shard receives an equal (±1) slice of
  /// every hardware class AND an even cross-section of the fleet's load
  /// spectrum. A plain hash deal leaves some shards without the
  /// lightly-loaded machines the k=1 oracle exploits — that skew, not
  /// hardware mix, is where most of the POP quality loss comes from at
  /// test scale. Instances: snake-deal in descending-size order so heavy
  /// instances spread evenly and per-shard work balances. The mapping is a
  /// pure function of (seed, k) and the entity descriptors passed in
  /// (machine id + stratum + load, instance index + size) — never of
  /// thread count or iteration order — which is the sharding leg of the
  /// repo's MixSeed determinism convention. Loads evolve with the
  /// simulated cluster, so replans adapt; at any single solve point the
  /// state is itself deterministic, so plans stay byte-identical across
  /// thread counts and repeated runs.
  ///
  /// `machine_ids` must be ascending (the whole fleet, or an enclosing
  /// machine_subset). `machine_strata` and `machine_loads` are parallel to
  /// `machine_ids` (empty = one stratum / uniform load); `instance_sizes`
  /// is parallel to [0, num_instances) (empty = uniform).
  static ShardPlan Plan(int shard_count, uint64_t seed,
                        const std::vector<int>& machine_ids,
                        const std::vector<int>& machine_strata,
                        const std::vector<double>& machine_loads,
                        int num_instances,
                        const std::vector<double>& instance_sizes);

  /// Unstratified convenience overload (uniform machines and instances).
  static ShardPlan Plan(int shard_count, uint64_t seed,
                        const std::vector<int>& machine_ids,
                        int num_instances) {
    return Plan(shard_count, seed, machine_ids, {}, {}, num_instances, {});
  }
};

/// The exact plan the sharded orchestrator uses for `context`: k from
/// EffectiveShardCount, machine universe = machine_subset or the whole
/// fleet, strata = hardware type, load = current cpu+mem+io utilization,
/// instance size = input_rows. Tests use this to predict which shard owns
/// which machine/instance.
ShardPlan PlanForContext(const SchedulingContext& context);

/// How many shards this context can actually sustain: shard_count capped so
/// every shard keeps >= kMinMachinesPerShard machines and the stage has at
/// least one instance per shard on average. Returns 1 (= run the exact
/// legacy path) for unsharded contexts or degenerate problems.
int EffectiveShardCount(const SchedulingContext& context);

/// The single candidate-enumeration helper every solver goes through:
/// available machines (CanFit theta0) restricted to context.machine_subset
/// when one is set. Routing ipa/ipa_clustered/fuxi/moo_baselines through
/// this is what guarantees no solver silently escapes its shard.
std::vector<int> CandidateMachines(const SchedulingContext& context);

/// What the merge had to repair (surfaced as so.shard.* counters).
struct ShardMergeStats {
  int infeasible_shards = 0;
  int rescued_instances = 0;
};

/// Moves RefineMergedDecision() may actually spend on `context`:
/// max(shard_refine_budget, m/16) — wide stages have proportionally more
/// instances near the latency max, and a sweep per move costs O(n), far
/// below the O(m*n/k) solve it polishes. 0 when refinement is disabled
/// (shard_refine_budget <= 0).
int EffectiveRefineBudget(const SchedulingContext& context);

/// Bounded whole-fleet polish of a merged sharded decision, targeting the
/// one metric sharding inherently hurts: stage latency is max over
/// instances, and a partition denies each instance (k-1)/k of the fleet —
/// including, sometimes, the one machine the k=1 oracle would give the
/// critical instance. Iteratively take the instance with the highest
/// model-predicted latency under its current placement and re-place it
/// against the full candidate view, stopping at EffectiveRefineBudget()
/// moves or at the fixed point where the bottleneck instance cannot
/// improve. With `tune_theta` (pass the placement's run_raa, primary-rung
/// decisions only) the bottleneck's resource config is also re-searched on
/// its final machine over RAA's own capacity-filtered exploration grid —
/// per-shard RAA picks its WUN tradeoff from a shard-local frontier, and
/// re-tuning the handful of critical instances recovers the theta quality
/// a shard-local view gives up. Work is O(m + budget * (n + grid))
/// predictions — small next to the m*n/k solve — and the pass is
/// sequential and deterministic. Returns the number of refined instances.
int RefineMergedDecision(const SchedulingContext& context,
                         StageDecision* decision, bool tune_theta);

/// Deterministic shard-ordered merge. Shards own disjoint machine sets, so
/// concatenating feasible per-shard placements can never double-book a
/// machine; instances of infeasible shards are reconciled in ascending
/// instance order onto leftover theta0 capacity anywhere in the context's
/// machine view (round-robin over ascending candidates, the Fuxi diversity
/// discipline). Rescued instances run on theta0, so a rescue demotes the
/// merged decision to at least FallbackLevel::kTheta0. solve_seconds is
/// the sum over shards (total work); the orchestrator overwrites it with
/// the fan's wall time. Infeasible only when even reconciliation cannot
/// place every instance.
StageDecision MergeShardDecisions(const SchedulingContext& context,
                                  const ShardPlan& plan,
                                  const std::vector<StageDecision>& per_shard,
                                  ShardMergeStats* stats);

}  // namespace fgro

#endif  // FGRO_OPTIMIZER_SHARDING_H_
