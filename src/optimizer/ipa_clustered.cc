#include "optimizer/ipa_clustered.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "optimizer/fuxi.h"  // InstanceCapacity / ResolveAlpha
#include "optimizer/ipa.h"   // BuildBplMatrix
#include "optimizer/sharding.h"  // CandidateMachines

namespace fgro {

ClusteredIpaResult IpaClusteredSchedule(const SchedulingContext& context) {
  Stopwatch timer;
  ClusteredIpaResult result;
  StageDecision& decision = result.decision;
  const Stage& stage = *context.stage;
  const Cluster& cluster = *context.cluster;
  FGRO_CHECK(context.model != nullptr);
  const int m = stage.instance_count();

  std::vector<int> candidates = CandidateMachines(context);
  if (candidates.empty()) return result;
  const int alpha =
      ResolveAlpha(context.alpha, m, static_cast<int>(candidates.size()));

  // Cluster instances (1-D KDE on log rows) and machines (Ch4/Ch5 buckets).
  std::vector<InstanceClusterGroup> inst_clusters =
      ClusterInstancesByRows(stage);
  std::vector<MachineClusterGroup> mach_clusters = ClusterMachines(
      cluster, candidates, context.discretization_degree);
  const int mc = static_cast<int>(inst_clusters.size());
  const int nc = static_cast<int>(mach_clusters.size());
  result.num_instance_clusters = mc;
  result.num_machine_clusters = nc;

  // Per-machine slot budget, and per-machine-cluster totals s_j.
  std::vector<int> slots_of_machine(static_cast<size_t>(cluster.size()), 0);
  std::vector<long> s(static_cast<size_t>(nc), 0);
  for (int j = 0; j < nc; ++j) {
    for (int id : mach_clusters[static_cast<size_t>(j)].machine_ids) {
      int cap = InstanceCapacity(cluster.machine(id), context.theta0, alpha);
      slots_of_machine[static_cast<size_t>(id)] = cap;
      s[static_cast<size_t>(j)] += cap;
    }
  }

  // Reduced latency matrix over representatives (one PredictBatch in the
  // default batched mode; see BuildBplMatrix).
  std::vector<int> instance_rows(static_cast<size_t>(mc));
  std::vector<int> machine_cols(static_cast<size_t>(nc));
  for (int i = 0; i < mc; ++i) {
    instance_rows[static_cast<size_t>(i)] =
        inst_clusters[static_cast<size_t>(i)].representative;
  }
  for (int j = 0; j < nc; ++j) {
    machine_cols[static_cast<size_t>(j)] =
        mach_clusters[static_cast<size_t>(j)].representative;
  }
  std::vector<std::vector<double>> L;
  if (!BuildBplMatrix(context, instance_rows, machine_cols, &L)) {
    decision.solve_seconds = timer.ElapsedSeconds();
    return result;
  }

  // Remaining-instance cursors: instances in each cluster are sorted by
  // descending input rows, so `taken[i]` heaviest have already been sent.
  std::vector<size_t> taken(static_cast<size_t>(mc), 0);
  std::vector<bool> inst_active(static_cast<size_t>(mc), true);
  std::vector<bool> mach_active(static_cast<size_t>(nc));
  for (int j = 0; j < nc; ++j) {
    mach_active[static_cast<size_t>(j)] = s[static_cast<size_t>(j)] > 0;
  }
  // Machine dispatch cursor per cluster (round-robin over members).
  std::vector<size_t> mach_cursor(static_cast<size_t>(nc), 0);

  std::vector<double> bpl(static_cast<size_t>(mc));
  std::vector<int> bpl_machine(static_cast<size_t>(mc), -1);
  auto recompute = [&](int i) {
    double best = std::numeric_limits<double>::infinity();
    int best_j = -1;
    for (int j = 0; j < nc; ++j) {
      if (mach_active[static_cast<size_t>(j)] &&
          L[static_cast<size_t>(i)][static_cast<size_t>(j)] < best) {
        best = L[static_cast<size_t>(i)][static_cast<size_t>(j)];
        best_j = j;
      }
    }
    bpl[static_cast<size_t>(i)] = best;
    bpl_machine[static_cast<size_t>(i)] = best_j;
  };
  for (int i = 0; i < mc; ++i) recompute(i);

  decision.machine_of_instance.assign(static_cast<size_t>(m), -1);
  decision.theta_of_instance.assign(static_cast<size_t>(m), context.theta0);
  int placed = 0;

  while (placed < m) {
    if (context.deadline.expired()) {
      decision.solve_seconds = timer.ElapsedSeconds();
      return result;
    }
    int i_t = -1;
    double max_bpl = -1.0;
    for (int i = 0; i < mc; ++i) {
      if (inst_active[static_cast<size_t>(i)] &&
          bpl[static_cast<size_t>(i)] > max_bpl) {
        max_bpl = bpl[static_cast<size_t>(i)];
        i_t = i;
      }
    }
    if (i_t < 0) return result;  // instances left but nothing active
    int j_t = bpl_machine[static_cast<size_t>(i_t)];
    if (j_t < 0) return result;  // no machine cluster can take them

    InstanceClusterGroup& ic = inst_clusters[static_cast<size_t>(i_t)];
    MachineClusterGroup& mcg = mach_clusters[static_cast<size_t>(j_t)];
    long remaining_insts =
        static_cast<long>(ic.instance_ids.size() - taken[static_cast<size_t>(i_t)]);
    long delta = std::min(remaining_insts, s[static_cast<size_t>(j_t)]);
    FGRO_CHECK(delta > 0);

    FastMciGroup group;
    group.instance_cluster = i_t;
    group.canonical_representative = ic.representative;
    group.instances.reserve(static_cast<size_t>(delta));
    for (long k = 0; k < delta; ++k) {
      int inst = ic.instance_ids[taken[static_cast<size_t>(i_t)]++];
      // Next machine in the cluster with a free slot.
      size_t scanned = 0;
      while (scanned < mcg.machine_ids.size()) {
        size_t c = mach_cursor[static_cast<size_t>(j_t)] %
                   mcg.machine_ids.size();
        int mid = mcg.machine_ids[c];
        mach_cursor[static_cast<size_t>(j_t)]++;
        if (slots_of_machine[static_cast<size_t>(mid)] > 0) {
          slots_of_machine[static_cast<size_t>(mid)]--;
          decision.machine_of_instance[static_cast<size_t>(inst)] = mid;
          group.instances.push_back(inst);
          if (group.representative < 0) {
            group.representative = inst;
            group.representative_machine = mid;
          }
          break;
        }
        ++scanned;
      }
    }
    s[static_cast<size_t>(j_t)] -= delta;
    placed += static_cast<int>(delta);
    result.groups.push_back(std::move(group));

    if (taken[static_cast<size_t>(i_t)] >= ic.instance_ids.size()) {
      inst_active[static_cast<size_t>(i_t)] = false;
    }
    if (s[static_cast<size_t>(j_t)] <= 0) {
      mach_active[static_cast<size_t>(j_t)] = false;
      for (int i = 0; i < mc; ++i) {
        if (inst_active[static_cast<size_t>(i)] &&
            bpl_machine[static_cast<size_t>(i)] == j_t) {
          recompute(i);
        }
      }
    }
  }

  decision.feasible = true;
  decision.solve_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fgro
