#include "optimizer/stage_optimizer.h"

#include "optimizer/fuxi.h"
#include "optimizer/ipa.h"
#include "optimizer/ipa_clustered.h"

namespace fgro {

StageOptimizer::Config StageOptimizer::FuxiOnly() {
  return {Placement::kFuxi, false, {}};
}
StageOptimizer::Config StageOptimizer::IpaOrg() {
  return {Placement::kIpaOrg, false, {}};
}
StageOptimizer::Config StageOptimizer::IpaCluster() {
  return {Placement::kIpaClustered, false, {}};
}
StageOptimizer::Config StageOptimizer::IpaRaaWithoutClustering() {
  return {Placement::kIpaClustered, true,
          {RaaClustering::kNone, RaaAlgorithm::kPath}};
}
StageOptimizer::Config StageOptimizer::IpaRaaDbscan() {
  return {Placement::kIpaClustered, true,
          {RaaClustering::kDbscan, RaaAlgorithm::kPath}};
}
StageOptimizer::Config StageOptimizer::IpaRaaGeneral() {
  return {Placement::kIpaClustered, true,
          {RaaClustering::kFastMci, RaaAlgorithm::kGeneral}};
}
StageOptimizer::Config StageOptimizer::IpaRaaPath() {
  return {Placement::kIpaClustered, true,
          {RaaClustering::kFastMci, RaaAlgorithm::kPath}};
}
StageOptimizer::Config StageOptimizer::IpaRaaPathWithFallback() {
  Config config = IpaRaaPath();
  config.degrade_gracefully = true;
  return config;
}

std::string StageOptimizer::ConfigName(const Config& config) {
  std::string suffix = config.degrade_gracefully ? "+FB" : "";
  switch (config.placement) {
    case Placement::kFuxi:
      return "Fuxi" + suffix;
    case Placement::kIpaOrg:
      return (config.run_raa ? "IPA(Org)+RAA" : "IPA(Org)") + suffix;
    case Placement::kIpaClustered:
      break;
  }
  if (!config.run_raa) return "IPA(Cluster)" + suffix;
  std::string raa;
  switch (config.raa.clustering) {
    case RaaClustering::kNone: raa = "W/O_C"; break;
    case RaaClustering::kDbscan: raa = "DBSCAN"; break;
    case RaaClustering::kFastMci:
      raa = config.raa.algorithm == RaaAlgorithm::kPath ? "Path" : "General";
      break;
  }
  return "IPA+RAA(" + raa + ")" + suffix;
}

StageDecision StageOptimizer::Optimize(const SchedulingContext& context) const {
  obs::ScopedSpan decide_span(context.obs.tracer, "so.decide",
                              context.trace_parent);
  StageDecision decision;
  const std::vector<int>* subset = context.instance_subset;
  if (subset != nullptr && !subset->empty() && context.stage != nullptr &&
      static_cast<int>(subset->size()) < context.stage->instance_count()) {
    // Partial re-entry (reconfiguration): solve a reduced stage holding only
    // the requested instances. Row r of the decision maps to instance
    // (*subset)[r] of the original stage — the caller owns that mapping.
    // The prediction memo keys on instance index within the stage, which a
    // reduced view renumbers, so it must not see these queries.
    Stage reduced = *context.stage;
    reduced.instances.clear();
    reduced.instances.reserve(subset->size());
    for (int idx : *subset) {
      reduced.instances.push_back(context.stage->instances[idx]);
    }
    SchedulingContext partial = context;
    partial.stage = &reduced;
    partial.instance_subset = nullptr;
    partial.memo = nullptr;
    decision = OptimizeImpl(partial, decide_span.id());
  } else {
    decision = OptimizeImpl(context, decide_span.id());
  }
  decision.epoch = context.epoch;
  decision.model_epoch = context.model_epoch;
  if (obs::MetricsRegistry* metrics = context.obs.metrics) {
    metrics->GetCounter("so.decisions")->Increment();
    metrics
        ->GetCounter(std::string("so.fallback.") +
                     FallbackLevelName(decision.fallback))
        ->Increment();
    metrics->GetLatencyHistogram("so.solve_seconds")
        ->Observe(decision.solve_seconds);
  }
  return decision;
}

StageDecision StageOptimizer::OptimizeImpl(const SchedulingContext& context,
                                           int trace_parent) const {
  StageDecision decision;
  const std::vector<FastMciGroup>* groups = nullptr;
  ClusteredIpaResult clustered;

  // Arm the propagated deadline from the RO time limit so IPA/RAA abort at
  // iteration granularity instead of discovering the overrun post-hoc.
  // Only with the ladder on: without a fallback rung, an aborted solve
  // would simply lose the stage. A caller-armed deadline is honored as-is.
  SchedulingContext ctx = context;
  if (config_.degrade_gracefully && ctx.deadline.infinite()) {
    ctx.deadline = Deadline::After(ctx.ro_time_limit_seconds);
  }

  const bool model_ok = ctx.model_available && ctx.model != nullptr &&
                        ctx.model->trained();
  const bool placement_needs_model = config_.placement != Placement::kFuxi;

  // Ladder bottom rung: the model-free Fuxi baseline, reached when the
  // model is gone, the primary placement cannot place the stage, or the
  // deadline expired mid-solve. Fuxi itself never checks the deadline —
  // the bottom rung must always produce a decision.
  auto fuxi_fallback = [&](double solve_spent) {
    StageDecision fb = FuxiSchedule(ctx);
    fb.solve_seconds += solve_spent;
    fb.fallback = FallbackLevel::kFuxi;
    return fb;
  };

  if (config_.degrade_gracefully && placement_needs_model && !model_ok) {
    return fuxi_fallback(0.0);
  }

  {
    obs::ScopedSpan placement_span(ctx.obs.tracer, "so.placement",
                                   trace_parent);
    switch (config_.placement) {
      case Placement::kFuxi:
        decision = FuxiSchedule(ctx);
        break;
      case Placement::kIpaOrg:
        decision = IpaSchedule(ctx);
        break;
      case Placement::kIpaClustered:
        clustered = IpaClusteredSchedule(ctx);
        decision = std::move(clustered.decision);
        groups = &clustered.groups;
        break;
    }
  }
  if (ctx.obs.metrics != nullptr) {
    // Solver-reported seconds, not span wall time: the histogram must agree
    // with the solve_seconds the RO time budget is charged against.
    ctx.obs.metrics->GetLatencyHistogram("so.placement_seconds")
        ->Observe(decision.solve_seconds);
  }

  if (config_.degrade_gracefully) {
    if (!decision.feasible && placement_needs_model) {
      return fuxi_fallback(decision.solve_seconds);
    }
    if (decision.solve_seconds > ctx.ro_time_limit_seconds) {
      return fuxi_fallback(decision.solve_seconds);
    }
  }
  if (!decision.feasible || !config_.run_raa) return decision;

  if (config_.degrade_gracefully && !ctx.raa_allowed) {
    // Brown-out rung: the serving layer disabled RAA under overload. The
    // placement above is valid; run every instance on HBO's theta0 and
    // report the middle ladder level so metrics attribute the demotion.
    decision.fallback = FallbackLevel::kTheta0;
    return decision;
  }

  if (config_.degrade_gracefully && !model_ok) {
    // Placement was model-free (Fuxi) but RAA still needs the model: keep
    // the placement, run every instance on HBO's theta0.
    decision.fallback = FallbackLevel::kTheta0;
    return decision;
  }

  RaaResult raa;
  {
    obs::ScopedSpan raa_span(ctx.obs.tracer, "so.raa", trace_parent);
    raa = RunRaa(ctx, decision, groups, config_.raa, raa_span.id());
  }
  if (ctx.obs.metrics != nullptr) {
    ctx.obs.metrics->GetLatencyHistogram("so.raa_seconds")
        ->Observe(raa.solve_seconds);
  }
  if (config_.degrade_gracefully) {
    const bool over_budget = decision.solve_seconds + raa.solve_seconds >
                             ctx.ro_time_limit_seconds;
    if (!raa.ok || over_budget) {
      // Middle rung: keep the (valid) placement, drop the per-instance
      // resource tuning and fall back to the uniform theta0 plan.
      decision.solve_seconds += raa.solve_seconds;
      decision.fallback = FallbackLevel::kTheta0;
      return decision;
    }
  }
  if (raa.ok) {
    decision.theta_of_instance = std::move(raa.theta_of_instance);
  }
  decision.solve_seconds += raa.solve_seconds;
  return decision;
}

}  // namespace fgro
