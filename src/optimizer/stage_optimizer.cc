#include "optimizer/stage_optimizer.h"

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "optimizer/fuxi.h"
#include "optimizer/ipa.h"
#include "optimizer/ipa_clustered.h"
#include "optimizer/sharding.h"

namespace fgro {

StageOptimizer::Config StageOptimizer::FuxiOnly() {
  return {Placement::kFuxi, false, {}};
}
StageOptimizer::Config StageOptimizer::IpaOrg() {
  return {Placement::kIpaOrg, false, {}};
}
StageOptimizer::Config StageOptimizer::IpaCluster() {
  return {Placement::kIpaClustered, false, {}};
}
StageOptimizer::Config StageOptimizer::IpaRaaWithoutClustering() {
  return {Placement::kIpaClustered, true,
          {RaaClustering::kNone, RaaAlgorithm::kPath}};
}
StageOptimizer::Config StageOptimizer::IpaRaaDbscan() {
  return {Placement::kIpaClustered, true,
          {RaaClustering::kDbscan, RaaAlgorithm::kPath}};
}
StageOptimizer::Config StageOptimizer::IpaRaaGeneral() {
  return {Placement::kIpaClustered, true,
          {RaaClustering::kFastMci, RaaAlgorithm::kGeneral}};
}
StageOptimizer::Config StageOptimizer::IpaRaaPath() {
  return {Placement::kIpaClustered, true,
          {RaaClustering::kFastMci, RaaAlgorithm::kPath}};
}
StageOptimizer::Config StageOptimizer::IpaRaaPathWithFallback() {
  Config config = IpaRaaPath();
  config.degrade_gracefully = true;
  return config;
}

std::string StageOptimizer::ConfigName(const Config& config) {
  std::string suffix = config.degrade_gracefully ? "+FB" : "";
  switch (config.placement) {
    case Placement::kFuxi:
      return "Fuxi" + suffix;
    case Placement::kIpaOrg:
      return (config.run_raa ? "IPA(Org)+RAA" : "IPA(Org)") + suffix;
    case Placement::kIpaClustered:
      break;
  }
  if (!config.run_raa) return "IPA(Cluster)" + suffix;
  std::string raa;
  switch (config.raa.clustering) {
    case RaaClustering::kNone: raa = "W/O_C"; break;
    case RaaClustering::kDbscan: raa = "DBSCAN"; break;
    case RaaClustering::kFastMci:
      raa = config.raa.algorithm == RaaAlgorithm::kPath ? "Path" : "General";
      break;
  }
  return "IPA+RAA(" + raa + ")" + suffix;
}

StageDecision StageOptimizer::Optimize(const SchedulingContext& context) const {
  obs::ScopedSpan decide_span(context.obs.tracer, "so.decide",
                              context.trace_parent);
  StageDecision decision;
  const std::vector<int>* subset = context.instance_subset;
  if (subset != nullptr && !subset->empty() && context.stage != nullptr &&
      static_cast<int>(subset->size()) < context.stage->instance_count()) {
    // Partial re-entry (reconfiguration): solve a reduced stage holding only
    // the requested instances. Row r of the decision maps to instance
    // (*subset)[r] of the original stage — the caller owns that mapping.
    // The prediction memo keys on instance index within the stage, which a
    // reduced view renumbers, so it must not see these queries. The frontier
    // cache stays (inherited through the copy): its keys are content-based
    // (cluster signature + instance_count), so a reduced view can only ever
    // hit templates that are exact for it — reconfig partial re-plans hit
    // warm frontiers when the subset preserves the full stage's width.
    Stage reduced = *context.stage;
    reduced.instances.clear();
    reduced.instances.reserve(subset->size());
    for (int idx : *subset) {
      reduced.instances.push_back(context.stage->instances[idx]);
    }
    SchedulingContext partial = context;
    partial.stage = &reduced;
    partial.instance_subset = nullptr;
    partial.memo = nullptr;
    decision = Dispatch(partial, decide_span.id());
  } else {
    decision = Dispatch(context, decide_span.id());
  }
  decision.epoch = context.epoch;
  decision.model_epoch = context.model_epoch;
  if (obs::MetricsRegistry* metrics = context.obs.metrics) {
    metrics->GetCounter("so.decisions")->Increment();
    metrics
        ->GetCounter(std::string("so.fallback.") +
                     FallbackLevelName(decision.fallback))
        ->Increment();
    metrics->GetLatencyHistogram("so.solve_seconds")
        ->Observe(decision.solve_seconds);
  }
  return decision;
}

StageDecision StageOptimizer::Dispatch(const SchedulingContext& context,
                                       int trace_parent) const {
  if (EffectiveShardCount(context) > 1) {
    return OptimizeSharded(context, trace_parent);
  }
  return OptimizeImpl(context, trace_parent);
}

StageDecision StageOptimizer::OptimizeSharded(const SchedulingContext& context,
                                              int trace_parent) const {
  Stopwatch wall;
  obs::ScopedSpan shard_span(context.obs.tracer, "so.sharded", trace_parent);
  const Stage& stage = *context.stage;
  const int m = stage.instance_count();
  const int k = EffectiveShardCount(context);

  ShardPlan plan = PlanForContext(context);

  // Per-shard stage views are built up front (sequentially); the solves fan
  // across the worker pool into per-shard slots and merge in shard order —
  // the same slot discipline as RAA's group fan, so the decision is
  // byte-identical at any thread count.
  std::vector<Stage> shard_stages(static_cast<size_t>(k));
  for (int s = 0; s < k; ++s) {
    const std::vector<int>& insts =
        plan.instances_of_shard[static_cast<size_t>(s)];
    Stage& view = shard_stages[static_cast<size_t>(s)];
    view = stage;
    view.instances.clear();
    view.instances.reserve(insts.size());
    for (int idx : insts) {
      view.instances.push_back(stage.instances[static_cast<size_t>(idx)]);
    }
  }
  std::vector<StageDecision> slots(static_cast<size_t>(k));
  ParallelFor(context.worker_pool, k, [&](int s) {
    if (plan.instances_of_shard[static_cast<size_t>(s)].empty()) {
      slots[static_cast<size_t>(s)].feasible = true;  // nothing to place
      return;
    }
    SchedulingContext sub = context;
    sub.stage = &shard_stages[static_cast<size_t>(s)];
    sub.machine_subset = &plan.machines_of_shard[static_cast<size_t>(s)];
    sub.shard_count = 1;        // shards run the exact solver, never recurse
    sub.memo = nullptr;         // memo keys on instance index, which the
                                // shard view renumbers
    sub.worker_pool = nullptr;  // the shard fan IS the parallelism
    // sub.frontier_cache is inherited through the copy on purpose: frontier
    // keys are content-based (and include instance_count, which the shard
    // view changes), so shards share the cache read-side safely — every hit
    // is exact for the shard's own view, and concurrent shard inserts are
    // idempotent.
    slots[static_cast<size_t>(s)] = OptimizeImpl(sub, shard_span.id());
  });

  ShardMergeStats stats;
  StageDecision merged = MergeShardDecisions(context, plan, slots, &stats);
  // Critical-instance polish: give the few instances pinning the stage
  // latency their pick of the whole fleet again (bounded by
  // shard_refine_budget), recovering most of the partition's max-latency
  // loss for O(m + budget * n) extra predictions. Theta re-tuning only
  // makes sense on decisions that actually carry RAA-chosen plans — on the
  // theta0/fuxi rungs every instance runs theta0 by contract, and the
  // polish must not silently un-degrade them.
  const bool tune_theta = config_.run_raa && context.raa_allowed &&
                          merged.fallback == FallbackLevel::kPrimary;
  const int refined = RefineMergedDecision(context, &merged, tune_theta);
  // Wall time of the whole fan, not the per-shard sum: this is what the RO
  // budget and the coverage cutoff are charged against.
  merged.solve_seconds = wall.ElapsedSeconds();

  if (!merged.feasible && config_.degrade_gracefully) {
    // Bottom rung, whole-fleet: even reconciliation could not absorb the
    // infeasible shards, so fall back exactly like the legacy ladder.
    StageDecision fb = FuxiSchedule(context);
    fb.solve_seconds += merged.solve_seconds;
    fb.fallback = FallbackLevel::kFuxi;
    merged = std::move(fb);
  }

  if (obs::MetricsRegistry* metrics = context.obs.metrics) {
    metrics->GetCounter("so.shard.decisions")->Increment();
    metrics->GetCounter("so.shard.solves")
        ->Increment(static_cast<uint64_t>(k));
    if (stats.infeasible_shards > 0) {
      metrics->GetCounter("so.shard.infeasible_shards")
          ->Increment(static_cast<uint64_t>(stats.infeasible_shards));
    }
    if (stats.rescued_instances > 0) {
      metrics->GetCounter("so.shard.rescued_instances")
          ->Increment(static_cast<uint64_t>(stats.rescued_instances));
    }
    if (refined > 0) {
      metrics->GetCounter("so.shard.refined_moves")
          ->Increment(static_cast<uint64_t>(refined));
    }
    metrics->GetGauge("so.shard.effective_k")->Set(k);
  }
  return merged;
}

StageDecision StageOptimizer::OptimizeImpl(const SchedulingContext& context,
                                           int trace_parent) const {
  StageDecision decision;
  const std::vector<FastMciGroup>* groups = nullptr;
  ClusteredIpaResult clustered;

  // Arm the propagated deadline from the RO time limit so IPA/RAA abort at
  // iteration granularity instead of discovering the overrun post-hoc.
  // Only with the ladder on: without a fallback rung, an aborted solve
  // would simply lose the stage. A caller-armed deadline is honored as-is.
  SchedulingContext ctx = context;
  if (config_.degrade_gracefully && ctx.deadline.infinite()) {
    ctx.deadline = Deadline::After(ctx.ro_time_limit_seconds);
  }

  const bool model_ok = ctx.model_available && ctx.model != nullptr &&
                        ctx.model->trained();
  const bool placement_needs_model = config_.placement != Placement::kFuxi;

  // Ladder bottom rung: the model-free Fuxi baseline, reached when the
  // model is gone, the primary placement cannot place the stage, or the
  // deadline expired mid-solve. Fuxi itself never checks the deadline —
  // the bottom rung must always produce a decision.
  auto fuxi_fallback = [&](double solve_spent) {
    StageDecision fb = FuxiSchedule(ctx);
    fb.solve_seconds += solve_spent;
    fb.fallback = FallbackLevel::kFuxi;
    return fb;
  };

  if (config_.degrade_gracefully && placement_needs_model && !model_ok) {
    return fuxi_fallback(0.0);
  }

  {
    obs::ScopedSpan placement_span(ctx.obs.tracer, "so.placement",
                                   trace_parent);
    switch (config_.placement) {
      case Placement::kFuxi:
        decision = FuxiSchedule(ctx);
        break;
      case Placement::kIpaOrg:
        decision = IpaSchedule(ctx);
        break;
      case Placement::kIpaClustered:
        clustered = IpaClusteredSchedule(ctx);
        decision = std::move(clustered.decision);
        groups = &clustered.groups;
        break;
    }
  }
  if (ctx.obs.metrics != nullptr) {
    // Solver-reported seconds, not span wall time: the histogram must agree
    // with the solve_seconds the RO time budget is charged against.
    ctx.obs.metrics->GetLatencyHistogram("so.placement_seconds")
        ->Observe(decision.solve_seconds);
  }

  if (config_.degrade_gracefully) {
    if (!decision.feasible && placement_needs_model) {
      return fuxi_fallback(decision.solve_seconds);
    }
    if (decision.solve_seconds > ctx.ro_time_limit_seconds) {
      return fuxi_fallback(decision.solve_seconds);
    }
  }
  if (!decision.feasible || !config_.run_raa) return decision;

  if (config_.degrade_gracefully && !ctx.raa_allowed) {
    // Brown-out rung: the serving layer disabled RAA under overload. The
    // placement above is valid; run every instance on HBO's theta0 and
    // report the middle ladder level so metrics attribute the demotion.
    decision.fallback = FallbackLevel::kTheta0;
    return decision;
  }

  if (config_.degrade_gracefully && !model_ok) {
    // Placement was model-free (Fuxi) but RAA still needs the model: keep
    // the placement, run every instance on HBO's theta0.
    decision.fallback = FallbackLevel::kTheta0;
    return decision;
  }

  RaaResult raa;
  {
    obs::ScopedSpan raa_span(ctx.obs.tracer, "so.raa", trace_parent);
    raa = RunRaa(ctx, decision, groups, config_.raa, raa_span.id());
  }
  if (ctx.obs.metrics != nullptr) {
    ctx.obs.metrics->GetLatencyHistogram("so.raa_seconds")
        ->Observe(raa.solve_seconds);
  }
  if (config_.degrade_gracefully) {
    const bool over_budget = decision.solve_seconds + raa.solve_seconds >
                             ctx.ro_time_limit_seconds;
    if (!raa.ok || over_budget) {
      // Middle rung: keep the (valid) placement, drop the per-instance
      // resource tuning and fall back to the uniform theta0 plan.
      decision.solve_seconds += raa.solve_seconds;
      decision.fallback = FallbackLevel::kTheta0;
      return decision;
    }
  }
  if (raa.ok) {
    decision.theta_of_instance = std::move(raa.theta_of_instance);
  }
  decision.solve_seconds += raa.solve_seconds;
  return decision;
}

}  // namespace fgro
