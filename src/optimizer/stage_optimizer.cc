#include "optimizer/stage_optimizer.h"

#include "optimizer/fuxi.h"
#include "optimizer/ipa.h"
#include "optimizer/ipa_clustered.h"

namespace fgro {

StageOptimizer::Config StageOptimizer::FuxiOnly() {
  return {Placement::kFuxi, false, {}};
}
StageOptimizer::Config StageOptimizer::IpaOrg() {
  return {Placement::kIpaOrg, false, {}};
}
StageOptimizer::Config StageOptimizer::IpaCluster() {
  return {Placement::kIpaClustered, false, {}};
}
StageOptimizer::Config StageOptimizer::IpaRaaWithoutClustering() {
  return {Placement::kIpaClustered, true,
          {RaaClustering::kNone, RaaAlgorithm::kPath}};
}
StageOptimizer::Config StageOptimizer::IpaRaaDbscan() {
  return {Placement::kIpaClustered, true,
          {RaaClustering::kDbscan, RaaAlgorithm::kPath}};
}
StageOptimizer::Config StageOptimizer::IpaRaaGeneral() {
  return {Placement::kIpaClustered, true,
          {RaaClustering::kFastMci, RaaAlgorithm::kGeneral}};
}
StageOptimizer::Config StageOptimizer::IpaRaaPath() {
  return {Placement::kIpaClustered, true,
          {RaaClustering::kFastMci, RaaAlgorithm::kPath}};
}

std::string StageOptimizer::ConfigName(const Config& config) {
  switch (config.placement) {
    case Placement::kFuxi:
      return "Fuxi";
    case Placement::kIpaOrg:
      return config.run_raa ? "IPA(Org)+RAA" : "IPA(Org)";
    case Placement::kIpaClustered:
      break;
  }
  if (!config.run_raa) return "IPA(Cluster)";
  std::string raa;
  switch (config.raa.clustering) {
    case RaaClustering::kNone: raa = "W/O_C"; break;
    case RaaClustering::kDbscan: raa = "DBSCAN"; break;
    case RaaClustering::kFastMci:
      raa = config.raa.algorithm == RaaAlgorithm::kPath ? "Path" : "General";
      break;
  }
  return "IPA+RAA(" + raa + ")";
}

StageDecision StageOptimizer::Optimize(const SchedulingContext& context) const {
  StageDecision decision;
  const std::vector<FastMciGroup>* groups = nullptr;
  ClusteredIpaResult clustered;
  switch (config_.placement) {
    case Placement::kFuxi:
      decision = FuxiSchedule(context);
      break;
    case Placement::kIpaOrg:
      decision = IpaSchedule(context);
      break;
    case Placement::kIpaClustered:
      clustered = IpaClusteredSchedule(context);
      decision = std::move(clustered.decision);
      groups = &clustered.groups;
      break;
  }
  if (!decision.feasible || !config_.run_raa) return decision;

  RaaResult raa = RunRaa(context, decision, groups, config_.raa);
  if (raa.ok) {
    decision.theta_of_instance = std::move(raa.theta_of_instance);
  }
  decision.solve_seconds += raa.solve_seconds;
  return decision;
}

}  // namespace fgro
