#include "optimizer/raa_general.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "moo/pareto.h"

namespace fgro {

std::vector<GeneralStagePoint> GeneralHierarchicalMoo(
    const std::vector<std::vector<std::vector<double>>>& solutions,
    const std::vector<bool>& is_max, const std::vector<double>& multiplicity,
    const GeneralMooOptions& options) {
  const int m = static_cast<int>(solutions.size());
  std::vector<GeneralStagePoint> result;
  if (m == 0) return result;
  const int k = static_cast<int>(is_max.size());
  std::vector<int> max_objs, sum_objs;
  for (int v = 0; v < k; ++v) {
    (is_max[static_cast<size_t>(v)] ? max_objs : sum_objs).push_back(v);
  }

  // find_range + find_all_possible_values: per max objective, all distinct
  // values across instance-level solutions, clipped to [lower, upper] where
  // lower = max_i min_j and upper = max_i max_j (values below `lower` can
  // never be the stage max).
  std::vector<std::vector<double>> candidates;
  for (int h : max_objs) {
    double lower = -std::numeric_limits<double>::infinity();
    std::vector<double> values;
    for (int i = 0; i < m; ++i) {
      double inst_min = std::numeric_limits<double>::infinity();
      for (const std::vector<double>& sol : solutions[static_cast<size_t>(i)]) {
        inst_min = std::min(inst_min, sol[static_cast<size_t>(h)]);
        values.push_back(sol[static_cast<size_t>(h)]);
      }
      lower = std::max(lower, inst_min);
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    values.erase(std::remove_if(values.begin(), values.end(),
                                [&](double v) { return v < lower; }),
                 values.end());
    while (static_cast<int>(values.size()) >
           options.max_candidates_per_objective) {
      // Evenly thin the list, always keeping the endpoints.
      std::vector<double> thinned;
      for (size_t i = 0; i < values.size(); i += 2) thinned.push_back(values[i]);
      if (thinned.back() != values.back()) thinned.push_back(values.back());
      values = std::move(thinned);
    }
    candidates.push_back(std::move(values));
  }

  std::vector<std::vector<double>> weights = options.sum_weight_vectors;
  if (weights.empty()) {
    weights.push_back(std::vector<double>(sum_objs.size(), 1.0));
  }

  // Iterate the Cartesian product of candidate lists.
  std::vector<size_t> combo(candidates.size(), 0);
  long combos_done = 0;
  std::vector<std::vector<double>> objective_rows;
  while (combos_done < options.max_combinations) {
    // Bounds for this combination.
    std::vector<double> bound(candidates.size());
    for (size_t h = 0; h < candidates.size(); ++h) {
      bound[h] = candidates[h][combo[h]];
    }
    for (const std::vector<double>& w : weights) {
      GeneralStagePoint point;
      point.objectives.assign(static_cast<size_t>(k), 0.0);
      point.choice.assign(static_cast<size_t>(m), -1);
      bool feasible = true;
      for (int i = 0; i < m && feasible; ++i) {
        // find_optimal: cheapest weighted sum subject to the max bounds.
        double best_score = std::numeric_limits<double>::infinity();
        int best_j = -1;
        const std::vector<std::vector<double>>& sols =
            solutions[static_cast<size_t>(i)];
        for (size_t j = 0; j < sols.size(); ++j) {
          bool within = true;
          for (size_t h = 0; h < max_objs.size(); ++h) {
            if (sols[j][static_cast<size_t>(max_objs[h])] >
                bound[h] + 1e-12) {
              within = false;
              break;
            }
          }
          if (!within) continue;
          double score = 0.0;
          for (size_t v = 0; v < sum_objs.size(); ++v) {
            score += w[v] * sols[j][static_cast<size_t>(sum_objs[v])];
          }
          if (score < best_score) {
            best_score = score;
            best_j = static_cast<int>(j);
          }
        }
        if (best_j < 0) {
          feasible = false;
          break;
        }
        point.choice[static_cast<size_t>(i)] = best_j;
        const std::vector<double>& chosen =
            sols[static_cast<size_t>(best_j)];
        for (int h : max_objs) {
          point.objectives[static_cast<size_t>(h)] =
              std::max(point.objectives[static_cast<size_t>(h)],
                       chosen[static_cast<size_t>(h)]);
        }
        for (int v : sum_objs) {
          point.objectives[static_cast<size_t>(v)] +=
              chosen[static_cast<size_t>(v)] *
              multiplicity[static_cast<size_t>(i)];
        }
      }
      if (feasible) {
        objective_rows.push_back(point.objectives);
        result.push_back(std::move(point));
      }
    }
    // Advance the combination odometer.
    ++combos_done;
    size_t pos = 0;
    while (pos < combo.size()) {
      if (++combo[pos] < candidates[pos].size()) break;
      combo[pos] = 0;
      ++pos;
    }
    if (pos >= combo.size()) break;  // odometer wrapped: done
    if (combo.empty()) break;        // no max objectives: single pass
  }

  // filter_dominated.
  std::vector<GeneralStagePoint> filtered;
  for (int idx : ParetoFilter(objective_rows)) {
    filtered.push_back(std::move(result[static_cast<size_t>(idx)]));
  }
  return filtered;
}

}  // namespace fgro
