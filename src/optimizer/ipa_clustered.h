#ifndef FGRO_OPTIMIZER_IPA_CLUSTERED_H_
#define FGRO_OPTIMIZER_IPA_CLUSTERED_H_

#include <vector>

#include "clustering/machine_clustering.h"
#include "optimizer/scheduler_types.h"

namespace fgro {

/// A chunk of instances from one instance cluster that Algorithm 4 sent to
/// machines of one machine cluster. These are exactly the RAA(Fast_MCI)
/// sub-clusters of Appendix E.1 — they fall out of clustered IPA for free.
/// `instances` are sorted by descending input rows; the first one is the
/// representative (largest rows, conservative latency).
struct FastMciGroup {
  std::vector<int> instances;
  int representative = -1;
  int representative_machine = -1;
  /// Index of the KDE instance cluster this group came from (-1 when the
  /// group was not derived from the KDE clustering, e.g. RAA(W/O_C)).
  int instance_cluster = -1;
  /// The *whole* instance cluster's representative (its largest-rows
  /// instance), which may live in a different group when clustered IPA
  /// split the cluster across dispatch steps. Frontier compression
  /// (DESIGN.md §16) builds one template per (instance cluster, machine
  /// bucket) from this canonical instance, so every split-off group of the
  /// same cluster shares it; -1 means "same as representative".
  int canonical_representative = -1;
};

struct ClusteredIpaResult {
  StageDecision decision;
  std::vector<FastMciGroup> groups;
  int num_instance_clusters = 0;
  int num_machine_clusters = 0;
};

/// Clustered IPA, Algorithm 4: 1-D KDE clustering of instances on input
/// rows, machine clustering on discretized state + hardware, then the BPL
/// greedy over the reduced m' x n' latency matrix, dispatching delta =
/// min(remaining instances, remaining machine-cluster slots) heaviest
/// instances at each step. O(m log m + n log n) overall.
ClusteredIpaResult IpaClusteredSchedule(const SchedulingContext& context);

}  // namespace fgro

#endif  // FGRO_OPTIMIZER_IPA_CLUSTERED_H_
