#include "optimizer/raa.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <tuple>

#include "clustering/dbscan.h"
#include "common/logging.h"
#include "common/math_utils.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "featurize/discretize.h"
#include "hbo/hbo.h"
#include "moo/progressive_frontier.h"
#include "moo/wun.h"
#include "optimizer/raa_general.h"

namespace fgro {

namespace {

/// Builds the RAA groups for each clustering strategy. Every group carries
/// its member instances, a representative (largest input rows,
/// conservative) and the representative's assigned machine.
std::vector<FastMciGroup> BuildGroups(
    const SchedulingContext& context, const StageDecision& placement,
    const std::vector<FastMciGroup>* fast_mci_groups,
    RaaClustering clustering) {
  const Stage& stage = *context.stage;
  const int m = stage.instance_count();
  auto representative_of = [&](const std::vector<int>& members) {
    int rep = members[0];
    for (int i : members) {
      if (stage.instances[static_cast<size_t>(i)].input_rows >
          stage.instances[static_cast<size_t>(rep)].input_rows) {
        rep = i;
      }
    }
    return rep;
  };

  std::vector<FastMciGroup> groups;
  switch (clustering) {
    case RaaClustering::kNone: {
      groups.reserve(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) {
        FastMciGroup g;
        g.instances = {i};
        g.representative = i;
        g.representative_machine =
            placement.machine_of_instance[static_cast<size_t>(i)];
        groups.push_back(std::move(g));
      }
      break;
    }
    case RaaClustering::kDbscan: {
      // Cluster on the Channel-2 features (log rows, log bytes); then split
      // by assigned machine's state bucket so one configuration per group
      // stays meaningful.
      std::vector<std::vector<double>> points;
      points.reserve(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) {
        const InstanceMeta& meta = stage.instances[static_cast<size_t>(i)];
        points.push_back(
            {Log1pSafe(meta.input_rows), Log1pSafe(meta.input_bytes)});
      }
      std::vector<int> labels = Dbscan(points, {.eps = 0.4, .min_pts = 3});
      std::map<std::pair<int, int>, std::vector<int>> by_key;
      for (int i = 0; i < m; ++i) {
        int machine = placement.machine_of_instance[static_cast<size_t>(i)];
        const Machine& mach = context.cluster->machine(machine);
        int bucket =
            mach.hardware().id * 1000 +
            DiscretizeIndex(mach.state().cpu_util,
                            context.discretization_degree) *
                10 +
            DiscretizeIndex(mach.state().io_util,
                            context.discretization_degree);
        by_key[{labels[static_cast<size_t>(i)], bucket}].push_back(i);
      }
      for (auto& [key, members] : by_key) {
        (void)key;
        FastMciGroup g;
        g.instances = std::move(members);
        g.representative = representative_of(g.instances);
        g.representative_machine =
            placement.machine_of_instance[static_cast<size_t>(
                g.representative)];
        groups.push_back(std::move(g));
      }
      break;
    }
    case RaaClustering::kFastMci: {
      if (fast_mci_groups != nullptr && !fast_mci_groups->empty()) {
        groups = *fast_mci_groups;
      } else {
        // Rebuild: KDE clusters subdivided by the assigned machine's state
        // bucket (what clustered IPA would have produced).
        std::vector<InstanceClusterGroup> kde =
            ClusterInstancesByRows(stage);
        std::map<std::tuple<int, int>, std::vector<int>> by_key;
        for (size_t c = 0; c < kde.size(); ++c) {
          for (int i : kde[c].instance_ids) {
            int machine =
                placement.machine_of_instance[static_cast<size_t>(i)];
            const Machine& mach = context.cluster->machine(machine);
            int bucket =
                mach.hardware().id * 1000 +
                DiscretizeIndex(mach.state().cpu_util,
                                context.discretization_degree) *
                    10 +
                DiscretizeIndex(mach.state().io_util,
                                context.discretization_degree);
            by_key[{static_cast<int>(c), bucket}].push_back(i);
          }
        }
        for (auto& [key, members] : by_key) {
          (void)key;
          FastMciGroup g;
          g.instances = std::move(members);
          g.representative = representative_of(g.instances);
          g.representative_machine =
              placement.machine_of_instance[static_cast<size_t>(
                  g.representative)];
          groups.push_back(std::move(g));
        }
      }
      break;
    }
  }
  return groups;
}

}  // namespace

RaaResult RunRaa(const SchedulingContext& context,
                 const StageDecision& placement,
                 const std::vector<FastMciGroup>* fast_mci_groups,
                 const RaaOptions& options, int trace_parent) {
  Stopwatch timer;
  RaaResult result;
  const Stage& stage = *context.stage;
  const Cluster& cluster = *context.cluster;
  FGRO_CHECK(context.model != nullptr);
  const int m = stage.instance_count();
  if (!placement.feasible) return result;

  std::vector<FastMciGroup> groups =
      BuildGroups(context, placement, fast_mci_groups, options.clustering);
  result.num_groups = static_cast<int>(groups.size());

  // Per-machine co-residency count: an instance may only grow its container
  // up to its fair share of the machine's free capacity, which keeps the
  // per-instance searches independent while respecting Def. 5.2's capacity
  // constraints.
  std::vector<int> coresidents(static_cast<size_t>(cluster.size()), 0);
  for (int i = 0; i < m; ++i) {
    coresidents[static_cast<size_t>(
        placement.machine_of_instance[static_cast<size_t>(i)])]++;
  }

  // Instance-level MOO per group, on the representative's machine. Group
  // frontiers are independent, so they are constructed in a (possibly
  // parallel) fan into per-group slots and merged sequentially in group
  // order below — the incumbent accumulation (default_latency/default_cost)
  // therefore sees the exact FP operation order of the original serial
  // loop, and the result is byte-identical at any thread count.
  InstanceMooSolver solver(context.cost_weights);
  const int ng = static_cast<int>(groups.size());
  struct GroupFrontier {
    bool ok = false;
    bool expired = false;
    std::vector<InstanceParetoPoint> frontier;
    double lat0 = 0.0;  // predicted latency of keeping theta0
  };
  std::vector<GroupFrontier> slots(static_cast<size_t>(ng));
  std::atomic<bool> any_abort{false};
  ParallelFor(context.worker_pool, ng, [&](int gi) {
    GroupFrontier& slot = slots[static_cast<size_t>(gi)];
    // Best-effort early-out: once any group aborted, the whole RAA attempt
    // is discarded, so remaining groups skip their model bill.
    if (any_abort.load(std::memory_order_relaxed)) return;
    // Deadline check per group frontier: RAA aborts with ok=false and the
    // ladder keeps the (valid) placement on theta0.
    if (context.deadline.expired()) {
      slot.expired = true;
      any_abort.store(true, std::memory_order_relaxed);
      return;
    }
    const FastMciGroup& group = groups[static_cast<size_t>(gi)];
    const Machine& machine = cluster.machine(group.representative_machine);
    const double share =
        static_cast<double>(coresidents[static_cast<size_t>(
            group.representative_machine)]);
    // Search the historically observed plan space: catalog entries within
    // the exploration window around theta0. Outside it the model has never
    // seen a configuration and its extrapolation is untrustworthy
    // (Appendix F.15: "we cannot lower the cores anymore ... the searching
    // space is still in a narrow range").
    std::vector<ResourceConfig> grid;
    for (const ResourceConfig& theta : FilterByCapacity(
             Hbo::ResourcePlanCatalog(),
             (machine.available_cores() + context.theta0.cores) / share,
             (machine.available_memory_gb() + context.theta0.memory_gb) /
                 share)) {
      if (theta.cores >= context.theta0.cores * kPlanExplorationLow &&
          theta.cores <= context.theta0.cores * kPlanExplorationHigh &&
          theta.memory_gb >=
              context.theta0.memory_gb * kPlanExplorationLow &&
          theta.memory_gb <=
              context.theta0.memory_gb * kPlanExplorationHigh) {
        grid.push_back(theta);
      }
    }
    if (grid.empty()) grid.push_back(context.theta0);

    Result<LatencyModel::EmbeddedInstance> embedded =
        context.model->Embed(stage, group.representative);
    if (!embedded.ok()) {
      any_abort.store(true, std::memory_order_relaxed);
      return;
    }
    if (context.batched_inference) {
      // One PredictBatch over the grid plus theta0 (appended as the last
      // candidate, matching the scalar path's evaluate-grid-then-theta0
      // order per value).
      std::vector<LatencyModel::PredictionCandidate> candidates;
      candidates.reserve(grid.size() + 1);
      for (const ResourceConfig& theta : grid) {
        candidates.push_back(
            {theta, machine.state(), machine.hardware().id});
      }
      candidates.push_back(
          {context.theta0, machine.state(), machine.hardware().id});
      std::vector<double> lats(candidates.size());
      LatencyModel::BatchScratch scratch;
      context.model->PredictBatch(embedded.value(), candidates, lats.data(),
                                  &scratch, context.memo);
      slot.frontier = solver.SolveExhaustive(lats.data(), grid);
      slot.lat0 = lats.back();
    } else {
      auto predict = [&](const ResourceConfig& theta) {
        return context.model->PredictFromEmbedding(
            embedded.value(), theta, machine.state(), machine.hardware().id);
      };
      slot.frontier = solver.SolveExhaustive(predict, grid);
      slot.lat0 = predict(context.theta0);
    }
    if (slot.frontier.empty()) {
      any_abort.store(true, std::memory_order_relaxed);
      return;
    }
    slot.ok = true;
  });

  // Deterministic merge in group order.
  std::vector<std::vector<InstanceParetoPoint>> pareto_sets;
  std::vector<double> multiplicity;
  double default_latency = 0.0, default_cost = 0.0;
  pareto_sets.reserve(slots.size());
  for (GroupFrontier& slot : slots) {
    if (slot.expired) {
      result.solve_seconds = timer.ElapsedSeconds();
      return result;
    }
    if (!slot.ok) return result;
    const size_t gi = pareto_sets.size();
    pareto_sets.push_back(std::move(slot.frontier));
    multiplicity.push_back(
        static_cast<double>(groups[gi].instances.size()));
    default_latency = std::max(default_latency, slot.lat0);
    default_cost += slot.lat0 * context.cost_weights.Rate(context.theta0) *
                    static_cast<double>(groups[gi].instances.size());
  }

  // Stage-level hierarchical MOO.
  std::vector<StageParetoPoint> stage_pareto;
  if (options.algorithm == RaaAlgorithm::kPath) {
    stage_pareto = RaaPath(pareto_sets, multiplicity);
  } else {
    std::vector<std::vector<std::vector<double>>> solutions(
        pareto_sets.size());
    for (size_t i = 0; i < pareto_sets.size(); ++i) {
      for (const InstanceParetoPoint& p : pareto_sets[i]) {
        solutions[i].push_back({p.latency, p.cost});
      }
    }
    std::vector<GeneralStagePoint> general = GeneralHierarchicalMoo(
        solutions, {true, false}, multiplicity);
    stage_pareto.reserve(general.size());
    for (GeneralStagePoint& g : general) {
      stage_pareto.push_back(
          {g.objectives[0], g.objectives[1], std::move(g.choice)});
    }
  }
  if (stage_pareto.empty()) return result;

  // WUN recommendation, anchored at the incumbent: prefer the frontier
  // region that dominates HBO's default plan in BOTH latency and cost, so
  // the recommendation improves the stage rather than trading one objective
  // far away (Table 13: the plan dominates the default on 68-99% of
  // stages). If no point dominates the default, WUN runs on the full set.
  obs::ScopedSpan wun_span(context.obs.tracer, "so.wun", trace_parent);
  Stopwatch wun_timer;
  result.stage_pareto.reserve(stage_pareto.size());
  for (const StageParetoPoint& p : stage_pareto) {
    result.stage_pareto.push_back({p.latency, p.cost});
  }
  std::vector<int> dominating;
  for (size_t i = 0; i < stage_pareto.size(); ++i) {
    if (stage_pareto[i].latency <= default_latency + 1e-12 &&
        stage_pareto[i].cost <= default_cost + 1e-12) {
      dominating.push_back(static_cast<int>(i));
    }
  }
  if (dominating.empty()) {
    result.recommended_index =
        WeightedUtopiaNearest(result.stage_pareto, options.wun_weights);
    // WUN returns -1 when no finite point exists (a drifted model can emit
    // NaN objectives): abort with ok=false, the ladder keeps theta0.
    if (result.recommended_index < 0) return result;
  } else {
    std::vector<std::vector<double>> candidates;
    candidates.reserve(dominating.size());
    for (int i : dominating) {
      candidates.push_back(result.stage_pareto[static_cast<size_t>(i)]);
    }
    int pick = WeightedUtopiaNearest(candidates, options.wun_weights);
    if (pick < 0) return result;
    result.recommended_index = dominating[static_cast<size_t>(pick)];
  }
  if (context.obs.metrics != nullptr) {
    context.obs.metrics->GetLatencyHistogram("so.wun_seconds")
        ->Observe(wun_timer.ElapsedSeconds());
  }
  const StageParetoPoint& chosen =
      stage_pareto[static_cast<size_t>(result.recommended_index)];

  // Expand group choices to per-instance resource plans.
  result.theta_of_instance.assign(static_cast<size_t>(m), context.theta0);
  for (size_t g = 0; g < groups.size(); ++g) {
    const ResourceConfig& theta =
        pareto_sets[g][static_cast<size_t>(chosen.choice[g])].theta;
    for (int i : groups[g].instances) {
      result.theta_of_instance[static_cast<size_t>(i)] = theta;
    }
  }
  result.ok = true;
  result.solve_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fgro
