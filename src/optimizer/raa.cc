#include "optimizer/raa.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <tuple>
#include <utility>

#include "clustering/dbscan.h"
#include "common/logging.h"
#include "common/math_utils.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "featurize/discretize.h"
#include "hbo/hbo.h"
#include "moo/progressive_frontier.h"
#include "moo/wun.h"
#include "optimizer/frontier_cache.h"
#include "optimizer/raa_general.h"

namespace fgro {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

/// Builds the RAA groups for each clustering strategy. Every group carries
/// its member instances, a representative (largest input rows,
/// conservative) and the representative's assigned machine, plus the
/// instance cluster it came from and that cluster's canonical
/// representative (frontier compression builds templates from the latter).
std::vector<FastMciGroup> BuildGroups(
    const SchedulingContext& context, const StageDecision& placement,
    const std::vector<FastMciGroup>* fast_mci_groups,
    RaaClustering clustering) {
  const Stage& stage = *context.stage;
  const int m = stage.instance_count();
  auto representative_of = [&](const std::vector<int>& members) {
    int rep = members[0];
    for (int i : members) {
      if (stage.instances[static_cast<size_t>(i)].input_rows >
          stage.instances[static_cast<size_t>(rep)].input_rows) {
        rep = i;
      }
    }
    return rep;
  };

  std::vector<FastMciGroup> groups;
  switch (clustering) {
    case RaaClustering::kNone: {
      groups.reserve(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) {
        FastMciGroup g;
        g.instances = {i};
        g.representative = i;
        g.representative_machine =
            placement.machine_of_instance[static_cast<size_t>(i)];
        g.instance_cluster = i;
        g.canonical_representative = i;
        groups.push_back(std::move(g));
      }
      break;
    }
    case RaaClustering::kDbscan: {
      // Cluster on the Channel-2 features (log rows, log bytes); then split
      // by assigned machine's state bucket so one configuration per group
      // stays meaningful.
      std::vector<std::vector<double>> points;
      points.reserve(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) {
        const InstanceMeta& meta = stage.instances[static_cast<size_t>(i)];
        points.push_back(
            {Log1pSafe(meta.input_rows), Log1pSafe(meta.input_bytes)});
      }
      std::vector<int> labels = Dbscan(points, {.eps = 0.4, .min_pts = 3});
      std::map<std::pair<int, int>, std::vector<int>> by_key;
      for (int i = 0; i < m; ++i) {
        int machine = placement.machine_of_instance[static_cast<size_t>(i)];
        const Machine& mach = context.cluster->machine(machine);
        int bucket =
            mach.hardware().id * 1000 +
            DiscretizeIndex(mach.state().cpu_util,
                            context.discretization_degree) *
                10 +
            DiscretizeIndex(mach.state().io_util,
                            context.discretization_degree);
        by_key[{labels[static_cast<size_t>(i)], bucket}].push_back(i);
      }
      for (auto& [key, members] : by_key) {
        FastMciGroup g;
        g.instances = std::move(members);
        g.representative = representative_of(g.instances);
        g.representative_machine =
            placement.machine_of_instance[static_cast<size_t>(
                g.representative)];
        g.instance_cluster = key.first;
        g.canonical_representative = g.representative;
        groups.push_back(std::move(g));
      }
      break;
    }
    case RaaClustering::kFastMci: {
      if (fast_mci_groups != nullptr && !fast_mci_groups->empty()) {
        groups = *fast_mci_groups;
      } else {
        // Rebuild: KDE clusters subdivided by the assigned machine's state
        // bucket (what clustered IPA would have produced).
        std::vector<InstanceClusterGroup> kde =
            ClusterInstancesByRows(stage);
        std::map<std::tuple<int, int>, std::vector<int>> by_key;
        for (size_t c = 0; c < kde.size(); ++c) {
          for (int i : kde[c].instance_ids) {
            int machine =
                placement.machine_of_instance[static_cast<size_t>(i)];
            const Machine& mach = context.cluster->machine(machine);
            int bucket =
                mach.hardware().id * 1000 +
                DiscretizeIndex(mach.state().cpu_util,
                                context.discretization_degree) *
                    10 +
                DiscretizeIndex(mach.state().io_util,
                                context.discretization_degree);
            by_key[{static_cast<int>(c), bucket}].push_back(i);
          }
        }
        for (auto& [key, members] : by_key) {
          FastMciGroup g;
          g.instances = std::move(members);
          g.representative = representative_of(g.instances);
          g.representative_machine =
              placement.machine_of_instance[static_cast<size_t>(
                  g.representative)];
          g.instance_cluster = std::get<0>(key);
          g.canonical_representative =
              kde[static_cast<size_t>(std::get<0>(key))].representative;
          groups.push_back(std::move(g));
        }
      }
      break;
    }
  }
  return groups;
}

/// Per-group solve inputs, resolved sequentially (and model-free) before
/// the frontier fan so that identical solves can be deduplicated and the
/// parallel fan stays a pure function of them.
struct GroupPrep {
  std::vector<ResourceConfig> grid;
  int theta0_index = -1;  // index of a bit-equal theta0 in grid, or -1
  int owner = -1;         // lowest group index with identical solve inputs
  int canonical = -1;     // the cluster's canonical representative
  FrontierKey key;        // frontier-template cache key
};

}  // namespace

RaaResult RunRaa(const SchedulingContext& context,
                 const StageDecision& placement,
                 const std::vector<FastMciGroup>* fast_mci_groups,
                 const RaaOptions& options, int trace_parent) {
  Stopwatch timer;
  RaaResult result;
  const Stage& stage = *context.stage;
  const Cluster& cluster = *context.cluster;
  FGRO_CHECK(context.model != nullptr);
  const int m = stage.instance_count();
  if (!placement.feasible) return result;

  std::vector<FastMciGroup> groups =
      BuildGroups(context, placement, fast_mci_groups, options.clustering);
  result.num_groups = static_cast<int>(groups.size());

  // Per-machine co-residency count: an instance may only grow its container
  // up to its fair share of the machine's free capacity, which keeps the
  // per-instance searches independent while respecting Def. 5.2's capacity
  // constraints.
  std::vector<int> coresidents(static_cast<size_t>(cluster.size()), 0);
  for (int i = 0; i < m; ++i) {
    coresidents[static_cast<size_t>(
        placement.machine_of_instance[static_cast<size_t>(i)])]++;
  }

  const uint64_t model_tag = context.model->params_tag();
  // Predictions depend on the machine state only through DiscretizeState at
  // the *model's* degree (Channel 4), so two machines in the same bucket
  // are interchangeable for every latency below.
  const int model_dd = context.model->featurizer().discretization_degree();

  // Frontier compression (DESIGN.md §16): on, the fan builds one template
  // per (instance cluster, machine bucket) keyed content-wise in `cache`
  // and corrects each group's slot from it. Without a caller-shared cache
  // the solve uses a local one (templates shared within this solve only).
  FrontierCache local_cache(1 << 8);
  FrontierCache* cache = nullptr;
  if (context.frontier_compression) {
    cache = context.frontier_cache != nullptr ? context.frontier_cache
                                              : &local_cache;
    // Wholesale invalidation on model hot-swap, sequentially, before the
    // fan: entries under the current tag survive, stale tags drop.
    cache->EnsureModelTag(model_tag);
  }

  // Phase 0 (sequential, model-free): per-group theta grid, cache key, and
  // solve-input signature. Groups with bit-identical signatures would run
  // bit-identical solves — (θ, DiscretizeState) grids re-evaluated for
  // every group sharing a machine bucket and representative content — so
  // only the lowest-indexed "owner" computes; the rest copy its slot after
  // the fan. This dedup is value-exact and independent of compression.
  const int ng = static_cast<int>(groups.size());
  std::vector<GroupPrep> prep(static_cast<size_t>(ng));
  // Signature: representative content, canonical content, machine bucket,
  // grid content. The stage, theta0 and model are solve-wide. The full
  // tuple is the map key (no hashing) except the grid, whose hash is
  // verified bit-for-bit against the owner's grid below.
  std::map<std::array<uint64_t, 11>, int> owner_of;
  for (int gi = 0; gi < ng; ++gi) {
    GroupPrep& gp = prep[static_cast<size_t>(gi)];
    const FastMciGroup& group = groups[static_cast<size_t>(gi)];
    const Machine& machine = cluster.machine(group.representative_machine);
    const double share = static_cast<double>(
        coresidents[static_cast<size_t>(group.representative_machine)]);
    // Search the historically observed plan space: catalog entries within
    // the exploration window around theta0. Outside it the model has never
    // seen a configuration and its extrapolation is untrustworthy
    // (Appendix F.15: "we cannot lower the cores anymore ... the searching
    // space is still in a narrow range").
    for (const ResourceConfig& theta : FilterByCapacity(
             Hbo::ResourcePlanCatalog(),
             (machine.available_cores() + context.theta0.cores) / share,
             (machine.available_memory_gb() + context.theta0.memory_gb) /
                 share)) {
      if (theta.cores >= context.theta0.cores * kPlanExplorationLow &&
          theta.cores <= context.theta0.cores * kPlanExplorationHigh &&
          theta.memory_gb >=
              context.theta0.memory_gb * kPlanExplorationLow &&
          theta.memory_gb <=
              context.theta0.memory_gb * kPlanExplorationHigh) {
        gp.grid.push_back(theta);
      }
    }
    if (gp.grid.empty()) gp.grid.push_back(context.theta0);
    for (size_t t = 0; t < gp.grid.size(); ++t) {
      if (DoubleBits(gp.grid[t].cores) == DoubleBits(context.theta0.cores) &&
          DoubleBits(gp.grid[t].memory_gb) ==
              DoubleBits(context.theta0.memory_gb)) {
        gp.theta0_index = static_cast<int>(t);
        break;
      }
    }
    gp.canonical = group.canonical_representative >= 0
                       ? group.canonical_representative
                       : group.representative;

    const InstanceMeta& rep_meta =
        stage.instances[static_cast<size_t>(group.representative)];
    const InstanceMeta& canon_meta =
        stage.instances[static_cast<size_t>(gp.canonical)];
    const SystemState bucket = DiscretizeState(machine.state(), model_dd);
    const uint64_t grid_hash = FrontierGridHash(gp.grid);

    FrontierKey& key = gp.key;
    key.job_id = stage.job_id;
    key.stage_id = stage.id;
    key.template_id = stage.template_id;
    key.instance_count = m;
    key.hardware_type = machine.hardware().id;
    key.rows_bits = DoubleBits(canon_meta.input_rows);
    key.bytes_bits = DoubleBits(canon_meta.input_bytes);
    key.fraction_bits = DoubleBits(canon_meta.input_fraction);
    key.cpu_bits = DoubleBits(bucket.cpu_util);
    key.mem_bits = DoubleBits(bucket.mem_util);
    key.io_bits = DoubleBits(bucket.io_util);
    key.theta0_cores_bits = DoubleBits(context.theta0.cores);
    key.theta0_memory_bits = DoubleBits(context.theta0.memory_gb);
    key.grid_hash = grid_hash;
    key.model_tag = model_tag;

    const std::array<uint64_t, 11> signature = {
        DoubleBits(rep_meta.input_rows), DoubleBits(rep_meta.input_bytes),
        DoubleBits(rep_meta.input_fraction), key.rows_bits, key.bytes_bits,
        key.fraction_bits,
        static_cast<uint64_t>(static_cast<uint32_t>(key.hardware_type)),
        key.cpu_bits, key.mem_bits, key.io_bits, grid_hash};
    auto [it, inserted] = owner_of.emplace(signature, gi);
    gp.owner = it->second;
    if (!inserted && gp.owner != gi) {
      // The grid hash stands in for grid content inside the signature;
      // verify exactly so a 64-bit collision computes instead of aliasing.
      const std::vector<ResourceConfig>& own =
          prep[static_cast<size_t>(gp.owner)].grid;
      bool same = own.size() == gp.grid.size();
      for (size_t t = 0; same && t < own.size(); ++t) {
        same = DoubleBits(own[t].cores) == DoubleBits(gp.grid[t].cores) &&
               DoubleBits(own[t].memory_gb) ==
                   DoubleBits(gp.grid[t].memory_gb);
      }
      if (!same) gp.owner = gi;
    }
  }

  // Observability (counters resolved once; never read back, so replays are
  // byte-identical instrumented or not).
  obs::Counter* c_hits = nullptr;
  obs::Counter* c_misses = nullptr;
  obs::Counter* c_builds = nullptr;
  obs::Counter* c_corrections = nullptr;
  obs::Counter* c_patches = nullptr;
  obs::Counter* c_dedup = nullptr;
  if (context.obs.metrics != nullptr) {
    c_dedup = context.obs.metrics->GetCounter("so.raa.dedup_groups");
    if (cache != nullptr) {
      c_hits = context.obs.metrics->GetCounter("so.frontier.hits");
      c_misses = context.obs.metrics->GetCounter("so.frontier.misses");
      c_builds = context.obs.metrics->GetCounter("so.frontier.builds");
      c_corrections =
          context.obs.metrics->GetCounter("so.frontier.corrections");
      c_patches = context.obs.metrics->GetCounter("so.frontier.patches");
    }
  }

  // Instance-level MOO per group, on the representative's machine. Group
  // frontiers are independent, so they are constructed in a (possibly
  // parallel) fan into per-group slots and merged sequentially in group
  // order below — the incumbent accumulation (default_latency/default_cost)
  // therefore sees the exact FP operation order of the original serial
  // loop, and the result is byte-identical at any thread count. Every slot
  // is a pure function of its group's prep (and the model weights), never
  // of fan order or cache warmth, which is what keeps compressed replays
  // byte-identical too.
  InstanceMooSolver solver(context.cost_weights);
  struct GroupFrontier {
    bool ok = false;
    bool expired = false;
    std::vector<InstanceParetoPoint> frontier;
    double lat0 = 0.0;  // predicted latency of keeping theta0
  };
  std::vector<GroupFrontier> slots(static_cast<size_t>(ng));
  std::atomic<bool> any_abort{false};

  // Predicts `thetas` (plus theta0 appended when `theta0_index` < 0) for
  // one embedded instance on the group's machine; returns thetas.size()
  // (+1) latencies. Batched and scalar paths are bit-identical.
  auto predict_thetas = [&](const LatencyModel::EmbeddedInstance& embedded,
                            const Machine& machine,
                            const std::vector<ResourceConfig>& thetas,
                            int theta0_index, std::vector<double>* lats) {
    const size_t total = thetas.size() + (theta0_index < 0 ? 1 : 0);
    if (context.batched_inference) {
      std::vector<LatencyModel::PredictionCandidate> candidates;
      candidates.reserve(total);
      for (const ResourceConfig& theta : thetas) {
        candidates.push_back(
            {theta, machine.state(), machine.hardware().id});
      }
      if (theta0_index < 0) {
        candidates.push_back(
            {context.theta0, machine.state(), machine.hardware().id});
      }
      lats->assign(total, 0.0);
      LatencyModel::BatchScratch scratch;
      context.model->PredictBatch(embedded, candidates, lats->data(),
                                  &scratch, context.memo);
    } else {
      lats->clear();
      lats->reserve(total);
      for (const ResourceConfig& theta : thetas) {
        lats->push_back(context.model->PredictFromEmbedding(
            embedded, theta, machine.state(), machine.hardware().id));
      }
      if (theta0_index < 0) {
        lats->push_back(context.model->PredictFromEmbedding(
            embedded, context.theta0, machine.state(),
            machine.hardware().id));
      }
    }
  };

  auto compute_group = [&](int gi) {
    GroupFrontier& slot = slots[static_cast<size_t>(gi)];
    // Best-effort early-out: once any group aborted, the whole RAA attempt
    // is discarded, so remaining groups skip their model bill.
    if (any_abort.load(std::memory_order_relaxed)) return;
    // Deadline check per group frontier: RAA aborts with ok=false and the
    // ladder keeps the (valid) placement on theta0.
    if (context.deadline.expired()) {
      slot.expired = true;
      any_abort.store(true, std::memory_order_relaxed);
      return;
    }
    const FastMciGroup& group = groups[static_cast<size_t>(gi)];
    const GroupPrep& gp = prep[static_cast<size_t>(gi)];
    const Machine& machine = cluster.machine(group.representative_machine);
    const std::vector<ResourceConfig>& grid = gp.grid;

    if (cache == nullptr) {
      // Uncompressed per-group solve: the bit-identical legacy oracle
      // (modulo the theta0-in-grid dedup, which reuses the identical grid
      // value instead of predicting it twice).
      Result<LatencyModel::EmbeddedInstance> embedded =
          context.model->Embed(stage, group.representative);
      if (!embedded.ok()) {
        any_abort.store(true, std::memory_order_relaxed);
        return;
      }
      std::vector<double> lats;
      predict_thetas(embedded.value(), machine, grid, gp.theta0_index,
                     &lats);
      slot.frontier = solver.SolveExhaustive(lats.data(), grid);
      slot.lat0 = gp.theta0_index >= 0
                      ? lats[static_cast<size_t>(gp.theta0_index)]
                      : lats.back();
    } else {
      // Compressed path: fetch or build the cluster's frontier template
      // (canonical representative), then correct for this group.
      std::shared_ptr<const FrontierEntry> tmpl;
      if (cache->Lookup(gp.key, grid, &tmpl)) {
        if (c_hits != nullptr) c_hits->Increment();
      } else {
        if (c_misses != nullptr) c_misses->Increment();
        Result<LatencyModel::EmbeddedInstance> canonical_embedded =
            context.model->Embed(stage, gp.canonical);
        if (!canonical_embedded.ok()) {
          any_abort.store(true, std::memory_order_relaxed);
          return;
        }
        // Incremental maintenance: a donor entry (same cluster, bucket,
        // theta0 and model; different grid — capacity or share moved the
        // exploration window) supplies exact latencies for every theta the
        // grids share, so only the new region is predicted. Patched builds
        // are bit-identical to from-scratch builds: each latency is a pure
        // function of (embedding, theta, bucket), whoever computed it.
        std::shared_ptr<const FrontierEntry> donor;
        cache->LookupDonor(gp.key, &donor);
        auto entry = std::make_shared<FrontierEntry>();
        entry->grid = grid;
        entry->latencies.assign(grid.size(), 0.0);
        std::vector<int> missing;
        bool donor_lat0 = false;
        if (donor != nullptr) {
          for (size_t t = 0; t < grid.size(); ++t) {
            bool found = false;
            for (size_t d = 0; d < donor->grid.size(); ++d) {
              if (DoubleBits(donor->grid[d].cores) ==
                      DoubleBits(grid[t].cores) &&
                  DoubleBits(donor->grid[d].memory_gb) ==
                      DoubleBits(grid[t].memory_gb)) {
                entry->latencies[t] = donor->latencies[d];
                found = true;
                break;
              }
            }
            if (!found) missing.push_back(static_cast<int>(t));
          }
          donor_lat0 = true;  // donor key shares the theta0 bits
        } else {
          missing.resize(grid.size());
          for (size_t t = 0; t < grid.size(); ++t) {
            missing[t] = static_cast<int>(t);
          }
        }
        const bool need_extra_theta0 = gp.theta0_index < 0 && !donor_lat0;
        if (!missing.empty() || need_extra_theta0) {
          std::vector<ResourceConfig> todo;
          todo.reserve(missing.size());
          for (int t : missing) {
            todo.push_back(grid[static_cast<size_t>(t)]);
          }
          std::vector<double> lats;
          predict_thetas(canonical_embedded.value(), machine, todo,
                         need_extra_theta0 ? -1 : 0, &lats);
          for (size_t j = 0; j < missing.size(); ++j) {
            entry->latencies[static_cast<size_t>(missing[j])] = lats[j];
          }
          if (need_extra_theta0) entry->lat0 = lats.back();
        }
        if (gp.theta0_index >= 0) {
          entry->lat0 =
              entry->latencies[static_cast<size_t>(gp.theta0_index)];
        } else if (donor_lat0) {
          entry->lat0 = donor->lat0;
        }
        entry->frontier = solver.SolveExhaustive(entry->latencies.data(),
                                                 entry->grid);
        cache->Insert(gp.key, entry);
        tmpl = std::move(entry);
        if (c_builds != nullptr) c_builds->Increment();
        if (donor != nullptr && c_patches != nullptr) c_patches->Increment();
      }

      if (options.correction_top_k <= 0 ||
          group.representative == gp.canonical) {
        // The template IS this group's solve (canonical == representative),
        // or corrections are disabled: share it verbatim.
        slot.frontier = tmpl->frontier;
        slot.lat0 = tmpl->lat0;
      } else {
        // Correction pass: re-rank K evenly spread template-frontier
        // points (endpoints included) plus theta0 with this group's true
        // representative embedding, then Pareto-filter. Bounded by the
        // quality knob; deterministic given (template, K, representative).
        const int f = static_cast<int>(tmpl->frontier.size());
        const int k = std::min(options.correction_top_k, f);
        std::vector<ResourceConfig> picked;
        picked.reserve(static_cast<size_t>(k));
        int last = -1;
        for (int j = 0; j < k; ++j) {
          const int idx =
              k == 1 ? 0 : static_cast<int>((static_cast<long>(j) * (f - 1) +
                                             (k - 1) / 2) /
                                            (k - 1));
          if (idx == last) continue;
          last = idx;
          picked.push_back(tmpl->frontier[static_cast<size_t>(idx)].theta);
        }
        int theta0_at = -1;
        for (size_t t = 0; t < picked.size(); ++t) {
          if (DoubleBits(picked[t].cores) ==
                  DoubleBits(context.theta0.cores) &&
              DoubleBits(picked[t].memory_gb) ==
                  DoubleBits(context.theta0.memory_gb)) {
            theta0_at = static_cast<int>(t);
            break;
          }
        }
        Result<LatencyModel::EmbeddedInstance> embedded =
            context.model->Embed(stage, group.representative);
        if (!embedded.ok()) {
          any_abort.store(true, std::memory_order_relaxed);
          return;
        }
        std::vector<double> lats;
        predict_thetas(embedded.value(), machine, picked, theta0_at, &lats);
        slot.frontier = solver.SolveExhaustive(lats.data(), picked);
        slot.lat0 = theta0_at >= 0 ? lats[static_cast<size_t>(theta0_at)]
                                   : lats.back();
        if (c_corrections != nullptr) c_corrections->Increment();
      }
    }
    if (slot.frontier.empty()) {
      any_abort.store(true, std::memory_order_relaxed);
      return;
    }
    slot.ok = true;
  };

  ParallelFor(context.worker_pool, ng, [&](int gi) {
    if (prep[static_cast<size_t>(gi)].owner != gi) return;  // follower
    compute_group(gi);
  });
  // Followers copy their owner's slot: same signature means the same pure
  // computation, so the copy is value-exact (and the whole point of the
  // within-solve dedup — one (θ, bucket) sweep per distinct signature).
  for (int gi = 0; gi < ng; ++gi) {
    const int owner = prep[static_cast<size_t>(gi)].owner;
    if (owner == gi) continue;
    slots[static_cast<size_t>(gi)] = slots[static_cast<size_t>(owner)];
    if (c_dedup != nullptr) c_dedup->Increment();
  }

  // Deterministic merge in group order.
  std::vector<std::vector<InstanceParetoPoint>> pareto_sets;
  std::vector<double> multiplicity;
  double default_latency = 0.0, default_cost = 0.0;
  pareto_sets.reserve(slots.size());
  for (GroupFrontier& slot : slots) {
    if (slot.expired) {
      result.solve_seconds = timer.ElapsedSeconds();
      return result;
    }
    if (!slot.ok) return result;
    const size_t gi = pareto_sets.size();
    pareto_sets.push_back(std::move(slot.frontier));
    multiplicity.push_back(
        static_cast<double>(groups[gi].instances.size()));
    default_latency = std::max(default_latency, slot.lat0);
    default_cost += slot.lat0 * context.cost_weights.Rate(context.theta0) *
                    static_cast<double>(groups[gi].instances.size());
  }

  // Stage-level hierarchical MOO.
  std::vector<StageParetoPoint> stage_pareto;
  if (options.algorithm == RaaAlgorithm::kPath) {
    stage_pareto = RaaPath(pareto_sets, multiplicity);
  } else {
    std::vector<std::vector<std::vector<double>>> solutions(
        pareto_sets.size());
    for (size_t i = 0; i < pareto_sets.size(); ++i) {
      for (const InstanceParetoPoint& p : pareto_sets[i]) {
        solutions[i].push_back({p.latency, p.cost});
      }
    }
    std::vector<GeneralStagePoint> general = GeneralHierarchicalMoo(
        solutions, {true, false}, multiplicity);
    stage_pareto.reserve(general.size());
    for (GeneralStagePoint& g : general) {
      stage_pareto.push_back(
          {g.objectives[0], g.objectives[1], std::move(g.choice)});
    }
  }
  if (stage_pareto.empty()) return result;

  // WUN recommendation, anchored at the incumbent: prefer the frontier
  // region that dominates HBO's default plan in BOTH latency and cost, so
  // the recommendation improves the stage rather than trading one objective
  // far away (Table 13: the plan dominates the default on 68-99% of
  // stages). If no point dominates the default, WUN runs on the full set.
  obs::ScopedSpan wun_span(context.obs.tracer, "so.wun", trace_parent);
  Stopwatch wun_timer;
  result.stage_pareto.reserve(stage_pareto.size());
  for (const StageParetoPoint& p : stage_pareto) {
    result.stage_pareto.push_back({p.latency, p.cost});
  }
  std::vector<int> dominating;
  for (size_t i = 0; i < stage_pareto.size(); ++i) {
    if (stage_pareto[i].latency <= default_latency + 1e-12 &&
        stage_pareto[i].cost <= default_cost + 1e-12) {
      dominating.push_back(static_cast<int>(i));
    }
  }
  if (dominating.empty()) {
    result.recommended_index =
        WeightedUtopiaNearest(result.stage_pareto, options.wun_weights);
    // WUN returns -1 when no finite point exists (a drifted model can emit
    // NaN objectives): abort with ok=false, the ladder keeps theta0.
    if (result.recommended_index < 0) return result;
  } else {
    std::vector<std::vector<double>> candidates;
    candidates.reserve(dominating.size());
    for (int i : dominating) {
      candidates.push_back(result.stage_pareto[static_cast<size_t>(i)]);
    }
    int pick = WeightedUtopiaNearest(candidates, options.wun_weights);
    if (pick < 0) return result;
    result.recommended_index = dominating[static_cast<size_t>(pick)];
  }
  if (context.obs.metrics != nullptr) {
    context.obs.metrics->GetLatencyHistogram("so.wun_seconds")
        ->Observe(wun_timer.ElapsedSeconds());
  }
  const StageParetoPoint& chosen =
      stage_pareto[static_cast<size_t>(result.recommended_index)];

  // Expand group choices to per-instance resource plans.
  result.theta_of_instance.assign(static_cast<size_t>(m), context.theta0);
  for (size_t g = 0; g < groups.size(); ++g) {
    const ResourceConfig& theta =
        pareto_sets[g][static_cast<size_t>(chosen.choice[g])].theta;
    for (int i : groups[g].instances) {
      result.theta_of_instance[static_cast<size_t>(i)] = theta;
    }
  }
  result.ok = true;
  result.solve_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fgro
