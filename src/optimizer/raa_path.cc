#include "optimizer/raa_path.h"

#include <limits>
#include <queue>

#include "common/logging.h"

namespace fgro {

std::vector<StageParetoPoint> RaaPath(
    const std::vector<std::vector<InstanceParetoPoint>>& pareto_sets,
    const std::vector<double>& multiplicity) {
  const int m = static_cast<int>(pareto_sets.size());
  std::vector<StageParetoPoint> result;
  if (m == 0) return result;
  FGRO_CHECK(multiplicity.size() == pareto_sets.size());

  // State lambda: current solution index per instance (0-based; the paper's
  // lambda_i - 1). Start with every instance at its highest-latency
  // (cheapest) solution.
  std::vector<int> lambda(static_cast<size_t>(m), 0);
  double cost_sum = 0.0;
  using HeapEntry = std::pair<double, int>;  // (latency, instance)
  std::priority_queue<HeapEntry> heap;
  for (int i = 0; i < m; ++i) {
    FGRO_CHECK(!pareto_sets[static_cast<size_t>(i)].empty())
        << "instance " << i << " has an empty Pareto set";
    const InstanceParetoPoint& first = pareto_sets[static_cast<size_t>(i)][0];
    cost_sum += first.cost * multiplicity[static_cast<size_t>(i)];
    heap.push({first.latency, i});
  }

  double smax = std::numeric_limits<double>::infinity();
  while (true) {
    auto [qmax, i] = heap.top();
    heap.pop();
    if (qmax < smax) {
      StageParetoPoint point;
      point.latency = qmax;
      point.cost = cost_sum;
      point.choice = lambda;
      result.push_back(std::move(point));
      smax = qmax;
    }
    // Step: advance instance i to its next (lower-latency, costlier)
    // solution; terminate when it has none.
    const std::vector<InstanceParetoPoint>& set =
        pareto_sets[static_cast<size_t>(i)];
    int next = lambda[static_cast<size_t>(i)] + 1;
    if (next >= static_cast<int>(set.size())) break;
    cost_sum += (set[static_cast<size_t>(next)].cost -
                 set[static_cast<size_t>(next - 1)].cost) *
                multiplicity[static_cast<size_t>(i)];
    lambda[static_cast<size_t>(i)] = next;
    heap.push({set[static_cast<size_t>(next)].latency, i});
  }
  return result;
}

}  // namespace fgro
