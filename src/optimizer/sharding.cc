#include "optimizer/sharding.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "hbo/hbo.h"
#include "moo/config_space.h"

namespace fgro {
namespace {

// Distinct streams so machine, stratum-offset, and instance assignments
// never correlate by construction.
constexpr uint64_t kStratumStream = 0x9d3f8c51e2a7b406ULL;
constexpr uint64_t kInstanceStream = 0x1295a7c3b8d4f601ULL;

}  // namespace

ShardPlan ShardPlanner::Plan(int shard_count, uint64_t seed,
                             const std::vector<int>& machine_ids,
                             const std::vector<int>& machine_strata,
                             const std::vector<double>& machine_loads,
                             int num_instances,
                             const std::vector<double>& instance_sizes) {
  ShardPlan plan;
  plan.shard_count = std::max(1, shard_count);
  const auto k = static_cast<uint64_t>(plan.shard_count);
  plan.machines_of_shard.resize(static_cast<size_t>(plan.shard_count));
  plan.instances_of_shard.resize(static_cast<size_t>(plan.shard_count));

  // Machines: per-stratum descending-load snake deal with a seed-rotated
  // start, so each shard gets both an equal hardware mix and an even slice
  // of the load spectrum. std::map iterates strata in ascending key order,
  // so the walk is deterministic whatever order the caller discovered them
  // in. Positions within machine_ids are dealt (not raw ids) so strata and
  // loads stay index-aligned.
  std::map<int, std::vector<size_t>> strata;
  for (size_t j = 0; j < machine_ids.size(); ++j) {
    const int stratum = machine_strata.empty()
                            ? 0
                            : machine_strata[j];
    strata[stratum].push_back(j);
  }
  for (auto& [stratum, members] : strata) {
    std::sort(members.begin(), members.end(), [&](size_t a, size_t b) {
      const double la = machine_loads.empty() ? 0.0 : machine_loads[a];
      const double lb = machine_loads.empty() ? 0.0 : machine_loads[b];
      if (la != lb) return la > lb;
      const uint64_t ha =
          MixSeed(seed, static_cast<uint64_t>(machine_ids[a]));
      const uint64_t hb =
          MixSeed(seed, static_cast<uint64_t>(machine_ids[b]));
      return ha != hb ? ha < hb : machine_ids[a] < machine_ids[b];
    });
    const uint64_t offset =
        MixSeed(seed ^ kStratumStream, static_cast<uint64_t>(stratum));
    for (size_t rank = 0; rank < members.size(); ++rank) {
      const uint64_t round = rank / k;
      const uint64_t pos = rank % k;
      const uint64_t dealt = (round % 2 == 0) ? pos : k - 1 - pos;
      const uint64_t s = (dealt + offset) % k;
      plan.machines_of_shard[static_cast<size_t>(s)].push_back(
          machine_ids[members[rank]]);
    }
  }
  for (std::vector<int>& shard : plan.machines_of_shard) {
    std::sort(shard.begin(), shard.end());
  }

  // Instances: snake-deal in descending-size order (ties by index) with a
  // seed-rotated start, so each shard's load is balanced even when a few
  // instances dominate the stage.
  std::vector<int> order(static_cast<size_t>(num_instances));
  std::iota(order.begin(), order.end(), 0);
  if (!instance_sizes.empty()) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double sa = instance_sizes[static_cast<size_t>(a)];
      const double sb = instance_sizes[static_cast<size_t>(b)];
      return sa != sb ? sa > sb : a < b;
    });
  }
  const uint64_t instance_offset = MixSeed(seed ^ kInstanceStream, k);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const uint64_t round = rank / k;
    const uint64_t pos = rank % k;
    const uint64_t dealt = (round % 2 == 0) ? pos : k - 1 - pos;
    const uint64_t s = (dealt + instance_offset) % k;
    plan.instances_of_shard[static_cast<size_t>(s)].push_back(order[rank]);
  }
  for (std::vector<int>& shard : plan.instances_of_shard) {
    std::sort(shard.begin(), shard.end());
  }
  return plan;
}

ShardPlan PlanForContext(const SchedulingContext& context) {
  const Cluster& cluster = *context.cluster;
  const Stage& stage = *context.stage;
  std::vector<int> universe;
  if (context.machine_subset != nullptr) {
    universe = *context.machine_subset;
  } else {
    universe.resize(static_cast<size_t>(cluster.size()));
    std::iota(universe.begin(), universe.end(), 0);
  }
  std::vector<int> strata;
  std::vector<double> loads;
  strata.reserve(universe.size());
  loads.reserve(universe.size());
  for (int id : universe) {
    const Machine& machine = cluster.machine(id);
    strata.push_back(machine.hardware().id);
    const SystemState& st = machine.state();
    loads.push_back(st.cpu_util + st.mem_util + st.io_util);
  }
  std::vector<double> sizes;
  sizes.reserve(stage.instances.size());
  for (const InstanceMeta& meta : stage.instances) {
    sizes.push_back(meta.input_rows);
  }
  return ShardPlanner::Plan(EffectiveShardCount(context), context.shard_seed,
                            universe, strata, loads, stage.instance_count(),
                            sizes);
}

int EffectiveShardCount(const SchedulingContext& context) {
  if (context.shard_count <= 1 || context.stage == nullptr ||
      context.cluster == nullptr) {
    return 1;
  }
  const int m = context.stage->instance_count();
  const int n = context.machine_subset != nullptr
                    ? static_cast<int>(context.machine_subset->size())
                    : context.cluster->size();
  const int k = std::min(context.shard_count,
                         std::min(m, n / kMinMachinesPerShard));
  return std::max(1, k);
}

std::vector<int> CandidateMachines(const SchedulingContext& context) {
  const Cluster& cluster = *context.cluster;
  if (context.machine_subset == nullptr) {
    return cluster.AvailableMachines(context.theta0);
  }
  std::vector<int> out;
  out.reserve(context.machine_subset->size());
  for (int id : *context.machine_subset) {
    if (cluster.machine(id).CanFit(context.theta0)) out.push_back(id);
  }
  return out;
}

int EffectiveRefineBudget(const SchedulingContext& context) {
  if (context.shard_refine_budget <= 0 || context.stage == nullptr) return 0;
  return std::max(context.shard_refine_budget,
                  context.stage->instance_count() / 16);
}

int RefineMergedDecision(const SchedulingContext& context,
                         StageDecision* decision, bool tune_theta) {
  const int budget = EffectiveRefineBudget(context);
  if (budget <= 0 || !decision->feasible || context.model == nullptr ||
      !context.model->trained()) {
    return 0;
  }
  const Stage& stage = *context.stage;
  const Cluster& cluster = *context.cluster;
  const LatencyModel& model = *context.model;
  const int m = stage.instance_count();
  std::vector<int> candidates = CandidateMachines(context);
  if (m == 0 || candidates.size() < 2) return 0;
  const int alpha =
      ResolveAlpha(context.alpha, m, static_cast<int>(candidates.size()));

  // Leftover capacity under the whole-fleet view, minus what the merged
  // decision already booked — identical discipline to the merge rescue, so
  // refinement can never over-book either.
  std::vector<int> used(static_cast<size_t>(cluster.size()), 0);
  for (int id : decision->machine_of_instance) {
    if (id >= 0) used[static_cast<size_t>(id)]++;
  }

  // Embed once per instance (fanned across the pool like BuildBplMatrix's
  // batched path), then one batched sweep for every instance's latency
  // under its current placement.
  std::vector<LatencyModel::EmbeddedInstance> embedded(
      static_cast<size_t>(m));
  std::atomic<bool> failed{false};
  ParallelFor(context.worker_pool, m, [&](int i) {
    if (failed.load(std::memory_order_relaxed)) return;
    Result<LatencyModel::EmbeddedInstance> r = model.Embed(stage, i);
    if (!r.ok()) {
      failed.store(true, std::memory_order_relaxed);
      return;
    }
    embedded[static_cast<size_t>(i)] = r.value();
  });
  if (failed.load()) return 0;

  LatencyModel::BatchScratch scratch;
  std::vector<double> current(static_cast<size_t>(m));
  {
    std::vector<LatencyModel::PredictionQuery> queries;
    queries.reserve(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      const Machine& machine = cluster.machine(
          decision->machine_of_instance[static_cast<size_t>(i)]);
      queries.push_back(LatencyModel::PredictionQuery{
          &embedded[static_cast<size_t>(i)],
          {decision->theta_of_instance[static_cast<size_t>(i)],
           machine.state(), machine.hardware().id}});
    }
    model.PredictBatch(queries, current.data(), &scratch, context.memo);
  }

  int moves = 0;
  std::vector<bool> visited(static_cast<size_t>(m), false);
  for (int step = 0; step < budget; ++step) {
    // The instance pinning the stage latency right now (ties: lower index).
    int worst = -1;
    double worst_latency = -1.0;
    for (int i = 0; i < m; ++i) {
      if (current[static_cast<size_t>(i)] > worst_latency) {
        worst_latency = current[static_cast<size_t>(i)];
        worst = i;
      }
    }
    // Fixed point: the bottleneck already saw the whole fleet and could not
    // improve, so no further move can lower the max.
    if (worst < 0 || visited[static_cast<size_t>(worst)]) break;
    visited[static_cast<size_t>(worst)] = true;

    const int from = decision->machine_of_instance[static_cast<size_t>(worst)];
    const ResourceConfig& theta =
        decision->theta_of_instance[static_cast<size_t>(worst)];
    std::vector<LatencyModel::PredictionQuery> queries;
    std::vector<int> targets;
    queries.reserve(candidates.size());
    targets.reserve(candidates.size());
    for (int id : candidates) {
      if (id == from) continue;
      const Machine& machine = cluster.machine(id);
      // Twice the diversity cap (still physically capped): every shard
      // fills the globally best machines to alpha with its own instances,
      // so a strict-alpha check would leave the bottleneck nowhere to go.
      // Only `budget` instances can ever use the headroom.
      if (used[static_cast<size_t>(id)] >=
          InstanceCapacity(machine, context.theta0, 2 * alpha)) {
        continue;
      }
      queries.push_back(LatencyModel::PredictionQuery{
          &embedded[static_cast<size_t>(worst)],
          {theta, machine.state(), machine.hardware().id}});
      targets.push_back(id);
    }
    int best_id = from;
    double best = worst_latency;
    if (!queries.empty()) {
      std::vector<double> predicted(queries.size());
      model.PredictBatch(queries, predicted.data(), &scratch, context.memo);
      for (size_t j = 0; j < targets.size(); ++j) {
        if (predicted[j] < best) {  // strict: ties keep the in-shard machine
          best = predicted[j];
          best_id = targets[j];
        }
      }
    }
    bool improved = false;
    if (best_id != from) {
      used[static_cast<size_t>(from)]--;
      used[static_cast<size_t>(best_id)]++;
      decision->machine_of_instance[static_cast<size_t>(worst)] = best_id;
      current[static_cast<size_t>(worst)] = best;
      improved = true;
    }

    // Theta re-tune on the (possibly unchanged) final machine. Per-shard
    // RAA picks each group's tradeoff from a shard-local WUN frontier, and
    // the whole-stage max only cares about the few critical instances —
    // re-searching RAA's own grid for just those recovers most of the theta
    // quality a shard-local frontier gives up. Mirrors raa.cc exactly: the
    // capacity-filtered catalog within the exploration window, fair share =
    // the machine's post-move co-residency.
    if (tune_theta) {
      const Machine& machine = cluster.machine(best_id);
      const double share = static_cast<double>(
          std::max(1, used[static_cast<size_t>(best_id)]));
      std::vector<ResourceConfig> grid;
      for (const ResourceConfig& t : FilterByCapacity(
               Hbo::ResourcePlanCatalog(),
               (machine.available_cores() + context.theta0.cores) / share,
               (machine.available_memory_gb() + context.theta0.memory_gb) /
                   share)) {
        if (t.cores >= context.theta0.cores * kPlanExplorationLow &&
            t.cores <= context.theta0.cores * kPlanExplorationHigh &&
            t.memory_gb >= context.theta0.memory_gb * kPlanExplorationLow &&
            t.memory_gb <= context.theta0.memory_gb * kPlanExplorationHigh) {
          grid.push_back(t);
        }
      }
      if (!grid.empty()) {
        std::vector<LatencyModel::PredictionQuery> theta_queries;
        theta_queries.reserve(grid.size());
        for (const ResourceConfig& t : grid) {
          theta_queries.push_back(LatencyModel::PredictionQuery{
              &embedded[static_cast<size_t>(worst)],
              {t, machine.state(), machine.hardware().id}});
        }
        std::vector<double> theta_predicted(theta_queries.size());
        model.PredictBatch(theta_queries, theta_predicted.data(), &scratch,
                           context.memo);
        int picked = -1;
        double theta_best = current[static_cast<size_t>(worst)];
        for (size_t g = 0; g < theta_predicted.size(); ++g) {
          if (theta_predicted[g] < theta_best) {  // strict: ties keep RAA's
            theta_best = theta_predicted[g];
            picked = static_cast<int>(g);
          }
        }
        if (picked >= 0) {
          decision->theta_of_instance[static_cast<size_t>(worst)] =
              grid[static_cast<size_t>(picked)];
          current[static_cast<size_t>(worst)] = theta_best;
          improved = true;
        }
      }
    }
    if (improved) ++moves;
  }
  return moves;
}

StageDecision MergeShardDecisions(const SchedulingContext& context,
                                  const ShardPlan& plan,
                                  const std::vector<StageDecision>& per_shard,
                                  ShardMergeStats* stats) {
  const Stage& stage = *context.stage;
  const Cluster& cluster = *context.cluster;
  const int m = stage.instance_count();
  StageDecision merged;
  merged.machine_of_instance.assign(static_cast<size_t>(m), -1);
  merged.theta_of_instance.assign(static_cast<size_t>(m), context.theta0);

  std::vector<int> unplaced;
  for (int s = 0; s < plan.shard_count; ++s) {
    const std::vector<int>& insts =
        plan.instances_of_shard[static_cast<size_t>(s)];
    const StageDecision& d = per_shard[static_cast<size_t>(s)];
    merged.solve_seconds += d.solve_seconds;
    if (insts.empty()) continue;
    if (!d.feasible) {
      if (stats != nullptr) stats->infeasible_shards++;
      unplaced.insert(unplaced.end(), insts.begin(), insts.end());
      continue;
    }
    FGRO_CHECK(d.machine_of_instance.size() == insts.size());
    merged.fallback = std::max(merged.fallback, d.fallback);
    for (size_t r = 0; r < insts.size(); ++r) {
      const auto inst = static_cast<size_t>(insts[r]);
      merged.machine_of_instance[inst] = d.machine_of_instance[r];
      merged.theta_of_instance[inst] = d.theta_of_instance[r];
    }
  }

  if (!unplaced.empty()) {
    // Reconciliation: shards already merged are untouched; the orphans go
    // onto leftover theta0 capacity anywhere in the context's machine view,
    // ascending instance order, round-robin over ascending candidates.
    // Capacity is recomputed minus what the merge already booked, so the
    // rescue can never push a machine past its theta0 capacity either.
    std::sort(unplaced.begin(), unplaced.end());
    std::vector<int> candidates = CandidateMachines(context);
    if (candidates.empty()) return merged;
    const int alpha = ResolveAlpha(context.alpha, m,
                                   static_cast<int>(candidates.size()));
    std::vector<int> used(static_cast<size_t>(cluster.size()), 0);
    for (int id : merged.machine_of_instance) {
      if (id >= 0) used[static_cast<size_t>(id)]++;
    }
    std::vector<int> capacity;
    capacity.reserve(candidates.size());
    for (int id : candidates) {
      capacity.push_back(std::max(
          0, InstanceCapacity(cluster.machine(id), context.theta0, alpha) -
                 used[static_cast<size_t>(id)]));
    }
    size_t cursor = 0;
    int rescued = 0;
    for (int inst : unplaced) {
      size_t scanned = 0;
      while (scanned < candidates.size() &&
             capacity[cursor % candidates.size()] <= 0) {
        ++cursor;
        ++scanned;
      }
      if (scanned >= candidates.size()) break;  // view exhausted
      size_t j = cursor % candidates.size();
      merged.machine_of_instance[static_cast<size_t>(inst)] = candidates[j];
      capacity[j]--;
      ++cursor;
      ++rescued;
    }
    if (stats != nullptr) stats->rescued_instances += rescued;
    if (rescued < static_cast<int>(unplaced.size())) return merged;
    merged.fallback = std::max(merged.fallback, FallbackLevel::kTheta0);
  }

  merged.feasible = true;
  return merged;
}

}  // namespace fgro
