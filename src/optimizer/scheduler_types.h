#ifndef FGRO_OPTIMIZER_SCHEDULER_TYPES_H_
#define FGRO_OPTIMIZER_SCHEDULER_TYPES_H_

#include <vector>

#include "cluster/cluster.h"
#include "cluster/resource.h"
#include "common/deadline.h"
#include "model/latency_model.h"
#include "obs/obs.h"
#include "plan/stage.h"

namespace fgro {

class ThreadPool;
class FrontierCache;

/// Everything a scheduler needs to decide one stage: the stage itself, the
/// current cluster view, the fine-grained model (null for the model-free
/// Fuxi baseline), and HBO's default resource plan theta0.
struct SchedulingContext {
  const Stage* stage = nullptr;
  const Cluster* cluster = nullptr;
  const LatencyModel* model = nullptr;
  ResourceConfig theta0;
  CostWeights cost_weights;
  /// False while the model server is in an outage window: model-dependent
  /// schedulers must degrade rather than dereference `model`.
  bool model_available = true;
  /// RO budget a degrading scheduler should respect (the simulator's
  /// per-stage coverage cutoff).
  double ro_time_limit_seconds = 60.0;
  /// Propagated solve deadline. Infinite by default; StageOptimizer arms it
  /// from ro_time_limit_seconds when the degradation ladder is on, and
  /// IPA/RAA check it at solver-iteration granularity, aborting early so
  /// the fallback rung still has budget to run. Callers may pre-arm it
  /// (e.g. with an injected test clock) and the solvers honor theirs.
  Deadline deadline;
  /// False when the serving layer is browned out one rung: placement (IPA)
  /// still runs, but RAA is skipped and every instance gets theta0, i.e.
  /// the decision lands on FallbackLevel::kTheta0 directly. Cheaper than
  /// the primary path, better than Fuxi; the brown-out controller flips
  /// this under sustained overload and restores it when pressure clears.
  bool raa_allowed = true;
  /// Diverse-placement cap: max instances per machine. 0 = auto
  /// (2 * ceil(m / available machines), always >= ceil(m/n) as required).
  int alpha = 0;
  /// Discretization degree for machine clustering (Expt 4 couples this to
  /// model accuracy).
  int discretization_degree = 4;
  /// Observability hookup (metrics + tracer), default-disabled. The
  /// simulator copies SimOptions::obs here per stage; schedulers record
  /// phase timings and spans through it but never read it back — metrics
  /// cannot influence a decision, which is what keeps instrumented replays
  /// byte-identical to uninstrumented ones.
  obs::Obs obs;
  /// Span id the scheduler should parent its decision span under (-1 =
  /// root). Set by the simulator's per-stage span.
  int trace_parent = -1;
  /// Batched-inference switch. When true (default) IPA/clustered-IPA/RAA
  /// and the MOO baselines issue PredictBatch sweeps over the model; when
  /// false they run the original scalar PredictFromEmbedding loops, kept
  /// alive as the bench baseline and the determinism-test oracle. Both
  /// paths are bit-identical by construction, so this flag can never change
  /// a decision — only its cost.
  bool batched_inference = true;
  /// Optional prediction memo shared across stages (caller-owned, thread-
  /// safe; must be cleared whenever the model is retrained). Null = no
  /// memoization. Hits return exactly the value the model would compute,
  /// so replays stay byte-identical whatever the hit pattern.
  PredictionMemo* memo = nullptr;
  /// Frontier compression (DESIGN.md §16): RAA builds one Pareto-frontier
  /// template per (instance cluster, machine bucket) from the cluster's
  /// canonical representative and instantiates each group's decision from
  /// it with a bounded correction pass (RaaOptions::correction_top_k). On
  /// by default; off runs the uncompressed per-group solve, which is
  /// bit-identical to the legacy path and remains the quality oracle.
  bool frontier_compression = true;
  /// Optional frontier-template cache shared across stages and epochs
  /// (caller-owned, thread-safe). Keys are content-based — cluster
  /// signature, DiscretizeState bits, theta-grid hash, params_tag — so the
  /// cache survives shard/reconfig views that renumber instance indices,
  /// and a model hot-swap can never serve a stale template. Null with
  /// compression on = a solve-local cache (templates still shared within
  /// the solve, no cross-stage reuse).
  FrontierCache* frontier_cache = nullptr;
  /// Optional worker pool for RAA's per-group frontier fan-out
  /// (caller-owned). Null = serial. Per-group results land in per-group
  /// slots and merge in group order, so the outcome is byte-identical
  /// across any thread count.
  ThreadPool* worker_pool = nullptr;
  /// Decision epoch the caller is solving under (reconfiguration): stamped
  /// onto the StageDecision so the dispatcher can drop decisions superseded
  /// by a drift alarm or machine transition that bumped the epoch after the
  /// solve started. 0 when reconfiguration is off.
  long epoch = 0;
  /// Model epoch (ModelRegistry::model_epoch) of the model this solve uses:
  /// stamped onto the StageDecision so a decision solved under a since-
  /// superseded (promoted or rolled-back) model version is identifiable.
  /// 0 when the model lifecycle is off.
  long model_epoch = 0;
  /// Optional partial re-entry (reconfiguration): solve only these instance
  /// indices of `stage` (ascending, caller-owned). StageOptimizer builds a
  /// reduced stage view and returns a decision sized to the subset, row r
  /// deciding instance (*instance_subset)[r]. Null (default) = whole stage.
  const std::vector<int>* instance_subset = nullptr;
  /// POP-style sharded solve (DESIGN.md §15): partition machines and
  /// instances into this many subproblems via MixSeed(shard_seed, id),
  /// solve each independently on the shard's machines only, and merge with
  /// a deterministic shard-ordered reconciliation pass. 1 (default) runs
  /// the exact legacy whole-fleet solve, which remains the quality oracle.
  int shard_count = 1;
  /// Seed of the MixSeed-derived shard assignment. Decisions are
  /// reproducible for any fixed (shard_seed, shard_count) and byte-identical
  /// across thread counts — the assignment is a pure function of the seed
  /// and the (deterministic) entity descriptors at solve time, never of
  /// thread count or iteration order.
  uint64_t shard_seed = 0x706f70;  // "pop"
  /// Base cap on instances RefineMergedDecision() may re-place against the
  /// whole fleet after a sharded merge (stage latency is max over
  /// instances, so a handful of critical instances recover most of the
  /// partition's quality loss). The spent budget is
  /// EffectiveRefineBudget(): max(this, m/16), growing with stage width.
  /// 0 disables refinement, keeping every placement strictly in-shard.
  /// Costs O(m + budget * n) extra predictions per decision.
  int shard_refine_budget = 8;
  /// Shard view restriction (set by the sharded orchestrator, or by tests):
  /// machine ids (ascending, caller-owned) a solver may place onto. Null
  /// (default) = the whole fleet. Every solver enumerates candidates
  /// through CandidateMachines() in sharding.h, which honors this.
  const std::vector<int>* machine_subset = nullptr;
};

/// How far down the degradation ladder a decision came from.
/// kPrimary: the configured optimizer succeeded. kTheta0: placement held
/// but RAA failed or blew its budget, so every instance runs HBO's theta0.
/// kFuxi: the model was unavailable (or placement infeasible) and the
/// model-free Fuxi baseline decided the stage.
enum class FallbackLevel { kPrimary = 0, kTheta0 = 1, kFuxi = 2 };

inline const char* FallbackLevelName(FallbackLevel level) {
  switch (level) {
    case FallbackLevel::kPrimary: return "primary";
    case FallbackLevel::kTheta0: return "theta0";
    case FallbackLevel::kFuxi: return "fuxi";
  }
  return "unknown";
}

/// The output of any scheduler: the placement plan (machine per instance)
/// and the resource plan (theta per instance).
struct StageDecision {
  bool feasible = false;
  std::vector<int> machine_of_instance;
  std::vector<ResourceConfig> theta_of_instance;
  double solve_seconds = 0.0;
  FallbackLevel fallback = FallbackLevel::kPrimary;
  /// Epoch the decision was solved under (copied from the context). The
  /// reconfiguration dispatcher refuses to dispatch a decision whose epoch
  /// a trigger event has since superseded.
  long epoch = 0;
  /// Model epoch the decision was solved under (copied from the context);
  /// see SchedulingContext::model_epoch.
  long model_epoch = 0;
};

/// Per-machine instance capacity under theta0:
/// beta_j = min(floor(free cores / theta0.cores),
///              floor(free mem / theta0.mem), alpha).
int InstanceCapacity(const Machine& machine, const ResourceConfig& theta0,
                     int alpha);

/// Resolves alpha = 0 to the auto value for m instances on n machines.
int ResolveAlpha(int alpha, int num_instances, int num_machines);

}  // namespace fgro

#endif  // FGRO_OPTIMIZER_SCHEDULER_TYPES_H_
