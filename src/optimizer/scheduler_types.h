#ifndef FGRO_OPTIMIZER_SCHEDULER_TYPES_H_
#define FGRO_OPTIMIZER_SCHEDULER_TYPES_H_

#include <vector>

#include "cluster/cluster.h"
#include "cluster/resource.h"
#include "model/latency_model.h"
#include "plan/stage.h"

namespace fgro {

/// Everything a scheduler needs to decide one stage: the stage itself, the
/// current cluster view, the fine-grained model (null for the model-free
/// Fuxi baseline), and HBO's default resource plan theta0.
struct SchedulingContext {
  const Stage* stage = nullptr;
  const Cluster* cluster = nullptr;
  const LatencyModel* model = nullptr;
  ResourceConfig theta0;
  CostWeights cost_weights;
  /// Diverse-placement cap: max instances per machine. 0 = auto
  /// (2 * ceil(m / available machines), always >= ceil(m/n) as required).
  int alpha = 0;
  /// Discretization degree for machine clustering (Expt 4 couples this to
  /// model accuracy).
  int discretization_degree = 4;
};

/// The output of any scheduler: the placement plan (machine per instance)
/// and the resource plan (theta per instance).
struct StageDecision {
  bool feasible = false;
  std::vector<int> machine_of_instance;
  std::vector<ResourceConfig> theta_of_instance;
  double solve_seconds = 0.0;
};

/// Per-machine instance capacity under theta0:
/// beta_j = min(floor(free cores / theta0.cores),
///              floor(free mem / theta0.mem), alpha).
int InstanceCapacity(const Machine& machine, const ResourceConfig& theta0,
                     int alpha);

/// Resolves alpha = 0 to the auto value for m instances on n machines.
int ResolveAlpha(int alpha, int num_instances, int num_machines);

}  // namespace fgro

#endif  // FGRO_OPTIMIZER_SCHEDULER_TYPES_H_
