#include "optimizer/frontier_cache.h"

#include <cstring>

namespace fgro {
namespace {

// splitmix64: cheap, well-mixed 64-bit finalizer (same as PredictionKey's).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t DoubleBits(double v) {
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

bool SameGrid(const std::vector<ResourceConfig>& a,
              const std::vector<ResourceConfig>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (DoubleBits(a[i].cores) != DoubleBits(b[i].cores) ||
        DoubleBits(a[i].memory_gb) != DoubleBits(b[i].memory_gb)) {
      return false;
    }
  }
  return true;
}

}  // namespace

uint64_t FrontierKey::Hash() const {
  uint64_t h = Mix(static_cast<uint64_t>(static_cast<uint32_t>(job_id)) |
                   (static_cast<uint64_t>(static_cast<uint32_t>(stage_id))
                    << 32));
  h = Mix(h ^ (static_cast<uint64_t>(static_cast<uint32_t>(template_id)) |
               (static_cast<uint64_t>(static_cast<uint32_t>(instance_count))
                << 32)));
  h = Mix(h ^ static_cast<uint64_t>(static_cast<uint32_t>(hardware_type)));
  h = Mix(h ^ rows_bits);
  h = Mix(h ^ bytes_bits);
  h = Mix(h ^ fraction_bits);
  h = Mix(h ^ cpu_bits);
  h = Mix(h ^ mem_bits);
  h = Mix(h ^ io_bits);
  h = Mix(h ^ theta0_cores_bits);
  h = Mix(h ^ theta0_memory_bits);
  h = Mix(h ^ grid_hash);
  h = Mix(h ^ model_tag);
  return h;
}

FrontierKey FrontierKey::DonorKey() const {
  FrontierKey k = *this;
  k.grid_hash = 0;
  return k;
}

uint64_t FrontierGridHash(const std::vector<ResourceConfig>& grid) {
  uint64_t h = Mix(static_cast<uint64_t>(grid.size()));
  for (const ResourceConfig& theta : grid) {
    h = Mix(h ^ DoubleBits(theta.cores));
    h = Mix(h ^ DoubleBits(theta.memory_gb));
  }
  // Never collide with DonorKey()'s grid_hash == 0 sentinel.
  return h == 0 ? 1 : h;
}

FrontierCache::FrontierCache(size_t capacity)
    : capacity_(capacity < kShards ? kShards : capacity) {}

bool FrontierCache::Lookup(const FrontierKey& key,
                           const std::vector<ResourceConfig>& grid,
                           std::shared_ptr<const FrontierEntry>* entry) {
  Shard& shard = ShardOf(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && SameGrid(it->second->grid, grid)) {
      *entry = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool FrontierCache::LookupDonor(const FrontierKey& key,
                                std::shared_ptr<const FrontierEntry>* entry) {
  const FrontierKey donor_key = key.DonorKey();
  FrontierKey full_key;
  {
    Shard& shard = ShardOf(donor_key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.donors.find(donor_key);
    if (it == shard.donors.end()) return false;
    full_key = it->second;
  }
  // The donor index can point at an evicted entry (it lives in another
  // shard, never touched during that shard's eviction): validate by fetch.
  Shard& shard = ShardOf(full_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(full_key);
  if (it == shard.map.end()) return false;
  *entry = it->second;
  donor_hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FrontierCache::Insert(const FrontierKey& key,
                           std::shared_ptr<const FrontierEntry> entry) {
  const size_t shard_capacity = capacity_ / kShards;
  {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, inserted] = shard.map.emplace(key, std::move(entry));
    if (!inserted) return;
    inserts_.fetch_add(1, std::memory_order_relaxed);
    shard.order.push_back(key);
    while (shard.order.size() > shard_capacity) {
      shard.map.erase(shard.order.front());
      shard.order.pop_front();
    }
  }
  const FrontierKey donor_key = key.DonorKey();
  Shard& shard = ShardOf(donor_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.donors.emplace(donor_key, key);
  if (!inserted) {
    it->second = key;  // latest insertion wins; values are key-pure anyway
    return;
  }
  shard.donor_order.push_back(donor_key);
  while (shard.donor_order.size() > shard_capacity) {
    shard.donors.erase(shard.donor_order.front());
    shard.donor_order.pop_front();
  }
}

void FrontierCache::EnsureModelTag(uint64_t tag) {
  if (last_tag_.load(std::memory_order_acquire) == tag) return;
  std::lock_guard<std::mutex> tag_lock(tag_mutex_);
  if (last_tag_.load(std::memory_order_acquire) == tag) return;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->first.model_tag != tag) {
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        it = shard.map.erase(it);
      } else {
        ++it;
      }
    }
    std::deque<FrontierKey> kept;
    for (const FrontierKey& k : shard.order) {
      if (k.model_tag == tag) kept.push_back(k);
    }
    shard.order = std::move(kept);
    for (auto it = shard.donors.begin(); it != shard.donors.end();) {
      if (it->first.model_tag != tag) {
        it = shard.donors.erase(it);
      } else {
        ++it;
      }
    }
    std::deque<FrontierKey> donor_kept;
    for (const FrontierKey& k : shard.donor_order) {
      if (k.model_tag == tag) donor_kept.push_back(k);
    }
    shard.donor_order = std::move(donor_kept);
  }
  last_tag_.store(tag, std::memory_order_release);
}

void FrontierCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
    shard.order.clear();
    shard.donors.clear();
    shard.donor_order.clear();
  }
}

size_t FrontierCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

}  // namespace fgro
