#ifndef FGRO_OPTIMIZER_IPA_H_
#define FGRO_OPTIMIZER_IPA_H_

#include "optimizer/scheduler_types.h"

namespace fgro {

/// Intelligent Placement Advisor, Algorithm 1: build the full m x n latency
/// matrix with the fine-grained model under the uniform resource plan
/// theta0, then greedily match the instance with the largest
/// best-possible-latency (BPL) to its best machine, updating BPLs whenever a
/// machine's capacity is exhausted. Optimal under the column-order
/// assumption (Theorem 5.1). This is the unclustered IPA(Org) of Expt 8 —
/// exact but with an m x n model-inference bill.
StageDecision IpaSchedule(const SchedulingContext& context);

/// Exposed for tests and the clustered variant: runs the BPL greedy loop on
/// an explicit latency matrix. `capacity[j]` is how many instances machine
/// column j can take. Returns the column index per row, or empty if no
/// feasible matching exists.
std::vector<int> IpaGreedyMatch(const std::vector<std::vector<double>>& L,
                                std::vector<int> capacity);

/// Shared by IPA and its clustered variant: fills (*L)[i][j] with the
/// predicted latency of stage instance instance_rows[i] on machine
/// machine_cols[j] (a cluster machine id) under theta0. In batched mode
/// (context.batched_inference) each row is embedded once — fanning across
/// context.worker_pool when set — and the whole matrix becomes one
/// PredictBatch call (chunked internally, memoized via context.memo);
/// otherwise this runs the original scalar PredictFromEmbedding loops.
/// Both modes produce bit-identical matrices. Returns false when the
/// deadline expired or an embedding failed, in which case *L is
/// unspecified.
bool BuildBplMatrix(const SchedulingContext& context,
                    const std::vector<int>& instance_rows,
                    const std::vector<int>& machine_cols,
                    std::vector<std::vector<double>>* L);

/// Empirically checks Theorem 5.1's column-order assumption on a latency
/// matrix: samples instance pairs and machines and returns the fraction of
/// (pair, machine) samples whose latency order disagrees with the
/// consensus order of the first machine column. 0 = assumption holds
/// exactly; the paper measures it holding on 88-96% of production stages.
double ColumnOrderViolationRate(const std::vector<std::vector<double>>& L,
                                int max_samples = 2048, uint64_t seed = 1);

}  // namespace fgro

#endif  // FGRO_OPTIMIZER_IPA_H_
