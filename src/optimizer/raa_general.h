#ifndef FGRO_OPTIMIZER_RAA_GENERAL_H_
#define FGRO_OPTIMIZER_RAA_GENERAL_H_

#include <vector>

namespace fgro {

/// A stage-level solution of the general hierarchical MOO: objective values
/// plus the per-instance choice of instance-level Pareto solution.
struct GeneralStagePoint {
  std::vector<double> objectives;
  std::vector<int> choice;
};

struct GeneralMooOptions {
  /// Cap on the candidate value list of each max objective (evenly
  /// subsampled beyond this — the paper enumerates all, which we do too at
  /// our scales; the cap is a guard for adversarial inputs).
  int max_candidates_per_objective = 512;
  /// Hard cap on the Cartesian product of max-objective candidates.
  long max_combinations = 200000;
  /// Weight vectors for the WS-based find_optimal over the sum objectives
  /// (Appendix E.3). Empty = single equal-weight vector.
  std::vector<std::vector<double>> sum_weight_vectors;
};

/// General hierarchical MOO, Algorithm 2: enumerate candidate values for
/// every max-aggregated objective (Cartesian product across them), and for
/// each combination select per instance the Pareto solution minimizing the
/// weighted sum of the sum-aggregated objectives subject to the max bounds;
/// finally filter dominated stage-level points. Guaranteed to return a
/// subset of the stage-level Pareto set (Proposition 5.1).
///
/// `solutions[i][j]` is the j-th Pareto solution of instance i over all k
/// objectives; `is_max[v]` says whether objective v aggregates with max
/// (latency-like) or sum (cost-like); `multiplicity[i]` scales instance i's
/// sum objectives (cluster size).
std::vector<GeneralStagePoint> GeneralHierarchicalMoo(
    const std::vector<std::vector<std::vector<double>>>& solutions,
    const std::vector<bool>& is_max, const std::vector<double>& multiplicity,
    const GeneralMooOptions& options = {});

}  // namespace fgro

#endif  // FGRO_OPTIMIZER_RAA_GENERAL_H_
