#include "optimizer/moo_baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/stopwatch.h"
#include "moo/config_space.h"
#include "moo/mogd.h"
#include "moo/nsga2.h"
#include "moo/pareto.h"
#include "moo/weighted_sum.h"
#include "moo/wun.h"
#include "hbo/hbo.h"
#include "optimizer/fuxi.h"
#include "optimizer/ipa_clustered.h"
#include "optimizer/sharding.h"

namespace fgro {

std::string MooBaselineName(const MooBaselineOptions& options) {
  std::string base;
  switch (options.kind) {
    case MooBaselineKind::kEvo: base = "EVO"; break;
    case MooBaselineKind::kWsSample: base = "WS(Sample)"; break;
    case MooBaselineKind::kPfMogd: base = "PF(MOGD)"; break;
  }
  return options.ipa_placement ? "IPA+" + base : base;
}

namespace {

/// The shared clustered formulation: instance clusters (with sizes and
/// cached plan embeddings of their representatives) and machine clusters
/// (with pooled capacities). Genomes address clusters, keeping the variable
/// count manageable exactly as Appendix A.1 prescribes.
struct BaselineProblem {
  const SchedulingContext* context = nullptr;
  std::vector<InstanceClusterGroup> inst_clusters;
  std::vector<MachineClusterGroup> mach_clusters;
  std::vector<LatencyModel::EmbeddedInstance> embeddings;  // per inst cluster
  std::vector<double> pool_cores;   // free cores per machine cluster
  std::vector<double> pool_mem;     // free memory per machine cluster
  std::vector<long> pool_slots;     // alpha-capped instance slots
  std::vector<ResourceConfig> grid; // shared theta grid
  // Plan B: fixed machine-cluster assignment per instance cluster.
  std::vector<int> fixed_assignment;
  double ipa_seconds = 0.0;
  std::vector<int> fixed_machine_of_instance;

  bool plan_b() const { return !fixed_assignment.empty(); }
  int num_vars() const {
    int mc = static_cast<int>(inst_clusters.size());
    return plan_b() ? mc : 2 * mc;
  }

  /// Batched-inference scratch, reused across the many Evaluate calls an
  /// evolutionary run makes (mutable: Evaluate is logically const and the
  /// solvers drive it from one thread).
  mutable LatencyModel::BatchScratch batch_scratch;
  mutable std::vector<LatencyModel::PredictionQuery> batch_queries;
  mutable std::vector<double> batch_lats;

  /// Decodes a genome into per-cluster (machine cluster, theta index).
  void Decode(const Vec& genome, std::vector<int>* mach_of_cluster,
              std::vector<int>* theta_of_cluster) const {
    const int mc = static_cast<int>(inst_clusters.size());
    mach_of_cluster->resize(static_cast<size_t>(mc));
    theta_of_cluster->resize(static_cast<size_t>(mc));
    for (int i = 0; i < mc; ++i) {
      if (plan_b()) {
        (*mach_of_cluster)[static_cast<size_t>(i)] =
            fixed_assignment[static_cast<size_t>(i)];
        (*theta_of_cluster)[static_cast<size_t>(i)] = static_cast<int>(
            Clamp(std::lround(genome[static_cast<size_t>(i)]), 0,
                  static_cast<double>(grid.size()) - 1));
      } else {
        (*mach_of_cluster)[static_cast<size_t>(i)] = static_cast<int>(
            Clamp(std::lround(genome[static_cast<size_t>(2 * i)]), 0,
                  static_cast<double>(mach_clusters.size()) - 1));
        (*theta_of_cluster)[static_cast<size_t>(i)] = static_cast<int>(
            Clamp(std::lround(genome[static_cast<size_t>(2 * i + 1)]), 0,
                  static_cast<double>(grid.size()) - 1));
      }
    }
  }

  MooEvaluation Evaluate(const Vec& genome) const {
    std::vector<int> mach_of_cluster, theta_of_cluster;
    Decode(genome, &mach_of_cluster, &theta_of_cluster);
    const int mc = static_cast<int>(inst_clusters.size());
    const int nc = static_cast<int>(mach_clusters.size());

    // Constraint accounting per machine cluster (Eq. 8).
    std::vector<double> used_cores(static_cast<size_t>(nc), 0.0);
    std::vector<double> used_mem(static_cast<size_t>(nc), 0.0);
    std::vector<long> used_slots(static_cast<size_t>(nc), 0);

    // One PredictBatch per genome covers every cluster's latency; the
    // accumulation loop below is unchanged, so batched and scalar genomes
    // evaluate bit-identically.
    const bool batched = context->batched_inference;
    if (batched) {
      batch_queries.clear();
      batch_queries.reserve(static_cast<size_t>(mc));
      for (int i = 0; i < mc; ++i) {
        int j = mach_of_cluster[static_cast<size_t>(i)];
        const Machine& machine = context->cluster->machine(
            mach_clusters[static_cast<size_t>(j)].representative);
        batch_queries.push_back(LatencyModel::PredictionQuery{
            &embeddings[static_cast<size_t>(i)],
            {grid[static_cast<size_t>(
                 theta_of_cluster[static_cast<size_t>(i)])],
             machine.state(), machine.hardware().id}});
      }
      batch_lats.resize(static_cast<size_t>(mc));
      context->model->PredictBatch(batch_queries, batch_lats.data(),
                                   &batch_scratch, context->memo);
    }

    MooEvaluation eval;
    double latency = 0.0, cost = 0.0;
    for (int i = 0; i < mc; ++i) {
      int j = mach_of_cluster[static_cast<size_t>(i)];
      const ResourceConfig& theta =
          grid[static_cast<size_t>(theta_of_cluster[static_cast<size_t>(i)])];
      const double size =
          static_cast<double>(inst_clusters[static_cast<size_t>(i)]
                                  .instance_ids.size());
      used_cores[static_cast<size_t>(j)] += theta.cores * size;
      used_mem[static_cast<size_t>(j)] += theta.memory_gb * size;
      used_slots[static_cast<size_t>(j)] += static_cast<long>(size);

      const Machine& machine = context->cluster->machine(
          mach_clusters[static_cast<size_t>(j)].representative);
      double lat =
          batched ? batch_lats[static_cast<size_t>(i)]
                  : context->model->PredictFromEmbedding(
                        embeddings[static_cast<size_t>(i)], theta,
                        machine.state(), machine.hardware().id);
      latency = std::max(latency, lat);
      cost += lat * context->cost_weights.Rate(theta) * size;
    }
    for (int j = 0; j < nc; ++j) {
      eval.violation += std::max(
          0.0, used_cores[static_cast<size_t>(j)] -
                   pool_cores[static_cast<size_t>(j)]) /
          std::max(1.0, pool_cores[static_cast<size_t>(j)]);
      eval.violation +=
          std::max(0.0, used_mem[static_cast<size_t>(j)] -
                            pool_mem[static_cast<size_t>(j)]) /
          std::max(1.0, pool_mem[static_cast<size_t>(j)]);
      eval.violation += std::max<double>(
          0, static_cast<double>(used_slots[static_cast<size_t>(j)] -
                                 pool_slots[static_cast<size_t>(j)]));
    }
    eval.objectives = {latency, cost};
    return eval;
  }
};

bool BuildProblem(const SchedulingContext& context, bool ipa_placement,
                  BaselineProblem* problem) {
  const Stage& stage = *context.stage;
  const Cluster& cluster = *context.cluster;
  problem->context = &context;
  problem->grid = Hbo::ResourcePlanCatalog();

  std::vector<int> candidates = CandidateMachines(context);
  if (candidates.empty()) return false;
  const int alpha = ResolveAlpha(context.alpha, stage.instance_count(),
                                 static_cast<int>(candidates.size()));

  if (ipa_placement) {
    // Plan B: placement fixed by clustered IPA; RAA-style groups become the
    // instance clusters.
    ClusteredIpaResult ipa = IpaClusteredSchedule(context);
    if (!ipa.decision.feasible) return false;
    problem->ipa_seconds = ipa.decision.solve_seconds;
    problem->fixed_machine_of_instance = ipa.decision.machine_of_instance;
    problem->mach_clusters =
        ClusterMachines(cluster, candidates, context.discretization_degree);
    // Map each group's representative machine to its machine cluster.
    std::vector<int> cluster_of_machine(static_cast<size_t>(cluster.size()),
                                        -1);
    for (size_t j = 0; j < problem->mach_clusters.size(); ++j) {
      for (int id : problem->mach_clusters[j].machine_ids) {
        cluster_of_machine[static_cast<size_t>(id)] = static_cast<int>(j);
      }
    }
    for (const FastMciGroup& g : ipa.groups) {
      InstanceClusterGroup ic;
      ic.instance_ids = g.instances;
      ic.representative = g.representative;
      problem->inst_clusters.push_back(std::move(ic));
      problem->fixed_assignment.push_back(
          cluster_of_machine[static_cast<size_t>(g.representative_machine)]);
    }
  } else {
    problem->inst_clusters = ClusterInstancesByRows(stage);
    problem->mach_clusters =
        ClusterMachines(cluster, candidates, context.discretization_degree);
  }

  const int nc = static_cast<int>(problem->mach_clusters.size());
  problem->pool_cores.assign(static_cast<size_t>(nc), 0.0);
  problem->pool_mem.assign(static_cast<size_t>(nc), 0.0);
  problem->pool_slots.assign(static_cast<size_t>(nc), 0);
  for (int j = 0; j < nc; ++j) {
    for (int id : problem->mach_clusters[static_cast<size_t>(j)].machine_ids) {
      const Machine& machine = cluster.machine(id);
      problem->pool_cores[static_cast<size_t>(j)] += machine.available_cores();
      problem->pool_mem[static_cast<size_t>(j)] +=
          machine.available_memory_gb();
      problem->pool_slots[static_cast<size_t>(j)] += alpha;
    }
  }

  problem->embeddings.reserve(problem->inst_clusters.size());
  for (const InstanceClusterGroup& ic : problem->inst_clusters) {
    Result<LatencyModel::EmbeddedInstance> embedded =
        context.model->Embed(stage, ic.representative);
    if (!embedded.ok()) return false;
    problem->embeddings.push_back(std::move(embedded).value());
  }
  return true;
}

/// Expands a per-cluster solution into the per-instance StageDecision,
/// placing cluster members on concrete machines of the chosen machine
/// cluster (round-robin over free slots).
bool Expand(const BaselineProblem& problem,
            const std::vector<int>& mach_of_cluster,
            const std::vector<int>& theta_of_cluster,
            StageDecision* decision) {
  const SchedulingContext& context = *problem.context;
  const Stage& stage = *context.stage;
  const Cluster& cluster = *context.cluster;
  const int m = stage.instance_count();
  const int alpha = ResolveAlpha(context.alpha, m, cluster.size());

  decision->machine_of_instance.assign(static_cast<size_t>(m), -1);
  decision->theta_of_instance.assign(static_cast<size_t>(m), context.theta0);

  std::vector<int> slots(static_cast<size_t>(cluster.size()), 0);
  for (const MachineClusterGroup& g : problem.mach_clusters) {
    for (int id : g.machine_ids) {
      slots[static_cast<size_t>(id)] =
          InstanceCapacity(cluster.machine(id), context.theta0, alpha);
    }
  }
  for (size_t c = 0; c < problem.inst_clusters.size(); ++c) {
    const ResourceConfig& theta =
        problem.grid[static_cast<size_t>(theta_of_cluster[c])];
    if (problem.plan_b()) {
      for (int i : problem.inst_clusters[c].instance_ids) {
        decision->machine_of_instance[static_cast<size_t>(i)] =
            problem.fixed_machine_of_instance[static_cast<size_t>(i)];
        decision->theta_of_instance[static_cast<size_t>(i)] = theta;
      }
      continue;
    }
    const MachineClusterGroup& mg =
        problem.mach_clusters[static_cast<size_t>(mach_of_cluster[c])];
    size_t cursor = 0;
    for (int i : problem.inst_clusters[c].instance_ids) {
      size_t scanned = 0;
      while (scanned < mg.machine_ids.size()) {
        int id = mg.machine_ids[cursor % mg.machine_ids.size()];
        ++cursor;
        if (slots[static_cast<size_t>(id)] > 0) {
          slots[static_cast<size_t>(id)]--;
          decision->machine_of_instance[static_cast<size_t>(i)] = id;
          break;
        }
        ++scanned;
      }
      if (decision->machine_of_instance[static_cast<size_t>(i)] < 0) {
        return false;  // slot accounting says infeasible after all
      }
      decision->theta_of_instance[static_cast<size_t>(i)] = theta;
    }
  }
  return true;
}

}  // namespace

StageDecision RunMooBaseline(const SchedulingContext& context,
                             const MooBaselineOptions& options) {
  Stopwatch timer;
  StageDecision decision;
  FGRO_CHECK(context.model != nullptr);

  BaselineProblem problem;
  if (!BuildProblem(context, options.ipa_placement, &problem)) {
    decision.solve_seconds = timer.ElapsedSeconds();
    return decision;
  }

  MooProblem moo;
  moo.num_vars = problem.num_vars();
  moo.num_objectives = 2;
  const double grid_max = static_cast<double>(problem.grid.size()) - 1;
  const double mach_max =
      static_cast<double>(problem.mach_clusters.size()) - 1;
  moo.sample_var = [&](int var, Rng* rng) {
    bool is_theta = problem.plan_b() || (var % 2 == 1);
    return is_theta ? static_cast<double>(rng->UniformInt(
                          0, static_cast<int64_t>(grid_max)))
                    : static_cast<double>(rng->UniformInt(
                          0, static_cast<int64_t>(mach_max)));
  };
  moo.evaluate = [&](const Vec& genome) { return problem.Evaluate(genome); };

  std::vector<Vec> genomes;
  std::vector<std::vector<double>> fronts;
  const double budget =
      std::max(1.0, options.time_limit_seconds - problem.ipa_seconds);
  switch (options.kind) {
    case MooBaselineKind::kEvo: {
      Nsga2Result res = RunNsga2(
          moo, {.population = options.evo_population,
                .generations = options.evo_generations,
                .time_limit_seconds = budget,
                .seed = options.seed});
      genomes = std::move(res.genomes);
      fronts = std::move(res.objectives);
      break;
    }
    case MooBaselineKind::kWsSample: {
      WsSampleResult res = RunWeightedSumSampling(
          moo, {.num_samples = options.ws_samples,
                .time_limit_seconds = budget,
                .seed = options.seed});
      genomes = std::move(res.genomes);
      fronts = std::move(res.objectives);
      break;
    }
    case MooBaselineKind::kPfMogd: {
      // Epsilon-constraint sweep solved by finite-difference gradient
      // descent on the continuous relaxation; MOGD rounds inside Evaluate.
      Vec lower(static_cast<size_t>(moo.num_vars), 0.0);
      Vec upper(static_cast<size_t>(moo.num_vars));
      for (int v = 0; v < moo.num_vars; ++v) {
        bool is_theta = problem.plan_b() || (v % 2 == 1);
        upper[static_cast<size_t>(v)] = is_theta ? grid_max : mach_max;
      }
      Rng rng(options.seed);
      // Probe the latency range with random feasible-ish points.
      double lat_lo = std::numeric_limits<double>::infinity(), lat_hi = 0.0;
      for (int probe = 0; probe < 16; ++probe) {
        Vec g(static_cast<size_t>(moo.num_vars));
        for (int v = 0; v < moo.num_vars; ++v) {
          g[static_cast<size_t>(v)] = moo.sample_var(v, &rng);
        }
        MooEvaluation e = problem.Evaluate(g);
        lat_lo = std::min(lat_lo, e.objectives[0]);
        lat_hi = std::max(lat_hi, e.objectives[0]);
      }
      for (int level = 0; level < options.pf_levels; ++level) {
        if (timer.ElapsedSeconds() > budget) break;
        double eps = lat_lo + (lat_hi - lat_lo) * level /
                                  std::max(1, options.pf_levels - 1);
        auto scalarized = [&](const Vec& g) {
          MooEvaluation e = problem.Evaluate(g);
          double penalty = 1e6 * e.violation +
                           1e3 * std::max(0.0, e.objectives[0] - eps);
          return e.objectives[1] + penalty;
        };
        Vec x0(static_cast<size_t>(moo.num_vars));
        for (int v = 0; v < moo.num_vars; ++v) {
          x0[static_cast<size_t>(v)] = moo.sample_var(v, &rng);
        }
        Vec best = MinimizeFiniteDiff(
            scalarized, x0, lower, upper,
            {.iterations = 25, .restarts = 2, .seed = options.seed + level});
        MooEvaluation e = problem.Evaluate(best);
        if (e.feasible()) {
          genomes.push_back(std::move(best));
          fronts.push_back(e.objectives);
        }
      }
      break;
    }
  }

  decision.solve_seconds = timer.ElapsedSeconds() + problem.ipa_seconds;
  if (genomes.empty()) return decision;  // coverage failure

  std::vector<int> pareto = ParetoFilter(fronts);
  std::vector<std::vector<double>> pareto_front;
  for (int idx : pareto) pareto_front.push_back(fronts[static_cast<size_t>(idx)]);
  int pick = WeightedUtopiaNearest(pareto_front);
  if (pick < 0) return decision;  // no finite frontier point
  const Vec& genome = genomes[static_cast<size_t>(pareto[static_cast<size_t>(pick)])];

  std::vector<int> mach_of_cluster, theta_of_cluster;
  problem.Decode(genome, &mach_of_cluster, &theta_of_cluster);
  if (!Expand(problem, mach_of_cluster, theta_of_cluster, &decision)) {
    return decision;
  }
  decision.feasible = true;
  decision.solve_seconds = timer.ElapsedSeconds() + problem.ipa_seconds;
  return decision;
}

}  // namespace fgro
