#ifndef FGRO_OPTIMIZER_RAA_H_
#define FGRO_OPTIMIZER_RAA_H_

#include <vector>

#include "optimizer/ipa_clustered.h"
#include "optimizer/raa_path.h"
#include "optimizer/scheduler_types.h"

namespace fgro {

/// Instance-clustering strategy for RAA (Appendix E.1).
enum class RaaClustering {
  kNone,     // RAA(W/O_C): per-instance Pareto sets, highest quality & cost
  kDbscan,   // RAA(DBSCAN): off-the-shelf clustering on MCI features, O(m^2)
  kFastMci,  // RAA(Fast_MCI): reuse clustered IPA's sub-clusters, free
};

/// Hierarchical MOO solver choice.
enum class RaaAlgorithm {
  kGeneral,  // Algorithm 2
  kPath,     // Algorithm 3 (default; exact & fastest for 2 objectives)
};

struct RaaOptions {
  RaaClustering clustering = RaaClustering::kFastMci;
  RaaAlgorithm algorithm = RaaAlgorithm::kPath;
  /// WUN importance weights over (latency, cost). Latency-leaning by
  /// default: the WUN distance is computed on min-max normalized
  /// objectives, and our users (like the paper's) weight the latency axis
  /// higher when picking from the dominating region of the frontier.
  std::vector<double> wun_weights = {3.0, 1.0};
  /// Frontier-compression quality knob (DESIGN.md §16): when the context
  /// runs with frontier_compression, a group whose representative differs
  /// from its cluster's canonical representative re-ranks this many evenly
  /// spread template-frontier points (plus theta0) with its own true
  /// embedding instead of sweeping the whole grid. 0 = pure template
  /// sharing (cheapest, coarsest); larger K approaches the uncompressed
  /// per-group solve at K extra predictions per group.
  int correction_top_k = 4;
};

struct RaaResult {
  bool ok = false;
  std::vector<ResourceConfig> theta_of_instance;
  double solve_seconds = 0.0;
  /// The stage-level Pareto frontier (predicted latency, predicted cost)
  /// and which of its points WUN recommended.
  std::vector<std::vector<double>> stage_pareto;
  int recommended_index = -1;
  int num_groups = 0;
};

/// Resource Assignment Advisor: given a placement plan, computes
/// per-instance (or per-cluster) Pareto frontiers over the configuration
/// grid with the fine-grained model, combines them into the stage-level
/// Pareto set with hierarchical MOO, and recommends one plan by Weighted
/// Utopia Nearest. `fast_mci_groups` supplies clustered IPA's sub-clusters
/// for RaaClustering::kFastMci (pass null to rebuild them from scratch).
/// With context.obs wired, the WUN selection emits a "so.wun" span under
/// `trace_parent` (the caller's "so.raa" span) and a so.wun_seconds
/// histogram sample.
RaaResult RunRaa(const SchedulingContext& context,
                 const StageDecision& placement,
                 const std::vector<FastMciGroup>* fast_mci_groups,
                 const RaaOptions& options, int trace_parent = -1);

}  // namespace fgro

#endif  // FGRO_OPTIMIZER_RAA_H_
