#include "optimizer/fuxi.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "optimizer/sharding.h"

namespace fgro {

int InstanceCapacity(const Machine& machine, const ResourceConfig& theta0,
                     int alpha) {
  int by_cores = static_cast<int>(
      std::floor(machine.available_cores() / std::max(1e-9, theta0.cores)));
  int by_mem = static_cast<int>(std::floor(machine.available_memory_gb() /
                                           std::max(1e-9, theta0.memory_gb)));
  return std::max(0, std::min({by_cores, by_mem, alpha}));
}

int ResolveAlpha(int alpha, int num_instances, int num_machines) {
  if (alpha > 0) return alpha;
  int min_alpha = static_cast<int>(
      std::ceil(static_cast<double>(num_instances) /
                std::max(1, num_machines)));
  return std::max(1, 2 * min_alpha);
}

StageDecision FuxiSchedule(const SchedulingContext& context) {
  Stopwatch timer;
  StageDecision decision;
  const Stage& stage = *context.stage;
  const Cluster& cluster = *context.cluster;
  const int m = stage.instance_count();

  std::vector<int> candidates = CandidateMachines(context);
  if (candidates.empty()) return decision;
  const int alpha =
      ResolveAlpha(context.alpha, m, static_cast<int>(candidates.size()));

  // (1) Key resource: whichever of CPU / IO is hotter on average.
  double cpu_sum = 0.0, io_sum = 0.0;
  for (int id : candidates) {
    cpu_sum += cluster.machine(id).state().cpu_util;
    io_sum += cluster.machine(id).state().io_util;
  }
  const bool cpu_is_key = cpu_sum >= io_sum;

  // (2) Lowest watermark first.
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    const SystemState& sa = cluster.machine(a).state();
    const SystemState& sb = cluster.machine(b).state();
    return (cpu_is_key ? sa.cpu_util : sa.io_util) <
           (cpu_is_key ? sb.cpu_util : sb.io_util);
  });

  // (3) Assign in instance-id order, round-robin over the watermark-sorted
  // machines, respecting per-machine capacity.
  std::vector<int> capacity;
  capacity.reserve(candidates.size());
  for (int id : candidates) {
    capacity.push_back(
        InstanceCapacity(cluster.machine(id), context.theta0, alpha));
  }
  decision.machine_of_instance.assign(static_cast<size_t>(m), -1);
  decision.theta_of_instance.assign(static_cast<size_t>(m), context.theta0);
  size_t cursor = 0;
  int placed = 0;
  for (int i = 0; i < m; ++i) {
    size_t scanned = 0;
    while (scanned < candidates.size() &&
           capacity[cursor % candidates.size()] <= 0) {
      ++cursor;
      ++scanned;
    }
    if (scanned >= candidates.size()) break;  // cluster exhausted
    size_t j = cursor % candidates.size();
    decision.machine_of_instance[static_cast<size_t>(i)] = candidates[j];
    capacity[j]--;
    ++cursor;  // diversity: spread consecutive instances over machines
    ++placed;
  }
  decision.feasible = placed == m;
  decision.solve_seconds = timer.ElapsedSeconds();
  return decision;
}

}  // namespace fgro
