#include "optimizer/ipa.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "optimizer/sharding.h"

namespace fgro {

bool BuildBplMatrix(const SchedulingContext& context,
                    const std::vector<int>& instance_rows,
                    const std::vector<int>& machine_cols,
                    std::vector<std::vector<double>>* L) {
  const Stage& stage = *context.stage;
  const Cluster& cluster = *context.cluster;
  const LatencyModel& model = *context.model;
  const int m = static_cast<int>(instance_rows.size());
  const int n = static_cast<int>(machine_cols.size());
  L->assign(static_cast<size_t>(m),
            std::vector<double>(static_cast<size_t>(n)));

  if (!context.batched_inference) {
    // Scalar baseline path, preserved verbatim: one deadline check per
    // matrix row (the m x n inference bill is the expensive part, and
    // aborting here leaves the ladder budget to spare).
    for (int i = 0; i < m; ++i) {
      if (context.deadline.expired()) return false;
      Result<LatencyModel::EmbeddedInstance> embedded =
          model.Embed(stage, instance_rows[static_cast<size_t>(i)]);
      if (!embedded.ok()) return false;
      for (int j = 0; j < n; ++j) {
        const Machine& machine =
            cluster.machine(machine_cols[static_cast<size_t>(j)]);
        (*L)[static_cast<size_t>(i)][static_cast<size_t>(j)] =
            model.PredictFromEmbedding(embedded.value(), context.theta0,
                                       machine.state(),
                                       machine.hardware().id);
      }
    }
    return true;
  }

  // Batched path. Embed every row first — the per-instance GNN/TLSTM pass
  // dominates and rows are independent, so it fans across the worker pool;
  // each slot is written by exactly one body and read only after the fan
  // completes, which keeps the result byte-identical at any thread count.
  std::vector<LatencyModel::EmbeddedInstance> embedded(
      static_cast<size_t>(m));
  std::atomic<bool> failed{false};
  std::atomic<bool> expired{false};
  ParallelFor(context.worker_pool, m, [&](int i) {
    if (failed.load(std::memory_order_relaxed) ||
        expired.load(std::memory_order_relaxed)) {
      return;
    }
    if (context.deadline.expired()) {
      expired.store(true, std::memory_order_relaxed);
      return;
    }
    Result<LatencyModel::EmbeddedInstance> r =
        model.Embed(stage, instance_rows[static_cast<size_t>(i)]);
    if (!r.ok()) {
      failed.store(true, std::memory_order_relaxed);
      return;
    }
    embedded[static_cast<size_t>(i)] = r.value();
  });
  if (failed.load() || expired.load()) return false;

  // The whole matrix as one flat batch: PredictBatch chunks internally, so
  // this never materializes m*n feature rows at once.
  std::vector<LatencyModel::PredictionQuery> queries;
  queries.reserve(static_cast<size_t>(m) * static_cast<size_t>(n));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const Machine& machine =
          cluster.machine(machine_cols[static_cast<size_t>(j)]);
      queries.push_back(LatencyModel::PredictionQuery{
          &embedded[static_cast<size_t>(i)],
          {context.theta0, machine.state(), machine.hardware().id}});
    }
  }
  std::vector<double> out(queries.size());
  LatencyModel::BatchScratch scratch;
  model.PredictBatch(queries, out.data(), &scratch, context.memo);
  for (int i = 0; i < m; ++i) {
    std::copy(out.begin() + static_cast<long>(i) * n,
              out.begin() + static_cast<long>(i + 1) * n,
              (*L)[static_cast<size_t>(i)].begin());
  }
  return true;
}

std::vector<int> IpaGreedyMatch(const std::vector<std::vector<double>>& L,
                                std::vector<int> capacity) {
  const int m = static_cast<int>(L.size());
  const int n = m > 0 ? static_cast<int>(L[0].size()) : 0;
  std::vector<int> assignment(static_cast<size_t>(m), -1);
  if (m == 0) return assignment;

  long total_capacity = 0;
  for (int c : capacity) total_capacity += c;
  if (total_capacity < m) return {};  // no feasible solution

  std::vector<bool> machine_active(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    machine_active[static_cast<size_t>(j)] =
        capacity[static_cast<size_t>(j)] > 0;
  }

  // Per-instance BPL and the machine achieving it.
  std::vector<double> bpl(static_cast<size_t>(m));
  std::vector<int> bpl_machine(static_cast<size_t>(m), -1);
  std::vector<bool> placed(static_cast<size_t>(m), false);
  auto recompute = [&](int i) {
    double best = std::numeric_limits<double>::infinity();
    int best_j = -1;
    const std::vector<double>& row = L[static_cast<size_t>(i)];
    for (int j = 0; j < n; ++j) {
      if (machine_active[static_cast<size_t>(j)] &&
          row[static_cast<size_t>(j)] < best) {
        best = row[static_cast<size_t>(j)];
        best_j = j;
      }
    }
    bpl[static_cast<size_t>(i)] = best;
    bpl_machine[static_cast<size_t>(i)] = best_j;
  };
  for (int i = 0; i < m; ++i) recompute(i);

  for (int placed_count = 0; placed_count < m; ++placed_count) {
    // Instance with the largest BPL goes first.
    int i_t = -1;
    double max_bpl = -1.0;
    for (int i = 0; i < m; ++i) {
      if (!placed[static_cast<size_t>(i)] &&
          bpl[static_cast<size_t>(i)] > max_bpl) {
        max_bpl = bpl[static_cast<size_t>(i)];
        i_t = i;
      }
    }
    FGRO_CHECK(i_t >= 0);
    int j_t = bpl_machine[static_cast<size_t>(i_t)];
    if (j_t < 0) return {};  // all machines exhausted with instances left
    assignment[static_cast<size_t>(i_t)] = j_t;
    placed[static_cast<size_t>(i_t)] = true;
    if (--capacity[static_cast<size_t>(j_t)] == 0) {
      machine_active[static_cast<size_t>(j_t)] = false;
      // Only instances whose BPL pointed at j_t need recomputation.
      for (int i = 0; i < m; ++i) {
        if (!placed[static_cast<size_t>(i)] &&
            bpl_machine[static_cast<size_t>(i)] == j_t) {
          recompute(i);
        }
      }
    }
  }
  return assignment;
}

double ColumnOrderViolationRate(const std::vector<std::vector<double>>& L,
                                int max_samples, uint64_t seed) {
  const int m = static_cast<int>(L.size());
  const int n = m > 0 ? static_cast<int>(L[0].size()) : 0;
  if (m < 2 || n < 2) return 0.0;
  Rng rng(seed);
  int violations = 0, samples = 0;
  for (int s = 0; s < max_samples; ++s) {
    int i1 = static_cast<int>(rng.UniformInt(0, m - 1));
    int i2 = static_cast<int>(rng.UniformInt(0, m - 1));
    if (i1 == i2) continue;
    int j = static_cast<int>(rng.UniformInt(1, n - 1));
    double ref = L[static_cast<size_t>(i1)][0] - L[static_cast<size_t>(i2)][0];
    double other = L[static_cast<size_t>(i1)][static_cast<size_t>(j)] -
                   L[static_cast<size_t>(i2)][static_cast<size_t>(j)];
    ++samples;
    if (ref * other < 0.0) ++violations;
  }
  return samples > 0 ? static_cast<double>(violations) / samples : 0.0;
}

StageDecision IpaSchedule(const SchedulingContext& context) {
  Stopwatch timer;
  StageDecision decision;
  const Stage& stage = *context.stage;
  const Cluster& cluster = *context.cluster;
  FGRO_CHECK(context.model != nullptr) << "IPA requires the latency model";
  const int m = stage.instance_count();

  std::vector<int> candidates = CandidateMachines(context);
  if (candidates.empty()) return decision;
  const int n = static_cast<int>(candidates.size());
  const int alpha = ResolveAlpha(context.alpha, m, n);

  std::vector<int> capacity(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    capacity[static_cast<size_t>(j)] = InstanceCapacity(
        cluster.machine(candidates[static_cast<size_t>(j)]), context.theta0,
        alpha);
  }

  // Latency matrix: one plan embedding per instance, then a predictor sweep
  // over the candidate machines (batched into one PredictBatch by default).
  std::vector<int> instance_rows(static_cast<size_t>(m));
  std::iota(instance_rows.begin(), instance_rows.end(), 0);
  std::vector<std::vector<double>> L;
  if (!BuildBplMatrix(context, instance_rows, candidates, &L)) {
    decision.solve_seconds = timer.ElapsedSeconds();
    return decision;
  }

  if (context.deadline.expired()) {
    decision.solve_seconds = timer.ElapsedSeconds();
    return decision;
  }
  std::vector<int> assignment = IpaGreedyMatch(L, std::move(capacity));
  if (assignment.empty() && m > 0) return decision;

  decision.machine_of_instance.resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    decision.machine_of_instance[static_cast<size_t>(i)] =
        candidates[static_cast<size_t>(assignment[static_cast<size_t>(i)])];
  }
  decision.theta_of_instance.assign(static_cast<size_t>(m), context.theta0);
  decision.feasible = true;
  decision.solve_seconds = timer.ElapsedSeconds();
  return decision;
}

}  // namespace fgro
