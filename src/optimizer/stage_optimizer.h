#ifndef FGRO_OPTIMIZER_STAGE_OPTIMIZER_H_
#define FGRO_OPTIMIZER_STAGE_OPTIMIZER_H_

#include <string>

#include "optimizer/raa.h"
#include "optimizer/scheduler_types.h"

namespace fgro {

/// The Stage-level Optimizer (SO) of Fig. 3: a placement step (Fuxi, IPA, or
/// clustered IPA) optionally followed by RAA's instance-specific resource
/// tuning. Each named configuration of Table 2 is one SoConfig.
class StageOptimizer {
 public:
  enum class Placement { kFuxi, kIpaOrg, kIpaClustered };

  struct Config {
    Placement placement = Placement::kIpaClustered;
    bool run_raa = true;
    RaaOptions raa;
  };

  /// Table 2 row presets.
  static Config FuxiOnly();
  static Config IpaOrg();
  static Config IpaCluster();
  static Config IpaRaaWithoutClustering();
  static Config IpaRaaDbscan();
  static Config IpaRaaGeneral();
  static Config IpaRaaPath();

  static std::string ConfigName(const Config& config);

  explicit StageOptimizer(Config config) : config_(config) {}

  /// Runs placement then (optionally) RAA; solve_seconds covers both.
  StageDecision Optimize(const SchedulingContext& context) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace fgro

#endif  // FGRO_OPTIMIZER_STAGE_OPTIMIZER_H_
