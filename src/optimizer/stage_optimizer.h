#ifndef FGRO_OPTIMIZER_STAGE_OPTIMIZER_H_
#define FGRO_OPTIMIZER_STAGE_OPTIMIZER_H_

#include <string>

#include "optimizer/raa.h"
#include "optimizer/scheduler_types.h"

namespace fgro {

/// The Stage-level Optimizer (SO) of Fig. 3: a placement step (Fuxi, IPA, or
/// clustered IPA) optionally followed by RAA's instance-specific resource
/// tuning. Each named configuration of Table 2 is one SoConfig.
///
/// Thread-safety: Optimize() is const and keeps all solver scratch on the
/// stack (IPA/RAA/Fuxi allocate their working sets per call; LatencyModel
/// inference likewise uses caller-local scratch). One StageOptimizer may
/// therefore be shared by all RO-service workers without locking, provided
/// each call's SchedulingContext points at a cluster view no other thread
/// is mutating.
class StageOptimizer {
 public:
  enum class Placement { kFuxi, kIpaOrg, kIpaClustered };

  struct Config {
    Placement placement = Placement::kIpaClustered;
    bool run_raa = true;
    RaaOptions raa;
    /// Graceful degradation (the fault-tolerance ladder):
    /// IPA+RAA -> IPA with HBO theta0 -> Fuxi. Taken when the model is
    /// null/untrained/unavailable, RAA fails, the primary placement is
    /// infeasible, or the solve blows the context's RO time budget. The
    /// level actually used is recorded in StageDecision::fallback.
    bool degrade_gracefully = false;
  };

  /// Table 2 row presets.
  static Config FuxiOnly();
  static Config IpaOrg();
  static Config IpaCluster();
  static Config IpaRaaWithoutClustering();
  static Config IpaRaaDbscan();
  static Config IpaRaaGeneral();
  static Config IpaRaaPath();
  /// IPA+RAA(Path) with the degradation ladder armed — the configuration
  /// the fault-tolerance bench replays against Fuxi.
  static Config IpaRaaPathWithFallback();

  static std::string ConfigName(const Config& config);

  explicit StageOptimizer(Config config) : config_(config) {}

  /// Runs placement then (optionally) RAA; solve_seconds covers both.
  /// With context.obs wired, emits one "so.decide" span per decision (child
  /// spans "so.placement" / "so.raa" / "so.wun"), the per-phase solve-time
  /// histograms, and the decision/fallback counters of DESIGN.md §10.
  StageDecision Optimize(const SchedulingContext& context) const;

  const Config& config() const { return config_; }

 private:
  /// Sharded-or-legacy dispatch: POP-style fan when the context sustains
  /// more than one shard (EffectiveShardCount), the exact legacy solve
  /// otherwise.
  StageDecision Dispatch(const SchedulingContext& context,
                         int trace_parent) const;
  StageDecision OptimizeImpl(const SchedulingContext& context,
                             int trace_parent) const;
  /// POP-style sharded solve (DESIGN.md §15): deterministic MixSeed
  /// partition of machines + instances, per-shard OptimizeImpl fanned over
  /// context.worker_pool into per-shard slots, shard-ordered merge with a
  /// capacity-aware reconciliation pass. Byte-identical at any thread count
  /// and reproducible for any fixed (shard_seed, shard_count).
  StageDecision OptimizeSharded(const SchedulingContext& context,
                                int trace_parent) const;

  Config config_;
};

}  // namespace fgro

#endif  // FGRO_OPTIMIZER_STAGE_OPTIMIZER_H_
