#ifndef FGRO_OPTIMIZER_MOO_BASELINES_H_
#define FGRO_OPTIMIZER_MOO_BASELINES_H_

#include <string>

#include "optimizer/scheduler_types.h"

namespace fgro {

/// The generic MOO solvers of Expt 10 applied to the stage-level problem of
/// Def. 5.2. Plan A optimizes placement B' and resources Theta' jointly
/// over instance/machine clusters (Appendix A.1.1); Plan B fixes B* with
/// clustered IPA and optimizes only Theta' (Appendix A.1.2).
enum class MooBaselineKind { kEvo, kWsSample, kPfMogd };

struct MooBaselineOptions {
  MooBaselineKind kind = MooBaselineKind::kEvo;
  bool ipa_placement = false;  // false = plan A, true = plan B
  double time_limit_seconds = 60.0;
  // EVO hyperparameters (tuned once, as in Appendix A.2).
  int evo_population = 32;
  int evo_generations = 24;
  // WS(Sample) sampling budget.
  int ws_samples = 2500;
  // PF(MOGD) epsilon-constraint levels.
  int pf_levels = 6;
  uint64_t seed = 41;
};

std::string MooBaselineName(const MooBaselineOptions& options);

/// Returns an infeasible decision when the solver finds no feasible
/// solution within the time limit (the coverage metric of Table 2).
StageDecision RunMooBaseline(const SchedulingContext& context,
                             const MooBaselineOptions& options);

}  // namespace fgro

#endif  // FGRO_OPTIMIZER_MOO_BASELINES_H_
