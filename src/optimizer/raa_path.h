#ifndef FGRO_OPTIMIZER_RAA_PATH_H_
#define FGRO_OPTIMIZER_RAA_PATH_H_

#include <vector>

#include "moo/config_space.h"

namespace fgro {

/// A stage-level Pareto point together with the per-instance (or
/// per-cluster) choice of instance-level Pareto solution that achieves it.
struct StageParetoPoint {
  double latency = 0.0;
  double cost = 0.0;
  std::vector<int> choice;  // index into each instance's Pareto set
};

/// RAA-Path, Algorithm 3: for the 2-objective (latency=max, cost=sum) case,
/// walks the unique tradeoff path through the per-instance Pareto sets with
/// a max-heap and emits the FULL stage-level Pareto set in
/// O(m p log(m p)) (Proposition 5.2).
///
/// `pareto_sets[i]` must be sorted by strictly descending latency (ascending
/// cost) — the order InstanceMooSolver produces. `multiplicity[i]` scales
/// instance i's cost (cluster size when instances are clustered).
std::vector<StageParetoPoint> RaaPath(
    const std::vector<std::vector<InstanceParetoPoint>>& pareto_sets,
    const std::vector<double>& multiplicity);

}  // namespace fgro

#endif  // FGRO_OPTIMIZER_RAA_PATH_H_
