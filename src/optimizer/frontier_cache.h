#ifndef FGRO_OPTIMIZER_FRONTIER_CACHE_H_
#define FGRO_OPTIMIZER_FRONTIER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "moo/config_space.h"

namespace fgro {

/// Exact cache key of one frontier template: the canonical cluster
/// representative's Channel-2 identity, the machine bucket (discretized
/// state + hardware), the incumbent theta0, the content hash of the theta
/// grid, and the scoring model's params_tag. Everything a template's values
/// depend on is in the key, so a hit returns exactly what a fresh build
/// would compute — never an approximation — and the cache survives the
/// shard/reconfig views that renumber instance indices (the key carries the
/// instance's *content*, not its index; `instance_count` is included
/// because Channel 2's third feature is fraction * instance_count, which a
/// reduced stage view changes).
///
/// Like PredictionKey, the full tuple (not its hash) is the map key, and
/// Lookup additionally verifies the stored grid bit-for-bit: a 64-bit
/// grid-hash collision degrades to a miss instead of corrupting a replay.
struct FrontierKey {
  int32_t job_id = 0;
  int32_t stage_id = 0;
  int32_t template_id = 0;
  int32_t instance_count = 0;
  int32_t hardware_type = 0;
  uint64_t rows_bits = 0;      // canonical representative's input_rows
  uint64_t bytes_bits = 0;     // ... input_bytes
  uint64_t fraction_bits = 0;  // ... input_fraction
  uint64_t cpu_bits = 0;       // DiscretizeState() of the machine bucket
  uint64_t mem_bits = 0;
  uint64_t io_bits = 0;
  uint64_t theta0_cores_bits = 0;
  uint64_t theta0_memory_bits = 0;
  uint64_t grid_hash = 0;
  /// LatencyModel::params_tag() of the scoring model: a hot-swapped or
  /// fine-tuned model queries under a new tag and can never be served a
  /// prior model's template, whatever the eviction state.
  uint64_t model_tag = 0;

  bool operator==(const FrontierKey& other) const {
    return job_id == other.job_id && stage_id == other.stage_id &&
           template_id == other.template_id &&
           instance_count == other.instance_count &&
           hardware_type == other.hardware_type &&
           rows_bits == other.rows_bits && bytes_bits == other.bytes_bits &&
           fraction_bits == other.fraction_bits &&
           cpu_bits == other.cpu_bits && mem_bits == other.mem_bits &&
           io_bits == other.io_bits &&
           theta0_cores_bits == other.theta0_cores_bits &&
           theta0_memory_bits == other.theta0_memory_bits &&
           grid_hash == other.grid_hash && model_tag == other.model_tag;
  }

  uint64_t Hash() const;

  /// The grid-agnostic part of the key: all fields with grid_hash zeroed.
  /// Two keys with equal DonorKey() describe the same (cluster, machine
  /// bucket, theta0, model) under different theta grids, so one's latencies
  /// can patch the other's overlapping grid points exactly.
  FrontierKey DonorKey() const;
};

struct FrontierKeyHash {
  size_t operator()(const FrontierKey& k) const {
    return static_cast<size_t>(k.Hash());
  }
};

/// Content hash of a theta grid (order-sensitive, over the raw double bit
/// patterns). Collisions are tolerated: Lookup verifies the stored grid.
uint64_t FrontierGridHash(const std::vector<ResourceConfig>& grid);

/// One memoized frontier template: the grid it was computed over, the
/// canonical representative's predicted latency per grid point, the Pareto
/// frontier of those points (descending latency), and the predicted latency
/// of keeping theta0. Immutable once inserted; readers hold shared_ptrs so
/// eviction never invalidates an in-flight solve.
struct FrontierEntry {
  std::vector<ResourceConfig> grid;
  std::vector<double> latencies;  // latencies[i] = predict(grid[i])
  std::vector<InstanceParetoPoint> frontier;
  double lat0 = 0.0;  // predicted latency of keeping theta0
};

/// Bounded, thread-safe cache of frontier templates for RAA's compressed
/// solve path (DESIGN.md §16). Modeled on PredictionMemo: sharded 16 ways
/// by key hash, FIFO eviction per shard, idempotent insert (two workers
/// racing on the same template both computed the same pure function of the
/// key, so either value is correct). A secondary per-shard donor index maps
/// DonorKey() -> the latest full key inserted under it, which is what lets
/// a theta-grid change patch the overlapping frontier region instead of
/// recomputing every point.
class FrontierCache {
 public:
  explicit FrontierCache(size_t capacity = 1 << 12);

  FrontierCache(const FrontierCache&) = delete;
  FrontierCache& operator=(const FrontierCache&) = delete;

  /// True and fills *entry on a hit. `grid` is verified bit-for-bit against
  /// the stored entry's grid, so a grid-hash collision is a miss, never a
  /// wrong answer. Bumps the hit/miss telemetry either way.
  bool Lookup(const FrontierKey& key, const std::vector<ResourceConfig>& grid,
              std::shared_ptr<const FrontierEntry>* entry);

  /// Finds an entry with the same DonorKey() as `key` but a different grid
  /// (any grid). True and fills *entry when one exists. Donor choice may
  /// depend on insertion order across threads, but every latency a donor
  /// supplies is the exact value a fresh prediction would compute, so
  /// patched builds are bit-identical to from-scratch builds regardless of
  /// which donor served.
  bool LookupDonor(const FrontierKey& key,
                   std::shared_ptr<const FrontierEntry>* entry);

  /// Inserts (idempotent: re-inserting an existing key is a no-op) and
  /// points the donor index at `key`.
  void Insert(const FrontierKey& key,
              std::shared_ptr<const FrontierEntry> entry);

  /// Wholesale invalidation on model hot-swap: when `tag` differs from the
  /// last tag seen, drops every entry whose key carries a different
  /// model_tag. Entries under the current tag survive, so concurrent solves
  /// on the same model never lose warm templates. Safety does not depend on
  /// this being called — keys carry the tag — this bounds memory and makes
  /// the swap-invalidation observable.
  void EnsureModelTag(uint64_t tag);

  void Clear();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t donor_hits() const {
    return donor_hits_.load(std::memory_order_relaxed);
  }
  uint64_t inserts() const { return inserts_.load(std::memory_order_relaxed); }
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<FrontierKey, std::shared_ptr<const FrontierEntry>,
                       FrontierKeyHash>
        map;
    std::deque<FrontierKey> order;  // FIFO eviction
    /// DonorKey() -> latest full key inserted under it. Entries may go
    /// stale when the pointed-to entry is evicted (it lives in another
    /// shard); LookupDonor validates by fetching and treats a dangling
    /// pointer as a miss.
    std::unordered_map<FrontierKey, FrontierKey, FrontierKeyHash> donors;
    std::deque<FrontierKey> donor_order;
  };

  Shard& ShardOf(const FrontierKey& key) {
    return shards_[key.Hash() % kShards];
  }

  size_t capacity_;
  Shard shards_[kShards];
  std::mutex tag_mutex_;
  std::atomic<uint64_t> last_tag_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> donor_hits_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace fgro

#endif  // FGRO_OPTIMIZER_FRONTIER_CACHE_H_
