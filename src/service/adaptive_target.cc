#include "service/adaptive_target.h"

#include <algorithm>
#include <cmath>

namespace fgro {

namespace {

double MedianOf(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    const double lower =
        *std::max_element(values.begin(), values.begin() + mid);
    m = 0.5 * (m + lower);
  }
  return m;
}

}  // namespace

AdaptiveTarget::AdaptiveTarget(const AdaptiveTargetOptions& options)
    : options_(options), target_(options.initial_target_seconds) {
  target_ = std::min(std::max(target_, options_.min_target_seconds),
                     options_.max_target_seconds);
  window_latency_.reserve(static_cast<std::size_t>(options_.window));
  window_throughput_.reserve(static_cast<std::size_t>(options_.window));
}

double AdaptiveTarget::RegressionSlope(const std::vector<double>& latencies,
                                       const std::vector<double>& throughputs,
                                       std::size_t* used) {
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(latencies.size());
  ys.reserve(latencies.size());
  if (options_.outlier_rejection && latencies.size() >= 4) {
    const double median = MedianOf(latencies);
    std::vector<double> deviations;
    deviations.reserve(latencies.size());
    for (double x : latencies) deviations.push_back(std::fabs(x - median));
    // Scaled MAD (consistent with sigma under normality); when it
    // degenerates the window is effectively constant and rejection would
    // throw away legitimate ties, so it is skipped.
    const double mad = 1.4826 * MedianOf(deviations);
    const double cut = options_.outlier_mad_multiple * mad;
    if (mad > 1e-12) {
      for (std::size_t i = 0; i < latencies.size(); ++i) {
        if (std::fabs(latencies[i] - median) <= cut) {
          xs.push_back(latencies[i]);
          ys.push_back(throughputs[i]);
        } else {
          ++outliers_rejected_;
        }
      }
    }
  }
  if (xs.empty()) {
    xs = latencies;
    ys = throughputs;
  }
  if (used != nullptr) *used = xs.size();
  if (xs.size() < 2) return 0.0;
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= static_cast<double>(xs.size());
  mean_y /= static_cast<double>(xs.size());
  double cov = 0.0;
  double var = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - mean_x) * (ys[i] - mean_y);
    var += (xs[i] - mean_x) * (xs[i] - mean_x);
  }
  if (var < 1e-18) return 0.0;
  return cov / var;
}

bool AdaptiveTarget::AddPoint(double latency_seconds, double throughput) {
  if (!options_.enabled) return false;
  window_latency_.push_back(latency_seconds);
  window_throughput_.push_back(throughput);
  if (static_cast<int>(window_latency_.size()) < std::max(2, options_.window)) {
    return false;
  }
  const double before = target_;
  Adapt();
  window_latency_.clear();
  window_throughput_.clear();
  return target_ != before;
}

void AdaptiveTarget::Adapt() {
  const double slope =
      RegressionSlope(window_latency_, window_throughput_, nullptr);
  const double med_latency = MedianOf(window_latency_);
  const double med_throughput = MedianOf(window_throughput_);
  if (med_throughput <= 0.0) return;  // nothing served yet: no signal
  // Elasticity: fractional throughput gained per fractional latency
  // granted, evaluated at the window's center. Above the knee threshold
  // the curve still climbs and a looser target buys real throughput;
  // below it, queueing is pure delay.
  const double normalized =
      slope * (std::max(med_latency, 1e-9) / med_throughput);
  if (normalized > options_.slope_threshold) {
    target_ *= 1.0 + options_.step_fraction;
  } else {
    target_ *= 1.0 - options_.step_fraction;
  }
  target_ = std::min(std::max(target_, options_.min_target_seconds),
                     options_.max_target_seconds);
  ++adaptations_;
}

void ThroughputEstimator::Record(double dequeue_time_seconds) {
  times_.push_back(dequeue_time_seconds);
  while (static_cast<int>(times_.size()) > window_) times_.pop_front();
}

double ThroughputEstimator::RatePerSecond() const {
  if (times_.size() < 2) return 0.0;
  const double span = times_.back() - times_.front();
  if (span <= 0.0) return 0.0;
  return static_cast<double>(times_.size() - 1) / span;
}

}  // namespace fgro
