#ifndef FGRO_SERVICE_ADAPTIVE_TARGET_H_
#define FGRO_SERVICE_ADAPTIVE_TARGET_H_

#include <cstddef>
#include <deque>
#include <vector>

namespace fgro {

struct AdaptiveTargetOptions {
  bool enabled = false;
  /// Hard bounds on the learned target; the gradient walk clamps here.
  double min_target_seconds = 0.001;
  double max_target_seconds = 0.050;
  double initial_target_seconds = 0.005;
  /// Observations accumulated before each adaptation step.
  int window = 32;
  /// Multiplicative step per adaptation: target *= (1 +/- step_fraction).
  double step_fraction = 0.25;
  /// Knee criterion on the normalized latency/throughput slope
  /// (fractional throughput gain per fractional latency increase). Above
  /// it, extra queueing still buys throughput and the target rises; below
  /// it, the curve has flattened and the target tightens.
  double slope_threshold = 0.5;
  /// MAD-based outlier rejection over the window's latencies before the
  /// regression (as in CoDelModel): points farther than
  /// outlier_mad_multiple scaled-MADs from the median are excluded.
  bool outlier_rejection = true;
  double outlier_mad_multiple = 4.0;
};

/// Learns the CoDel sojourn target from the observed latency/throughput
/// curve, gradient-style, after the ceph CoDelAdaptiveTarget design: the
/// operating point worth protecting is the knee of the curve, where more
/// tolerated queueing delay stops buying throughput. Each window of
/// (sojourn, throughput) points is outlier-rejected, least-squares fit,
/// and the normalized slope (an elasticity: d tput/tput per d lat/lat)
/// compared to the knee threshold; the target then takes one bounded
/// multiplicative step toward the knee. Fully deterministic: no clock, no
/// RNG — the target is a pure function of the observation sequence.
///
/// Not thread-safe: the owning service calls it under its mutex.
class AdaptiveTarget {
 public:
  explicit AdaptiveTarget(const AdaptiveTargetOptions& options);

  /// One (sojourn latency, observed throughput) point; every `window`
  /// points the target adapts. Returns true when the target moved.
  bool AddPoint(double latency_seconds, double throughput);

  double target_seconds() const { return target_; }
  long adaptations() const { return adaptations_; }
  long outliers_rejected() const { return outliers_rejected_; }

  /// Exposed for closed-form tests: least-squares slope of throughput vs
  /// latency over the given points, after outlier rejection when enabled.
  double RegressionSlope(const std::vector<double>& latencies,
                         const std::vector<double>& throughputs,
                         std::size_t* used = nullptr);

 private:
  void Adapt();

  AdaptiveTargetOptions options_;
  double target_;
  std::vector<double> window_latency_;
  std::vector<double> window_throughput_;
  long adaptations_ = 0;
  long outliers_rejected_ = 0;
};

/// Windowed completion-rate estimator feeding AdaptiveTarget's throughput
/// axis: completions per second over the last `window` dequeue timestamps
/// (wall or virtual — whatever clock the caller runs CoDel on). Returns 0
/// until two timestamps exist.
class ThroughputEstimator {
 public:
  explicit ThroughputEstimator(int window) : window_(window < 2 ? 2 : window) {}

  void Record(double dequeue_time_seconds);
  double RatePerSecond() const;

 private:
  int window_;
  std::deque<double> times_;
};

}  // namespace fgro

#endif  // FGRO_SERVICE_ADAPTIVE_TARGET_H_
