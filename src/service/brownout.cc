#include "service/brownout.h"

#include <algorithm>

#include "obs/metrics.h"

namespace fgro {

void BrownoutController::AddSample(double service_seconds) {
  window_.push_back(service_seconds);
  while (static_cast<int>(window_.size()) >
         std::max(1, options_.p95_window)) {
    window_.pop_front();
  }
}

double BrownoutController::WindowP95() const {
  return obs::QuantileOfSamples(
      std::vector<double>(window_.begin(), window_.end()), 0.95);
}

BrownoutLevel BrownoutController::Observe(int queue_depth, int queue_capacity,
                                          double p95_seconds) {
  if (!options_.enabled) return level_;

  const double depth_fraction =
      queue_capacity > 0
          ? static_cast<double>(queue_depth) / queue_capacity
          : 0.0;
  const bool pressured = depth_fraction > options_.queue_high_fraction ||
                         p95_seconds > options_.p95_high_seconds;
  const bool clear = depth_fraction < options_.queue_low_fraction &&
                     p95_seconds < options_.p95_low_seconds;

  if (pressured) {
    clear_streak_ = 0;
    if (++pressured_streak_ >= options_.demote_after &&
        level_ != BrownoutLevel::kFuxi) {
      level_ = static_cast<BrownoutLevel>(static_cast<int>(level_) + 1);
      ++demotions_;
      pressured_streak_ = 0;
    }
  } else if (clear) {
    pressured_streak_ = 0;
    if (++clear_streak_ >= options_.promote_after &&
        level_ != BrownoutLevel::kNormal) {
      level_ = static_cast<BrownoutLevel>(static_cast<int>(level_) - 1);
      ++promotions_;
      clear_streak_ = 0;
      // Staleness fix: drop the rolling window on promotion so latencies
      // recorded under (or before) the brown-out cannot masquerade as
      // fresh pressure and re-demote the just-recovered service.
      window_.clear();
    }
  } else {
    // The hysteresis band between the low and high thresholds: hold the
    // current level and forget partial streaks in both directions.
    pressured_streak_ = 0;
    clear_streak_ = 0;
  }
  return level_;
}

}  // namespace fgro
