#ifndef FGRO_SERVICE_RO_SERVICE_H_
#define FGRO_SERVICE_RO_SERVICE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bounded_queue.h"
#include "common/deadline.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "model/latency_model.h"
#include "obs/metrics.h"
#include "optimizer/stage_optimizer.h"
#include "service/brownout.h"
#include "sim/ro_metrics.h"
#include "sim/simulator.h"
#include "trace/workload_gen.h"

namespace fgro {

/// Admission priority class. Latency-sensitive requests are always popped
/// before batch requests (strict priority, FIFO within a class); both
/// classes share the bounded queue and are shed identically when it fills.
enum class RequestPriority { kLatencySensitive = 0, kBatch = 1 };

struct RoServiceOptions {
  /// Admission-queue bound. A Submit() that finds the queue full is shed
  /// immediately with kResourceExhausted — the service never blocks the
  /// caller and never buffers unboundedly.
  std::size_t queue_capacity = 64;
  /// Per-request wall-clock budget armed at admission (0 = no deadline).
  /// A request whose deadline has already expired when a worker dequeues
  /// it is served at the cheapest ladder level (Fuxi) instead of being
  /// dropped: the caller still gets a decision, just a cheap one.
  double request_deadline_seconds = 0.0;
  /// Artificial per-job service-time floor (seconds). Zero in production;
  /// overload tests raise it so a burst deterministically outruns the
  /// workers and exercises shedding / brown-out.
  double min_service_seconds = 0.0;
  /// Brown-out controller config (disabled by default).
  BrownoutOptions brownout;
};

/// Counters the service accumulates; folded into RoSummary by Summary().
struct RoServiceStats {
  long jobs_offered = 0;
  long jobs_admitted = 0;
  long jobs_shed = 0;
  long jobs_completed = 0;
  long jobs_failed = 0;
  long jobs_latency_sensitive = 0;
  long brownout_demotions = 0;
  long brownout_promotions = 0;
  long brownout_theta0_jobs = 0;
  long brownout_fuxi_jobs = 0;
  long deadline_expired_jobs = 0;
  double queue_wait_p95_ms = 0.0;
  double service_p95_ms = 0.0;
  int max_queue_depth = 0;
};

/// Concurrent RO service: a fixed pool of workers pulls stage-optimization
/// requests (one request = one job replay) from a bounded two-lane
/// admission queue. Overload is handled in three layers:
///
///   1. Load shedding — Submit() on a full queue rejects immediately with
///      kResourceExhausted instead of queueing unboundedly.
///   2. Brown-out — a hysteretic controller watches queue depth and the
///      rolling p95 service time and demotes work down the degradation
///      ladder (IPA+RAA -> theta0 -> Fuxi) under sustained pressure,
///      re-promoting when it clears.
///   3. Per-request deadlines — a request that waited past its budget is
///      served at the Fuxi level rather than dropped.
///
/// Determinism: each job replays in isolation (Simulator::ReplayJobIsolated)
/// with a private RNG stream seeded MixSeed(sim.seed, job_idx), so with
/// brown-out and deadlines off the merged SimResult is byte-identical for
/// any worker count. Workers accumulate stage outcomes and latency samples
/// into per-worker locals merged at Stop() — no atomics on the replay
/// path; the service mutex guards only the once-per-job control plane
/// (counters, brown-out observations, drain signalling).
///
/// Use a degrade_gracefully optimizer config: brown-out and expired
/// deadlines degrade via the ladder, which a non-FB config does not take.
class RoService {
 public:
  RoService(const Workload* workload, const LatencyModel* model,
            const SimOptions& sim_options,
            const StageOptimizer::Config& optimizer_config,
            RoServiceOptions options = {});
  ~RoService();

  RoService(const RoService&) = delete;
  RoService& operator=(const RoService&) = delete;

  /// Offers one job to the service. Returns OK when admitted,
  /// kResourceExhausted when shed (queue full), kInvalidArgument for a bad
  /// job index, kFailedPrecondition after Stop().
  Status Submit(int job_idx, RequestPriority priority = RequestPriority::kBatch);

  /// Blocks until every admitted request has completed. The service stays
  /// open for further Submit() calls.
  void Drain();

  /// Closes admission, drains the queue, joins the workers, and merges the
  /// per-worker results. Idempotent.
  void Stop();

  /// Merged replay result, outcomes ordered by admission slot (so equal to
  /// the sequential order when jobs were submitted in index order).
  /// Implies Stop().
  SimResult TakeResult();

  /// Aggregate RO metrics over the merged result, with the service-layer
  /// fields (shed / brown-out / queue metrics) filled in. Implies Stop().
  RoSummary Summary();

  /// First replay error any worker hit (OK when none). Implies Stop().
  Status first_error();

  /// Service counters so far (callable while running).
  RoServiceStats Stats() const;

  /// Current brown-out level.
  BrownoutLevel brownout_level() const;

  /// Job indices in completion order (for priority-ordering tests).
  /// Implies Stop().
  const std::vector<int>& completion_order();

  int num_workers() const { return num_workers_; }

  /// The metrics registry this service records into: the caller's, when
  /// SimOptions::obs.metrics was wired (so service, simulator, optimizer,
  /// and model share one breakdown), else a private registry owned by the
  /// service. Always safe to snapshot, including while serving.
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  struct Request {
    int job_idx = 0;
    int slot = 0;  // admission sequence number, orders the merged result
    Deadline deadline;
    double admit_time = 0.0;  // steady-clock seconds
  };

  /// Per-worker accumulation (the no-atomics-on-hot-path rule): the bulk
  /// data — stage outcomes — collects here without any synchronization and
  /// merges once, at Stop(). Wait/service latency samples go straight into
  /// the shared obs histograms (one relaxed atomic bump per completed job,
  /// off the per-stage path). The cheap per-job counters live in stats_
  /// and are bumped inside the one control-plane lock each job already
  /// takes, so Stats() is accurate while running.
  struct WorkerLocal {
    std::vector<std::pair<int, std::vector<StageOutcome>>> results;
    Status first_error;
  };

  void WorkerLoop(WorkerLocal* local);
  void ServeOne(const Request& request, WorkerLocal* local);
  /// Feeds one (queue depth, rolling p95) observation to the controller.
  /// Caller holds mutex_.
  void ObservePressureLocked();

  const Workload* workload_;
  Simulator simulator_;
  StageOptimizer optimizer_;
  RoServiceOptions options_;
  uint64_t base_seed_;
  int num_workers_;

  /// Fallback registry used when the caller did not wire one through
  /// SimOptions::obs — declared before the handles resolved from it.
  obs::MetricsRegistry owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Histogram* wait_hist_ = nullptr;     // svc.queue_wait_seconds
  obs::Histogram* service_hist_ = nullptr;  // svc.service_seconds
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* completed_counter_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;

  BoundedPriorityQueue<Request> queue_;
  std::vector<std::unique_ptr<WorkerLocal>> locals_;
  ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable idle_;
  BrownoutController controller_;
  std::deque<double> recent_service_seconds_;  // rolling p95 window
  std::vector<int> completion_order_;
  RoServiceStats stats_;
  int next_slot_ = 0;
  int pending_ = 0;
  bool stopped_ = false;
  bool merged_ = false;
  Status first_error_;

  SimResult merged_result_;
};

/// Convenience driver for SimOptions::service_threads: submits every job of
/// the workload in index order (batch priority, capacity >= workload size so
/// nothing sheds), drains, and returns the merged result. With
/// service_threads <= 1 this still uses the per-job isolated semantics, so
/// the result is byte-identical to any higher thread count.
Result<SimResult> ServeWorkload(const Workload& workload,
                                const LatencyModel* model,
                                const SimOptions& sim_options,
                                const StageOptimizer::Config& optimizer_config,
                                RoServiceOptions options = {});

}  // namespace fgro

#endif  // FGRO_SERVICE_RO_SERVICE_H_
