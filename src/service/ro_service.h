#ifndef FGRO_SERVICE_RO_SERVICE_H_
#define FGRO_SERVICE_RO_SERVICE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bounded_queue.h"
#include "common/codel.h"
#include "common/deadline.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "model/latency_model.h"
#include "obs/metrics.h"
#include "optimizer/stage_optimizer.h"
#include "service/adaptive_target.h"
#include "service/brownout.h"
#include "sim/ro_metrics.h"
#include "sim/simulator.h"
#include "trace/workload_gen.h"

namespace fgro {

/// Admission priority class. Latency-sensitive requests are always popped
/// before batch requests (strict priority, FIFO within a class); both
/// classes share the bounded queue and are shed identically when it fills.
enum class RequestPriority { kLatencySensitive = 0, kBatch = 1 };

/// Which clock drives CoDel's sojourn observations. kVirtualSim derives
/// enqueue/dequeue times from the deterministic virtual queue model
/// (CodelVirtualModel): every CoDel decision is fixed at admission, in
/// submission order under the control-plane mutex, so the merged replay is
/// byte-identical across service_threads — the sim-clock-derived mode
/// determinism_test pins down. kWallClock timestamps real enqueue/dequeue
/// (the live-serving mode bench_overload exercises); only batch-lane
/// sojourns feed the controller there, because a latency-sensitive
/// request overtakes the batch lane and its near-zero sojourn is not
/// evidence about the standing backlog CoDel controls.
enum class CodelClockMode { kVirtualSim = 0, kWallClock = 1 };

struct RoServiceOptions {
  /// Admission-queue bound. A Submit() that finds the queue full is shed
  /// immediately with kResourceExhausted — the service never blocks the
  /// caller and never buffers unboundedly.
  std::size_t queue_capacity = 64;
  /// Per-request wall-clock budget armed at admission (0 = no deadline).
  /// A request whose deadline already expired while it waited in the queue
  /// is completed as shed at dequeue (expired_in_queue counter) — solving
  /// it even at the cheapest ladder level would burn a worker on an answer
  /// the caller has already given up on.
  double request_deadline_seconds = 0.0;
  /// Artificial per-job service-time floor (seconds). Zero in production;
  /// overload tests raise it so a burst deterministically outruns the
  /// workers and exercises shedding / brown-out.
  double min_service_seconds = 0.0;
  /// Static-threshold brown-out controller (PR 3), the config-selected
  /// baseline arm. Forced off when codel.enabled — one admission-control
  /// arm at a time.
  BrownoutOptions brownout;
  /// Adaptive arm: sojourn-time CoDel over the admission queue, driving
  /// the three-rung response (theta0 demotion, Fuxi demotion, early-drop
  /// shed) with latency-sensitive-lane protection.
  CodelOptions codel;
  CodelClockMode codel_clock = CodelClockMode::kVirtualSim;
  /// Virtual queue model backing kVirtualSim (ignored under kWallClock).
  CodelVirtualModel codel_virtual;
  /// Online target learning from the observed latency/throughput curve
  /// (only consulted when codel.enabled).
  AdaptiveTargetOptions adaptive_target;
};

/// Counters the service accumulates; folded into RoSummary by Summary().
struct RoServiceStats {
  long jobs_offered = 0;
  long jobs_admitted = 0;
  long jobs_shed = 0;
  long jobs_completed = 0;
  long jobs_failed = 0;
  long jobs_latency_sensitive = 0;
  long brownout_demotions = 0;
  long brownout_promotions = 0;
  long brownout_theta0_jobs = 0;
  long brownout_fuxi_jobs = 0;
  long deadline_expired_jobs = 0;
  /// Deadline-aware dequeue shed: requests completed as shed because the
  /// deadline expired while they waited (subset of deadline_expired_jobs).
  long expired_in_queue = 0;
  /// CoDel arm accounting (all zero when codel is disabled).
  long codel_shed_jobs = 0;     // early-dropped at admission (shed rung)
  long codel_theta0_jobs = 0;   // served one ladder level down
  long codel_fuxi_jobs = 0;     // served at the floor level
  long codel_interval_resets = 0;      // overload episodes ended
  long codel_target_adaptations = 0;   // learned-target steps taken
  double codel_target_ms = 0.0;        // current (learned) sojourn target
  double queue_wait_p95_ms = 0.0;
  double service_p95_ms = 0.0;
  int max_queue_depth = 0;
};

/// Concurrent RO service: a fixed pool of workers pulls stage-optimization
/// requests (one request = one job replay) from a bounded two-lane
/// admission queue. Overload is handled in three layers:
///
///   1. Load shedding — Submit() on a full queue rejects immediately with
///      kResourceExhausted instead of queueing unboundedly.
///   2. Admission control, one of two config-selected arms:
///      - Static brown-out (baseline) — a hysteretic controller watches
///        queue depth and the rolling p95 service time and demotes work
///        down the degradation ladder (IPA+RAA -> theta0 -> Fuxi) under
///        sustained pressure, re-promoting when it clears.
///      - Adaptive CoDel — every request is timestamped at enqueue and its
///        sojourn observed at dequeue; when the minimum sojourn stays above
///        a (learned) target for a control interval the service walks a
///        three-rung response at inverse-sqrt-tightening intervals: theta0
///        demotion, Fuxi demotion, then early-dropping the freshest batch
///        arrivals, while the latency-sensitive lane is protected (demoted
///        later, never shed). The target itself is learned online from the
///        observed latency/throughput curve (AdaptiveTarget).
///   3. Per-request deadlines — a request whose budget expired while it
///      queued is completed as shed at dequeue instead of burning a worker.
///
/// Determinism: each job replays in isolation (Simulator::ReplayJobIsolated)
/// with a private RNG stream seeded MixSeed(sim.seed, job_idx), so with
/// brown-out and deadlines off the merged SimResult is byte-identical for
/// any worker count. Workers accumulate stage outcomes and latency samples
/// into per-worker locals merged at Stop() — no atomics on the replay
/// path; the service mutex guards only the once-per-job control plane
/// (counters, brown-out observations, drain signalling).
///
/// Use a degrade_gracefully optimizer config: brown-out and expired
/// deadlines degrade via the ladder, which a non-FB config does not take.
class RoService {
 public:
  RoService(const Workload* workload, const LatencyModel* model,
            const SimOptions& sim_options,
            const StageOptimizer::Config& optimizer_config,
            RoServiceOptions options = {});
  ~RoService();

  RoService(const RoService&) = delete;
  RoService& operator=(const RoService&) = delete;

  /// Offers one job to the service. Returns OK when admitted,
  /// kResourceExhausted when shed (queue full), kInvalidArgument for a bad
  /// job index, kFailedPrecondition after Stop().
  Status Submit(int job_idx, RequestPriority priority = RequestPriority::kBatch);

  /// Blocks until every admitted request has completed. The service stays
  /// open for further Submit() calls.
  void Drain();

  /// Closes admission, drains the queue, joins the workers, and merges the
  /// per-worker results. Idempotent.
  void Stop();

  /// Merged replay result, outcomes ordered by admission slot (so equal to
  /// the sequential order when jobs were submitted in index order).
  /// Implies Stop().
  SimResult TakeResult();

  /// Aggregate RO metrics over the merged result, with the service-layer
  /// fields (shed / brown-out / queue metrics) filled in. Implies Stop().
  RoSummary Summary();

  /// First replay error any worker hit (OK when none). Implies Stop().
  Status first_error();

  /// Service counters so far (callable while running).
  RoServiceStats Stats() const;

  /// Current brown-out level.
  BrownoutLevel brownout_level() const;

  /// Job indices in completion order (for priority-ordering tests).
  /// Implies Stop().
  const std::vector<int>& completion_order();

  int num_workers() const { return num_workers_; }

  /// The metrics registry this service records into: the caller's, when
  /// SimOptions::obs.metrics was wired (so service, simulator, optimizer,
  /// and model share one breakdown), else a private registry owned by the
  /// service. Always safe to snapshot, including while serving.
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  struct Request {
    int job_idx = 0;
    int slot = 0;  // admission sequence number, orders the merged result
    RequestPriority priority = RequestPriority::kBatch;
    Deadline deadline;
    double admit_time = 0.0;  // steady-clock seconds
    /// Ladder level CoDel pinned at admission (kVirtualSim mode only):
    /// decided in submission order under the mutex, so it is a pure
    /// function of the submission sequence — the determinism anchor.
    BrownoutLevel codel_level = BrownoutLevel::kNormal;
  };

  /// Per-worker accumulation (the no-atomics-on-hot-path rule): the bulk
  /// data — stage outcomes — collects here without any synchronization and
  /// merges once, at Stop(). Wait/service latency samples go straight into
  /// the shared obs histograms (one relaxed atomic bump per completed job,
  /// off the per-stage path). The cheap per-job counters live in stats_
  /// and are bumped inside the one control-plane lock each job already
  /// takes, so Stats() is accurate while running.
  struct WorkerLocal {
    std::vector<std::pair<int, std::vector<StageOutcome>>> results;
    Status first_error;
  };

  void WorkerLoop(WorkerLocal* local);
  void ServeOne(const Request& request, WorkerLocal* local);
  /// Feeds one (queue depth, rolling p95) observation to the controller.
  /// Caller holds mutex_.
  void ObservePressureLocked();
  /// One CoDel sojourn observation at (virtual or wall) dequeue time:
  /// feeds the controller, the throughput estimator, the adaptive target,
  /// and the service.codel.* metrics. Caller holds mutex_.
  void CodelObserveLocked(double now_seconds, double sojourn_seconds);
  /// Sheds the current Submit() under the CoDel early-drop rung.
  /// Caller holds mutex_.
  Status CodelShedLocked();

  const Workload* workload_;
  Simulator simulator_;
  StageOptimizer optimizer_;
  RoServiceOptions options_;
  uint64_t base_seed_;
  int num_workers_;

  /// Fallback registry used when the caller did not wire one through
  /// SimOptions::obs — declared before the handles resolved from it.
  obs::MetricsRegistry owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Histogram* wait_hist_ = nullptr;     // svc.queue_wait_seconds
  obs::Histogram* service_hist_ = nullptr;  // svc.service_seconds
  /// Per-lane queue waits, so the priority-protection claim is checkable
  /// (latency-sensitive p95 bounded while the batch lane sheds).
  obs::Histogram* ls_wait_hist_ = nullptr;     // svc.queue_wait_ls_seconds
  obs::Histogram* batch_wait_hist_ = nullptr;  // svc.queue_wait_batch_seconds
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* completed_counter_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Counter* expired_counter_ = nullptr;  // svc.expired_in_queue
  // service.codel.*: sojourn histogram, learned target / tightened
  // interval gauges, interval resets, drops by rung, target adaptations.
  obs::Histogram* sojourn_hist_ = nullptr;
  obs::Gauge* codel_target_gauge_ = nullptr;
  obs::Gauge* codel_interval_gauge_ = nullptr;
  obs::Counter* codel_reset_counter_ = nullptr;
  obs::Counter* codel_shed_counter_ = nullptr;
  obs::Counter* codel_theta0_counter_ = nullptr;
  obs::Counter* codel_fuxi_counter_ = nullptr;
  obs::Counter* codel_adapt_counter_ = nullptr;

  BoundedPriorityQueue<Request> queue_;
  std::vector<std::unique_ptr<WorkerLocal>> locals_;
  ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable idle_;
  BrownoutController controller_;
  SojournCodel codel_;
  AdaptiveTarget adaptive_target_;
  ThroughputEstimator throughput_;
  VirtualSojournQueue virtual_queue_;
  long prev_interval_resets_ = 0;
  long prev_adaptations_ = 0;
  std::vector<int> completion_order_;
  RoServiceStats stats_;
  int next_slot_ = 0;
  int pending_ = 0;
  bool stopped_ = false;
  bool merged_ = false;
  Status first_error_;

  SimResult merged_result_;
};

/// Convenience driver for SimOptions::service_threads: submits every job of
/// the workload in index order (batch priority, capacity >= workload size so
/// nothing sheds), drains, and returns the merged result. With
/// service_threads <= 1 this still uses the per-job isolated semantics, so
/// the result is byte-identical to any higher thread count.
Result<SimResult> ServeWorkload(const Workload& workload,
                                const LatencyModel* model,
                                const SimOptions& sim_options,
                                const StageOptimizer::Config& optimizer_config,
                                RoServiceOptions options = {});

}  // namespace fgro

#endif  // FGRO_SERVICE_RO_SERVICE_H_
