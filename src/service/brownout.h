#ifndef FGRO_SERVICE_BROWNOUT_H_
#define FGRO_SERVICE_BROWNOUT_H_

#include <deque>
#include <limits>

namespace fgro {

/// How far the serving layer has browned out, mirroring the per-stage
/// degradation ladder: kNormal runs the configured optimizer untouched,
/// kTheta0 skips RAA (placement + uniform theta0), kFuxi drops to the
/// model-free baseline. Higher = more degraded.
enum class BrownoutLevel { kNormal = 0, kTheta0 = 1, kFuxi = 2 };

inline const char* BrownoutLevelName(BrownoutLevel level) {
  switch (level) {
    case BrownoutLevel::kNormal: return "normal";
    case BrownoutLevel::kTheta0: return "theta0";
    case BrownoutLevel::kFuxi: return "fuxi";
  }
  return "unknown";
}

struct BrownoutOptions {
  bool enabled = false;
  /// Pressure thresholds. An observation is "pressured" when queue depth
  /// exceeds queue_high_fraction of capacity OR the rolling p95 service
  /// time exceeds p95_high_seconds; it is "clear" when depth is below
  /// queue_low_fraction AND p95 is below p95_low_seconds. In between the
  /// controller holds its level. The p95 thresholds default to infinity so
  /// a queue-only policy needs no tuning.
  double queue_high_fraction = 0.75;
  double queue_low_fraction = 0.25;
  double p95_high_seconds = std::numeric_limits<double>::infinity();
  double p95_low_seconds = std::numeric_limits<double>::infinity();
  /// Hysteresis: consecutive pressured observations before demoting one
  /// level, and consecutive clear observations before promoting one level.
  /// Mixed observations reset both streaks, like the circuit breaker's
  /// half-open probe logic, so the level never flaps on a noisy boundary.
  int demote_after = 3;
  int promote_after = 8;
  /// Rolling window (completions) over which the service p95 is computed.
  int p95_window = 32;
};

/// Hysteretic brown-out controller for the RO service. The service feeds it
/// one observation per scheduling decision point (admission or completion);
/// it walks the ladder one level at a time: `demote_after` consecutive
/// pressured observations demote (kNormal -> kTheta0 -> kFuxi),
/// `promote_after` consecutive clear observations promote back up.
///
/// Not thread-safe: the owning service calls it under its own mutex.
class BrownoutController {
 public:
  explicit BrownoutController(const BrownoutOptions& options)
      : options_(options) {}

  /// One pressure observation. Returns the level in force after it.
  ///
  /// A promotion clears the rolling service-time window (see AddSample):
  /// the samples in it were produced *while browned out* (or before, under
  /// the pressure that caused the demotion), so carrying them across the
  /// promotion would let stale pre-recovery latencies immediately re-demote
  /// a service that has in fact recovered.
  BrownoutLevel Observe(int queue_depth, int queue_capacity,
                        double p95_seconds);

  /// One completed-request service time into the rolling window backing
  /// WindowP95(). Bounded by BrownoutOptions::p95_window.
  void AddSample(double service_seconds);

  /// Exact p95 over the current rolling window (0 when empty). Feed this
  /// to Observe() so the promotion-time clearing applies.
  double WindowP95() const;

  BrownoutLevel level() const { return level_; }
  long demotions() const { return demotions_; }
  long promotions() const { return promotions_; }
  bool enabled() const { return options_.enabled; }

 private:
  BrownoutOptions options_;
  BrownoutLevel level_ = BrownoutLevel::kNormal;
  int pressured_streak_ = 0;
  int clear_streak_ = 0;
  long demotions_ = 0;
  long promotions_ = 0;
  std::deque<double> window_;  // rolling service times, p95_window deep
};

}  // namespace fgro

#endif  // FGRO_SERVICE_BROWNOUT_H_
