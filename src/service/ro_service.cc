#include "service/ro_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/rng.h"

namespace fgro {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One admission-control arm at a time: CoDel enabled forces the static
/// brown-out baseline off.
BrownoutOptions ArmedBrownout(const RoServiceOptions& options) {
  BrownoutOptions brownout = options.brownout;
  if (options.codel.enabled) brownout.enabled = false;
  return brownout;
}

/// The adaptive target starts at the CoDel target unless the caller set a
/// different initial value explicitly.
AdaptiveTargetOptions ArmedAdaptiveTarget(const RoServiceOptions& options) {
  AdaptiveTargetOptions adaptive = options.adaptive_target;
  if (!options.codel.enabled) adaptive.enabled = false;
  return adaptive;
}

BrownoutLevel LevelOfRung(CodelRung rung) {
  switch (rung) {
    case CodelRung::kNone: return BrownoutLevel::kNormal;
    case CodelRung::kTheta0: return BrownoutLevel::kTheta0;
    // A shed rung reached at dequeue means the request was admitted before
    // the overload deepened; it is served at the floor, not dropped.
    case CodelRung::kFuxi:
    case CodelRung::kShed: return BrownoutLevel::kFuxi;
  }
  return BrownoutLevel::kNormal;
}

}  // namespace

RoService::RoService(const Workload* workload, const LatencyModel* model,
                     const SimOptions& sim_options,
                     const StageOptimizer::Config& optimizer_config,
                     RoServiceOptions options)
    : workload_(workload),
      simulator_(workload, model, sim_options),
      optimizer_(optimizer_config),
      options_(options),
      base_seed_(sim_options.seed),
      num_workers_(std::max(1, sim_options.service_threads)),
      queue_(options.queue_capacity, /*num_lanes=*/2),
      pool_(num_workers_),
      controller_(ArmedBrownout(options)),
      codel_(options.codel),
      adaptive_target_(ArmedAdaptiveTarget(options)),
      throughput_(std::max(8, options.adaptive_target.window)),
      virtual_queue_(options.codel_virtual) {
  if (options_.codel.enabled && options_.adaptive_target.enabled) {
    codel_.set_target(adaptive_target_.target_seconds());
  }
  // Record into the caller's registry when one is wired through the sim
  // options (so service/simulator/optimizer/model share one breakdown),
  // else into the service-owned fallback. Handles resolve once, here.
  metrics_ = sim_options.obs.metrics != nullptr ? sim_options.obs.metrics
                                                : &owned_metrics_;
  wait_hist_ = metrics_->GetLatencyHistogram("svc.queue_wait_seconds");
  service_hist_ = metrics_->GetLatencyHistogram("svc.service_seconds");
  ls_wait_hist_ = metrics_->GetLatencyHistogram("svc.queue_wait_ls_seconds");
  batch_wait_hist_ =
      metrics_->GetLatencyHistogram("svc.queue_wait_batch_seconds");
  admitted_counter_ = metrics_->GetCounter("svc.jobs_admitted");
  shed_counter_ = metrics_->GetCounter("svc.jobs_shed");
  completed_counter_ = metrics_->GetCounter("svc.jobs_completed");
  queue_depth_gauge_ = metrics_->GetGauge("svc.queue_depth");
  expired_counter_ = metrics_->GetCounter("svc.expired_in_queue");
  sojourn_hist_ =
      metrics_->GetLatencyHistogram("service.codel.sojourn_seconds");
  codel_target_gauge_ = metrics_->GetGauge("service.codel.target_seconds");
  codel_interval_gauge_ =
      metrics_->GetGauge("service.codel.interval_seconds");
  codel_reset_counter_ =
      metrics_->GetCounter("service.codel.interval_resets");
  codel_shed_counter_ = metrics_->GetCounter("service.codel.drops.shed");
  codel_theta0_counter_ = metrics_->GetCounter("service.codel.drops.theta0");
  codel_fuxi_counter_ = metrics_->GetCounter("service.codel.drops.fuxi");
  codel_adapt_counter_ =
      metrics_->GetCounter("service.codel.target_adaptations");
  locals_.reserve(static_cast<std::size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    locals_.push_back(std::make_unique<WorkerLocal>());
    WorkerLocal* local = locals_.back().get();
    pool_.Submit([this, local] { WorkerLoop(local); });
  }
}

RoService::~RoService() { Stop(); }

Status RoService::Submit(int job_idx, RequestPriority priority) {
  if (job_idx < 0 ||
      job_idx >= static_cast<int>(workload_->jobs.size())) {
    return Status::InvalidArgument("job index out of range");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopped_) {
    return Status::FailedPrecondition("RO service already stopped");
  }
  ++stats_.jobs_offered;

  Request request;
  request.job_idx = job_idx;
  request.slot = next_slot_;
  request.priority = priority;
  request.admit_time = NowSeconds();
  if (options_.request_deadline_seconds > 0.0) {
    request.deadline = Deadline::After(options_.request_deadline_seconds);
  }

  const bool latency_sensitive =
      priority == RequestPriority::kLatencySensitive;
  VirtualSojournQueue::Arrival virtual_arrival;
  const bool codel_virtual =
      options_.codel.enabled &&
      options_.codel_clock == CodelClockMode::kVirtualSim;
  if (codel_virtual) {
    // Deterministic mode: this request's (virtual) dequeue time and
    // sojourn are computed here, in submission order under the mutex, and
    // the CoDel verdict pinned onto the request — a pure function of the
    // submission sequence, independent of worker count and scheduling.
    virtual_arrival = virtual_queue_.NextArrival();
    CodelObserveLocked(virtual_arrival.start_seconds,
                       virtual_arrival.sojourn_seconds);
    const CodelRung rung = codel_.RungFor(latency_sensitive);
    if (rung == CodelRung::kShed) return CodelShedLocked();
    request.codel_level = LevelOfRung(rung);
  } else if (options_.codel.enabled &&
             codel_.RungFor(latency_sensitive) == CodelRung::kShed) {
    // Wall-clock mode, deepest rung: early-drop the freshest load at the
    // door instead of queueing work the sojourn says cannot be served in
    // time. The latency-sensitive lane never reaches the shed rung.
    return CodelShedLocked();
  }

  if (!queue_.TryPush(std::move(request), static_cast<int>(priority))) {
    // Load shedding: reject now rather than buffer unboundedly or block
    // the caller. A shed is itself a pressure signal for the controller.
    ++stats_.jobs_shed;
    shed_counter_->Increment();
    ObservePressureLocked();
    return Status::ResourceExhausted("RO admission queue full");
  }
  if (codel_virtual) virtual_queue_.Consume(virtual_arrival);
  ++next_slot_;
  ++pending_;
  ++stats_.jobs_admitted;
  admitted_counter_->Increment();
  if (priority == RequestPriority::kLatencySensitive) {
    ++stats_.jobs_latency_sensitive;
  }
  const int depth = static_cast<int>(queue_.size());
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
  queue_depth_gauge_->Set(static_cast<double>(depth));
  ObservePressureLocked();
  return Status::OK();
}

void RoService::ObservePressureLocked() {
  if (!controller_.enabled()) return;
  // The controller wants the p95 of the *recent* window (recency matters
  // for hysteresis); it owns the rolling sample deque so a promotion can
  // clear it — see BrownoutController::Observe on staleness.
  controller_.Observe(static_cast<int>(queue_.size()),
                      static_cast<int>(queue_.capacity()),
                      controller_.WindowP95());
  stats_.brownout_demotions = controller_.demotions();
  stats_.brownout_promotions = controller_.promotions();
}

void RoService::CodelObserveLocked(double now_seconds,
                                   double sojourn_seconds) {
  sojourn_hist_->Observe(sojourn_seconds);
  throughput_.Record(now_seconds);
  // The adaptive layer walks the target along the observed
  // latency/throughput curve; feed it before the control decision so the
  // observation below already runs against the freshest target.
  if (adaptive_target_.AddPoint(sojourn_seconds,
                                throughput_.RatePerSecond())) {
    codel_.set_target(adaptive_target_.target_seconds());
  }
  codel_.Observe(now_seconds, sojourn_seconds);
  codel_target_gauge_->Set(codel_.target_seconds());
  codel_interval_gauge_->Set(codel_.current_interval_seconds());
  const long resets = codel_.interval_resets();
  if (resets > prev_interval_resets_) {
    codel_reset_counter_->Increment(
        static_cast<uint64_t>(resets - prev_interval_resets_));
    prev_interval_resets_ = resets;
  }
  const long adaptations = adaptive_target_.adaptations();
  if (adaptations > prev_adaptations_) {
    codel_adapt_counter_->Increment(
        static_cast<uint64_t>(adaptations - prev_adaptations_));
    prev_adaptations_ = adaptations;
  }
  stats_.codel_interval_resets = resets;
  stats_.codel_target_adaptations = adaptations;
  stats_.codel_target_ms = codel_.target_seconds() * 1e3;
}

Status RoService::CodelShedLocked() {
  ++stats_.jobs_shed;
  ++stats_.codel_shed_jobs;
  shed_counter_->Increment();
  codel_shed_counter_->Increment();
  return Status::ResourceExhausted("CoDel early-drop: admission shed");
}

void RoService::WorkerLoop(WorkerLocal* local) {
  Request request;
  while (queue_.Pop(&request)) {
    ServeOne(request, local);
  }
}

void RoService::ServeOne(const Request& request, WorkerLocal* local) {
  const double dequeue_time = NowSeconds();
  const bool expired = request.deadline.expired();
  const bool latency_sensitive =
      request.priority == RequestPriority::kLatencySensitive;
  const double wait_seconds = dequeue_time - request.admit_time;

  if (expired) {
    // Deadline-aware dequeue shed: the budget died while the request
    // queued, so even the cheapest decision would burn a worker on an
    // answer the caller has abandoned. Complete it as shed.
    expired_counter_->Increment();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.deadline_expired_jobs;
    ++stats_.expired_in_queue;
    ++stats_.jobs_shed;
    ObservePressureLocked();
    if (--pending_ == 0) idle_.notify_all();
    return;
  }

  BrownoutLevel level;
  if (options_.codel.enabled) {
    if (options_.codel_clock == CodelClockMode::kVirtualSim) {
      level = request.codel_level;  // pinned at admission, deterministic
    } else {
      // Wall-clock mode: CoDel observes the real sojourn at dequeue and
      // the rung in force decides this request's ladder level. Only the
      // batch lane feeds the controller: CoDel's min-sojourn logic assumes
      // FIFO, and a latency-sensitive request overtakes the batch lane, so
      // its near-zero sojourn says nothing about the standing backlog —
      // feeding it in would end an overload episode the batch queue is
      // still deep in.
      std::lock_guard<std::mutex> lock(mutex_);
      if (!latency_sensitive) CodelObserveLocked(dequeue_time, wait_seconds);
      level = LevelOfRung(codel_.RungFor(latency_sensitive));
    }
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    level = controller_.level();
  }

  // The brown-out level is sampled once per request so a whole job is
  // decided at one ladder level; the per-stage ladder still applies on top
  // (a primary solve can individually degrade inside the replay).
  auto scheduler = [this, level](const SchedulingContext& context) {
    SchedulingContext ctx = context;
    if (level == BrownoutLevel::kFuxi) {
      ctx.model_available = false;
    } else if (level == BrownoutLevel::kTheta0) {
      ctx.raa_allowed = false;
    }
    return optimizer_.Optimize(ctx);
  };

  // A fully browned-out (Fuxi-level) request is being served as cheaply as
  // possible — re-planning and model fine-tuning would defeat the point —
  // so the reconfiguration engine is suppressed for it.
  Result<std::vector<StageOutcome>> outcomes = simulator_.ReplayJobIsolated(
      scheduler, request.job_idx, MixSeed(base_seed_, request.job_idx),
      /*keep_instance_detail=*/false,
      /*allow_reconfig=*/level != BrownoutLevel::kFuxi);

  if (options_.min_service_seconds > 0.0) {
    const double elapsed = NowSeconds() - dequeue_time;
    if (elapsed < options_.min_service_seconds) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.min_service_seconds - elapsed));
    }
  }
  const double end_time = NowSeconds();

  // One relaxed atomic bump per histogram per completed job, outside the
  // control-plane lock. These feed the p95 summary fields at Stop().
  wait_hist_->Observe(wait_seconds);
  (latency_sensitive ? ls_wait_hist_ : batch_wait_hist_)
      ->Observe(wait_seconds);
  service_hist_->Observe(end_time - dequeue_time);
  completed_counter_->Increment();
  const bool ok = outcomes.ok();
  if (ok) {
    local->results.emplace_back(request.slot, std::move(outcomes).value());
  } else if (local->first_error.ok()) {
    local->first_error = outcomes.status();
  }

  // Once-per-job control plane: completion counters, rolling p95 window,
  // pressure observation, completion ordering, drain signalling. This is
  // the only lock on the serving path; all per-stage work above ran
  // lock-free.
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.jobs_completed;
  if (!ok) ++stats_.jobs_failed;
  if (options_.codel.enabled) {
    if (level == BrownoutLevel::kTheta0) {
      ++stats_.codel_theta0_jobs;
      codel_theta0_counter_->Increment();
    } else if (level == BrownoutLevel::kFuxi) {
      ++stats_.codel_fuxi_jobs;
      codel_fuxi_counter_->Increment();
    }
  } else {
    if (level == BrownoutLevel::kTheta0) {
      ++stats_.brownout_theta0_jobs;
    } else if (level == BrownoutLevel::kFuxi) {
      ++stats_.brownout_fuxi_jobs;
    }
  }
  if (controller_.enabled()) {
    controller_.AddSample(end_time - dequeue_time);
  }
  ObservePressureLocked();
  completion_order_.push_back(request.job_idx);
  if (--pending_ == 0) idle_.notify_all();
}

void RoService::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

void RoService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  queue_.Close();  // workers drain the queue, then their loops exit
  pool_.Join();

  std::lock_guard<std::mutex> lock(mutex_);
  if (merged_) return;
  merged_ = true;

  // Merge the per-worker accumulations. Results are keyed by admission
  // slot, so the merged outcome order is the submission order regardless
  // of which worker served which job.
  std::vector<std::pair<int, std::vector<StageOutcome>>> all;
  for (const std::unique_ptr<WorkerLocal>& local : locals_) {
    if (first_error_.ok() && !local->first_error.ok()) {
      first_error_ = local->first_error;
    }
    for (auto& entry : local->results) all.push_back(std::move(entry));
    local->results.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [slot, outcomes] : all) {
    (void)slot;
    merged_result_.outcomes.insert(
        merged_result_.outcomes.end(),
        std::make_move_iterator(outcomes.begin()),
        std::make_move_iterator(outcomes.end()));
  }
  // p95s now come off the shared histograms (bucketed quantiles) instead
  // of a second hand-rolled sample-percentile path.
  stats_.queue_wait_p95_ms = wait_hist_->Quantile(0.95) * 1e3;
  stats_.service_p95_ms = service_hist_->Quantile(0.95) * 1e3;
  stats_.brownout_demotions = controller_.demotions();
  stats_.brownout_promotions = controller_.promotions();
}

SimResult RoService::TakeResult() {
  Stop();
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(merged_result_);
}

Status RoService::first_error() {
  Stop();
  std::lock_guard<std::mutex> lock(mutex_);
  return first_error_;
}

RoSummary RoService::Summary() {
  Stop();
  std::lock_guard<std::mutex> lock(mutex_);
  RoSummary summary = Summarize(merged_result_);
  summary.jobs_offered = stats_.jobs_offered;
  summary.jobs_admitted = stats_.jobs_admitted;
  summary.jobs_shed = stats_.jobs_shed;
  summary.jobs_completed = stats_.jobs_completed;
  summary.jobs_failed = stats_.jobs_failed;
  summary.jobs_latency_sensitive = stats_.jobs_latency_sensitive;
  summary.brownout_demotions = stats_.brownout_demotions;
  summary.brownout_promotions = stats_.brownout_promotions;
  summary.brownout_theta0_jobs = stats_.brownout_theta0_jobs;
  summary.brownout_fuxi_jobs = stats_.brownout_fuxi_jobs;
  summary.deadline_expired_jobs = stats_.deadline_expired_jobs;
  summary.expired_in_queue = stats_.expired_in_queue;
  summary.codel_shed_jobs = stats_.codel_shed_jobs;
  summary.codel_theta0_jobs = stats_.codel_theta0_jobs;
  summary.codel_fuxi_jobs = stats_.codel_fuxi_jobs;
  summary.codel_interval_resets = stats_.codel_interval_resets;
  summary.codel_target_adaptations = stats_.codel_target_adaptations;
  summary.codel_target_ms = stats_.codel_target_ms;
  summary.queue_wait_p95_ms = stats_.queue_wait_p95_ms;
  summary.service_p95_ms = stats_.service_p95_ms;
  summary.max_queue_depth = stats_.max_queue_depth;
  return summary;
}

RoServiceStats RoService::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

BrownoutLevel RoService::brownout_level() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return controller_.level();
}

const std::vector<int>& RoService::completion_order() {
  Stop();
  return completion_order_;
}

Result<SimResult> ServeWorkload(const Workload& workload,
                                const LatencyModel* model,
                                const SimOptions& sim_options,
                                const StageOptimizer::Config& optimizer_config,
                                RoServiceOptions options) {
  // Nothing may shed in the drop-in replay mode: size the queue to the
  // workload so the merged result covers every job.
  options.queue_capacity =
      std::max(options.queue_capacity, workload.jobs.size());
  RoService service(&workload, model, sim_options, optimizer_config, options);
  for (int j = 0; j < static_cast<int>(workload.jobs.size()); ++j) {
    FGRO_RETURN_IF_ERROR(service.Submit(j, RequestPriority::kBatch));
  }
  service.Drain();
  service.Stop();
  FGRO_RETURN_IF_ERROR(service.first_error());
  return service.TakeResult();
}

}  // namespace fgro
