#ifndef FGRO_CLUSTER_MACHINE_H_
#define FGRO_CLUSTER_MACHINE_H_

#include "cluster/hardware.h"
#include "cluster/resource.h"
#include "common/rng.h"

namespace fgro {

/// Channel 4: observable system state of a machine at schedule time.
/// Utilizations are fractions in [0, 1].
struct SystemState {
  double cpu_util = 0.0;
  double mem_util = 0.0;
  double io_util = 0.0;
};

/// One physical machine: hardware type, capacity accounting for the
/// containers currently placed on it, and a stochastically evolving system
/// state (mean-reverting around a per-machine baseline, so busy machines
/// stay busy-ish). The `hidden_dynamics` factor models the within-lifetime
/// state drift that Expt 1 identifies as an irreducible error source: it
/// affects true latency but is not visible in Channel 4.
class Machine {
 public:
  Machine(int id, const HardwareType* hw, double base_util, uint64_t seed);

  int id() const { return id_; }
  const HardwareType& hardware() const { return *hw_; }
  const SystemState& state() const { return state_; }
  double hidden_dynamics() const { return hidden_dynamics_; }

  /// Free resources not yet allocated to containers.
  double available_cores() const {
    return hw_->total_cores - allocated_cores_;
  }
  double available_memory_gb() const {
    return hw_->total_memory_gb - allocated_memory_gb_;
  }

  bool CanFit(const ResourceConfig& theta) const {
    return up_ && theta.cores <= available_cores() + 1e-9 &&
           theta.memory_gb <= available_memory_gb() + 1e-9;
  }

  /// Machine liveness (the fault injector's crash/recovery windows). A down
  /// machine fits no container; containers already on it are the
  /// simulator's problem (it fails and retries them elsewhere).
  bool up() const { return up_; }
  void SetUp(bool up) { up_ = up; }

  /// Reserves / releases container resources; Allocate returns false if the
  /// machine cannot fit the container.
  bool Allocate(const ResourceConfig& theta);
  void Release(const ResourceConfig& theta);

  /// Advances the stochastic system state by `dt` seconds (Ornstein-
  /// Uhlenbeck around the baseline plus a diurnal component).
  void AdvanceTime(double now, double dt);

  /// For tests/scenario setup: pin the observable state.
  void set_state(const SystemState& s) { state_ = s; }
  void set_base_util(double u) { base_util_ = u; }
  double base_util() const { return base_util_; }

 private:
  int id_;
  const HardwareType* hw_;
  bool up_ = true;
  double base_util_;
  SystemState state_;
  double hidden_dynamics_ = 1.0;
  double allocated_cores_ = 0.0;
  double allocated_memory_gb_ = 0.0;
  Rng rng_;
};

}  // namespace fgro

#endif  // FGRO_CLUSTER_MACHINE_H_
