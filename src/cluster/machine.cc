#include "cluster/machine.h"

#include <cmath>

#include "common/math_utils.h"

namespace fgro {

Machine::Machine(int id, const HardwareType* hw, double base_util,
                 uint64_t seed)
    : id_(id), hw_(hw), base_util_(base_util), rng_(seed) {
  state_.cpu_util = Clamp(base_util + rng_.Normal(0.0, 0.08), 0.02, 0.98);
  state_.mem_util = Clamp(base_util * rng_.Uniform(0.7, 1.2), 0.02, 0.98);
  state_.io_util = Clamp(base_util * rng_.Uniform(0.4, 1.1), 0.01, 0.98);
  hidden_dynamics_ = rng_.LogNormal(0.0, 0.05);
}

bool Machine::Allocate(const ResourceConfig& theta) {
  if (!CanFit(theta)) return false;
  allocated_cores_ += theta.cores;
  allocated_memory_gb_ += theta.memory_gb;
  return true;
}

void Machine::Release(const ResourceConfig& theta) {
  allocated_cores_ = std::max(0.0, allocated_cores_ - theta.cores);
  allocated_memory_gb_ = std::max(0.0, allocated_memory_gb_ - theta.memory_gb);
}

void Machine::AdvanceTime(double now, double dt) {
  // Diurnal load wave (24h period) shared by the fleet plus a mean-reverting
  // per-machine wiggle. theta_rev controls how fast state forgets shocks.
  constexpr double kDay = 86400.0;
  const double diurnal = 0.08 * std::sin(2.0 * M_PI * now / kDay);
  const double theta_rev = dt / 600.0;  // ~10 min relaxation
  auto step = [&](double current, double target, double sigma) {
    double next = current + Clamp(theta_rev, 0.0, 1.0) * (target - current) +
                  rng_.Normal(0.0, sigma * std::sqrt(std::min(dt, 600.0)) / 24.0);
    return Clamp(next, 0.01, 0.99);
  };
  state_.cpu_util = step(state_.cpu_util, base_util_ + diurnal, 0.25);
  state_.mem_util = step(state_.mem_util, base_util_ * 0.9 + diurnal, 0.15);
  state_.io_util = step(state_.io_util, base_util_ * 0.7 + diurnal, 0.30);
  // The hidden dynamics factor drifts independently of the observable state.
  hidden_dynamics_ =
      Clamp(hidden_dynamics_ * rng_.LogNormal(0.0, 0.02), 0.8, 1.25);
}

}  // namespace fgro
