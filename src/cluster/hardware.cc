#include "cluster/hardware.h"

namespace fgro {

const std::vector<HardwareType>& DefaultHardwareCatalog() {
  static const std::vector<HardwareType>& kCatalog =
      *new std::vector<HardwareType>{
          {0, "G5-compute", 1.00, 1.00, 32, 128},
          {1, "G5-memory", 0.95, 1.05, 32, 256},
          {2, "G6-compute", 1.20, 1.10, 48, 192},
          {3, "G6-storage", 1.05, 1.50, 32, 128},
          {4, "G4-legacy", 0.80, 0.75, 24, 96},
      };
  return kCatalog;
}

}  // namespace fgro
