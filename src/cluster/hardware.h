#ifndef FGRO_CLUSTER_HARDWARE_H_
#define FGRO_CLUSTER_HARDWARE_H_

#include <string>
#include <vector>

namespace fgro {

/// One machine model in the heterogeneous fleet (the paper observes 5
/// hardware types per workload). Speeds are relative to a reference machine.
struct HardwareType {
  int id = 0;
  std::string name;
  double cpu_speed = 1.0;      // relative per-core throughput
  double io_bandwidth = 1.0;   // relative disk+network bandwidth
  double total_cores = 32.0;   // schedulable cores per machine
  double total_memory_gb = 128.0;
};

/// The default 5-type catalog used by all workloads. All types are
/// "high-performance" with modest spread, which is why Channel 5 has a small
/// (but non-zero) effect on model accuracy, matching Expt 2.
const std::vector<HardwareType>& DefaultHardwareCatalog();

}  // namespace fgro

#endif  // FGRO_CLUSTER_HARDWARE_H_
