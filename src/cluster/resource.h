#ifndef FGRO_CLUSTER_RESOURCE_H_
#define FGRO_CLUSTER_RESOURCE_H_

namespace fgro {

/// A resource configuration theta for one container/instance: d = 2 resource
/// types as in the paper (CPU cores and memory).
struct ResourceConfig {
  double cores = 1.0;
  double memory_gb = 4.0;

  bool operator==(const ResourceConfig& other) const {
    return cores == other.cores && memory_gb == other.memory_gb;
  }
};

/// Weight vector w over the d resources used in the cloud-cost objective
/// cost = latency * (w . theta). Units: $ per core-second / GB-second,
/// scaled so typical stage costs are O(0.001$) as in Table 11.
struct CostWeights {
  double per_core_second = 2.0e-6;
  double per_gb_second = 2.5e-7;

  double Rate(const ResourceConfig& theta) const {
    return per_core_second * theta.cores + per_gb_second * theta.memory_gb;
  }
};

}  // namespace fgro

#endif  // FGRO_CLUSTER_RESOURCE_H_
