#ifndef FGRO_CLUSTER_CLUSTER_H_
#define FGRO_CLUSTER_CLUSTER_H_

#include <memory>
#include <vector>

#include "cluster/machine.h"
#include "common/rng.h"

namespace fgro {

/// Options for building a synthetic fleet. `base_util` sets the busy/idle
/// scenario of Expt 8-9 (Fig. 24(b): busy ≈ 0.75, idle ≈ 0.35).
struct ClusterOptions {
  int num_machines = 128;
  double base_util_mean = 0.55;
  double base_util_sigma = 0.15;
  uint64_t seed = 7;
};

/// A fleet of machines drawn from the default hardware catalog.
class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options);

  int size() const { return static_cast<int>(machines_.size()); }
  Machine& machine(int i) { return machines_[static_cast<size_t>(i)]; }
  const Machine& machine(int i) const {
    return machines_[static_cast<size_t>(i)];
  }
  std::vector<Machine>& machines() { return machines_; }
  const std::vector<Machine>& machines() const { return machines_; }

  /// Indices of machines that can still fit at least one container of the
  /// given configuration (down machines are excluded).
  std::vector<int> AvailableMachines(const ResourceConfig& theta) const;

  /// Number of machines currently up.
  int UpMachineCount() const;

  /// Advances all machine states to absolute time `now` (seconds).
  void AdvanceTime(double now);

  double now() const { return now_; }

 private:
  std::vector<Machine> machines_;
  double now_ = 0.0;
};

}  // namespace fgro

#endif  // FGRO_CLUSTER_CLUSTER_H_
