#include "cluster/cluster.h"

#include "common/math_utils.h"

namespace fgro {

Cluster::Cluster(const ClusterOptions& options) {
  Rng rng(options.seed);
  const std::vector<HardwareType>& catalog = DefaultHardwareCatalog();
  machines_.reserve(static_cast<size_t>(options.num_machines));
  for (int i = 0; i < options.num_machines; ++i) {
    // Hardware mix: skewed toward the common types, as in production fleets.
    int hw = rng.Zipf(static_cast<int>(catalog.size()), 0.8);
    double base = Clamp(
        rng.Normal(options.base_util_mean, options.base_util_sigma), 0.05,
        0.95);
    machines_.emplace_back(i, &catalog[static_cast<size_t>(hw)], base,
                           rng.NextUint64());
  }
}

std::vector<int> Cluster::AvailableMachines(const ResourceConfig& theta) const {
  std::vector<int> out;
  out.reserve(machines_.size());
  for (const Machine& m : machines_) {
    if (m.CanFit(theta)) out.push_back(m.id());
  }
  return out;
}

int Cluster::UpMachineCount() const {
  int up = 0;
  for (const Machine& m : machines_) {
    if (m.up()) ++up;
  }
  return up;
}

void Cluster::AdvanceTime(double now) {
  double dt = now - now_;
  if (dt <= 0.0) return;
  for (Machine& m : machines_) m.AdvanceTime(now, dt);
  now_ = now;
}

}  // namespace fgro
