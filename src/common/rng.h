#ifndef FGRO_COMMON_RNG_H_
#define FGRO_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace fgro {

/// Mixes a base seed with a stream id into an independent seed via the
/// splitmix64 finalizer, so adjacent stream ids (job 0, job 1, ...) land in
/// well-separated regions of seed space instead of producing correlated
/// mt19937_64 streams.
///
/// Concurrency convention (used by the RO service and required of any new
/// concurrent component): an Rng is NOT thread-safe and must never be
/// shared across workers. Each worker/job derives its own private stream as
/// `Rng(MixSeed(base_seed, job_id))`; because the stream depends only on
/// (base_seed, job_id) — never on which worker ran the job or in what order
/// — replay results are byte-identical across thread counts.
inline uint64_t MixSeed(uint64_t base, uint64_t stream) {
  // splitmix64 sequence seeded at `base`, evaluated at index `stream + 1`:
  // combining before the finalizer must not be a plain XOR or nearby
  // (base, stream) pairs can collide pre-mix.
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic random source used everywhere in the library. Experiments
/// seed one Rng per component so runs are reproducible bit-for-bit.
/// Not thread-safe: see MixSeed for the per-worker/per-job stream
/// convention in concurrent code.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  uint64_t NextUint64() { return engine_(); }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Lognormal with the given parameters of the underlying normal.
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  /// Pareto-tailed sample: x_min * U^{-1/alpha}; heavy tails for small alpha.
  double Pareto(double x_min, double alpha) {
    double u = Uniform(1e-12, 1.0);
    return x_min * std::pow(u, -1.0 / alpha);
  }

  bool Bernoulli(double p) { return Uniform() < p; }

  /// Zipf-like categorical draw over `n` categories with exponent `s`.
  int Zipf(int n, double s) {
    // Inverse-CDF on the (small) normalized Zipf mass; n is tiny in our use.
    double norm = 0.0;
    for (int i = 1; i <= n; ++i) norm += 1.0 / std::pow(i, s);
    double u = Uniform(0.0, norm);
    double acc = 0.0;
    for (int i = 1; i <= n; ++i) {
      acc += 1.0 / std::pow(i, s);
      if (u <= acc) return i - 1;
    }
    return n - 1;
  }

  /// Samples an index proportionally to non-negative `weights`.
  int Categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    double u = Uniform(0.0, total);
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (u <= acc) return static_cast<int>(i);
    }
    return static_cast<int>(weights.size()) - 1;
  }

  /// Derives an independent child generator; used to give each job/stage its
  /// own stream so generation order does not perturb unrelated entities.
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fgro

#endif  // FGRO_COMMON_RNG_H_
