#ifndef FGRO_COMMON_RNG_H_
#define FGRO_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace fgro {

/// Deterministic random source used everywhere in the library. Experiments
/// seed one Rng per component so runs are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  uint64_t NextUint64() { return engine_(); }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Lognormal with the given parameters of the underlying normal.
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  /// Pareto-tailed sample: x_min * U^{-1/alpha}; heavy tails for small alpha.
  double Pareto(double x_min, double alpha) {
    double u = Uniform(1e-12, 1.0);
    return x_min * std::pow(u, -1.0 / alpha);
  }

  bool Bernoulli(double p) { return Uniform() < p; }

  /// Zipf-like categorical draw over `n` categories with exponent `s`.
  int Zipf(int n, double s) {
    // Inverse-CDF on the (small) normalized Zipf mass; n is tiny in our use.
    double norm = 0.0;
    for (int i = 1; i <= n; ++i) norm += 1.0 / std::pow(i, s);
    double u = Uniform(0.0, norm);
    double acc = 0.0;
    for (int i = 1; i <= n; ++i) {
      acc += 1.0 / std::pow(i, s);
      if (u <= acc) return i - 1;
    }
    return n - 1;
  }

  /// Samples an index proportionally to non-negative `weights`.
  int Categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    double u = Uniform(0.0, total);
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (u <= acc) return static_cast<int>(i);
    }
    return static_cast<int>(weights.size()) - 1;
  }

  /// Derives an independent child generator; used to give each job/stage its
  /// own stream so generation order does not perturb unrelated entities.
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fgro

#endif  // FGRO_COMMON_RNG_H_
