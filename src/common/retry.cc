#include "common/retry.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace fgro {

bool RetryPolicy::Retryable(StatusCode code) const {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

double RetryPolicy::BackoffSeconds(int failed_attempt) const {
  if (failed_attempt < 1) failed_attempt = 1;
  double backoff = initial_backoff_seconds *
                   std::pow(backoff_multiplier, failed_attempt - 1);
  return std::min(backoff, max_backoff_seconds);
}

double RetryPolicy::BackoffSeconds(int failed_attempt, uint64_t stream) const {
  const double base = BackoffSeconds(failed_attempt);
  if (!full_jitter) return base;
  // splitmix64-mixed (seed, stream, attempt) -> uniform in (0, 1]: the
  // top 53 bits give a double in [0, 1); mapping to (0, 1] keeps a strictly
  // positive wait so a retry never fires at the same instant it failed.
  const uint64_t z = MixSeed(MixSeed(jitter_seed, stream),
                             static_cast<uint64_t>(failed_attempt));
  const double u = 1.0 - (z >> 11) * (1.0 / 9007199254740992.0);
  return base * u;
}

bool RetryPolicy::ShouldRetry(const Status& status, int attempts_made) const {
  if (status.ok()) return false;
  if (attempts_made >= max_attempts) return false;
  return Retryable(status.code());
}

}  // namespace fgro
