#include "common/retry.h"

#include <algorithm>
#include <cmath>

namespace fgro {

bool RetryPolicy::Retryable(StatusCode code) const {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

double RetryPolicy::BackoffSeconds(int failed_attempt) const {
  if (failed_attempt < 1) failed_attempt = 1;
  double backoff = initial_backoff_seconds *
                   std::pow(backoff_multiplier, failed_attempt - 1);
  return std::min(backoff, max_backoff_seconds);
}

bool RetryPolicy::ShouldRetry(const Status& status, int attempts_made) const {
  if (status.ok()) return false;
  if (attempts_made >= max_attempts) return false;
  return Retryable(status.code());
}

}  // namespace fgro
