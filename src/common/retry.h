#ifndef FGRO_COMMON_RETRY_H_
#define FGRO_COMMON_RETRY_H_

#include <functional>

#include "common/status.h"

namespace fgro {

/// Retry policy with capped attempts and exponential backoff, shared by the
/// simulator's instance re-execution and any fallible service call. Backoff
/// is deterministic (no jitter): the simulator charges it to simulated time,
/// so reproducibility matters more than thundering-herd avoidance here.
struct RetryPolicy {
  int max_attempts = 3;                 // total attempts, including the first
  double initial_backoff_seconds = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 30.0;

  /// Transient failures worth another attempt. Permanent errors
  /// (InvalidArgument, FailedPrecondition, ...) never retry.
  bool Retryable(StatusCode code) const;

  /// Backoff to wait after the given 1-based failed attempt.
  double BackoffSeconds(int failed_attempt) const;

  /// True when `status` is retryable and attempts remain after
  /// `attempts_made` (1-based count of attempts already executed).
  bool ShouldRetry(const Status& status, int attempts_made) const;
};

/// Runs `fn` under the policy. On retryable failure the accumulated backoff
/// is added to `*total_backoff_seconds` (if given) rather than slept — the
/// caller owns the clock. Returns the first success or the last failure.
template <typename T>
Result<T> RetryCall(const RetryPolicy& policy,
                    const std::function<Result<T>()>& fn,
                    double* total_backoff_seconds = nullptr) {
  Result<T> last = Status::Internal("retry loop did not run");
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    last = fn();
    if (last.ok()) return last;
    if (!policy.ShouldRetry(last.status(), attempt)) return last;
    if (total_backoff_seconds != nullptr) {
      *total_backoff_seconds += policy.BackoffSeconds(attempt);
    }
  }
  return last;
}

}  // namespace fgro

#endif  // FGRO_COMMON_RETRY_H_
