#ifndef FGRO_COMMON_RETRY_H_
#define FGRO_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace fgro {

/// Retry policy with capped attempts and exponential backoff, shared by the
/// simulator's instance re-execution and any fallible service call. Backoff
/// is deterministic even with jitter enabled: the jitter is derived from
/// MixSeed over a caller-supplied stream id (job/stage/instance), never
/// from shared RNG state or a clock, so the simulator can charge it to
/// simulated time and replays stay byte-identical at any thread count.
struct RetryPolicy {
  int max_attempts = 3;                 // total attempts, including the first
  double initial_backoff_seconds = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 30.0;
  /// Full jitter (AWS-style): the jittered backoff is uniform in
  /// (0, capped exponential backoff], so retries that failed in the same
  /// epoch — e.g. every instance of a machine that just went down — spread
  /// out instead of re-colliding in synchronized waves. Off by default:
  /// the un-jittered schedule is bit-compatible with older replays.
  bool full_jitter = false;
  /// Base seed for the jitter streams; mixed with the caller's stream id.
  uint64_t jitter_seed = 0x8badf00d5eedULL;

  /// Transient failures worth another attempt. Permanent errors
  /// (InvalidArgument, FailedPrecondition, ...) never retry.
  bool Retryable(StatusCode code) const;

  /// Backoff to wait after the given 1-based failed attempt (no jitter).
  double BackoffSeconds(int failed_attempt) const;

  /// Backoff with deterministic full jitter for the given retry stream
  /// (identify the retrying entity, e.g. MixSeed over job/stage/instance).
  /// Identical (policy, stream, attempt) -> identical wait; different
  /// streams decorrelate. The exponential cap is preserved: the jittered
  /// value never exceeds BackoffSeconds(failed_attempt). With full_jitter
  /// off this is exactly BackoffSeconds(failed_attempt).
  double BackoffSeconds(int failed_attempt, uint64_t stream) const;

  /// True when `status` is retryable and attempts remain after
  /// `attempts_made` (1-based count of attempts already executed).
  bool ShouldRetry(const Status& status, int attempts_made) const;
};

/// Runs `fn` under the policy. On retryable failure the accumulated backoff
/// is added to `*total_backoff_seconds` (if given) rather than slept — the
/// caller owns the clock. Returns the first success or the last failure.
template <typename T>
Result<T> RetryCall(const RetryPolicy& policy,
                    const std::function<Result<T>()>& fn,
                    double* total_backoff_seconds = nullptr) {
  Result<T> last = Status::Internal("retry loop did not run");
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    last = fn();
    if (last.ok()) return last;
    if (!policy.ShouldRetry(last.status(), attempt)) return last;
    if (total_backoff_seconds != nullptr) {
      *total_backoff_seconds += policy.BackoffSeconds(attempt);
    }
  }
  return last;
}

}  // namespace fgro

#endif  // FGRO_COMMON_RETRY_H_
