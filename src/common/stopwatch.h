#ifndef FGRO_COMMON_STOPWATCH_H_
#define FGRO_COMMON_STOPWATCH_H_

#include <chrono>

namespace fgro {

/// Wall-clock stopwatch for measuring resource-optimization solve times.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fgro

#endif  // FGRO_COMMON_STOPWATCH_H_
