#ifndef FGRO_COMMON_STATUS_H_
#define FGRO_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace fgro {

/// Error categories used across the library. Modeled on the RocksDB/Arrow
/// Status idiom: fallible functions return Status (or Result<T>) instead of
/// throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kDeadlineExceeded,
  kUnavailable,
  kDataLoss,
  kInternal,
};

/// A lightweight success/error value. Copyable; the message is empty on
/// success so the common path allocates nothing beyond the small string.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kUnavailable: return "Unavailable";
      case StatusCode::kDataLoss: return "DataLoss";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. A minimal StatusOr.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }
  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

#define FGRO_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::fgro::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define FGRO_STATUS_CONCAT_INNER_(a, b) a##b
#define FGRO_STATUS_CONCAT_(a, b) FGRO_STATUS_CONCAT_INNER_(a, b)

/// Evaluates a Result<T> expression; on error returns its Status from the
/// enclosing function, otherwise moves the value into `lhs` (which may be a
/// declaration, e.g. FGRO_ASSIGN_OR_RETURN(auto x, MakeX())).
#define FGRO_ASSIGN_OR_RETURN(lhs, expr)                             \
  FGRO_ASSIGN_OR_RETURN_IMPL_(                                       \
      FGRO_STATUS_CONCAT_(_fgro_result_, __LINE__), lhs, expr)

#define FGRO_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr)               \
  auto result = (expr);                                              \
  if (!result.ok()) return result.status();                          \
  lhs = std::move(result).value()

}  // namespace fgro

#endif  // FGRO_COMMON_STATUS_H_
