#ifndef FGRO_COMMON_MATH_UTILS_H_
#define FGRO_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <vector>

namespace fgro {

/// Statistical helpers shared by the model metrics, clustering, and
/// benchmark reporting code. All take values by const-ref and never mutate.

double Mean(const std::vector<double>& v);
double StdDev(const std::vector<double>& v);
double Sum(const std::vector<double>& v);
double Min(const std::vector<double>& v);
double Max(const std::vector<double>& v);

/// Linear-interpolated percentile; `p` in [0, 100]. Copies and sorts.
double Percentile(std::vector<double> v, double p);

double Median(const std::vector<double>& v);

/// Pearson correlation of two equal-length series; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

double Clamp(double v, double lo, double hi);

/// log(1 + x) of a non-negative feature; the standard transform we apply to
/// cardinalities and sizes before feeding neural networks.
double Log1pSafe(double x);

/// Simple histogram of `v` into `bins` equal-width buckets over [lo, hi].
std::vector<int> Histogram(const std::vector<double>& v, double lo, double hi,
                           int bins);

}  // namespace fgro

#endif  // FGRO_COMMON_MATH_UTILS_H_
