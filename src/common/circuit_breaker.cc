#include "common/circuit_breaker.h"

#include <algorithm>

namespace fgro {

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options) {
  options_.failure_threshold = std::max(1, options_.failure_threshold);
  options_.half_open_successes = std::max(1, options_.half_open_successes);
  options_.open_seconds = std::max(0.0, options_.open_seconds);
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half-open";
  }
  return "unknown";
}

bool CircuitBreaker::CountsAsFailure(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

void CircuitBreaker::Trip(double now) {
  state_ = State::kOpen;
  opened_at_ = now;
  half_open_successes_ = 0;
  ++trips_;
}

bool CircuitBreaker::AllowRequest(double now) {
  if (state_ != State::kOpen) return true;
  if (now - opened_at_ >= options_.open_seconds) {
    state_ = State::kHalfOpen;
    half_open_successes_ = 0;
    return true;
  }
  ++short_circuits_;
  return false;
}

void CircuitBreaker::RecordSuccess(double now) {
  (void)now;
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      if (++half_open_successes_ >= options_.half_open_successes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        half_open_successes_ = 0;
        ++recoveries_;
      }
      break;
    case State::kOpen:
      // A success while open (caller ignored AllowRequest) is evidence the
      // dependency recovered: treat it as a passed probe.
      state_ = State::kHalfOpen;
      half_open_successes_ = 1;
      if (half_open_successes_ >= options_.half_open_successes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        half_open_successes_ = 0;
        ++recoveries_;
      }
      break;
  }
}

void CircuitBreaker::RecordFailure(double now) {
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) Trip(now);
      break;
    case State::kHalfOpen:
      // A failed probe re-opens immediately; the cooldown restarts.
      Trip(now);
      break;
    case State::kOpen:
      break;
  }
}

void CircuitBreaker::Record(const Status& status, double now) {
  if (status.ok()) {
    RecordSuccess(now);
  } else if (CountsAsFailure(status)) {
    RecordFailure(now);
  }
}

}  // namespace fgro
