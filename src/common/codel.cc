#include "common/codel.h"

#include <algorithm>
#include <cmath>

namespace fgro {

void SojournCodel::Observe(double now, double sojourn) {
  if (!options_.enabled) return;
  if (sojourn < target_) {
    // The minimum delay over the pending interval dipped below target:
    // the standing queue drained, so any overload episode ends here.
    first_above_time_ = 0.0;
    if (overloaded_) {
      overloaded_ = false;
      last_count_ = count_;
      last_exit_time_ = now;
      count_ = 0;
      ++interval_resets_;
    }
    return;
  }
  if (first_above_time_ == 0.0) {
    // First sighting above target: arm the mark one interval out. Only if
    // every observation until then also stays above target (this branch
    // never resets the mark) does the controller conclude the *minimum*
    // sojourn over the interval exceeded target — transient spikes
    // shorter than an interval never trigger.
    first_above_time_ = now + options_.interval_seconds;
  } else if (!overloaded_ && now >= first_above_time_) {
    overloaded_ = true;
    // Soft restart, as in CoDel: re-entering overload shortly after an
    // episode ended resumes near the previous escalation instead of
    // re-ramping from scratch.
    const bool recent =
        last_count_ > 2 &&
        now - last_exit_time_ < 8.0 * options_.interval_seconds;
    count_ = recent ? last_count_ - 2 : 1;
    next_fire_time_ =
        now + options_.interval_seconds / std::sqrt(static_cast<double>(count_));
  }
  if (overloaded_ && now >= next_fire_time_) {
    // Inverse-sqrt law: each escalation tightens the next control
    // interval, so a persistent overload walks up the rung ladder at an
    // accelerating pace.
    ++count_;
    next_fire_time_ +=
        options_.interval_seconds / std::sqrt(static_cast<double>(count_));
  }
}

CodelRung SojournCodel::RungFor(bool latency_sensitive) const {
  if (!options_.enabled || !overloaded_) return CodelRung::kNone;
  int c = count_;
  if (latency_sensitive) c -= options_.protect_margin;
  if (c >= options_.shed_count) {
    // The latency-sensitive lane is never shed: at the deepest rung it is
    // served at the floor level instead.
    return latency_sensitive ? CodelRung::kFuxi : CodelRung::kShed;
  }
  if (c >= options_.fuxi_count) return CodelRung::kFuxi;
  if (c >= options_.theta0_count) return CodelRung::kTheta0;
  return CodelRung::kNone;
}

double SojournCodel::current_interval_seconds() const {
  if (!overloaded_ || count_ < 1) return options_.interval_seconds;
  return options_.interval_seconds / std::sqrt(static_cast<double>(count_));
}

VirtualSojournQueue::VirtualSojournQueue(const CodelVirtualModel& model)
    : model_(model),
      free_at_(static_cast<std::size_t>(std::max(1, model.workers)), 0.0) {}

VirtualSojournQueue::Arrival VirtualSojournQueue::NextArrival() {
  Arrival arrival;
  arrival.arrival_seconds = vnow_;
  vnow_ += model_.interarrival_seconds;
  const double earliest = *std::min_element(free_at_.begin(), free_at_.end());
  arrival.start_seconds = std::max(arrival.arrival_seconds, earliest);
  arrival.sojourn_seconds = arrival.start_seconds - arrival.arrival_seconds;
  return arrival;
}

void VirtualSojournQueue::Consume(const Arrival& arrival) {
  auto it = std::min_element(free_at_.begin(), free_at_.end());
  *it = arrival.start_seconds + model_.service_seconds;
}

}  // namespace fgro
