#include "common/math_utils.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fgro {

double Sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return Sum(v) / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double Min(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return *std::max_element(v.begin(), v.end());
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  double rank = (p / 100.0) * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Median(const std::vector<double>& v) { return Percentile(v, 50.0); }

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  double ma = Mean(a), mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double Clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

double Log1pSafe(double x) { return std::log1p(std::max(0.0, x)); }

std::vector<int> Histogram(const std::vector<double>& v, double lo, double hi,
                           int bins) {
  std::vector<int> counts(static_cast<size_t>(std::max(bins, 1)), 0);
  if (v.empty() || hi <= lo) return counts;
  double width = (hi - lo) / bins;
  for (double x : v) {
    int b = static_cast<int>((x - lo) / width);
    b = std::max(0, std::min(bins - 1, b));
    counts[static_cast<size_t>(b)]++;
  }
  return counts;
}

}  // namespace fgro
