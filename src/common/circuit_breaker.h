#ifndef FGRO_COMMON_CIRCUIT_BREAKER_H_
#define FGRO_COMMON_CIRCUIT_BREAKER_H_

#include "common/status.h"

namespace fgro {

/// Knobs for one breaker. Defaults trip after 3 consecutive failures, stay
/// open for 30 s, and close again after a single successful half-open probe.
struct CircuitBreakerOptions {
  bool enabled = false;        // convenience flag for embedding in configs
  int failure_threshold = 3;   // consecutive failures that trip the breaker
  double open_seconds = 30.0;  // cooldown before the first half-open probe
  int half_open_successes = 1; // probe successes needed to close again
};

/// Circuit breaker over a fallible dependency (the model server, here):
/// closed -> open on `failure_threshold` consecutive failures, open ->
/// half-open once `open_seconds` of cooldown elapse, half-open -> closed
/// after `half_open_successes` successful probes (or back to open on any
/// probe failure). While open, AllowRequest short-circuits so callers fall
/// straight to their fallback instead of burning retry budget on a dead
/// dependency.
///
/// The clock is injected: every method takes `now` in caller-owned seconds
/// (the simulator passes simulated time), so two replays with identical
/// inputs walk identical state sequences — no wall-clock nondeterminism.
/// `now` must be non-decreasing across calls.
class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(const CircuitBreakerOptions& options);

  /// True when a call may proceed. Transitions open -> half-open when the
  /// cooldown has elapsed; otherwise an open breaker counts a short-circuit
  /// and refuses.
  bool AllowRequest(double now);

  void RecordSuccess(double now);
  void RecordFailure(double now);

  /// Which Status codes count as breaker failures: the transient
  /// service-side errors (kUnavailable, kDeadlineExceeded). Caller bugs
  /// (kInvalidArgument, ...) never trip the breaker.
  static bool CountsAsFailure(const Status& status);

  /// Routes `status` to RecordSuccess / RecordFailure / no-op per
  /// CountsAsFailure.
  void Record(const Status& status, double now);

  State state() const { return state_; }
  static const char* StateName(State state);

  long trips() const { return trips_; }                    // closed/half-open -> open
  long short_circuits() const { return short_circuits_; }  // refused while open
  long recoveries() const { return recoveries_; }          // half-open -> closed
  int consecutive_failures() const { return consecutive_failures_; }

  const CircuitBreakerOptions& options() const { return options_; }

 private:
  void Trip(double now);

  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  double opened_at_ = 0.0;
  long trips_ = 0;
  long short_circuits_ = 0;
  long recoveries_ = 0;
};

}  // namespace fgro

#endif  // FGRO_COMMON_CIRCUIT_BREAKER_H_
