#ifndef FGRO_COMMON_BOUNDED_QUEUE_H_
#define FGRO_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace fgro {

/// Bounded multi-producer/multi-consumer queue with a small fixed number of
/// strict priority lanes: lane 0 (latency-sensitive) always pops before
/// lane 1 (batch), FIFO within a lane. The capacity bound is the admission
/// -control primitive of the RO service — TryPush never blocks and returns
/// false when the queue is at capacity, so producers shed load (reject with
/// kResourceExhausted) instead of queueing unboundedly and letting tail
/// latency grow without limit.
template <typename T>
class BoundedPriorityQueue {
 public:
  explicit BoundedPriorityQueue(std::size_t capacity, int num_lanes = 2)
      : capacity_(capacity),
        lanes_(static_cast<std::size_t>(num_lanes > 0 ? num_lanes : 1)) {}

  BoundedPriorityQueue(const BoundedPriorityQueue&) = delete;
  BoundedPriorityQueue& operator=(const BoundedPriorityQueue&) = delete;

  /// Non-blocking push into `lane` (clamped to the valid range). Returns
  /// false — the caller sheds — when the queue is full or closed.
  bool TryPush(T item, int lane = 0) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || size_ >= capacity_) return false;
      lanes_[ClampLane(lane)].push_back(std::move(item));
      ++size_;
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and* empty.
  /// Returns false only in the latter case, so consumers drain every
  /// admitted item before exiting.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;
    for (std::deque<T>& lane : lanes_) {
      if (lane.empty()) continue;
      *out = std::move(lane.front());
      lane.pop_front();
      --size_;
      return true;
    }
    return false;  // unreachable: size_ > 0 implies a non-empty lane
  }

  /// Rejects future pushes; consumers drain the remainder and then Pop
  /// returns false.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  std::size_t ClampLane(int lane) const {
    if (lane < 0) return 0;
    if (static_cast<std::size_t>(lane) >= lanes_.size()) {
      return lanes_.size() - 1;
    }
    return static_cast<std::size_t>(lane);
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<std::deque<T>> lanes_;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace fgro

#endif  // FGRO_COMMON_BOUNDED_QUEUE_H_
