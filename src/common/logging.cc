#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace fgro {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

/// Serializes the final emit of each log line so concurrent service workers
/// never interleave characters of two lines. Each line is fully formatted
/// into its own buffer first; the lock only covers the single stream write.
std::mutex& EmitMutex() {
  static std::mutex mutex;
  return mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::cerr << line;
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  const std::string line = stream_.str();
  {
    std::lock_guard<std::mutex> lock(EmitMutex());
    std::cerr << line;
  }
  std::abort();
}

}  // namespace internal
}  // namespace fgro
