#ifndef FGRO_COMMON_CODEL_H_
#define FGRO_COMMON_CODEL_H_

#include <vector>

namespace fgro {

/// Escalation rung the CoDel controller asks the service to apply to a
/// request. The three-rung overload response, mildest first: demote the
/// decision one ladder level (kTheta0), demote to the model-free floor
/// (kFuxi), early-drop the request at admission (kShed). kNone admits and
/// serves at the configured level.
enum class CodelRung { kNone = 0, kTheta0 = 1, kFuxi = 2, kShed = 3 };

inline const char* CodelRungName(CodelRung rung) {
  switch (rung) {
    case CodelRung::kNone: return "none";
    case CodelRung::kTheta0: return "theta0";
    case CodelRung::kFuxi: return "fuxi";
    case CodelRung::kShed: return "shed";
  }
  return "unknown";
}

struct CodelOptions {
  bool enabled = false;
  /// Sojourn-time target: queue delay the controller tolerates
  /// indefinitely. The adaptive-target layer may move this at runtime
  /// (via set_target); this is the initial value.
  double target_seconds = 0.005;
  /// Control interval: the sojourn must stay above target for one full
  /// interval before the controller declares overload, and while
  /// overloaded the escalation count advances once per (shrinking)
  /// interval.
  double interval_seconds = 0.100;
  /// Rung schedule on the escalation count: count >= theta0_count demotes
  /// batch requests one ladder level, >= fuxi_count demotes to the floor,
  /// >= shed_count early-drops fresh batch arrivals.
  int theta0_count = 1;
  int fuxi_count = 3;
  int shed_count = 6;
  /// Priority-lane protection: latency-sensitive requests evaluate the
  /// rung schedule at (count - protect_margin) and are never shed, so the
  /// latency-sensitive lane keeps full-quality decisions until the batch
  /// lane is already at the floor.
  int protect_margin = 3;
};

/// Deterministic sojourn-time CoDel (Controlled Delay, RFC 8289 adapted
/// from packet dropping to a demote/shed rung ladder). Entirely
/// clock-injected: the controller never reads a clock — every Observe()
/// carries the caller's notion of "now" (wall seconds in the live service,
/// virtual sim-clock seconds in deterministic replay), so identical
/// observation sequences produce identical state on any machine.
///
/// Control law: a sojourn (queue delay seen at dequeue) below target
/// clears the pending-overload mark and ends an overload episode. A
/// sojourn at/above target arms a mark one interval in the future; if the
/// sojourn is still above target when that mark passes — i.e. the *minimum*
/// delay over the interval never dipped below target — the controller
/// enters the overloaded state. While overloaded the escalation count
/// increments on a schedule that tightens by the inverse-sqrt law
/// (interval / sqrt(count)), the classic CoDel drop-rate ramp.
///
/// Not thread-safe: the owning service calls it under its control-plane
/// mutex.
class SojournCodel {
 public:
  explicit SojournCodel(const CodelOptions& options)
      : options_(options), target_(options.target_seconds) {}

  /// One sojourn observation taken at time `now_seconds` (any monotonic
  /// seconds-valued clock, consistent across calls).
  void Observe(double now_seconds, double sojourn_seconds);

  /// Rung currently in force for a request of the given lane.
  CodelRung RungFor(bool latency_sensitive) const;

  /// Adaptive-target hook; clamps below are the caller's business.
  void set_target(double target_seconds) { target_ = target_seconds; }
  double target_seconds() const { return target_; }

  bool overloaded() const { return overloaded_; }
  int count() const { return count_; }
  /// Current control interval: interval / sqrt(count) while overloaded
  /// (the inverse-sqrt tightening), the configured interval otherwise.
  double current_interval_seconds() const;
  /// Completed overload episodes (overloaded -> clear transitions).
  long interval_resets() const { return interval_resets_; }

 private:
  CodelOptions options_;
  double target_;
  bool overloaded_ = false;
  int count_ = 0;            // escalation count while overloaded
  int last_count_ = 0;       // count when the last episode ended
  double last_exit_time_ = 0.0;
  double first_above_time_ = 0.0;  // 0 = no pending mark
  double next_fire_time_ = 0.0;
  long interval_resets_ = 0;
};

/// Deterministic queueing model that stands in for the wall clock when a
/// replay must be byte-identical across worker-thread counts. Arrivals are
/// spaced `interarrival_seconds` apart on a virtual clock in submission
/// order; `workers` modeled servers (a fixed config, deliberately NOT tied
/// to the physical service_threads — it models the paper's RO service
/// capacity, and tying it to the host would make sojourns thread-count
/// dependent) each take `service_seconds` per request. The virtual sojourn
/// of an admission is then a pure function of the submission sequence, so
/// CoDel decisions derived from it are too.
struct CodelVirtualModel {
  double interarrival_seconds = 0.5;
  double service_seconds = 1.0;
  int workers = 2;
};

/// FIFO G/D/c bookkeeping over the virtual model: NextArrival() stamps the
/// next submission's arrival/start/sojourn; Consume() commits a served
/// admission to the earliest-free modeled worker (call it only for
/// requests that were actually admitted — a shed consumes no capacity).
class VirtualSojournQueue {
 public:
  explicit VirtualSojournQueue(const CodelVirtualModel& model);

  struct Arrival {
    double arrival_seconds = 0.0;
    double start_seconds = 0.0;    // virtual dequeue time
    double sojourn_seconds = 0.0;  // start - arrival
  };

  /// Advances the virtual arrival clock and computes when the earliest
  /// modeled worker could start this request. Does not consume capacity.
  Arrival NextArrival();

  /// Commits `arrival` as served: the earliest-free worker is busy until
  /// start + service_seconds.
  void Consume(const Arrival& arrival);

  double now_seconds() const { return vnow_; }

 private:
  CodelVirtualModel model_;
  double vnow_ = 0.0;
  std::vector<double> free_at_;  // per modeled worker
};

}  // namespace fgro

#endif  // FGRO_COMMON_CODEL_H_
