#ifndef FGRO_COMMON_DEADLINE_H_
#define FGRO_COMMON_DEADLINE_H_

#include <functional>
#include <limits>
#include <string>
#include <utility>

#include "common/status.h"

namespace fgro {

/// A propagated time budget. Instead of measuring a solve after the fact and
/// discovering it blew `ro_time_limit_seconds`, the caller creates a
/// Deadline up front and threads it through placement / RAA / model calls;
/// each solver checks it at iteration granularity and aborts early, so the
/// degradation ladder takes over with budget still left to run the fallback.
///
/// The clock is injected: `After(budget, clock)` uses any monotonic
/// seconds-valued callable (tests pass a fake they advance by hand), and the
/// default uses the process steady clock. Default-constructed deadlines are
/// infinite and never expire — the expired() fast path does not touch the
/// clock, so an unarmed deadline costs one branch per check.
class Deadline {
 public:
  using ClockFn = std::function<double()>;

  /// Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `budget_seconds` of wall-clock time from now.
  static Deadline After(double budget_seconds);

  /// Expires when `clock()` reaches `clock() + budget_seconds`.
  static Deadline After(double budget_seconds, ClockFn clock);

  bool infinite() const { return !clock_; }

  bool expired() const {
    if (!clock_) return false;
    return clock_() >= expires_at_;
  }

  /// Seconds left; +infinity for an infinite deadline, clamped at 0 after
  /// expiry.
  double remaining_seconds() const;

  /// OK while time remains; kDeadlineExceeded mentioning `what` after.
  Status Check(const char* what) const;

 private:
  Deadline(double expires_at, ClockFn clock)
      : expires_at_(expires_at), clock_(std::move(clock)) {}

  double expires_at_ = std::numeric_limits<double>::infinity();
  ClockFn clock_;  // null = infinite
};

}  // namespace fgro

#endif  // FGRO_COMMON_DEADLINE_H_
