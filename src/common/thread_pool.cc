#include "common/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

namespace fgro {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Join(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    tasks_.push_back(std::move(task));
  }
  ready_.notify_one();
  return true;
}

void ThreadPool::Join() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ && threads_.empty()) return;
    closed_ = true;
  }
  ready_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [&] { return !tasks_.empty() || closed_; });
      if (tasks_.empty()) return;  // closed and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& body) {
  if (count <= 0) return;
  if (pool == nullptr || pool->size() == 0 || count == 1) {
    for (int i = 0; i < count; ++i) body(i);
    return;
  }
  struct State {
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::mutex mutex;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  // Workers hold the state alive via shared_ptr; `body` is only captured by
  // reference, which is safe because ParallelFor blocks until done == count
  // and a late-started worker then finds next >= count without touching it.
  auto run = [state, count, &body] {
    for (;;) {
      const int i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      body(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->cv.notify_all();
      }
    }
  };
  const int helpers = pool->size() < count - 1 ? pool->size() : count - 1;
  for (int h = 0; h < helpers; ++h) {
    // A refused Submit (joined pool) is fine: the caller's loop below picks
    // up every unclaimed index.
    pool->Submit(run);
  }
  run();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == count;
  });
}

}  // namespace fgro
