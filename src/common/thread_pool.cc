#include "common/thread_pool.h"

#include <utility>

namespace fgro {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Join(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    tasks_.push_back(std::move(task));
  }
  ready_.notify_one();
  return true;
}

void ThreadPool::Join() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ && threads_.empty()) return;
    closed_ = true;
  }
  ready_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [&] { return !tasks_.empty() || closed_; });
      if (tasks_.empty()) return;  // closed and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace fgro
