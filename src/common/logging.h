#ifndef FGRO_COMMON_LOGGING_H_
#define FGRO_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace fgro {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are discarded. Defaults to kInfo
/// and can be raised by benchmarks to keep table output clean.
///
/// Logging is thread-safe: each FGRO_LOG line is formatted into a private
/// buffer and emitted under a single global mutex, so lines from concurrent
/// service workers never tear into each other.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (with level prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction (CHECK failures).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define FGRO_LOG(level)                                                  \
  if (::fgro::LogLevel::level < ::fgro::GetLogLevel()) {                 \
  } else                                                                 \
    ::fgro::internal::LogMessage(::fgro::LogLevel::level, __FILE__, __LINE__)

#define FGRO_CHECK(condition)                                            \
  if (condition) {                                                       \
  } else                                                                 \
    ::fgro::internal::FatalLogMessage(__FILE__, __LINE__, #condition)

#define FGRO_CHECK_OK(expr)                                              \
  do {                                                                   \
    ::fgro::Status _st = (expr);                                         \
    FGRO_CHECK(_st.ok()) << _st.ToString();                              \
  } while (0)

}  // namespace fgro

#endif  // FGRO_COMMON_LOGGING_H_
