#ifndef FGRO_COMMON_THREAD_POOL_H_
#define FGRO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fgro {

/// Fixed-size pool of worker threads draining an unbounded internal task
/// queue. The RO service submits one long-running worker loop per thread;
/// short tasks work just as well. Join() (also run by the destructor)
/// closes the queue, lets the workers drain what is already queued, and
/// joins them — after Join, Submit returns false and the task is dropped.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; false when the pool has been joined.
  bool Submit(std::function<void()> task);

  /// Idempotent: close the queue, drain queued tasks, join all workers.
  void Join();

  int size() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> tasks_;
  bool closed_ = false;
  std::vector<std::thread> threads_;
};

/// Runs body(i) for every i in [0, count), fanning across `pool` with the
/// calling thread participating, and blocks until all indices finish. A
/// null or empty pool (or a joined one — Submit refusals fall back to the
/// caller) degrades to a plain serial loop. Indices are claimed from an
/// atomic counter, so the execution order is unspecified: bodies must be
/// independent, and deterministic callers should write to per-index slots
/// and merge sequentially after this returns.
void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& body);

}  // namespace fgro

#endif  // FGRO_COMMON_THREAD_POOL_H_
