#include "common/deadline.h"

#include <algorithm>
#include <chrono>

namespace fgro {

namespace {

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Deadline Deadline::After(double budget_seconds) {
  return After(budget_seconds, SteadyNowSeconds);
}

Deadline Deadline::After(double budget_seconds, ClockFn clock) {
  double now = clock();
  return Deadline(now + std::max(0.0, budget_seconds), std::move(clock));
}

double Deadline::remaining_seconds() const {
  if (!clock_) return std::numeric_limits<double>::infinity();
  return std::max(0.0, expires_at_ - clock_());
}

Status Deadline::Check(const char* what) const {
  if (!expired()) return Status::OK();
  return Status::DeadlineExceeded(std::string(what) +
                                  ": propagated RO budget exhausted");
}

}  // namespace fgro
