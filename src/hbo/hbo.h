#ifndef FGRO_HBO_HBO_H_
#define FGRO_HBO_HBO_H_

#include <map>
#include <vector>

#include "cluster/resource.h"
#include "plan/stage.h"

namespace fgro {

/// HBO's output for a stage: the partition count (number of instances) and
/// the single resource plan theta0 shared by all instances.
struct HboRecommendation {
  int partition_count = 1;
  ResourceConfig theta0;
};

struct HboOptions {
  double target_rows_per_instance = 2.0e5;
  int max_instances = 4096;
  // HBO is deliberately conservative: it over-provisions so recurring jobs
  // do not regress, which is exactly the slack RAA later recovers (the
  // paper's motivating example: a user paying 10x the resources for 2x the
  // latency).
  double overprovision_factor = 2.0;
};

/// The multiplicative window around theta0 that historical runs explore
/// (HBO re-tuning drift) and therefore the only region where the learned
/// model's theta-response is trustworthy. RAA restricts its search to this
/// window — the paper's F.15 observes that beyond the observed plans the
/// model "is not guaranteed to function properly".
constexpr double kPlanExplorationLow = 0.28;
constexpr double kPlanExplorationHigh = 2.2;

/// History-Based Optimizer. For a recurring stage template with recorded
/// history it returns the best-performing past configuration; otherwise it
/// falls back to a sizing rule on the CBO estimates (rows-per-instance
/// target for the partition count, estimated per-instance work/working-set
/// for theta0), quantized to the discrete catalog of container plans that a
/// production cluster actually offers (the paper observes only 17-38
/// distinct plans per workload).
class Hbo {
 public:
  explicit Hbo(HboOptions options = {}) : options_(options) {}

  /// The discrete container configurations available in the cluster.
  static const std::vector<ResourceConfig>& ResourcePlanCatalog();

  /// Snaps an arbitrary configuration to the nearest catalog entry with at
  /// least the requested cores and memory (rounds up, like a real quota).
  static ResourceConfig QuantizeUp(const ResourceConfig& theta);

  HboRecommendation Recommend(const Stage& stage) const;

  /// Records one historical run of a template; future Recommend calls for
  /// that template return the lowest-latency recorded configuration.
  void RecordRun(int template_id, const HboRecommendation& used,
                 double stage_latency, double stage_cost);

  const HboOptions& options() const { return options_; }

 private:
  struct HistoryEntry {
    HboRecommendation best;
    double best_latency = 0.0;
    int runs = 0;
  };

  HboOptions options_;
  std::map<int, HistoryEntry> history_;
};

}  // namespace fgro

#endif  // FGRO_HBO_HBO_H_
