#include "hbo/hbo.h"

#include <algorithm>
#include <cmath>

#include "cbo/cost_model.h"

namespace fgro {

const std::vector<ResourceConfig>& Hbo::ResourcePlanCatalog() {
  // cores x memory_gb grid a production scheduler would expose. Kept small
  // on purpose: Channel 3 sparsity in the traces mirrors the paper (Expt 2).
  static const std::vector<ResourceConfig>& kCatalog =
      *new std::vector<ResourceConfig>{
          {0.25, 0.5}, {0.25, 1}, {0.5, 1},  {0.5, 2},  {0.5, 4},
          {1, 2},      {1, 4},    {1, 8},    {2, 4},    {2, 8},
          {2, 16},     {4, 8},    {4, 16},   {4, 32},   {8, 16},
          {8, 32},     {8, 64},   {12, 24},  {12, 48},  {16, 32},
          {16, 64},    {16, 128},
      };
  return kCatalog;
}

ResourceConfig Hbo::QuantizeUp(const ResourceConfig& theta) {
  const std::vector<ResourceConfig>& catalog = ResourcePlanCatalog();
  const ResourceConfig* best = nullptr;
  for (const ResourceConfig& c : catalog) {
    if (c.cores + 1e-9 >= theta.cores && c.memory_gb + 1e-9 >= theta.memory_gb) {
      if (best == nullptr || c.cores < best->cores ||
          (c.cores == best->cores && c.memory_gb < best->memory_gb)) {
        best = &c;
      }
    }
  }
  return best != nullptr ? *best : catalog.back();
}

HboRecommendation Hbo::Recommend(const Stage& stage) const {
  auto it = history_.find(stage.template_id);
  if (it != history_.end() && it->second.runs > 0) {
    return it->second.best;
  }

  HboRecommendation rec;
  const double input_rows = std::max(1.0, stage.EstimatedInputRows());
  rec.partition_count = static_cast<int>(
      std::clamp(std::ceil(input_rows / options_.target_rows_per_instance),
                 1.0, static_cast<double>(options_.max_instances)));

  // Size theta0 from the estimated per-instance work: CPU from total
  // operator cost, memory from the largest pipeline-breaker input.
  CostModel cm;
  double total_cost = 0.0;
  double working_set_bytes = 0.0;
  for (const Operator& op : stage.operators) {
    OperatorCost c = cm.Cost(op.type,
                             {op.estimate.input_rows, op.estimate.output_rows},
                             op.estimate.avg_row_size, rec.partition_count);
    total_cost += c.total();
    switch (op.type) {
      case OperatorType::kHashJoin:
      case OperatorType::kMergeJoin:
      case OperatorType::kHashAgg:
      case OperatorType::kSortedAgg:
      case OperatorType::kSort:
      case OperatorType::kWindow:
        working_set_bytes = std::max(
            working_set_bytes, op.estimate.input_rows /
                                   std::max(1, rec.partition_count) *
                                   op.estimate.avg_row_size * 1.4);
        break;
      default:
        break;
    }
  }
  // Heavier per-instance work historically got more cores. Historical
  // plans cap at 8 cores / 64 GB: the larger catalog entries exist for
  // RAA's upsizing, not for HBO's uniform defaults (which must leave the
  // cluster enough room to host the whole stage).
  double cores = std::clamp(
      total_cost / 4.0e5 * options_.overprovision_factor, 0.25, 8.0);
  double mem_gb = std::clamp(
      working_set_bytes / 1e9 * options_.overprovision_factor, 0.5, 64.0);
  rec.theta0 = QuantizeUp({cores, mem_gb});
  return rec;
}

void Hbo::RecordRun(int template_id, const HboRecommendation& used,
                    double stage_latency, double /*stage_cost*/) {
  HistoryEntry& entry = history_[template_id];
  if (entry.runs == 0 || stage_latency < entry.best_latency) {
    entry.best = used;
    entry.best_latency = stage_latency;
  }
  entry.runs++;
}

}  // namespace fgro
