#include "cbo/cost_model.h"

#include <algorithm>
#include <cmath>

namespace fgro {

double CostModel::CpuWeight(OperatorType type) {
  switch (type) {
    case OperatorType::kTableScan: return 0.4;
    case OperatorType::kFilter: return 0.3;
    case OperatorType::kProject: return 0.2;
    case OperatorType::kHashJoin: return 1.6;
    case OperatorType::kMergeJoin: return 1.1;
    case OperatorType::kHashAgg: return 1.2;
    case OperatorType::kSortedAgg: return 0.8;
    case OperatorType::kSort: return 1.0;
    case OperatorType::kTopN: return 0.5;
    case OperatorType::kWindow: return 1.4;
    case OperatorType::kUnion: return 0.1;
    case OperatorType::kStreamLineRead: return 0.3;
    case OperatorType::kStreamLineWrite: return 0.5;
    case OperatorType::kNumOperatorTypes: break;
  }
  return 1.0;
}

double CostModel::IoWeight(OperatorType type) {
  switch (type) {
    case OperatorType::kTableScan: return 1.0;
    case OperatorType::kMergeJoin: return 0.35;  // external-sort spill traffic
    case OperatorType::kStreamLineRead: return 1.2;   // network shuffle read
    case OperatorType::kStreamLineWrite: return 1.5;  // network shuffle write
    default: return 0.0;
  }
}

namespace {
bool IsSortBased(OperatorType type) {
  return type == OperatorType::kSort || type == OperatorType::kMergeJoin ||
         type == OperatorType::kSortedAgg;
}
}  // namespace

OperatorCost CostModel::Cost(OperatorType type,
                             const OperatorCardinality& card,
                             double avg_row_size, int partition_count) const {
  const double parts = std::max(1, partition_count);
  const double rows = card.input_rows / parts;
  const double bytes = rows * avg_row_size;
  OperatorCost cost;
  double cpu_rows = rows;
  if (IsSortBased(type)) {
    cpu_rows *= std::log2(std::max(2.0, rows));
  }
  cost.cpu = CpuWeight(type) * cpu_rows;
  // IO cost is charged per KB so CPU and IO land in comparable units.
  cost.io = IoWeight(type) * bytes / 1024.0;
  return cost;
}

Result<std::vector<OperatorCardinality>> CostModel::PropagateCardinality(
    const Stage& stage, const std::vector<double>& leaf_input_rows,
    bool use_truth) const {
  if (leaf_input_rows.size() != stage.operators.size()) {
    return Status::InvalidArgument(
        "leaf_input_rows must have one entry per operator");
  }
  Result<std::vector<int>> topo = stage.TopologicalOrder();
  if (!topo.ok()) return topo.status();

  std::vector<OperatorCardinality> cards(stage.operators.size());
  for (int op_id : topo.value()) {
    const Operator& op = stage.operators[static_cast<size_t>(op_id)];
    OperatorCardinality& card = cards[static_cast<size_t>(op_id)];
    if (op.is_leaf()) {
      card.input_rows = leaf_input_rows[static_cast<size_t>(op_id)];
    } else {
      card.input_rows = 0.0;
      for (int c : op.children) {
        card.input_rows += cards[static_cast<size_t>(c)].output_rows;
      }
    }
    const double sel = use_truth ? op.truth.selectivity
                                 : op.estimate.selectivity;
    card.output_rows = card.input_rows * sel;
  }
  return cards;
}

Status CostModel::AnnotateStageCosts(Stage* stage) const {
  const int parts = std::max(1, stage->instance_count());
  for (Operator& op : stage->operators) {
    OperatorCost est = Cost(op.type,
                            {op.estimate.input_rows, op.estimate.output_rows},
                            op.estimate.avg_row_size, parts);
    op.estimate.cost = est.total();
    OperatorCost tru = Cost(op.type,
                            {op.truth.input_rows, op.truth.output_rows},
                            op.truth.avg_row_size, parts);
    op.truth.cost = tru.total();
  }
  return Status::OK();
}

}  // namespace fgro
