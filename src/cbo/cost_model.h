#ifndef FGRO_CBO_COST_MODEL_H_
#define FGRO_CBO_COST_MODEL_H_

#include <vector>

#include "common/status.h"
#include "plan/stage.h"

namespace fgro {

/// Per-operator cardinalities produced by propagating leaf inputs through
/// operator selectivities (children's outputs sum into the parent's input).
struct OperatorCardinality {
  double input_rows = 0.0;
  double output_rows = 0.0;
};

/// Cost of one operator, split into CPU work and IO work (CBO cost units;
/// roughly "row-equivalents" of work for one partition).
struct OperatorCost {
  double cpu = 0.0;
  double io = 0.0;
  double total() const { return cpu + io; }
};

/// The CBO's analytical cost model. It plays two roles, exactly as in the
/// paper: (1) estimating stage-level operator costs during plan generation,
/// and (2) being re-invoked with instance-level cardinalities and partition
/// count 1 to derive the AIM features (Section 4.1).
class CostModel {
 public:
  /// Per-row CPU weight of an operator type. Sort-based operators get an
  /// extra log(input) factor in Cost().
  static double CpuWeight(OperatorType type);
  /// Per-byte IO weight; zero for pure-compute operators.
  static double IoWeight(OperatorType type);

  /// Cost of one operator given its cardinalities; work is divided across
  /// `partition_count` parallel instances.
  OperatorCost Cost(OperatorType type, const OperatorCardinality& card,
                    double avg_row_size, int partition_count) const;

  /// Propagates leaf cardinalities through the DAG using the operators'
  /// `selectivity` from the chosen stats side. `leaf_input_rows[op_id]` must
  /// be set for every leaf operator id (others ignored).
  /// `use_truth` selects truth vs. estimate selectivities.
  Result<std::vector<OperatorCardinality>> PropagateCardinality(
      const Stage& stage, const std::vector<double>& leaf_input_rows,
      bool use_truth) const;

  /// Fills `estimate.cost` of every operator of the stage from its estimated
  /// cardinalities (and `truth.cost` from true cardinalities).
  Status AnnotateStageCosts(Stage* stage) const;
};

}  // namespace fgro

#endif  // FGRO_CBO_COST_MODEL_H_
