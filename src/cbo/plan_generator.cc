#include "cbo/plan_generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"

namespace fgro {

namespace {

// Unary operators eligible for chain positions, with sampling weights.
const OperatorType kUnaryOps[] = {
    OperatorType::kFilter,   OperatorType::kProject, OperatorType::kHashAgg,
    OperatorType::kSortedAgg, OperatorType::kSort,   OperatorType::kTopN,
    OperatorType::kWindow,
};
const double kUnaryWeights[] = {3.0, 3.0, 1.5, 0.7, 0.8, 0.6, 0.6};

OperatorType SampleUnary(Rng* rng) {
  std::vector<double> w(std::begin(kUnaryWeights), std::end(kUnaryWeights));
  return kUnaryOps[rng->Categorical(w)];
}

}  // namespace

Stage PlanGenerator::GenerateStageTopology(int target_ops,
                                           int num_shuffle_inputs,
                                           Rng* rng) const {
  Stage stage;
  auto add_op = [&stage](OperatorType type,
                         std::vector<int> children) -> int {
    Operator op;
    op.id = stage.operator_count();
    op.type = type;
    op.children = std::move(children);
    stage.operators.push_back(op);
    return op.id;
  };

  // Leaves: one StreamLineRead per upstream dependency, or TableScans for a
  // source stage; downstream stages may additionally join a base table.
  std::vector<int> heads;
  if (num_shuffle_inputs == 0) {
    int num_scans = rng->Bernoulli(0.25) ? 2 : 1;
    for (int i = 0; i < num_scans; ++i) {
      heads.push_back(add_op(OperatorType::kTableScan, {}));
    }
  } else {
    for (int i = 0; i < num_shuffle_inputs; ++i) {
      heads.push_back(add_op(OperatorType::kStreamLineRead, {}));
    }
    if (rng->Bernoulli(options_.extra_scan_prob)) {
      heads.push_back(add_op(OperatorType::kTableScan, {}));
    }
  }

  target_ops = std::max<int>(target_ops,
                             static_cast<int>(heads.size()) + 2);
  // Grow the DAG: merge branches with joins/unions, and sprinkle unary
  // operators, until we approach the target size (leave room for the root).
  while (stage.operator_count() < target_ops - 1) {
    if (heads.size() > 1 &&
        (rng->Bernoulli(0.6) ||
         stage.operator_count() + static_cast<int>(heads.size()) >=
             target_ops - 1)) {
      size_t a = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(heads.size()) - 1));
      size_t b = a;
      while (b == a) {
        b = static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(heads.size()) - 1));
      }
      OperatorType merge_type;
      if (rng->Bernoulli(options_.join_prob)) {
        merge_type = rng->Bernoulli(options_.merge_join_frac)
                         ? OperatorType::kMergeJoin
                         : OperatorType::kHashJoin;
      } else {
        merge_type = OperatorType::kUnion;
      }
      int merged = add_op(merge_type, {heads[a], heads[b]});
      if (a > b) std::swap(a, b);
      heads.erase(heads.begin() + static_cast<long>(b));
      heads[a] = merged;
    } else {
      size_t h = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(heads.size()) - 1));
      heads[h] = add_op(SampleUnary(rng), {heads[h]});
    }
  }
  // Collapse any remaining heads pairwise so a single branch feeds the root.
  while (heads.size() > 1) {
    int merged = add_op(OperatorType::kUnion, {heads[heads.size() - 2],
                                               heads[heads.size() - 1]});
    heads.pop_back();
    heads.back() = merged;
  }
  add_op(OperatorType::kStreamLineWrite, {heads[0]});
  return stage;
}

double PlanGenerator::SampleTruthSelectivity(OperatorType type,
                                             Rng* rng) const {
  switch (type) {
    case OperatorType::kFilter:
      return std::exp(rng->Uniform(std::log(0.02), std::log(0.9)));
    case OperatorType::kHashJoin:
    case OperatorType::kMergeJoin:
      // Join "selectivity" here is output/(sum of inputs): usually reducing,
      // occasionally expanding.
      return std::exp(rng->Uniform(std::log(0.1), std::log(1.8)));
    case OperatorType::kHashAgg:
    case OperatorType::kSortedAgg:
      return std::exp(rng->Uniform(std::log(0.001), std::log(0.3)));
    case OperatorType::kTopN:
      return std::exp(rng->Uniform(std::log(0.0005), std::log(0.02)));
    default:
      return 1.0;
  }
}

Status PlanGenerator::PopulateStats(Stage* stage,
                                    const std::vector<double>& leaf_rows,
                                    Rng* rng) const {
  const size_t n = stage->operators.size();
  std::vector<double> leaf_rows_full(n, 0.0);
  {
    size_t leaf_i = 0;
    for (Operator& op : stage->operators) {
      if (op.is_leaf()) {
        if (leaf_i >= leaf_rows.size()) {
          return Status::InvalidArgument("too few leaf_rows entries");
        }
        leaf_rows_full[static_cast<size_t>(op.id)] = leaf_rows[leaf_i++];
      }
    }
    if (leaf_i != leaf_rows.size()) {
      return Status::InvalidArgument("too many leaf_rows entries");
    }
  }

  // 1. Truth selectivities, row sizes, custom features.
  Result<std::vector<int>> topo = stage->TopologicalOrder();
  if (!topo.ok()) return topo.status();
  for (int op_id : topo.value()) {
    Operator& op = stage->operators[static_cast<size_t>(op_id)];
    op.truth.selectivity = SampleTruthSelectivity(op.type, rng);
    if (op.is_leaf()) {
      op.truth.avg_row_size = rng->Uniform(32.0, 512.0);
      op.location = op.type == OperatorType::kTableScan
                        ? (rng->Bernoulli(0.7) ? DataLocation::kLocalDisk
                                               : DataLocation::kNetwork)
                        : DataLocation::kNetwork;
    } else {
      double child_size = 0.0;
      for (int c : op.children) {
        child_size = std::max(
            child_size, stage->operators[static_cast<size_t>(c)]
                            .truth.avg_row_size);
      }
      switch (op.type) {
        case OperatorType::kProject:
          op.truth.avg_row_size = child_size * rng->Uniform(0.3, 0.9);
          break;
        case OperatorType::kHashJoin:
        case OperatorType::kMergeJoin:
          op.truth.avg_row_size = child_size * rng->Uniform(1.1, 1.6);
          break;
        case OperatorType::kHashAgg:
        case OperatorType::kSortedAgg:
          op.truth.avg_row_size = child_size * rng->Uniform(0.4, 1.1);
          break;
        default:
          op.truth.avg_row_size = child_size;
      }
    }
    if (op.type == OperatorType::kStreamLineWrite) {
      op.shuffle = rng->Bernoulli(0.8) ? ShuffleStrategy::kHash
                                       : ShuffleStrategy::kRange;
    } else if (op.type == OperatorType::kStreamLineRead) {
      op.shuffle = ShuffleStrategy::kHash;
    }
    // Customized features: type-specific knobs the model sees in Channel 1.
    switch (op.type) {
      case OperatorType::kHashJoin:
      case OperatorType::kMergeJoin:
        op.custom[0] = rng->Uniform(1.0, 4.0);   // join key count
        op.custom[1] = rng->Bernoulli(0.5);      // inner/outer flag
        break;
      case OperatorType::kHashAgg:
      case OperatorType::kSortedAgg:
        op.custom[0] = rng->Uniform(1.0, 6.0);   // group-by column count
        break;
      case OperatorType::kTopN:
        op.custom[0] = std::floor(rng->Uniform(10.0, 1000.0));  // N
        break;
      case OperatorType::kFilter:
        op.custom[0] = rng->Uniform(1.0, 5.0);   // predicate count
        break;
      default:
        break;
    }
  }

  // 2. Propagate truth cardinalities.
  Result<std::vector<OperatorCardinality>> truth_cards =
      cost_model_.PropagateCardinality(*stage, leaf_rows_full,
                                       /*use_truth=*/true);
  if (!truth_cards.ok()) return truth_cards.status();
  for (size_t i = 0; i < n; ++i) {
    stage->operators[i].truth.input_rows = truth_cards.value()[i].input_rows;
    stage->operators[i].truth.output_rows = truth_cards.value()[i].output_rows;
  }

  // 3. CBO estimates: perturb selectivities/leaf sizes, then propagate so
  //    estimation error compounds with depth (as it does in real optimizers).
  std::vector<double> leaf_rows_est(n, 0.0);
  for (Operator& op : stage->operators) {
    op.estimate.selectivity =
        Clamp(op.truth.selectivity *
                  rng->LogNormal(0.0, options_.cbo_sel_error_sigma),
              1e-6, 10.0);
    op.estimate.avg_row_size = op.truth.avg_row_size;  // schema is known
    if (op.is_leaf()) {
      leaf_rows_est[static_cast<size_t>(op.id)] =
          leaf_rows_full[static_cast<size_t>(op.id)] *
          rng->LogNormal(0.0, options_.cbo_leaf_error_sigma);
    }
  }
  Result<std::vector<OperatorCardinality>> est_cards =
      cost_model_.PropagateCardinality(*stage, leaf_rows_est,
                                       /*use_truth=*/false);
  if (!est_cards.ok()) return est_cards.status();
  for (size_t i = 0; i < n; ++i) {
    stage->operators[i].estimate.input_rows = est_cards.value()[i].input_rows;
    stage->operators[i].estimate.output_rows =
        est_cards.value()[i].output_rows;
  }
  return Status::OK();
}

Result<Job> PlanGenerator::GenerateJob(int num_stages,
                                       double avg_ops_per_stage,
                                       Rng* rng) const {
  Job job;
  job.stages.resize(static_cast<size_t>(num_stages));
  job.stage_deps.resize(static_cast<size_t>(num_stages));

  // Stage s > 0 depends on 1-2 earlier stages; stage 0 is always a source.
  for (int s = 1; s < num_stages; ++s) {
    int num_deps = rng->Bernoulli(0.3) && s >= 2 ? 2 : 1;
    std::vector<int>& deps = job.stage_deps[static_cast<size_t>(s)];
    while (static_cast<int>(deps.size()) < num_deps) {
      int d = static_cast<int>(rng->UniformInt(0, s - 1));
      if (std::find(deps.begin(), deps.end(), d) == deps.end()) {
        deps.push_back(d);
      }
    }
  }

  // Build topologies and statistics in topological (index) order so each
  // stage's shuffle-read leaves can take the upstream output cardinality.
  for (int s = 0; s < num_stages; ++s) {
    const std::vector<int>& deps = job.stage_deps[static_cast<size_t>(s)];
    int target_ops = std::max(
        options_.min_ops_per_stage,
        std::min(options_.max_ops_per_stage,
                 static_cast<int>(std::lround(
                     rng->LogNormal(std::log(avg_ops_per_stage), 0.4)))));
    Stage stage = GenerateStageTopology(target_ops,
                                        static_cast<int>(deps.size()), rng);
    stage.id = s;

    // Leaf truth input rows: StreamLineReads take the upstream stages' root
    // output rows (in leaf order), TableScans sample fresh base-table sizes.
    std::vector<double> leaf_rows;
    size_t dep_i = 0;
    for (const Operator& op : stage.operators) {
      if (!op.is_leaf()) continue;
      if (op.type == OperatorType::kStreamLineRead && dep_i < deps.size()) {
        const Stage& upstream =
            job.stages[static_cast<size_t>(deps[dep_i++])];
        double upstream_out = 0.0;
        for (int r : upstream.RootOperators()) {
          upstream_out +=
              upstream.operators[static_cast<size_t>(r)].truth.output_rows;
        }
        leaf_rows.push_back(std::max(1.0, upstream_out));
      } else {
        leaf_rows.push_back(std::max(
            1.0, rng->LogNormal(options_.leaf_rows_log_mean,
                                options_.leaf_rows_log_sigma)));
      }
    }
    FGRO_RETURN_IF_ERROR(PopulateStats(&stage, leaf_rows, rng));
    job.stages[static_cast<size_t>(s)] = std::move(stage);
  }
  return job;
}

}  // namespace fgro
