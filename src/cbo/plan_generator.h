#ifndef FGRO_CBO_PLAN_GENERATOR_H_
#define FGRO_CBO_PLAN_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "cbo/cost_model.h"
#include "plan/job.h"

namespace fgro {

/// Knobs controlling the shape of generated plans. Workload profiles (A/B/C)
/// in trace/workload_gen set these to match Table 1 of the paper.
struct PlanGenOptions {
  int min_ops_per_stage = 2;
  int max_ops_per_stage = 12;
  double extra_scan_prob = 0.25;   // downstream stage also joins a base table
  double join_prob = 0.5;          // chance a merge point is a join vs union
  double merge_join_frac = 0.4;    // MergeJoin (vs HashJoin) at join points
  // Lognormal sigma of CBO selectivity misestimation, per operator depth.
  double cbo_sel_error_sigma = 0.15;
  double cbo_leaf_error_sigma = 0.05;
  // Truth distribution of leaf (source) input rows: lognormal.
  double leaf_rows_log_mean = 13.0;  // exp(13) ~ 4.4e5 rows
  double leaf_rows_log_sigma = 1.6;
};

/// Generates physical operator DAGs and job DAGs with true statistics plus
/// CBO estimates (truth perturbed by estimation error). This stands in for
/// MaxCompute's Cascades-style CBO: downstream components consume exactly
/// what a real CBO exposes — a stage DAG annotated with estimated
/// cardinality, selectivity, row size and cost.
class PlanGenerator {
 public:
  explicit PlanGenerator(PlanGenOptions options) : options_(options) {}

  /// Builds the operator topology of one stage. `num_shuffle_inputs` is the
  /// number of upstream stages it reads (0 for a source stage, which scans
  /// base tables instead). The root is always a StreamLineWrite.
  Stage GenerateStageTopology(int target_ops, int num_shuffle_inputs,
                              Rng* rng) const;

  /// Samples truth selectivities / row sizes / custom features, propagates
  /// cardinalities from the given per-leaf truth input rows, and derives CBO
  /// estimates by perturbing the truth.
  Status PopulateStats(Stage* stage, const std::vector<double>& leaf_rows,
                       Rng* rng) const;

  /// Generates a whole job: a DAG of `num_stages` stages where each
  /// non-source stage reads the shuffle outputs of 1-2 earlier stages.
  /// Instance partitioning is NOT done here (that is HBO's decision).
  Result<Job> GenerateJob(int num_stages, double avg_ops_per_stage, Rng* rng) const;

  const PlanGenOptions& options() const { return options_; }

 private:
  double SampleTruthSelectivity(OperatorType type, Rng* rng) const;

  PlanGenOptions options_;
  CostModel cost_model_;
};

}  // namespace fgro

#endif  // FGRO_CBO_PLAN_GENERATOR_H_
