#ifndef FGRO_MOO_PARETO_H_
#define FGRO_MOO_PARETO_H_

#include <vector>

namespace fgro {

/// True iff `a` Pareto-dominates `b` under minimization: a <= b in every
/// objective and strictly < in at least one.
bool Dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Indices of the non-dominated points (minimization). O(n^2) in general,
/// O(n log n) sort-based fast path for the 2-objective case.
std::vector<int> ParetoFilter(const std::vector<std::vector<double>>& points);

}  // namespace fgro

#endif  // FGRO_MOO_PARETO_H_
