#include "moo/nsga2.h"

#include <algorithm>
#include <limits>

#include "common/stopwatch.h"
#include "moo/pareto.h"

namespace fgro {

int ConstrainedCompare(const MooEvaluation& a, const MooEvaluation& b) {
  if (a.feasible() && !b.feasible()) return 1;
  if (!a.feasible() && b.feasible()) return -1;
  if (!a.feasible() && !b.feasible()) {
    if (a.violation < b.violation) return 1;
    if (a.violation > b.violation) return -1;
    return 0;
  }
  if (Dominates(a.objectives, b.objectives)) return 1;
  if (Dominates(b.objectives, a.objectives)) return -1;
  return 0;
}

namespace {

struct Individual {
  Vec genome;
  MooEvaluation eval;
  int rank = 0;
  double crowding = 0.0;
};

/// Fast non-dominated sort under constrained dominance; fills ranks and
/// returns the fronts (indices).
std::vector<std::vector<int>> NonDominatedSort(
    std::vector<Individual>* pop) {
  const int n = static_cast<int>(pop->size());
  std::vector<std::vector<int>> dominated(static_cast<size_t>(n));
  std::vector<int> dom_count(static_cast<size_t>(n), 0);
  std::vector<std::vector<int>> fronts(1);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      int cmp = ConstrainedCompare((*pop)[static_cast<size_t>(i)].eval,
                                   (*pop)[static_cast<size_t>(j)].eval);
      if (cmp > 0) {
        dominated[static_cast<size_t>(i)].push_back(j);
        dom_count[static_cast<size_t>(j)]++;
      } else if (cmp < 0) {
        dominated[static_cast<size_t>(j)].push_back(i);
        dom_count[static_cast<size_t>(i)]++;
      }
    }
    if (dom_count[static_cast<size_t>(i)] == 0) {
      (*pop)[static_cast<size_t>(i)].rank = 0;
      fronts[0].push_back(i);
    }
  }
  // dom_count for later fronts is completed only after the full pass above,
  // so build subsequent fronts now.
  size_t f = 0;
  while (f < fronts.size() && !fronts[f].empty()) {
    std::vector<int> next;
    for (int i : fronts[f]) {
      for (int j : dominated[static_cast<size_t>(i)]) {
        if (--dom_count[static_cast<size_t>(j)] == 0) {
          (*pop)[static_cast<size_t>(j)].rank = static_cast<int>(f) + 1;
          next.push_back(j);
        }
      }
    }
    if (next.empty()) break;
    fronts.push_back(std::move(next));
    ++f;
  }
  return fronts;
}

void AssignCrowding(std::vector<Individual>* pop,
                    const std::vector<int>& front) {
  if (front.empty()) return;
  const size_t k = (*pop)[static_cast<size_t>(front[0])].eval.objectives.size();
  for (int i : front) (*pop)[static_cast<size_t>(i)].crowding = 0.0;
  std::vector<int> order = front;
  for (size_t obj = 0; obj < k; ++obj) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return (*pop)[static_cast<size_t>(a)].eval.objectives[obj] <
             (*pop)[static_cast<size_t>(b)].eval.objectives[obj];
    });
    double lo = (*pop)[static_cast<size_t>(order.front())].eval.objectives[obj];
    double hi = (*pop)[static_cast<size_t>(order.back())].eval.objectives[obj];
    (*pop)[static_cast<size_t>(order.front())].crowding =
        std::numeric_limits<double>::infinity();
    (*pop)[static_cast<size_t>(order.back())].crowding =
        std::numeric_limits<double>::infinity();
    if (hi - lo < 1e-15) continue;
    for (size_t i = 1; i + 1 < order.size(); ++i) {
      double prev =
          (*pop)[static_cast<size_t>(order[i - 1])].eval.objectives[obj];
      double next =
          (*pop)[static_cast<size_t>(order[i + 1])].eval.objectives[obj];
      (*pop)[static_cast<size_t>(order[i])].crowding +=
          (next - prev) / (hi - lo);
    }
  }
}

}  // namespace

Nsga2Result RunNsga2(const MooProblem& problem, const Nsga2Options& options) {
  Rng rng(options.seed);
  Stopwatch timer;
  Nsga2Result result;

  auto make_random = [&]() {
    Individual ind;
    ind.genome.resize(static_cast<size_t>(problem.num_vars));
    for (int v = 0; v < problem.num_vars; ++v) {
      ind.genome[static_cast<size_t>(v)] = problem.sample_var(v, &rng);
    }
    ind.eval = problem.evaluate(ind.genome);
    ++result.evaluations;
    return ind;
  };

  std::vector<Individual> pop;
  pop.reserve(static_cast<size_t>(options.population) * 2);
  for (int i = 0; i < options.population; ++i) {
    if (timer.ElapsedSeconds() > options.time_limit_seconds) {
      result.timed_out = true;
      return result;
    }
    pop.push_back(make_random());
  }

  auto tournament = [&](const std::vector<Individual>& p) -> const Individual& {
    int a = static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(p.size()) - 1));
    int b = static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(p.size()) - 1));
    const Individual& ia = p[static_cast<size_t>(a)];
    const Individual& ib = p[static_cast<size_t>(b)];
    if (ia.rank != ib.rank) return ia.rank < ib.rank ? ia : ib;
    return ia.crowding > ib.crowding ? ia : ib;
  };

  for (int gen = 0; gen < options.generations; ++gen) {
    if (timer.ElapsedSeconds() > options.time_limit_seconds) {
      result.timed_out = true;
      break;
    }
    std::vector<std::vector<int>> fronts = NonDominatedSort(&pop);
    for (const std::vector<int>& front : fronts) AssignCrowding(&pop, front);

    // Offspring: uniform crossover + per-variable resampling mutation.
    std::vector<Individual> offspring;
    offspring.reserve(static_cast<size_t>(options.population));
    while (static_cast<int>(offspring.size()) < options.population) {
      if (timer.ElapsedSeconds() > options.time_limit_seconds) {
        result.timed_out = true;
        break;
      }
      const Individual& p1 = tournament(pop);
      const Individual& p2 = tournament(pop);
      Individual child;
      child.genome = p1.genome;
      if (rng.Bernoulli(options.crossover_prob)) {
        for (int v = 0; v < problem.num_vars; ++v) {
          if (rng.Bernoulli(0.5)) {
            child.genome[static_cast<size_t>(v)] =
                p2.genome[static_cast<size_t>(v)];
          }
        }
      }
      for (int v = 0; v < problem.num_vars; ++v) {
        if (rng.Bernoulli(options.mutation_prob)) {
          child.genome[static_cast<size_t>(v)] = problem.sample_var(v, &rng);
        }
      }
      child.eval = problem.evaluate(child.genome);
      ++result.evaluations;
      offspring.push_back(std::move(child));
    }
    for (Individual& c : offspring) pop.push_back(std::move(c));

    // Environmental selection back to population size.
    fronts = NonDominatedSort(&pop);
    std::vector<Individual> next;
    next.reserve(static_cast<size_t>(options.population));
    for (const std::vector<int>& front : fronts) {
      AssignCrowding(&pop, front);
      if (static_cast<int>(next.size() + front.size()) <= options.population) {
        for (int i : front) next.push_back(pop[static_cast<size_t>(i)]);
      } else {
        std::vector<int> sorted = front;
        std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
          return pop[static_cast<size_t>(a)].crowding >
                 pop[static_cast<size_t>(b)].crowding;
        });
        for (int i : sorted) {
          if (static_cast<int>(next.size()) >= options.population) break;
          next.push_back(pop[static_cast<size_t>(i)]);
        }
      }
      if (static_cast<int>(next.size()) >= options.population) break;
    }
    pop = std::move(next);
  }

  // Final feasible non-dominated set.
  std::vector<std::vector<double>> feasible_objs;
  std::vector<const Individual*> feasible;
  for (const Individual& ind : pop) {
    if (ind.eval.feasible()) {
      feasible.push_back(&ind);
      feasible_objs.push_back(ind.eval.objectives);
    }
  }
  for (int idx : ParetoFilter(feasible_objs)) {
    result.genomes.push_back(feasible[static_cast<size_t>(idx)]->genome);
    result.objectives.push_back(feasible_objs[static_cast<size_t>(idx)]);
  }
  return result;
}

}  // namespace fgro
