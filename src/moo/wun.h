#ifndef FGRO_MOO_WUN_H_
#define FGRO_MOO_WUN_H_

#include <vector>

namespace fgro {

/// UDAO's Weighted Utopia Nearest recommendation: given a Pareto set of
/// objective vectors (minimization), returns the index of the point closest
/// (weighted Euclidean on per-objective min-max-normalized values) to the
/// Utopia point — the hypothetical optimum in every objective.
/// `weights` defaults to equal importance.
int WeightedUtopiaNearest(const std::vector<std::vector<double>>& pareto,
                          const std::vector<double>& weights = {});

}  // namespace fgro

#endif  // FGRO_MOO_WUN_H_
