#include "moo/weighted_sum.h"

#include <algorithm>
#include <limits>

#include "common/stopwatch.h"
#include "moo/pareto.h"

namespace fgro {

WsSampleResult RunWeightedSumSampling(const MooProblem& problem,
                                      const WsSampleOptions& options) {
  Rng rng(options.seed);
  Stopwatch timer;
  WsSampleResult result;

  std::vector<Vec> genomes;
  std::vector<std::vector<double>> objectives;
  for (int s = 0; s < options.num_samples; ++s) {
    if (timer.ElapsedSeconds() > options.time_limit_seconds) {
      result.timed_out = true;
      break;
    }
    Vec genome(static_cast<size_t>(problem.num_vars));
    for (int v = 0; v < problem.num_vars; ++v) {
      genome[static_cast<size_t>(v)] = problem.sample_var(v, &rng);
    }
    MooEvaluation eval = problem.evaluate(genome);
    if (!eval.feasible()) continue;
    genomes.push_back(std::move(genome));
    objectives.push_back(std::move(eval.objectives));
  }
  result.feasible_samples = static_cast<int>(genomes.size());
  if (genomes.empty()) return result;

  const size_t k = objectives[0].size();
  std::vector<double> lo(k, std::numeric_limits<double>::infinity());
  std::vector<double> hi(k, -std::numeric_limits<double>::infinity());
  for (const std::vector<double>& o : objectives) {
    for (size_t j = 0; j < k; ++j) {
      lo[j] = std::min(lo[j], o[j]);
      hi[j] = std::max(hi[j], o[j]);
    }
  }
  auto norm = [&](const std::vector<double>& o, size_t j) {
    double range = hi[j] - lo[j];
    return range > 1e-15 ? (o[j] - lo[j]) / range : 0.0;
  };

  std::vector<int> picked;
  for (int wi = 0; wi < options.num_weights; ++wi) {
    // For 2 objectives sweep w linearly; for more, sample random weights.
    std::vector<double> w(k, 1.0);
    if (k == 2) {
      w[0] = options.num_weights > 1
                 ? static_cast<double>(wi) / (options.num_weights - 1)
                 : 0.5;
      w[1] = 1.0 - w[0];
    } else {
      double total = 0.0;
      for (size_t j = 0; j < k; ++j) {
        w[j] = rng.Uniform(0.0, 1.0);
        total += w[j];
      }
      for (size_t j = 0; j < k; ++j) w[j] /= std::max(1e-12, total);
    }
    int best = -1;
    double best_score = std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < objectives.size(); ++s) {
      double score = 0.0;
      for (size_t j = 0; j < k; ++j) score += w[j] * norm(objectives[s], j);
      if (score < best_score) {
        best_score = score;
        best = static_cast<int>(s);
      }
    }
    if (best >= 0) picked.push_back(best);
  }
  std::sort(picked.begin(), picked.end());
  picked.erase(std::unique(picked.begin(), picked.end()), picked.end());

  std::vector<std::vector<double>> picked_objs;
  for (int idx : picked) picked_objs.push_back(objectives[static_cast<size_t>(idx)]);
  for (int pareto_idx : ParetoFilter(picked_objs)) {
    int idx = picked[static_cast<size_t>(pareto_idx)];
    result.genomes.push_back(genomes[static_cast<size_t>(idx)]);
    result.objectives.push_back(objectives[static_cast<size_t>(idx)]);
  }
  return result;
}

}  // namespace fgro
