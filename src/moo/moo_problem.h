#ifndef FGRO_MOO_MOO_PROBLEM_H_
#define FGRO_MOO_MOO_PROBLEM_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "nn/param.h"

namespace fgro {

/// One evaluation of a candidate solution for a constrained MOO problem:
/// objective values (minimization) plus an aggregate constraint violation
/// (0 = feasible). Generic across the EVO / WS / PF baselines.
struct MooEvaluation {
  std::vector<double> objectives;
  double violation = 0.0;

  bool feasible() const { return violation <= 0.0; }
};

/// A generic constrained MOO problem over a flat genome of doubles.
/// Integer variables (machine indices, grid indices) are encoded as doubles
/// and rounded inside `evaluate`.
struct MooProblem {
  int num_vars = 0;
  int num_objectives = 2;
  std::function<double(int var, Rng* rng)> sample_var;
  std::function<MooEvaluation(const Vec& genome)> evaluate;
};

/// Feasibility-first constrained dominance (Deb's rules): feasible beats
/// infeasible; among infeasible, lower violation wins; among feasible,
/// Pareto dominance decides (1 = a better, -1 = b better, 0 = tie).
int ConstrainedCompare(const MooEvaluation& a, const MooEvaluation& b);

}  // namespace fgro

#endif  // FGRO_MOO_MOO_PROBLEM_H_
