#include "moo/wun.h"

#include <cmath>
#include <limits>

namespace fgro {

int WeightedUtopiaNearest(const std::vector<std::vector<double>>& pareto,
                          const std::vector<double>& weights) {
  if (pareto.empty()) return -1;
  const size_t k = pareto[0].size();
  // Non-finite points are excluded from both the utopia/nadir bounds and
  // candidacy: a NaN objective would otherwise corrupt the normalization
  // for every point. -1 when no finite point exists.
  auto is_finite = [&](const std::vector<double>& p) {
    for (double v : p) {
      if (!std::isfinite(v)) return false;
    }
    return true;
  };
  std::vector<double> lo(k, std::numeric_limits<double>::infinity());
  std::vector<double> hi(k, -std::numeric_limits<double>::infinity());
  bool any_finite = false;
  for (const std::vector<double>& p : pareto) {
    if (!is_finite(p)) continue;
    any_finite = true;
    for (size_t j = 0; j < k; ++j) {
      lo[j] = std::min(lo[j], p[j]);
      hi[j] = std::max(hi[j], p[j]);
    }
  }
  if (!any_finite) return -1;
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < pareto.size(); ++i) {
    if (!is_finite(pareto[i])) continue;
    double dist = 0.0;
    for (size_t j = 0; j < k; ++j) {
      double range = hi[j] - lo[j];
      double norm = range > 1e-12 ? (pareto[i][j] - lo[j]) / range : 0.0;
      double w = j < weights.size() ? weights[j] : 1.0;
      dist += w * norm * norm;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace fgro
