#include "moo/mogd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_utils.h"

namespace fgro {

Vec MinimizeFiniteDiff(const std::function<double(const Vec&)>& f, Vec x0,
                       const Vec& lower, const Vec& upper,
                       const MogdOptions& options) {
  Rng rng(options.seed);
  const size_t d = x0.size();
  Vec best_x = x0;
  double best_f = std::numeric_limits<double>::infinity();

  for (int r = 0; r < options.restarts; ++r) {
    Vec x = x0;
    if (r > 0) {
      for (size_t i = 0; i < d; ++i) x[i] = rng.Uniform(lower[i], upper[i]);
    }
    double fx = f(x);
    double lr = options.lr;
    for (int it = 0; it < options.iterations; ++it) {
      // Central finite-difference gradient, scaled per-dimension.
      Vec grad(d, 0.0);
      for (size_t i = 0; i < d; ++i) {
        double h = std::max(1e-6, options.fd_step * (upper[i] - lower[i]));
        Vec xp = x, xm = x;
        xp[i] = Clamp(x[i] + h, lower[i], upper[i]);
        xm[i] = Clamp(x[i] - h, lower[i], upper[i]);
        double denom = xp[i] - xm[i];
        grad[i] = denom > 1e-12 ? (f(xp) - f(xm)) / denom : 0.0;
      }
      double gnorm = 0.0;
      for (double g : grad) gnorm += g * g;
      gnorm = std::sqrt(gnorm);
      if (gnorm < 1e-12) break;
      Vec x_new(d);
      for (size_t i = 0; i < d; ++i) {
        double step = lr * (upper[i] - lower[i]) * grad[i] / gnorm;
        x_new[i] = Clamp(x[i] - step, lower[i], upper[i]);
      }
      double f_new = f(x_new);
      if (f_new < fx) {
        x = std::move(x_new);
        fx = f_new;
      } else {
        lr *= 0.6;  // backtrack
        if (lr < 1e-3) break;
      }
    }
    if (fx < best_f) {
      best_f = fx;
      best_x = x;
    }
  }
  return best_x;
}

}  // namespace fgro
