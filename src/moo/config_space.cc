#include "moo/config_space.h"

namespace fgro {

const std::vector<ResourceConfig>& DefaultConfigGrid() {
  static const std::vector<ResourceConfig> kGrid = [] {
    std::vector<ResourceConfig> grid;
    const double cores[] = {0.25, 0.5, 1, 2, 4, 8};
    const double mems[] = {0.5, 1, 2, 4, 8, 16, 32, 64};
    for (double c : cores) {
      for (double m : mems) grid.push_back({c, m});
    }
    return grid;
  }();
  return kGrid;
}

std::vector<ResourceConfig> FilterByCapacity(
    const std::vector<ResourceConfig>& grid, double max_cores,
    double max_memory_gb) {
  std::vector<ResourceConfig> out;
  out.reserve(grid.size());
  for (const ResourceConfig& theta : grid) {
    if (theta.cores <= max_cores + 1e-9 &&
        theta.memory_gb <= max_memory_gb + 1e-9) {
      out.push_back(theta);
    }
  }
  return out;
}

}  // namespace fgro
