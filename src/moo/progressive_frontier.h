#ifndef FGRO_MOO_PROGRESSIVE_FRONTIER_H_
#define FGRO_MOO_PROGRESSIVE_FRONTIER_H_

#include <functional>
#include <vector>

#include "moo/config_space.h"

namespace fgro {

/// Instance-level MOO solver: computes the Pareto frontier of (latency,
/// cost) over a discrete configuration grid. `predict_latency` is the
/// fine-grained model evaluated on the instance's assigned machine; cost is
/// latency * (w . theta).
///
/// Two strategies with identical output on a grid:
///  - SolveExhaustive: evaluate every grid point, Pareto-filter. Exact and,
///    at our grid sizes (~48 points), the fastest thing to do.
///  - SolveProgressive: the Progressive Frontier algorithm of UDAO adapted
///    to a discrete grid — recursively subdivides the objective space into
///    uncertainty rectangles and probes each with a constrained
///    minimization, so it approaches the frontier with a bounded number of
///    model calls. Used when the grid is large and for fidelity with the
///    paper's instance-level solver.
class InstanceMooSolver {
 public:
  using LatencyFn = std::function<double(const ResourceConfig&)>;

  explicit InstanceMooSolver(CostWeights weights) : weights_(weights) {}

  std::vector<InstanceParetoPoint> SolveExhaustive(
      const LatencyFn& predict_latency,
      const std::vector<ResourceConfig>& grid) const;

  /// Precomputed-latency form for the batched RAA sweep: `latencies` holds
  /// grid.size() values with latencies[i] = predict(grid[i]). Performs the
  /// same operations in the same order as the callback form, so the two are
  /// bit-identical whenever the inputs are.
  std::vector<InstanceParetoPoint> SolveExhaustive(
      const double* latencies, const std::vector<ResourceConfig>& grid) const;

  /// `max_probes` bounds the number of constrained sub-problems.
  std::vector<InstanceParetoPoint> SolveProgressive(
      const LatencyFn& predict_latency,
      const std::vector<ResourceConfig>& grid, int max_probes = 32) const;

 private:
  CostWeights weights_;
};

}  // namespace fgro

#endif  // FGRO_MOO_PROGRESSIVE_FRONTIER_H_
