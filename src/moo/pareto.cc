#include "moo/pareto.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fgro {

namespace {

bool AllFinite(const std::vector<double>& p) {
  for (double v : p) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

bool Dominates(const std::vector<double>& a, const std::vector<double>& b) {
  // A point carrying NaN/Inf never dominates: NaN comparisons are all
  // false, which would otherwise let a corrupt objective vector "dominate"
  // everything and poison the frontier.
  if (!AllFinite(a)) return false;
  bool strictly_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] <= b[i])) return false;  // also rejects NaN in b
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<int> ParetoFilter(
    const std::vector<std::vector<double>>& points) {
  std::vector<int> result;
  if (points.empty()) return result;

  // Non-finite objective vectors are dropped up front: a NaN latency is a
  // model failure, not a candidate operating point.
  std::vector<bool> finite(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    finite[i] = AllFinite(points[i]);
  }

  if (points[0].size() == 2) {
    // Sort by first objective (ties: second); sweep keeping the running
    // minimum of the second objective.
    std::vector<int> order;
    order.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      if (finite[i]) order.push_back(static_cast<int>(i));
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (points[static_cast<size_t>(a)][0] !=
          points[static_cast<size_t>(b)][0]) {
        return points[static_cast<size_t>(a)][0] <
               points[static_cast<size_t>(b)][0];
      }
      if (points[static_cast<size_t>(a)][1] !=
          points[static_cast<size_t>(b)][1]) {
        return points[static_cast<size_t>(a)][1] <
               points[static_cast<size_t>(b)][1];
      }
      return a < b;  // duplicates: keep the first occurrence
    });
    double best_second = std::numeric_limits<double>::infinity();
    for (int idx : order) {
      const std::vector<double>& p = points[static_cast<size_t>(idx)];
      if (p[1] < best_second) {
        result.push_back(idx);
        best_second = p[1];
      }
    }
    std::sort(result.begin(), result.end());
    return result;
  }

  for (size_t i = 0; i < points.size(); ++i) {
    if (!finite[i]) continue;
    bool dominated = false;
    for (size_t j = 0; j < points.size(); ++j) {
      if (i == j || !finite[j]) continue;
      if (Dominates(points[j], points[i])) {
        dominated = true;
        break;
      }
      // Duplicate points: keep only the first occurrence.
      if (j < i && points[j] == points[i]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(static_cast<int>(i));
  }
  return result;
}

}  // namespace fgro
