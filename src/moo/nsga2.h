#ifndef FGRO_MOO_NSGA2_H_
#define FGRO_MOO_NSGA2_H_

#include <vector>

#include "moo/moo_problem.h"

namespace fgro {

/// NSGA-II (Deb et al. 2002), the Evolutionary baseline (EVO) of Expt 10.
/// Uniform crossover + per-variable resampling mutation, feasibility-first
/// tournament selection, fast non-dominated sort, crowding distance.
struct Nsga2Options {
  int population = 40;
  int generations = 30;
  double crossover_prob = 0.9;
  double mutation_prob = 0.15;  // per variable
  double time_limit_seconds = 60.0;
  uint64_t seed = 23;
};

struct Nsga2Result {
  std::vector<Vec> genomes;                        // feasible front
  std::vector<std::vector<double>> objectives;     // matching objective rows
  bool timed_out = false;
  int evaluations = 0;
};

Nsga2Result RunNsga2(const MooProblem& problem, const Nsga2Options& options);

}  // namespace fgro

#endif  // FGRO_MOO_NSGA2_H_
