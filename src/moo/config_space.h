#ifndef FGRO_MOO_CONFIG_SPACE_H_
#define FGRO_MOO_CONFIG_SPACE_H_

#include <functional>
#include <vector>

#include "cluster/resource.h"

namespace fgro {

/// One point of an instance-level Pareto set: a resource configuration with
/// its predicted latency and cost on the instance's assigned machine.
struct InstanceParetoPoint {
  ResourceConfig theta;
  double latency = 0.0;
  double cost = 0.0;
};

/// The discrete resource-configuration space Sigma an instance's container
/// may use. RAA searches this grid; it is wider than HBO's historical
/// catalog but still bounded (the paper's F.15 discusses why the searchable
/// range must stay inside the space the model has seen).
const std::vector<ResourceConfig>& DefaultConfigGrid();

/// Grid entries that fit the given capacity limits.
std::vector<ResourceConfig> FilterByCapacity(
    const std::vector<ResourceConfig>& grid, double max_cores,
    double max_memory_gb);

}  // namespace fgro

#endif  // FGRO_MOO_CONFIG_SPACE_H_
