#ifndef FGRO_MOO_WEIGHTED_SUM_H_
#define FGRO_MOO_WEIGHTED_SUM_H_

#include <vector>

#include "moo/moo_problem.h"

namespace fgro {

/// WS(Sample) baseline of Expt 10: sample random genomes, drop the
/// infeasible ones, then for a sweep of objective weights return the
/// feasible sample minimizing the (min-max normalized) weighted sum; the
/// union over weights, Pareto-filtered, is the returned solution set.
struct WsSampleOptions {
  int num_samples = 3000;
  int num_weights = 11;  // weight sweep granularity for 2 objectives
  double time_limit_seconds = 60.0;
  uint64_t seed = 29;
};

struct WsSampleResult {
  std::vector<Vec> genomes;
  std::vector<std::vector<double>> objectives;
  int feasible_samples = 0;
  bool timed_out = false;
};

WsSampleResult RunWeightedSumSampling(const MooProblem& problem,
                                      const WsSampleOptions& options);

}  // namespace fgro

#endif  // FGRO_MOO_WEIGHTED_SUM_H_
