#ifndef FGRO_MOO_MOGD_H_
#define FGRO_MOO_MOGD_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "nn/param.h"

namespace fgro {

/// Multi-Objective Gradient Descent primitive used by the PF(MOGD)
/// baseline: minimizes a scalarized/constraint-penalized objective over a
/// box-constrained continuous vector via finite-difference gradient descent
/// with random restarts. The caller rounds the solution back to the
/// discrete domain (machine ids, config grid) exactly as the paper's MOGD
/// rounds after every backward step.
struct MogdOptions {
  int iterations = 40;
  int restarts = 2;
  double lr = 0.25;
  double fd_step = 1e-2;  // relative finite-difference step
  uint64_t seed = 11;
};

/// Returns the best x found; `f` is evaluated ~iterations * dim times per
/// restart, so keep dim modest (the baselines run on clustered variables).
Vec MinimizeFiniteDiff(const std::function<double(const Vec&)>& f, Vec x0,
                       const Vec& lower, const Vec& upper,
                       const MogdOptions& options);

}  // namespace fgro

#endif  // FGRO_MOO_MOGD_H_
