#include "moo/progressive_frontier.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "moo/pareto.h"

namespace fgro {

std::vector<InstanceParetoPoint> InstanceMooSolver::SolveExhaustive(
    const LatencyFn& predict_latency,
    const std::vector<ResourceConfig>& grid) const {
  std::vector<InstanceParetoPoint> points;
  points.reserve(grid.size());
  std::vector<std::vector<double>> objectives;
  objectives.reserve(grid.size());
  for (const ResourceConfig& theta : grid) {
    double lat = predict_latency(theta);
    double cost = lat * weights_.Rate(theta);
    points.push_back({theta, lat, cost});
    objectives.push_back({lat, cost});
  }
  std::vector<InstanceParetoPoint> frontier;
  for (int idx : ParetoFilter(objectives)) {
    frontier.push_back(points[static_cast<size_t>(idx)]);
  }
  // Descending latency (ascending cost), the order RAA-Path expects.
  std::sort(frontier.begin(), frontier.end(),
            [](const InstanceParetoPoint& a, const InstanceParetoPoint& b) {
              return a.latency > b.latency;
            });
  return frontier;
}

std::vector<InstanceParetoPoint> InstanceMooSolver::SolveExhaustive(
    const double* latencies, const std::vector<ResourceConfig>& grid) const {
  std::vector<InstanceParetoPoint> points;
  points.reserve(grid.size());
  std::vector<std::vector<double>> objectives;
  objectives.reserve(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    double lat = latencies[i];
    double cost = lat * weights_.Rate(grid[i]);
    points.push_back({grid[i], lat, cost});
    objectives.push_back({lat, cost});
  }
  std::vector<InstanceParetoPoint> frontier;
  for (int idx : ParetoFilter(objectives)) {
    frontier.push_back(points[static_cast<size_t>(idx)]);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const InstanceParetoPoint& a, const InstanceParetoPoint& b) {
              return a.latency > b.latency;
            });
  return frontier;
}

std::vector<InstanceParetoPoint> InstanceMooSolver::SolveProgressive(
    const LatencyFn& predict_latency, const std::vector<ResourceConfig>& grid,
    int max_probes) const {
  if (grid.empty()) return {};
  // Cache evaluations: the PF variant's value is bounding model calls, so we
  // memoize by grid index and only evaluate points a probe actually touches.
  std::vector<double> lat_cache(grid.size(),
                                std::numeric_limits<double>::quiet_NaN());
  auto eval = [&](size_t i) {
    if (std::isnan(lat_cache[i])) lat_cache[i] = predict_latency(grid[i]);
    return lat_cache[i];
  };
  auto cost_of = [&](size_t i) { return eval(i) * weights_.Rate(grid[i]); };

  // A probe: minimize cost subject to latency <= bound; returns grid index
  // or -1 if infeasible.
  auto probe = [&](double latency_bound) -> int {
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < grid.size(); ++i) {
      if (eval(i) <= latency_bound && cost_of(i) < best_cost) {
        best_cost = cost_of(i);
        best = static_cast<int>(i);
      }
    }
    return best;
  };

  // Anchor points: the latency-optimal and cost-optimal corners.
  int lat_opt = 0, cost_opt = 0;
  for (size_t i = 1; i < grid.size(); ++i) {
    if (eval(i) < eval(static_cast<size_t>(lat_opt))) {
      lat_opt = static_cast<int>(i);
    }
    if (cost_of(i) < cost_of(static_cast<size_t>(cost_opt))) {
      cost_opt = static_cast<int>(i);
    }
  }

  std::vector<int> solution_set = {lat_opt, cost_opt};
  // Uncertainty segments between consecutive frontier points (by latency).
  struct Segment {
    double lat_lo, lat_hi;
  };
  std::deque<Segment> segments;
  segments.push_back(
      {eval(static_cast<size_t>(lat_opt)), eval(static_cast<size_t>(cost_opt))});
  int probes = 0;
  while (!segments.empty() && probes < max_probes) {
    Segment seg = segments.front();
    segments.pop_front();
    double mid = 0.5 * (seg.lat_lo + seg.lat_hi);
    if (seg.lat_hi - seg.lat_lo < 1e-9) continue;
    int found = probe(mid);
    ++probes;
    if (found < 0) continue;
    solution_set.push_back(found);
    double found_lat = eval(static_cast<size_t>(found));
    if (found_lat > seg.lat_lo + 1e-12) {
      segments.push_back({seg.lat_lo, found_lat});
    }
    if (mid < seg.lat_hi - 1e-12) {
      segments.push_back({mid, seg.lat_hi});
    }
  }

  std::vector<std::vector<double>> objectives;
  std::vector<InstanceParetoPoint> points;
  for (int idx : solution_set) {
    size_t i = static_cast<size_t>(idx);
    points.push_back({grid[i], eval(i), cost_of(i)});
    objectives.push_back({points.back().latency, points.back().cost});
  }
  std::vector<InstanceParetoPoint> frontier;
  for (int idx : ParetoFilter(objectives)) {
    frontier.push_back(points[static_cast<size_t>(idx)]);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const InstanceParetoPoint& a, const InstanceParetoPoint& b) {
              return a.latency > b.latency;
            });
  // Drop duplicate latencies that can arise from repeated probes.
  frontier.erase(std::unique(frontier.begin(), frontier.end(),
                             [](const InstanceParetoPoint& a,
                                const InstanceParetoPoint& b) {
                               return a.latency == b.latency &&
                                      a.cost == b.cost;
                             }),
                 frontier.end());
  return frontier;
}

}  // namespace fgro
