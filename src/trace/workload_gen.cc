#include "trace/workload_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"

namespace fgro {

const char* WorkloadName(WorkloadId id) {
  switch (id) {
    case WorkloadId::kA: return "A";
    case WorkloadId::kB: return "B";
    case WorkloadId::kC: return "C";
  }
  return "?";
}

WorkloadProfile GetWorkloadProfile(WorkloadId id, double scale,
                                   double width_scale) {
  WorkloadProfile p;
  p.id = id;
  p.name = WorkloadName(id);
  switch (id) {
    case WorkloadId::kA:
      // Table 1: 405K jobs, 2.40 stages/job, 35 insts/stage, 3.71 ops/stage,
      // avg instance latency ~17 s. Cleanest workload (8.6% WMAPE).
      p.seed = 101;
      p.num_jobs = 320;
      p.num_job_templates = 28;
      p.avg_stages_per_job = 2.4;
      p.max_stages_per_job = 8;
      p.avg_ops_per_stage = 3.7;
      p.plan.leaf_rows_log_mean = 15.8;  // ~7e6 rows -> ~35 instances
      p.plan.leaf_rows_log_sigma = 1.2;
      p.plan.cbo_sel_error_sigma = 0.12;
      p.partition_skew_sigma = 0.6;
      p.env.cpu_seconds_per_work = 3.0e-5;  // avg instance latency ~17 s
      p.env.io_seconds_per_unit = 2.5e-5;
      p.env.noise_sigma = 0.05;
      p.env.io_noise_sigma = 0.10;
      break;
    case WorkloadId::kB:
      // Table 1: 72K jobs, 4.95 stages/job, 42 insts/stage, 6.27 ops/stage.
      // Most complex topologies, noisiest environment (19% WMAPE).
      p.seed = 202;
      p.num_jobs = 110;
      p.num_job_templates = 18;
      p.avg_stages_per_job = 4.95;
      p.max_stages_per_job = 14;
      p.avg_ops_per_stage = 6.27;
      p.plan.leaf_rows_log_mean = 15.9;
      p.plan.leaf_rows_log_sigma = 1.3;
      p.plan.cbo_sel_error_sigma = 0.22;
      p.partition_skew_sigma = 0.75;
      p.env.cpu_seconds_per_work = 2.2e-5;  // avg instance latency ~16 s
      p.env.io_seconds_per_unit = 2.0e-5;
      p.env.noise_sigma = 0.15;
      p.env.io_noise_sigma = 0.32;
      break;
    case WorkloadId::kC:
      // Table 1: 41K jobs, 2.42 stages/job, 505 insts/stage, 5.31 ops/stage,
      // longest instances (~71 s). Widest stages.
      p.seed = 303;
      p.num_jobs = 48;
      p.num_job_templates = 12;
      p.avg_stages_per_job = 2.42;
      p.max_stages_per_job = 6;
      p.avg_ops_per_stage = 5.31;
      p.plan.leaf_rows_log_mean = 18.3;  // ~9e7 rows -> wide stages
      p.plan.leaf_rows_log_sigma = 1.1;
      p.plan.cbo_sel_error_sigma = 0.16;
      p.hbo.target_rows_per_instance = 4.0e5;  // longer instances
      p.partition_skew_sigma = 0.85;
      p.env.cpu_seconds_per_work = 8.0e-5;  // avg instance latency ~70 s
      p.env.io_seconds_per_unit = 7.0e-5;
      p.env.noise_sigma = 0.095;
      p.env.io_noise_sigma = 0.21;
      break;
  }
  p.num_jobs = std::max(4, static_cast<int>(std::lround(p.num_jobs * scale)));
  p.width_scale = width_scale;
  return p;
}

int Workload::TotalStages() const {
  int n = 0;
  for (const Job& j : jobs) n += j.stage_count();
  return n;
}

int Workload::TotalInstances() const {
  int n = 0;
  for (const Job& j : jobs) {
    for (const Stage& s : j.stages) n += s.instance_count();
  }
  return n;
}

WorkloadGenerator::WorkloadGenerator(WorkloadProfile profile)
    : profile_(std::move(profile)),
      plan_gen_(profile_.plan),
      hbo_(profile_.hbo) {}

Status WorkloadGenerator::PartitionStage(Stage* stage, Rng* rng) const {
  HboRecommendation rec = hbo_.Recommend(*stage);
  int m = rec.partition_count;
  if (profile_.width_scale != 1.0) {
    // Paper-scale widening: inflate the HBO sizing, clamped exactly like
    // HBO clamps its own recommendation.
    m = static_cast<int>(std::min<long>(
        profile_.hbo.max_instances,
        std::max<long>(1, std::lround(m * profile_.width_scale))));
  }

  // Skewed partition fractions (lognormal weights, normalized). This is the
  // source of the large per-instance latency variance of Fig. 2(c)/11.
  std::vector<double> weights(static_cast<size_t>(m));
  double total = 0.0;
  for (double& w : weights) {
    w = rng->LogNormal(0.0, profile_.partition_skew_sigma);
    total += w;
  }
  const double truth_rows = [&] {
    double r = 0.0;
    for (const Operator& op : stage->operators) {
      if (op.is_leaf()) r += op.truth.input_rows;
    }
    return r;
  }();
  const double truth_bytes = [&] {
    double b = 0.0;
    for (const Operator& op : stage->operators) {
      if (op.is_leaf()) b += op.truth.input_rows * op.truth.avg_row_size;
    }
    return b;
  }();

  stage->instances.resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    InstanceMeta& meta = stage->instances[static_cast<size_t>(i)];
    meta.input_fraction = weights[static_cast<size_t>(i)] / total;
    meta.input_rows = truth_rows * meta.input_fraction;
    meta.input_bytes = truth_bytes * meta.input_fraction;
    meta.hidden_skew = rng->LogNormal(0.0, profile_.hidden_skew_sigma);
  }
  return Status::OK();
}

Status WorkloadGenerator::InstantiateJob(const Job& job_template, int job_id,
                                         double arrival_time, Rng* rng,
                                         Job* out) const {
  *out = job_template;  // deep copy of plans and statistics
  out->id = job_id;
  out->arrival_time = arrival_time;

  // Day-to-day drift: source (TableScan) inputs are rescaled; shuffle inputs
  // are re-derived from the upstream outputs so the job stays consistent.
  CostModel cm;
  const double jitter =
      rng->LogNormal(0.0, profile_.template_input_jitter_sigma);
  Result<std::vector<int>> topo = out->TopologicalOrder();
  if (!topo.ok()) return topo.status();

  for (int s : topo.value()) {
    Stage& stage = out->stages[static_cast<size_t>(s)];
    std::vector<double> leaf_truth(stage.operators.size(), 0.0);
    std::vector<double> leaf_est(stage.operators.size(), 0.0);
    size_t dep_i = 0;
    const std::vector<int>& deps = out->stage_deps[static_cast<size_t>(s)];
    for (Operator& op : stage.operators) {
      if (!op.is_leaf()) continue;
      size_t idx = static_cast<size_t>(op.id);
      if (op.type == OperatorType::kStreamLineRead && dep_i < deps.size()) {
        const Stage& up = out->stages[static_cast<size_t>(deps[dep_i++])];
        double up_truth = 0.0, up_est = 0.0;
        for (int r : up.RootOperators()) {
          up_truth += up.operators[static_cast<size_t>(r)].truth.output_rows;
          up_est += up.operators[static_cast<size_t>(r)].estimate.output_rows;
        }
        leaf_truth[idx] = std::max(1.0, up_truth);
        leaf_est[idx] = std::max(1.0, up_est);
      } else {
        leaf_truth[idx] = std::max(1.0, op.truth.input_rows * jitter *
                                            rng->LogNormal(0.0, 0.1));
        leaf_est[idx] =
            leaf_truth[idx] *
            rng->LogNormal(0.0, profile_.plan.cbo_leaf_error_sigma);
      }
    }
    Result<std::vector<OperatorCardinality>> truth_cards =
        cm.PropagateCardinality(stage, leaf_truth, /*use_truth=*/true);
    if (!truth_cards.ok()) return truth_cards.status();
    Result<std::vector<OperatorCardinality>> est_cards =
        cm.PropagateCardinality(stage, leaf_est, /*use_truth=*/false);
    if (!est_cards.ok()) return est_cards.status();
    for (size_t i = 0; i < stage.operators.size(); ++i) {
      stage.operators[i].truth.input_rows = truth_cards.value()[i].input_rows;
      stage.operators[i].truth.output_rows =
          truth_cards.value()[i].output_rows;
      stage.operators[i].estimate.input_rows =
          est_cards.value()[i].input_rows;
      stage.operators[i].estimate.output_rows =
          est_cards.value()[i].output_rows;
    }
    stage.job_id = job_id;
    FGRO_RETURN_IF_ERROR(PartitionStage(&stage, rng));
    FGRO_RETURN_IF_ERROR(cm.AnnotateStageCosts(&stage));
  }
  return Status::OK();
}

Result<Workload> WorkloadGenerator::Generate() {
  Rng rng(profile_.seed);
  Workload workload;
  workload.profile = profile_;

  // 1. Build the recurring job templates.
  std::vector<Job> templates;
  templates.reserve(static_cast<size_t>(profile_.num_job_templates));
  for (int t = 0; t < profile_.num_job_templates; ++t) {
    int num_stages = std::clamp(
        static_cast<int>(std::lround(
            rng.LogNormal(std::log(profile_.avg_stages_per_job), 0.5))),
        1, profile_.max_stages_per_job);
    Result<Job> job =
        plan_gen_.GenerateJob(num_stages, profile_.avg_ops_per_stage, &rng);
    if (!job.ok()) return job.status();
    Job jt = std::move(job).value();
    for (int s = 0; s < jt.stage_count(); ++s) {
      jt.stages[static_cast<size_t>(s)].template_id = t * 64 + s;
    }
    templates.push_back(std::move(jt));
  }

  // 2. Arrival times over the horizon (sorted uniform = Poisson order stats).
  std::vector<double> arrivals(static_cast<size_t>(profile_.num_jobs));
  for (double& a : arrivals) a = rng.Uniform(0.0, profile_.horizon_seconds);
  std::sort(arrivals.begin(), arrivals.end());

  // 3. Instantiate jobs from templates (Zipf-ish template popularity).
  workload.jobs.resize(static_cast<size_t>(profile_.num_jobs));
  for (int j = 0; j < profile_.num_jobs; ++j) {
    int t = rng.Zipf(profile_.num_job_templates, 0.8);
    FGRO_RETURN_IF_ERROR(
        InstantiateJob(templates[static_cast<size_t>(t)], j,
                       arrivals[static_cast<size_t>(j)], &rng,
                       &workload.jobs[static_cast<size_t>(j)]));
  }
  return workload;
}

}  // namespace fgro
