#include "trace/trace_io.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

namespace fgro {

namespace {
constexpr const char* kHeader =
    "job_idx,stage_idx,instance_idx,template_id,submit_time,cores,memory_gb,"
    "machine_id,hardware_type,cpu_util,mem_util,io_util,actual_latency,"
    "actual_cpu_seconds,actual_cpu_seconds_star,input_rows,input_bytes,"
    "operator_count";
}  // namespace

Status ExportTraceCsv(const TraceDataset& dataset, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  std::fprintf(f, "%s\n", kHeader);
  for (const InstanceRecord& r : dataset.records) {
    const Stage& stage = dataset.StageOf(r);
    const InstanceMeta& meta =
        stage.instances[static_cast<size_t>(r.instance_idx)];
    std::fprintf(f,
                 "%d,%d,%d,%d,%.6f,%.4g,%.4g,%d,%d,%.4f,%.4f,%.4f,%.6f,%.6f,"
                 "%.6f,%.1f,%.1f,%d\n",
                 r.job_idx, r.stage_idx, r.instance_idx, r.template_id,
                 r.submit_time, r.theta.cores, r.theta.memory_gb,
                 r.machine_id, r.hardware_type, r.machine_state.cpu_util,
                 r.machine_state.mem_util, r.machine_state.io_util,
                 r.actual_latency, r.actual_cpu_seconds,
                 r.actual_cpu_seconds_star, meta.input_rows, meta.input_bytes,
                 stage.operator_count());
  }
  std::fclose(f);
  return Status::OK();
}

namespace {

/// Value-level sanity checks on one parsed row. A row that PARSES but
/// carries garbage (NaN latency, negative indices) is a corrupt input, and
/// must be rejected before it reaches the featurizer.
Status ValidateRecord(const InstanceRecord& r, const std::string& path,
                      long line) {
  auto bad = [&](const char* what) {
    return Status::InvalidArgument(path + ": line " + std::to_string(line) +
                                   ": " + what);
  };
  if (r.job_idx < 0 || r.stage_idx < 0 || r.instance_idx < 0 ||
      r.machine_id < 0 || r.hardware_type < 0) {
    return bad("negative index");
  }
  if (!std::isfinite(r.submit_time) || r.submit_time < 0.0) {
    return bad("non-finite or negative submit_time");
  }
  if (!std::isfinite(r.theta.cores) || r.theta.cores <= 0.0 ||
      !std::isfinite(r.theta.memory_gb) || r.theta.memory_gb <= 0.0) {
    return bad("non-positive resource plan");
  }
  if (!std::isfinite(r.machine_state.cpu_util) ||
      !std::isfinite(r.machine_state.mem_util) ||
      !std::isfinite(r.machine_state.io_util)) {
    return bad("non-finite machine state");
  }
  if (!std::isfinite(r.actual_latency) || r.actual_latency < 0.0 ||
      !std::isfinite(r.actual_cpu_seconds) || r.actual_cpu_seconds < 0.0 ||
      !std::isfinite(r.actual_cpu_seconds_star) ||
      r.actual_cpu_seconds_star < 0.0) {
    return bad("non-finite or negative latency column");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<InstanceRecord>> ImportTraceCsv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  // Line-at-a-time parse so a truncated or bit-flipped file fails loudly
  // (kDataLoss) instead of silently yielding a shorter dataset, which is
  // what a naive fscanf loop would do.
  char line[1024];
  if (std::fgets(line, sizeof(line), f) == nullptr) {
    std::fclose(f);
    return Status::DataLoss(path + ": empty trace file");
  }
  line[std::strcspn(line, "\r\n")] = '\0';
  if (std::strcmp(line, kHeader) != 0) {
    std::fclose(f);
    return Status::InvalidArgument(path + ": unexpected CSV header");
  }
  std::vector<InstanceRecord> records;
  long line_no = 1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    const size_t len = std::strlen(line);
    const bool has_newline = len > 0 && line[len - 1] == '\n';
    line[std::strcspn(line, "\r\n")] = '\0';
    if (line[0] == '\0' && !has_newline) break;  // trailing EOF whitespace
    if (!has_newline && !std::feof(f)) {
      std::fclose(f);
      return Status::DataLoss(path + ": line " + std::to_string(line_no) +
                              ": over-long row");
    }
    InstanceRecord r;
    double rows = 0, bytes = 0;
    int ops = 0, consumed = 0;
    int got = std::sscanf(
        line,
        "%d,%d,%d,%d,%lf,%lf,%lf,%d,%d,%lf,%lf,%lf,%lf,%lf,%lf,%lf,%lf,%d%n",
        &r.job_idx, &r.stage_idx, &r.instance_idx, &r.template_id,
        &r.submit_time, &r.theta.cores, &r.theta.memory_gb, &r.machine_id,
        &r.hardware_type, &r.machine_state.cpu_util,
        &r.machine_state.mem_util, &r.machine_state.io_util,
        &r.actual_latency, &r.actual_cpu_seconds, &r.actual_cpu_seconds_star,
        &rows, &bytes, &ops, &consumed);
    // A short field count or trailing junk means the row was cut or
    // corrupted in flight: 17.5 columns is data loss, not "end of data".
    if (got != 18 || line[consumed] != '\0') {
      std::fclose(f);
      return Status::DataLoss(path + ": line " + std::to_string(line_no) +
                              ": corrupt row");
    }
    Status valid = ValidateRecord(r, path, line_no);
    if (!valid.ok()) {
      std::fclose(f);
      return valid;
    }
    records.push_back(std::move(r));
  }
  std::fclose(f);
  return records;
}

}  // namespace fgro
