#include "trace/trace_io.h"

#include <cstdio>

namespace fgro {

namespace {
constexpr const char* kHeader =
    "job_idx,stage_idx,instance_idx,template_id,submit_time,cores,memory_gb,"
    "machine_id,hardware_type,cpu_util,mem_util,io_util,actual_latency,"
    "actual_cpu_seconds,actual_cpu_seconds_star,input_rows,input_bytes,"
    "operator_count";
}  // namespace

Status ExportTraceCsv(const TraceDataset& dataset, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  std::fprintf(f, "%s\n", kHeader);
  for (const InstanceRecord& r : dataset.records) {
    const Stage& stage = dataset.StageOf(r);
    const InstanceMeta& meta =
        stage.instances[static_cast<size_t>(r.instance_idx)];
    std::fprintf(f,
                 "%d,%d,%d,%d,%.6f,%.4g,%.4g,%d,%d,%.4f,%.4f,%.4f,%.6f,%.6f,"
                 "%.6f,%.1f,%.1f,%d\n",
                 r.job_idx, r.stage_idx, r.instance_idx, r.template_id,
                 r.submit_time, r.theta.cores, r.theta.memory_gb,
                 r.machine_id, r.hardware_type, r.machine_state.cpu_util,
                 r.machine_state.mem_util, r.machine_state.io_util,
                 r.actual_latency, r.actual_cpu_seconds,
                 r.actual_cpu_seconds_star, meta.input_rows, meta.input_bytes,
                 stage.operator_count());
  }
  std::fclose(f);
  return Status::OK();
}

Result<std::vector<InstanceRecord>> ImportTraceCsv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  char header[512] = {0};
  if (std::fscanf(f, "%511[^\n]\n", header) != 1 ||
      std::string(header) != kHeader) {
    std::fclose(f);
    return Status::InvalidArgument(path + ": unexpected CSV header");
  }
  std::vector<InstanceRecord> records;
  while (true) {
    InstanceRecord r;
    double rows = 0, bytes = 0;
    int ops = 0;
    int got = std::fscanf(
        f,
        "%d,%d,%d,%d,%lf,%lf,%lf,%d,%d,%lf,%lf,%lf,%lf,%lf,%lf,%lf,%lf,%d\n",
        &r.job_idx, &r.stage_idx, &r.instance_idx, &r.template_id,
        &r.submit_time, &r.theta.cores, &r.theta.memory_gb, &r.machine_id,
        &r.hardware_type, &r.machine_state.cpu_util,
        &r.machine_state.mem_util, &r.machine_state.io_util,
        &r.actual_latency, &r.actual_cpu_seconds, &r.actual_cpu_seconds_star,
        &rows, &bytes, &ops);
    if (got != 18) break;
    records.push_back(std::move(r));
  }
  std::fclose(f);
  return records;
}

}  // namespace fgro
