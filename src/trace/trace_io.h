#ifndef FGRO_TRACE_TRACE_IO_H_
#define FGRO_TRACE_TRACE_IO_H_

#include <string>

#include "common/status.h"
#include "trace/trace_collector.h"

namespace fgro {

/// Exports the instance-level trace as CSV (one row per instance record,
/// header included) for offline analysis with external tooling. Plan
/// features are summarized (operator count, input rows) since the full DAG
/// does not flatten into a row.
Status ExportTraceCsv(const TraceDataset& dataset, const std::string& path);

/// Reads back the scalar columns of an exported trace. The returned records
/// reference the SAME workload the dataset was exported from (pass it in);
/// this is a consistency/analysis tool, not a full round-trip of plans.
Result<std::vector<InstanceRecord>> ImportTraceCsv(const std::string& path);

}  // namespace fgro

#endif  // FGRO_TRACE_TRACE_IO_H_
