#include "trace/data_split.h"

#include <algorithm>
#include <map>

namespace fgro {

DataSplit SplitByTemplateFrequency(const TraceDataset& dataset, Rng* rng) {
  std::map<int, std::vector<int>> by_template;
  for (size_t i = 0; i < dataset.records.size(); ++i) {
    by_template[dataset.records[i].template_id].push_back(
        static_cast<int>(i));
  }

  DataSplit split;
  for (auto& [tmpl, indices] : by_template) {
    (void)tmpl;
    std::shuffle(indices.begin(), indices.end(), rng->engine());
    const size_t n = indices.size();
    size_t n_val = 0, n_test = 0;
    if (n >= 1000) {          // HIGH: fixed per-topology counts
      n_val = n_test = 100;
    } else if (n >= 100) {    // MEDIAN
      n_val = n_test = 10;
    } else if (n >= 5) {      // MEDIAN-LOW: 10% each side
      n_val = n_test = std::max<size_t>(1, n / 10);
    } else {                  // LOW: occasionally hold the template out
      if (rng->Bernoulli(0.2)) {
        for (int idx : indices) {
          (rng->Bernoulli(0.5) ? split.val : split.test).push_back(idx);
        }
        continue;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (i < n_val) {
        split.val.push_back(indices[i]);
      } else if (i < n_val + n_test) {
        split.test.push_back(indices[i]);
      } else {
        split.train.push_back(indices[i]);
      }
    }
  }
  return split;
}

std::vector<std::vector<int>> BucketRecordsByTime(const TraceDataset& dataset,
                                                  double window_seconds) {
  double horizon = dataset.workload->profile.horizon_seconds;
  int num_buckets =
      std::max(1, static_cast<int>(horizon / window_seconds + 0.999));
  std::vector<std::vector<int>> buckets(static_cast<size_t>(num_buckets));
  for (size_t i = 0; i < dataset.records.size(); ++i) {
    int b = static_cast<int>(dataset.records[i].submit_time / window_seconds);
    b = std::clamp(b, 0, num_buckets - 1);
    buckets[static_cast<size_t>(b)].push_back(static_cast<int>(i));
  }
  return buckets;
}

std::vector<std::vector<int>> BucketRecordsByStageLatencyDesc(
    const TraceDataset& dataset, int num_buckets) {
  // Stage latency = max instance latency of the (job, stage) group.
  std::map<std::pair<int, int>, double> stage_latency;
  std::map<std::pair<int, int>, std::vector<int>> stage_records;
  for (size_t i = 0; i < dataset.records.size(); ++i) {
    const InstanceRecord& r = dataset.records[i];
    auto key = std::make_pair(r.job_idx, r.stage_idx);
    stage_latency[key] = std::max(stage_latency[key], r.actual_latency);
    stage_records[key].push_back(static_cast<int>(i));
  }
  std::vector<std::pair<double, std::pair<int, int>>> order;
  order.reserve(stage_latency.size());
  for (const auto& [key, lat] : stage_latency) order.push_back({lat, key});
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<int> flat;
  flat.reserve(dataset.records.size());
  for (const auto& [lat, key] : order) {
    (void)lat;
    for (int idx : stage_records[key]) flat.push_back(idx);
  }
  num_buckets = std::max(1, num_buckets);
  std::vector<std::vector<int>> buckets(static_cast<size_t>(num_buckets));
  size_t per = (flat.size() + static_cast<size_t>(num_buckets) - 1) /
               static_cast<size_t>(num_buckets);
  per = std::max<size_t>(per, 1);
  for (size_t i = 0; i < flat.size(); ++i) {
    buckets[std::min(i / per, buckets.size() - 1)].push_back(flat[i]);
  }
  return buckets;
}

}  // namespace fgro
