#ifndef FGRO_TRACE_TRACE_COLLECTOR_H_
#define FGRO_TRACE_TRACE_COLLECTOR_H_

#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/status.h"
#include "env/ground_truth.h"
#include "hbo/hbo.h"
#include "trace/workload_gen.h"

namespace fgro {

/// One instance-level runtime trace row: everything the model server is
/// allowed to learn from. Plan features are reached through
/// (job_idx, stage_idx) into the owning Workload.
struct InstanceRecord {
  int job_idx = 0;
  int stage_idx = 0;
  int instance_idx = 0;
  int template_id = 0;
  double submit_time = 0.0;

  ResourceConfig theta;          // Channel 3
  int machine_id = 0;
  int hardware_type = 0;         // Channel 5
  SystemState machine_state;     // Channel 4 (snapshot at schedule time)

  double actual_latency = 0.0;          // SiSL label
  double actual_cpu_seconds = 0.0;      // ACT label (Table 9)
  double actual_cpu_seconds_star = 0.0; // ACT* label (lifetime-averaged)
  std::vector<float> op_seconds;        // per-operator seconds (SiOL label)
};

/// A collected trace: the workload it came from plus instance rows in
/// submit-time order. The Workload must outlive the dataset.
struct TraceDataset {
  const Workload* workload = nullptr;
  std::vector<InstanceRecord> records;

  const Stage& StageOf(const InstanceRecord& r) const {
    return workload->jobs[static_cast<size_t>(r.job_idx)]
        .stages[static_cast<size_t>(r.stage_idx)];
  }
};

/// Replays a workload through the environment the way the production system
/// historically ran it — HBO resource plans and a Fuxi-style watermark
/// placement — and records instance-level traces. This is the trace
/// collector of Fig. 3; it also warms up the HBO history with each
/// template's best observed run.
class TraceCollector {
 public:
  TraceCollector(ClusterOptions cluster_options, uint64_t seed)
      : cluster_options_(cluster_options), seed_(seed) {}

  Result<TraceDataset> Collect(const Workload& workload, Hbo* hbo = nullptr);

 private:
  ClusterOptions cluster_options_;
  uint64_t seed_;
};

}  // namespace fgro

#endif  // FGRO_TRACE_TRACE_COLLECTOR_H_
