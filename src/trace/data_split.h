#ifndef FGRO_TRACE_DATA_SPLIT_H_
#define FGRO_TRACE_DATA_SPLIT_H_

#include <vector>

#include "common/rng.h"
#include "trace/trace_collector.h"

namespace fgro {

/// Train/validation/test split (indices into TraceDataset::records).
struct DataSplit {
  std::vector<int> train;
  std::vector<int> val;
  std::vector<int> test;
};

/// Stratified split following Fig. 14 of the paper: templates are bucketed
/// by record frequency and sampled differently per bucket (fixed counts for
/// high/median-frequency templates, percentages for rare ones), so the
/// val/test sets stay small but representative of every DAG topology.
DataSplit SplitByTemplateFrequency(const TraceDataset& dataset, Rng* rng);

/// Buckets record indices into consecutive wall-clock windows (for the
/// workload-drift experiments, realistic injection order).
std::vector<std::vector<int>> BucketRecordsByTime(const TraceDataset& dataset,
                                                  double window_seconds);

/// The hypothetical-worst drift order of Expt 7: whole stages sorted by
/// descending stage latency, flattened back to record indices and bucketed
/// into `num_buckets` equal chunks.
std::vector<std::vector<int>> BucketRecordsByStageLatencyDesc(
    const TraceDataset& dataset, int num_buckets);

}  // namespace fgro

#endif  // FGRO_TRACE_DATA_SPLIT_H_
