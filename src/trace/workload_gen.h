#ifndef FGRO_TRACE_WORKLOAD_GEN_H_
#define FGRO_TRACE_WORKLOAD_GEN_H_

#include <string>
#include <vector>

#include "cbo/plan_generator.h"
#include "common/rng.h"
#include "common/status.h"
#include "env/ground_truth.h"
#include "hbo/hbo.h"
#include "plan/job.h"

namespace fgro {

/// The three production workloads of Table 1. A: many short jobs; B: the
/// most complex DAG topologies; C: few jobs but very wide stages with the
/// longest instances.
enum class WorkloadId { kA = 0, kB = 1, kC = 2 };

const char* WorkloadName(WorkloadId id);

/// Distributional knobs of a workload, chosen so the *scaled* synthetic
/// trace reproduces Table 1's shape (stages/job, instances/stage, ops/stage,
/// latency scale, skew) at laptop size. `env` carries the per-workload noise
/// floor that calibrates the irreducible model error.
struct WorkloadProfile {
  WorkloadId id = WorkloadId::kA;
  std::string name = "A";
  uint64_t seed = 1;

  int num_jobs = 300;
  int num_job_templates = 30;    // recurring jobs dominate production
  double avg_stages_per_job = 2.4;
  int max_stages_per_job = 8;
  double avg_ops_per_stage = 3.7;
  double horizon_seconds = 5 * 86400.0;  // five "days" of arrivals
  double template_input_jitter_sigma = 0.35;  // day-to-day data-size drift

  double partition_skew_sigma = 0.7;  // lognormal skew of partition sizes
  double hidden_skew_sigma = 0.08;    // straggler factor invisible to models

  /// Stage-width multiplier toward paper scale: multiplies the HBO
  /// partition count of every stage (clamped to [1, hbo.max_instances]).
  /// 1.0 keeps Table 1's laptop-sized shape; 10-100 approaches the paper's
  /// very wide production stages. Orthogonal to `scale`, which multiplies
  /// the job count.
  double width_scale = 1.0;

  PlanGenOptions plan;
  HboOptions hbo;
  GroundTruthOptions env;
};

/// Returns the calibrated profile of a workload; `scale` multiplies the job
/// count and `width_scale` the per-stage instance count (1.0/1.0 = the
/// default laptop-sized trace).
WorkloadProfile GetWorkloadProfile(WorkloadId id, double scale = 1.0,
                                   double width_scale = 1.0);

/// A generated workload: jobs with full plans, statistics, partition counts
/// and instance metadata, sorted by arrival time.
struct Workload {
  WorkloadProfile profile;
  std::vector<Job> jobs;

  int TotalStages() const;
  int TotalInstances() const;
};

/// Generates a workload from a pool of recurring job templates: each arrival
/// clones a template, jitters its source input sizes, re-propagates
/// cardinalities (truth and CBO estimates), and partitions every stage with
/// the HBO sizing rule plus skewed partition fractions.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadProfile profile);

  Result<Workload> Generate();

 private:
  Status InstantiateJob(const Job& job_template, int job_id,
                        double arrival_time, Rng* rng, Job* out) const;
  Status PartitionStage(Stage* stage, Rng* rng) const;

  WorkloadProfile profile_;
  PlanGenerator plan_gen_;
  Hbo hbo_;
};

}  // namespace fgro

#endif  // FGRO_TRACE_WORKLOAD_GEN_H_
