#include "trace/trace_collector.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "env/cost.h"

namespace fgro {

Result<TraceDataset> TraceCollector::Collect(const Workload& workload,
                                             Hbo* hbo) {
  Rng rng(seed_);
  Cluster cluster(cluster_options_);
  GroundTruthEnv env(workload.profile.env);
  Hbo local_hbo(workload.profile.hbo);
  if (hbo == nullptr) hbo = &local_hbo;

  TraceDataset dataset;
  dataset.workload = &workload;

  for (size_t j = 0; j < workload.jobs.size(); ++j) {
    const Job& job = workload.jobs[j];
    cluster.AdvanceTime(job.arrival_time);
    Result<std::vector<int>> topo = job.TopologicalOrder();
    if (!topo.ok()) return topo.status();

    for (int s : topo.value()) {
      const Stage& stage = job.stages[static_cast<size_t>(s)];
      HboRecommendation rec = hbo->Recommend(stage);
      rec.partition_count = stage.instance_count();  // set at generation
      // Historical resource plans vary: HBO's recommendation drifts across
      // days/re-tuning, so the trace covers a neighborhood of the catalog
      // around theta0 (the paper observes 17-38 distinct plans per
      // workload). Without this variation Channel 3 would carry no signal
      // at all and RAA could not be trained for (Appendix F.15).
      ResourceConfig theta0 = rec.theta0;
      if (rng.Bernoulli(0.75)) {
        const std::vector<ResourceConfig>& catalog = Hbo::ResourcePlanCatalog();
        std::vector<int> nearby;
        for (size_t c = 0; c < catalog.size(); ++c) {
          if (catalog[c].cores >= theta0.cores * kPlanExplorationLow &&
              catalog[c].cores <= theta0.cores * kPlanExplorationHigh &&
              catalog[c].memory_gb >=
                  theta0.memory_gb * kPlanExplorationLow &&
              catalog[c].memory_gb <=
                  theta0.memory_gb * kPlanExplorationHigh) {
            nearby.push_back(static_cast<int>(c));
          }
        }
        if (!nearby.empty()) {
          theta0 = catalog[static_cast<size_t>(nearby[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(nearby.size()) - 1))])];
        }
      }
      rec.theta0 = theta0;
      const int m = stage.instance_count();

      // Historical placement: watermark heuristic (top-m lowest CPU
      // utilization, instances assigned in id order) — what Fuxi does.
      std::vector<int> candidates = cluster.AvailableMachines(theta0);
      if (candidates.empty()) {
        return Status::ResourceExhausted("no machine fits theta0");
      }
      std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
        return cluster.machine(a).state().cpu_util <
               cluster.machine(b).state().cpu_util;
      });

      // Container-level plan drift: a fraction of instances historically
      // ran under a neighboring catalog plan (re-scheduling, quota changes,
      // per-department overrides). This within-stage variation is what
      // gives Channel 3 enough support for RAA to be trainable at all —
      // sparse-plan traces are the failure mode of Appendix F.15.
      std::vector<ResourceConfig> nearby_plans;
      for (const ResourceConfig& c : Hbo::ResourcePlanCatalog()) {
        if (c.cores >= theta0.cores * kPlanExplorationLow &&
            c.cores <= theta0.cores * kPlanExplorationHigh &&
            c.memory_gb >= theta0.memory_gb * kPlanExplorationLow &&
            c.memory_gb <= theta0.memory_gb * kPlanExplorationHigh) {
          nearby_plans.push_back(c);
        }
      }
      std::vector<double> latencies(static_cast<size_t>(m));
      std::vector<ResourceConfig> thetas(static_cast<size_t>(m), theta0);
      for (int i = 0; i < m; ++i) {
        ResourceConfig theta_i = theta0;
        if (!nearby_plans.empty() && rng.Bernoulli(0.4)) {
          theta_i = nearby_plans[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(nearby_plans.size()) - 1))];
        }
        thetas[static_cast<size_t>(i)] = theta_i;
        const Machine& machine = cluster.machine(
            candidates[static_cast<size_t>(i) % candidates.size()]);
        LatencyBreakdown expected =
            env.ExpectedLatency(stage, i, machine, theta_i);
        double actual = env.SampleLatency(stage, i, machine, theta_i, &rng);
        latencies[static_cast<size_t>(i)] = actual;

        InstanceRecord record;
        record.job_idx = static_cast<int>(j);
        record.stage_idx = s;
        record.instance_idx = i;
        record.template_id = stage.template_id;
        record.submit_time = job.arrival_time;
        record.theta = theta_i;
        record.machine_id = machine.id();
        record.hardware_type = machine.hardware().id;
        record.machine_state = machine.state();
        record.actual_latency = actual;
        // ACT: CPU-only time is far less exposed to shared-IO noise; ACT*
        // additionally averages states over the instance lifetime, which we
        // emulate with an even smaller residual.
        const double cpu_body = expected.cpu_seconds * expected.spill_factor *
                                machine.hidden_dynamics();
        record.actual_cpu_seconds = cpu_body * rng.LogNormal(0.0, 0.06);
        record.actual_cpu_seconds_star = cpu_body * rng.LogNormal(0.0, 0.03);
        // Per-operator actual seconds: expected shares rescaled so they sum
        // to the realized (noise-included) body time.
        double expected_body = expected.total - expected.startup_seconds;
        double scale = expected_body > 1e-12
                           ? (actual - expected.startup_seconds) /
                                 expected_body
                           : 1.0;
        record.op_seconds.reserve(expected.op_seconds.size());
        for (double osec : expected.op_seconds) {
          record.op_seconds.push_back(
              static_cast<float>(std::max(0.0, osec * scale)));
        }
        dataset.records.push_back(std::move(record));
      }

      StageObjectives obj =
          AggregateStageObjectives(latencies, thetas, env.cost_weights());
      hbo->RecordRun(stage.template_id, rec, obj.latency, obj.cost);
    }
  }
  return dataset;
}

}  // namespace fgro
