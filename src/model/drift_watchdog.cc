#include "model/drift_watchdog.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/math_utils.h"

namespace fgro {

namespace {
// Cap for degenerate observations (NaN/Inf/non-positive): large enough to
// out-vote any threshold, small enough to keep the median arithmetic sane.
constexpr double kWorstQError = 1e6;
}  // namespace

DriftWatchdog::DriftWatchdog(const DriftWatchdogOptions& options,
                             int num_hardware_types)
    : options_(options) {
  options_.window_size = std::max(1, options_.window_size);
  options_.min_samples = std::max(1, options_.min_samples);
  options_.recover_qerror =
      std::min(options_.recover_qerror, options_.alarm_qerror);
  const size_t buckets = static_cast<size_t>(std::max(1, num_hardware_types)) + 1;
  windows_.resize(buckets);
  cursor_.assign(buckets, 0);
}

void DriftWatchdog::Observe(int hardware_type, double predicted,
                            double actual) {
  if (!options_.enabled) return;
  size_t bucket = windows_.size() - 1;  // catch-all
  if (hardware_type >= 0 &&
      hardware_type < static_cast<int>(windows_.size()) - 1) {
    bucket = static_cast<size_t>(hardware_type);
  }
  double q = kWorstQError;
  if (std::isfinite(predicted) && std::isfinite(actual) && predicted > 0.0 &&
      actual > 0.0) {
    q = std::min(kWorstQError, std::max(predicted / actual,
                                        actual / predicted));
  }
  std::vector<double>& window = windows_[bucket];
  if (window.size() < static_cast<size_t>(options_.window_size)) {
    window.push_back(q);
  } else {
    window[cursor_[bucket]] = q;
    cursor_[bucket] = (cursor_[bucket] + 1) % window.size();
  }
  UpdateAlarm();
  if (!obs_median_.empty()) {
    obs_median_[bucket]->Set(MedianQError(static_cast<int>(bucket)));
    obs_worst_median_->Set(WorstMedianQError());
  }
}

void DriftWatchdog::set_obs(const obs::Obs& obs) {
  if (obs.metrics == nullptr || !options_.enabled) return;
  obs_median_.resize(windows_.size());
  for (size_t b = 0; b + 1 < windows_.size(); ++b) {
    obs_median_[b] = obs.metrics->GetGauge("drift.median_qerror.hw" +
                                           std::to_string(b));
  }
  obs_median_.back() = obs.metrics->GetGauge("drift.median_qerror.other");
  obs_worst_median_ = obs.metrics->GetGauge("drift.worst_median_qerror");
  obs_alarmed_ = obs.metrics->GetGauge("drift.alarmed");
  obs_alarms_raised_ = obs.metrics->GetCounter("drift.alarms_raised");
  obs_recoveries_ = obs.metrics->GetCounter("drift.recoveries");
}

double DriftWatchdog::MedianQError(int hardware_type) const {
  size_t bucket = windows_.size() - 1;
  if (hardware_type >= 0 &&
      hardware_type < static_cast<int>(windows_.size()) - 1) {
    bucket = static_cast<size_t>(hardware_type);
  }
  const std::vector<double>& window = windows_[bucket];
  if (window.size() < static_cast<size_t>(options_.min_samples)) return 1.0;
  return Median(window);
}

double DriftWatchdog::WorstMedianQError() const {
  double worst = 1.0;
  for (const std::vector<double>& window : windows_) {
    if (window.size() < static_cast<size_t>(options_.min_samples)) continue;
    worst = std::max(worst, Median(window));
  }
  return worst;
}

void DriftWatchdog::UpdateAlarm() {
  const double worst = WorstMedianQError();
  if (!alarmed_) {
    if (worst >= options_.alarm_qerror) {
      alarmed_ = true;
      ++alarms_raised_;
      if (obs_alarms_raised_ != nullptr) {
        obs_alarms_raised_->Increment();
        obs_alarmed_->Set(1.0);
      }
    }
  } else if (worst < options_.recover_qerror) {
    alarmed_ = false;
    ++recoveries_;
    if (obs_recoveries_ != nullptr) {
      obs_recoveries_->Increment();
      obs_alarmed_->Set(0.0);
    }
  }
}

}  // namespace fgro
