#ifndef FGRO_MODEL_GPR_H_
#define FGRO_MODEL_GPR_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace fgro {

/// The actual-latency simulator of Expt 11: a Gaussian-process regression
/// fit on (predicted, actual) latency pairs of a bootstrap model. Given a
/// predicted latency it yields a Gaussian N(mu, sigma) over the actual
/// latency (in log space, so the noise is multiplicative) from which the
/// simulator samples within mu +/- 3 sigma. A less accurate bootstrap model
/// produces a wider GPR — which is how Expt 12 couples model accuracy to
/// optimization benefit.
class GprNoiseModel {
 public:
  struct Options {
    int max_inducing_points = 160;  // subsample cap for the O(k^3) fit
    double length_scale = 0.6;      // RBF length scale in log-latency space
    double signal_variance = 1.0;
    double noise_floor = 1e-4;      // jitter added to the kernel diagonal
    uint64_t seed = 97;
  };

  GprNoiseModel() = default;
  explicit GprNoiseModel(Options options) : options_(options) {}

  /// Fits on pairs of predicted/actual latencies (seconds).
  Status Fit(const std::vector<double>& predicted,
             const std::vector<double>& actual);

  /// Posterior over log(actual) at the given predicted latency.
  void PredictDistribution(double predicted_latency, double* mu,
                           double* sigma) const;

  /// One draw of the simulated actual latency, clipped to mu +/- 3 sigma.
  double Sample(double predicted_latency, Rng* rng) const;

  bool fitted() const { return !x_.empty(); }

 private:
  double Kernel(double a, double b) const;

  Options options_;
  std::vector<double> x_;        // inducing inputs: log predicted
  std::vector<double> alpha_;    // K^-1 y
  std::vector<double> chol_;     // lower-triangular Cholesky factor of K
  double residual_variance_ = 0.01;
  double y_mean_ = 0.0;
};

}  // namespace fgro

#endif  // FGRO_MODEL_GPR_H_
