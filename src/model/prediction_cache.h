#ifndef FGRO_MODEL_PREDICTION_CACHE_H_
#define FGRO_MODEL_PREDICTION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "obs/obs.h"

namespace fgro {

/// Exact cache key of one prediction query. The model's inputs depend on
/// the machine state only through DiscretizeState (Channel 4), so keying on
/// the *discretized* state bit patterns — plus the raw theta bits, the
/// hardware type, and the (job, stage, instance) identity of the embedding
/// — makes a hit return exactly the value the model would have computed,
/// never an approximation. The full tuple (not just its hash) is the map
/// key: a 64-bit hash collision could otherwise silently corrupt a replay.
struct PredictionKey {
  int32_t job_id = 0;
  int32_t stage_id = 0;
  int32_t instance_idx = 0;
  int32_t hardware_type = 0;
  uint64_t theta_cores_bits = 0;
  uint64_t theta_memory_bits = 0;
  uint64_t cpu_bits = 0;
  uint64_t mem_bits = 0;
  uint64_t io_bits = 0;
  /// LatencyModel::params_tag() of the scoring model. Keys identify inputs
  /// *and* weights: a hot-swapped or fine-tuned model queries under a new
  /// tag and can never be served a prior model's cached value.
  uint64_t model_tag = 0;

  bool operator==(const PredictionKey& other) const {
    return job_id == other.job_id && stage_id == other.stage_id &&
           instance_idx == other.instance_idx &&
           hardware_type == other.hardware_type &&
           theta_cores_bits == other.theta_cores_bits &&
           theta_memory_bits == other.theta_memory_bits &&
           cpu_bits == other.cpu_bits && mem_bits == other.mem_bits &&
           io_bits == other.io_bits && model_tag == other.model_tag;
  }

  uint64_t Hash() const;
};

struct PredictionKeyHash {
  size_t operator()(const PredictionKey& k) const {
    return static_cast<size_t>(k.Hash());
  }
};

/// Bounded, thread-safe memo of prediction queries for the optimizer hot
/// path. The clustered IPA/RAA variants and the evolutionary baselines
/// re-issue identical (representative, machine bucket, theta) queries many
/// times per stage; a hit skips the whole forward pass.
///
/// Sharded 16 ways by key hash; each shard holds an unordered_map plus a
/// FIFO ring for eviction (oldest insertion goes first once the shard
/// exceeds capacity/16). Values for a key are immutable once inserted, so a
/// replay is byte-identical whether any given query hits or misses — which
/// is what keeps batched/parallel replays identical to the scalar run even
/// though hit/miss *counters* may differ across thread interleavings.
///
/// Keys carry the scoring model's params_tag, so the memo stays valid
/// across Train/FineTune/hot-swap: entries written under old weights are
/// simply unreachable (and age out FIFO) once the model re-tags.
class PredictionMemo {
 public:
  explicit PredictionMemo(size_t capacity = 1 << 16);

  PredictionMemo(const PredictionMemo&) = delete;
  PredictionMemo& operator=(const PredictionMemo&) = delete;

  /// True and fills *value on a hit. Bumps the hit/miss telemetry either
  /// way.
  bool Lookup(const PredictionKey& key, double* value);

  /// Inserts (idempotent: re-inserting an existing key is a no-op, so two
  /// workers racing on the same miss both record the same value).
  void Insert(const PredictionKey& key, double value);

  void Clear();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Wires (or with a default Obs, unwires) the hit/miss counters
  /// ("model.memo.hits"/"model.memo.misses") and the running hit-ratio
  /// gauge ("model.memo.hit_ratio", hits/(hits+misses), refreshed on every
  /// Lookup). Resolve-once like LatencyModel::set_obs; not thread-safe
  /// against concurrent Lookup.
  void set_obs(const obs::Obs& obs);

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<PredictionKey, double, PredictionKeyHash> map;
    std::deque<PredictionKey> order;  // FIFO eviction
  };

  size_t capacity_;
  Shard shards_[kShards];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  obs::Counter* obs_hits_ = nullptr;
  obs::Counter* obs_misses_ = nullptr;
  obs::Gauge* obs_hit_ratio_ = nullptr;
};

}  // namespace fgro

#endif  // FGRO_MODEL_PREDICTION_CACHE_H_
