#ifndef FGRO_MODEL_LATENCY_MODEL_H_
#define FGRO_MODEL_LATENCY_MODEL_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "featurize/featurizer.h"
#include "model/prediction_cache.h"
#include "obs/obs.h"
#include "nn/adam.h"
#include "nn/graph_embedder.h"
#include "nn/mlp.h"
#include "nn/qppnet.h"
#include "nn/tree_lstm.h"
#include "trace/trace_collector.h"

namespace fgro {

/// The five modeling tools compared in Fig. 9(c). MCI variants consume all
/// channels; the "original" variants see only the plan channel (their
/// published form predicts per-query latency on a fixed single machine).
enum class ModelKind {
  kMciGtn = 0,        // our model: DAG embedder + MLP predictor
  kMciTlstm,          // Tree-LSTM embedder retrofitted with MCI
  kMciQppnet,         // QPPNet units retrofitted with MCI (broadcast Ch2-5)
  kTlstmOriginal,     // plan-only Tree-LSTM
  kQppnetOriginal,    // plan-only QPPNet
};

const char* ModelKindName(ModelKind kind);

/// Per-dimension z-normalization fit on the training features.
struct Standardizer {
  Vec mean;
  Vec inv_std;
  void Fit(const std::vector<const Vec*>& rows);
  void Apply(Vec* row) const;
  bool fitted() const { return !mean.empty(); }
};

struct TrainOptions {
  int epochs = 10;
  int batch_size = 32;
  double lr = 1.5e-3;
  double lr_decay = 0.88;          // multiplicative, per epoch
  int max_train_samples = 40000;   // subsample cap for laptop-scale runs
  uint64_t seed = 17;
  bool verbose = false;
};

/// Instance-level latency model: the paper's model-server artifact. Trains
/// on trace records (log-latency MSE) and predicts the latency of an
/// instance on any (machine, resource plan) pair.
///
/// Thread-safety: Train() is exclusive; after training, Predict()/Embed()
/// are const, touch only the frozen weights, and keep all inference scratch
/// (feature buffers, MLP activation cache) local to the call, so a trained
/// model may be shared read-only by any number of RO-service workers.
class LatencyModel {
 public:
  struct Options {
    ModelKind kind = ModelKind::kMciGtn;
    Featurizer featurizer;
    int embed_dim = 32;
    int gnn_layers = 2;
    int mlp_hidden = 48;
    int qpp_data_dim = 8;
    uint64_t seed = 1;
  };

  /// Which trace label to learn (Table 9's modeling targets).
  enum class Target {
    kInstanceLatency,     // SiSL (default)
    kActualCpuTime,       // ACT
    kActualCpuTimeStar,   // ACT*
  };

  explicit LatencyModel(Options options);

  /// Trains from scratch on `train_idx`; `val_idx` is used for the verbose
  /// per-epoch report only (hyperparameters are fixed in this build).
  Status Train(const TraceDataset& dataset, const std::vector<int>& train_idx,
               const std::vector<int>& val_idx, const TrainOptions& options,
               Target target = Target::kInstanceLatency);

  /// Continues training the current parameters on new records (the
  /// "fine-tune" arm of Expt 7). Requires a prior Train call.
  Status FineTune(const TraceDataset& dataset,
                  const std::vector<int>& indices,
                  const TrainOptions& options);

  /// Predicted latency (seconds) of one instance on one machine context.
  Result<double> Predict(const Stage& stage, int instance_idx,
                         const ResourceConfig& theta, const SystemState& state,
                         int hardware_type) const;

  /// Two-phase inference for the optimizer hot path: the plan embedding
  /// depends only on Channels 1-2 (+AIM), so IPA can embed each instance
  /// once and sweep machines/configurations cheaply. For QPPNet-style
  /// models (which broadcast context into every unit) this transparently
  /// falls back to a full forward pass.
  struct EmbeddedInstance {
    Vec plan_embedding;       // standardized-model-space embedding
    Vec ch2_features;         // standardized Channel 2 slice
    const Stage* stage = nullptr;
    int instance_idx = 0;
  };
  Result<EmbeddedInstance> Embed(const Stage& stage, int instance_idx) const;
  double PredictFromEmbedding(const EmbeddedInstance& embedded,
                              const ResourceConfig& theta,
                              const SystemState& state,
                              int hardware_type) const;

  /// One (resource plan, machine state, hardware) query of a batched sweep.
  struct PredictionCandidate {
    ResourceConfig theta;
    SystemState state;
    int hardware_type = 0;
  };
  /// One row of a heterogeneous batch: an embedded instance paired with a
  /// candidate. IPA's m x n placement matrix flattens to this form. The
  /// pointed-to embedding must outlive the PredictBatch call.
  struct PredictionQuery {
    const EmbeddedInstance* embedded = nullptr;
    PredictionCandidate candidate;
  };
  /// Caller-owned scratch for PredictBatch: the assembled feature matrix,
  /// the MLP activation ping-pong, and the pending-row index list. Reusing
  /// one scratch across calls makes batched inference allocation-free once
  /// the buffers are warm. Not shareable across concurrent calls.
  struct BatchScratch {
    Mat features;
    MlpScratch mlp;
    std::vector<int> pending;
    std::vector<PredictionQuery> queries;  // used by the candidates overload
  };

  /// Batched inference for the optimizer hot path. Writes
  /// out[i] = PredictFromEmbedding(*queries[i].embedded, candidate...)
  /// bit-identically: the feature matrix keeps each row's operation order
  /// (assemble -> standardize tail -> MLP forward with ascending-index
  /// accumulation), so batching never changes a replay. The feature matrix
  /// is assembled in bounded chunks, so arbitrarily large batches run in
  /// O(chunk) extra memory. QPPNet-style kinds (no reusable plan embedding)
  /// fall back to per-row PredictFromEmbedding.
  ///
  /// If `memo` is non-null it is consulted per row (keyed on the embedding
  /// identity and the discretized candidate — exact, see PredictionKey) and
  /// misses are inserted after the forward pass. `out` must hold
  /// queries.size() doubles.
  void PredictBatch(const std::vector<PredictionQuery>& queries, double* out,
                    BatchScratch* scratch,
                    PredictionMemo* memo = nullptr) const;
  /// Common special case: one embedding swept over many candidates (RAA's
  /// configuration grid, IPA's machine sweep for one instance).
  void PredictBatch(const EmbeddedInstance& embedded,
                    const std::vector<PredictionCandidate>& candidates,
                    double* out, BatchScratch* scratch,
                    PredictionMemo* memo = nullptr) const;

  /// Convenience: predict for every record index, in order.
  Result<std::vector<double>> PredictRecords(
      const TraceDataset& dataset, const std::vector<int>& indices) const;

  /// Persists the trained model (architecture, standardizers, parameters)
  /// to a version-tagged text file with a checksum footer; Load reconstructs
  /// it. This is what lets the model server hand models to schedulers across
  /// process boundaries. Load never crashes and never returns a silently
  /// wrong model: a truncated, bit-flipped, over-long, or empty snapshot is
  /// kDataLoss (the checksum or framing no longer matches what Save wrote);
  /// a well-framed file carrying garbage (unknown kind, impossible shapes,
  /// non-finite weights) is kInvalidArgument.
  Status Save(const std::string& path) const;
  static Result<std::unique_ptr<LatencyModel>> Load(const std::string& path);

  /// True when every learned parameter and fitted standardizer entry is
  /// finite. The model-registry promotion gate refuses candidates that fail
  /// this (a NaN-poisoned model would otherwise predict a constant floor).
  bool HasFiniteParameters() const;

  /// Identity of the current parameter values, unique process-wide: assigned
  /// at construction and re-assigned whenever the parameters change
  /// (Train/FineTune/Load/CorruptParamForTest). Copies share the tag —
  /// identical weights compute identical predictions — until one of them
  /// mutates. PredictionMemo keys include this tag, so a swapped or tuned
  /// model can never serve a prior model's cached prediction.
  uint64_t params_tag() const { return params_tag_; }

  /// Fault-injection hook for the rollout bench and lifecycle tests:
  /// overwrites one value of the first learned parameter (e.g. with NaN to
  /// synthesize a poisoned candidate). Re-tags the parameters. Never called
  /// on a serving path.
  void CorruptParamForTest(double value);

  ModelKind kind() const { return options_.kind; }
  const Featurizer& featurizer() const { return options_.featurizer; }
  bool trained() const { return trained_; }

  /// Wires (or, with a default Obs, unwires) inference observability:
  /// per-hardware-type Predict call counters and latency histograms, plus
  /// fast-path (PredictFromEmbedding) call counters. Handles are resolved
  /// here, once, so the per-call cost is one branch when disabled and one
  /// relaxed atomic bump when enabled — Predict stays const, lock-free, and
  /// shareable across RO-service workers. Not thread-safe against
  /// concurrent Predict calls: wire before serving, like Train().
  void set_obs(const obs::Obs& obs);

 private:
  struct PreparedSample {
    PlanGraph graph;
    int tree_root = 0;
    Vec inst_features;
    double target_log = 0.0;
    double target_raw = 0.0;
  };

  Result<double> PredictImpl(const Stage& stage, int instance_idx,
                             const ResourceConfig& theta,
                             const SystemState& state,
                             int hardware_type) const;
  bool UsesTree() const;
  bool UsesInstanceFeatures() const;
  Status PrepareSample(const TraceDataset& dataset, int record_idx,
                       Target target, PreparedSample* out) const;
  Status PrepareForInference(const Stage& stage, int instance_idx,
                             const ResourceConfig& theta,
                             const SystemState& state, int hardware_type,
                             PreparedSample* out) const;
  /// Forward pass; if `dpred` != nullptr also runs backward with that
  /// output gradient (parameter grads accumulate).
  double ForwardBackward(const PreparedSample& sample, const double* dpred);
  double ForwardOnly(const PreparedSample& sample) const;
  std::vector<Param*> AllParams();
  double TargetOf(const InstanceRecord& record, Target target) const;

  /// Draws a fresh process-unique params_tag (see params_tag()).
  void RetagParams();

  Options options_;
  Target target_ = Target::kInstanceLatency;
  bool trained_ = false;
  uint64_t params_tag_ = 0;

  GraphEmbedder gnn_;
  TreeLstm tlstm_;
  QppNet qpp_;
  Mlp predictor_;   // head for GTN/TLSTM variants
  Adam adam_;

  Standardizer op_standardizer_;
  Standardizer inst_standardizer_;

  /// Pre-resolved observability handles (see set_obs), all null when
  /// disabled. Indexed by hardware type.
  obs::Counter* obs_predict_calls_[kNumHardwareTypes] = {};
  obs::Counter* obs_predict_fast_calls_[kNumHardwareTypes] = {};
  obs::Histogram* obs_predict_seconds_[kNumHardwareTypes] = {};
  obs::Counter* obs_predict_records_ = nullptr;
  obs::Counter* obs_predict_batch_calls_ = nullptr;
  obs::Counter* obs_predict_batch_rows_ = nullptr;
  obs::Histogram* obs_predict_batch_size_ = nullptr;
  obs::Histogram* obs_predict_batch_seconds_ = nullptr;
};

}  // namespace fgro

#endif  // FGRO_MODEL_LATENCY_MODEL_H_
