#include "model/model_registry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <random>
#include <utility>

#include "common/rng.h"
#include "model/metrics.h"

namespace fgro {

ModelRegistry::ModelRegistry(int max_versions)
    : max_versions_(std::max(2, max_versions)) {}

long ModelRegistry::Install(std::shared_ptr<const LatencyModel> model,
                            std::string source) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.id = next_id_++;
  entry.model = std::move(model);
  entry.source = std::move(source);
  entries_.push_back(std::move(entry));
  previous_id_ = active_id_;
  active_id_ = entries_.back().id;
  ++epoch_;
  EvictLocked();
  return active_id_;
}

void ModelRegistry::EvictLocked() {
  while (entries_.size() > static_cast<size_t>(max_versions_)) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->id != active_id_ && it->id != previous_id_) {
        victim = it;
        break;
      }
    }
    if (victim == entries_.end()) return;  // only protected versions left
    entries_.erase(victim);
  }
}

std::shared_ptr<const LatencyModel> ModelRegistry::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.id == active_id_) return e.model;
  }
  return nullptr;
}

long ModelRegistry::active_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_id_;
}

long ModelRegistry::model_epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

Result<long> ModelRegistry::RollbackToPrevious() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (previous_id_ == 0) {
    return Status::FailedPrecondition("no predecessor version retained");
  }
  for (Entry& e : entries_) {
    if (e.id == active_id_) e.rolled_back = true;
  }
  active_id_ = previous_id_;
  // A second consecutive rollback has no sane target (the rolled-back
  // version is not it); the next Install re-arms rollback.
  previous_id_ = 0;
  ++epoch_;
  return active_id_;
}

std::shared_ptr<const LatencyModel> ModelRegistry::Get(long version_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.id == version_id) return e.model;
  }
  return nullptr;
}

std::vector<ModelRegistry::VersionInfo> ModelRegistry::Versions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<VersionInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    VersionInfo info;
    info.id = e.id;
    info.source = e.source;
    info.active = e.id == active_id_;
    info.rolled_back = e.rolled_back;
    out.push_back(std::move(info));
  }
  return out;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

ModelGateResult RunModelGate(const LatencyModel* candidate,
                             const LatencyModel* incumbent,
                             const TraceDataset& holdout,
                             const std::vector<int>& holdout_indices,
                             const ModelGateOptions& options) {
  ModelGateResult result;
  if (candidate == nullptr) {
    result.reason = "no candidate";
    return result;
  }
  if (!candidate->trained()) {
    result.reason = "candidate untrained";
    return result;
  }
  if (!candidate->HasFiniteParameters()) {
    result.reason = "candidate has non-finite parameters";
    return result;
  }
  if (static_cast<int>(holdout_indices.size()) < options.min_holdout_samples ||
      incumbent == nullptr || !incumbent->trained()) {
    result.passed = true;
    result.reason = "ok (accuracy check skipped)";
    return result;
  }

  Result<std::vector<double>> cand_pred =
      candidate->PredictRecords(holdout, holdout_indices);
  Result<std::vector<double>> inc_pred =
      incumbent->PredictRecords(holdout, holdout_indices);
  if (!cand_pred.ok()) {
    result.reason = "candidate prediction failed: " +
                    cand_pred.status().message();
    return result;
  }
  if (!inc_pred.ok()) {
    // Cannot compare against a broken incumbent; the structural checks
    // passed, so let the shadow window decide.
    result.passed = true;
    result.reason = "ok (incumbent prediction failed)";
    return result;
  }
  std::vector<double> actual;
  actual.reserve(holdout_indices.size());
  for (int idx : holdout_indices) {
    actual.push_back(holdout.records[static_cast<size_t>(idx)].actual_latency);
  }
  result.candidate_wmape =
      ComputeModelMetrics(actual, cand_pred.value()).wmape;
  result.incumbent_wmape = ComputeModelMetrics(actual, inc_pred.value()).wmape;
  const double budget =
      result.incumbent_wmape * (1.0 + options.max_wmape_regression);
  if (!std::isfinite(result.candidate_wmape) ||
      result.candidate_wmape > budget) {
    result.reason = "holdout WMAPE " + std::to_string(result.candidate_wmape) +
                    " exceeds budget " + std::to_string(budget) +
                    " (incumbent " + std::to_string(result.incumbent_wmape) +
                    ")";
    return result;
  }
  result.passed = true;
  result.reason = "ok";
  return result;
}

ModelLifecycle::ModelLifecycle(const ModelLifecycleOptions& options,
                               std::shared_ptr<const LatencyModel> initial,
                               const Workload* workload, uint64_t stream_seed,
                               const obs::Obs& obs)
    : options_(options), registry_(options.max_versions), seed_(stream_seed),
      obs_(obs) {
  options_.shadow_observations = std::max(1, options_.shadow_observations);
  options_.probation_observations =
      std::max(0, options_.probation_observations);
  options_.rollback_cooldown_observations =
      std::max(0, options_.rollback_cooldown_observations);
  options_.buffer_capacity = std::max(1, options_.buffer_capacity);
  options_.retrain_min_samples = std::max(1, options_.retrain_min_samples);
  buffer_.workload = workload;
  buffer_.records.reserve(static_cast<size_t>(options_.buffer_capacity));
  if (initial != nullptr) {
    registry_.Install(std::move(initial), "initial");
    active_raw_ = registry_.active().get();
  }
  if (obs_.metrics != nullptr) {
    obs_candidates_ = obs_.metrics->GetCounter("model.lifecycle.candidates");
    obs_gate_rejects_ =
        obs_.metrics->GetCounter("model.lifecycle.gate_rejects");
    obs_shadow_rejects_ =
        obs_.metrics->GetCounter("model.lifecycle.shadow_rejects");
    obs_promotions_ = obs_.metrics->GetCounter("model.lifecycle.promotions");
    obs_rollbacks_ = obs_.metrics->GetCounter("model.lifecycle.rollbacks");
    obs_retrains_ = obs_.metrics->GetCounter("model.lifecycle.retrains");
    obs_wasted_decisions_ =
        obs_.metrics->GetCounter("model.lifecycle.wasted_decisions");
  }
}

std::vector<int> ModelLifecycle::BufferIndices() const {
  std::vector<int> indices(buffer_.records.size());
  std::iota(indices.begin(), indices.end(), 0);
  return indices;
}

bool ModelLifecycle::SubmitCandidate(std::unique_ptr<LatencyModel> candidate,
                                     const std::string& source) {
  ++stats_.candidates_submitted;
  if (obs_candidates_ != nullptr) obs_candidates_->Increment();

  if (options_.unconditional) {
    // The unguarded adoption path the gate replaces: no validation, no
    // shadow, instant swap (bench collapse baseline).
    return Promote(std::move(candidate), source);
  }
  if (shadow_ != nullptr || cooldown_left_ > 0) return false;

  obs::ScopedSpan span(obs_.tracer, "model.lifecycle.gate");
  const ModelGateResult gate = RunModelGate(
      candidate.get(), active_raw_, buffer_, BufferIndices(), options_.gate);
  if (!gate.passed) {
    ++stats_.gate_rejects;
    if (obs_gate_rejects_ != nullptr) obs_gate_rejects_->Increment();
    return false;
  }
  shadow_ = std::move(candidate);
  shadow_source_ = source;
  shadow_scored_ = 0;
  shadow_abs_err_ = 0.0;
  incumbent_abs_err_ = 0.0;
  shadow_actual_sum_ = 0.0;
  return true;
}

bool ModelLifecycle::Promote(std::unique_ptr<LatencyModel> candidate,
                             const std::string& source) {
  if (candidate == nullptr) return false;
  obs::ScopedSpan span(obs_.tracer, "model.lifecycle.promote");
  registry_.Install(
      std::shared_ptr<const LatencyModel>(std::move(candidate)), source);
  active_raw_ = registry_.active().get();
  probation_left_ =
      options_.unconditional ? 0 : options_.probation_observations;
  decisions_since_promotion_ = 0;
  solve_since_promotion_ = 0.0;
  ++stats_.promotions;
  if (obs_promotions_ != nullptr) obs_promotions_->Increment();
  return true;
}

bool ModelLifecycle::Observe(int job_idx, int stage_idx, const Stage& stage,
                             int instance_idx, const ResourceConfig& theta,
                             int machine_id, int hardware_type,
                             const SystemState& machine_state,
                             double actual_latency, double now) {
  ++observations_;
  if (probation_left_ > 0) --probation_left_;
  if (cooldown_left_ > 0) --cooldown_left_;

  if (actual_latency > 0.0) {  // log-latency target needs > 0
    InstanceRecord record;
    record.job_idx = job_idx;
    record.stage_idx = stage_idx;
    record.instance_idx = instance_idx;
    record.template_id = stage.template_id;
    record.theta = theta;
    record.machine_id = machine_id;
    record.hardware_type = hardware_type;
    record.machine_state = machine_state;
    record.actual_latency = actual_latency;
    const size_t cap = static_cast<size_t>(options_.buffer_capacity);
    if (buffer_.records.size() < cap) {
      buffer_.records.push_back(std::move(record));
    } else {
      buffer_.records[buffer_cursor_] = std::move(record);
      buffer_cursor_ = (buffer_cursor_ + 1) % cap;
    }
  }

  bool promoted = false;
  if (shadow_ != nullptr && active_raw_ != nullptr && actual_latency > 0.0) {
    // Shadow canary: both models score the live observation; neither
    // result affects any decision until the window closes.
    Result<double> cand = shadow_->Predict(stage, instance_idx, theta,
                                           machine_state, hardware_type);
    Result<double> inc = active_raw_->Predict(stage, instance_idx, theta,
                                              machine_state, hardware_type);
    if (cand.ok() && inc.ok()) {
      shadow_abs_err_ += std::abs(cand.value() - actual_latency);
      incumbent_abs_err_ += std::abs(inc.value() - actual_latency);
      shadow_actual_sum_ += actual_latency;
      ++shadow_scored_;
    }
    if (shadow_scored_ >= options_.shadow_observations &&
        shadow_actual_sum_ > 0.0) {
      const double cand_wmape = shadow_abs_err_ / shadow_actual_sum_;
      const double inc_wmape = incumbent_abs_err_ / shadow_actual_sum_;
      if (cand_wmape <=
          inc_wmape * (1.0 + options_.max_shadow_regression)) {
        promoted = Promote(std::move(shadow_), shadow_source_);
      } else {
        ++stats_.shadow_rejects;
        if (obs_shadow_rejects_ != nullptr) obs_shadow_rejects_->Increment();
        shadow_.reset();
      }
    }
  }

  MaybeScheduledRetrain(now);
  return promoted;
}

void ModelLifecycle::MaybeScheduledRetrain(double now) {
  if (options_.retrain_period_seconds <= 0.0) return;
  if (!retrain_clock_set_) {
    retrain_clock_set_ = true;
    next_retrain_time_ = now + options_.retrain_period_seconds;
    return;
  }
  if (now < next_retrain_time_) return;
  next_retrain_time_ = now + options_.retrain_period_seconds;
  if (stats_.retrains >= options_.max_retrains) return;
  if (shadow_ != nullptr || cooldown_left_ > 0) return;
  const int n = static_cast<int>(buffer_.records.size());
  if (n < options_.retrain_min_samples) return;
  if (active_raw_ == nullptr || !active_raw_->trained()) return;

  obs::ScopedSpan span(obs_.tracer, "model.lifecycle.retrain");
  auto candidate = std::make_unique<LatencyModel>(*active_raw_);
  std::vector<int> indices = BufferIndices();
  TrainOptions tune;
  tune.epochs = options_.retrain_epochs;
  tune.batch_size = options_.retrain_batch;
  tune.lr = options_.retrain_lr;
  tune.lr_decay = 1.0;
  tune.max_train_samples = n;
  tune.seed = MixSeed(
      seed_, 0x5E7AULL + static_cast<uint64_t>(stats_.retrains));

  Status tuned = Status::OK();
  if (options_.poison == ModelLifecycleOptions::RetrainPoison::kLabelShuffle) {
    // Fine-tune on a label-permuted copy of the buffer: the candidate
    // learns noise, while the gate still validates on the true labels.
    TraceDataset poisoned = buffer_;
    std::vector<double> labels;
    labels.reserve(poisoned.records.size());
    for (const InstanceRecord& r : poisoned.records) {
      labels.push_back(r.actual_latency);
    }
    std::mt19937_64 shuffle_rng(MixSeed(
        seed_, 0x19ABULL + static_cast<uint64_t>(stats_.retrains)));
    std::shuffle(labels.begin(), labels.end(), shuffle_rng);
    for (size_t i = 0; i < poisoned.records.size(); ++i) {
      poisoned.records[i].actual_latency = labels[i];
    }
    tuned = candidate->FineTune(poisoned, indices, tune);
  } else {
    tuned = candidate->FineTune(buffer_, indices, tune);
  }
  if (!tuned.ok()) return;
  if (options_.poison == ModelLifecycleOptions::RetrainPoison::kNanInject) {
    candidate->CorruptParamForTest(
        std::numeric_limits<double>::quiet_NaN());
  }

  ++stats_.retrains;
  if (obs_retrains_ != nullptr) obs_retrains_->Increment();
  SubmitCandidate(std::move(candidate),
                  options_.poison == ModelLifecycleOptions::RetrainPoison::kNone
                      ? "retrain"
                      : "retrain-poisoned");
}

bool ModelLifecycle::NoteDriftAlarms(long alarms_raised) {
  if (alarms_raised <= last_alarms_seen_) return false;
  last_alarms_seen_ = alarms_raised;
  if (options_.unconditional) return false;
  if (probation_left_ <= 0) return false;

  // A fresh drift alarm inside probation: the promotion is presumed the
  // cause; restore the predecessor and account the work the bad model
  // burned.
  Result<long> restored = registry_.RollbackToPrevious();
  if (!restored.ok()) return false;
  obs::ScopedSpan span(obs_.tracer, "model.lifecycle.rollback");
  active_raw_ = registry_.active().get();
  ++stats_.rollbacks;
  stats_.wasted_decisions += decisions_since_promotion_;
  stats_.wasted_solve_seconds += solve_since_promotion_;
  if (obs_rollbacks_ != nullptr) obs_rollbacks_->Increment();
  if (obs_wasted_decisions_ != nullptr) {
    obs_wasted_decisions_->Increment(
        static_cast<uint64_t>(decisions_since_promotion_));
  }
  probation_left_ = 0;
  cooldown_left_ = options_.rollback_cooldown_observations;
  decisions_since_promotion_ = 0;
  solve_since_promotion_ = 0.0;
  shadow_.reset();  // the regime just proved unstable; re-canary later
  return true;
}

void ModelLifecycle::NoteDecision(double solve_seconds) {
  ++decisions_since_promotion_;
  solve_since_promotion_ += solve_seconds;
}

}  // namespace fgro
