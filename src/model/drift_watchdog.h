#ifndef FGRO_MODEL_DRIFT_WATCHDOG_H_
#define FGRO_MODEL_DRIFT_WATCHDOG_H_

#include <cstddef>
#include <vector>

#include "obs/obs.h"

namespace fgro {

/// Knobs for the online drift watchdog. Q-error = max(pred/actual,
/// actual/pred) >= 1; a perfectly calibrated model sits near 1, and the
/// paper's Fig. 10 drift scenario shows it climbing as the workload moves
/// away from the training distribution.
struct DriftWatchdogOptions {
  bool enabled = false;
  int window_size = 64;        // rolling observations kept per hardware type
  int min_samples = 16;        // a window below this can never alarm
  double alarm_qerror = 2.0;   // median q-error that raises the alarm
  /// Hysteresis: once alarmed, every window's median must drop below this
  /// (stricter) bound before the alarm clears — prevents flapping between
  /// demote and re-promote at the threshold.
  double recover_qerror = 1.5;
};

/// Online model-drift watchdog: compares predicted vs. simulated instance
/// latencies in a rolling q-error window per hardware type and raises a
/// drift alarm when any window's median crosses the threshold. The
/// simulator demotes the optimizer down the existing fallback ladder while
/// the alarm holds (the model keeps being shadow-evaluated, which is how
/// the window recovers and the optimizer is re-promoted).
///
/// Purely arithmetic over caller-supplied values: no clock, no RNG —
/// identical observation sequences produce identical alarm sequences.
class DriftWatchdog {
 public:
  DriftWatchdog(const DriftWatchdogOptions& options, int num_hardware_types);

  bool enabled() const { return options_.enabled; }

  /// Feeds one (predicted, actual) pair and updates the alarm state.
  /// Non-finite or non-positive pairs are counted as worst-case q-error:
  /// a model emitting NaN is maximally drifted, not ignorable.
  void Observe(int hardware_type, double predicted, double actual);

  bool alarmed() const { return alarmed_; }

  /// Number of clear -> alarmed transitions so far.
  int alarms_raised() const { return alarms_raised_; }

  /// Number of alarmed -> clear transitions so far.
  int recoveries() const { return recoveries_; }

  /// Wires the watchdog into the metrics registry: per-hardware-type
  /// rolling-median gauges (`drift.median_qerror.hw<k>`, plus `.other` for
  /// the catch-all bucket), `drift.worst_median_qerror`, the
  /// `drift.alarmed` gauge, and the `drift.alarms_raised` /
  /// `drift.recoveries` counters. Export-only: the watchdog never reads a
  /// metric back, so instrumented replays stay byte-identical.
  void set_obs(const obs::Obs& obs);

  /// Worst per-hardware-type median q-error over windows with enough
  /// samples; 1.0 when nothing qualifies yet.
  double WorstMedianQError() const;

  /// Median q-error of one hardware type's window (1.0 if under-sampled).
  double MedianQError(int hardware_type) const;

  const DriftWatchdogOptions& options() const { return options_; }

 private:
  void UpdateAlarm();

  DriftWatchdogOptions options_;
  /// Rolling windows, one per hardware type (+ one catch-all for ids
  /// outside [0, num_hardware_types)); ring buffers of q-errors.
  std::vector<std::vector<double>> windows_;
  std::vector<std::size_t> cursor_;
  bool alarmed_ = false;
  int alarms_raised_ = 0;
  int recoveries_ = 0;

  // Pre-resolved obs handles, null when not wired.
  std::vector<obs::Gauge*> obs_median_;  // one per bucket
  obs::Gauge* obs_worst_median_ = nullptr;
  obs::Gauge* obs_alarmed_ = nullptr;
  obs::Counter* obs_alarms_raised_ = nullptr;
  obs::Counter* obs_recoveries_ = nullptr;
};

}  // namespace fgro

#endif  // FGRO_MODEL_DRIFT_WATCHDOG_H_
