#include "model/gpr.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"

namespace fgro {

namespace {

/// In-place Cholesky decomposition of a dense SPD matrix (row-major, n x n);
/// returns false if the matrix is not positive definite.
bool Cholesky(std::vector<double>* a, int n) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = (*a)[static_cast<size_t>(i) * static_cast<size_t>(n) +
                        static_cast<size_t>(j)];
      for (int k = 0; k < j; ++k) {
        sum -= (*a)[static_cast<size_t>(i) * static_cast<size_t>(n) +
                    static_cast<size_t>(k)] *
               (*a)[static_cast<size_t>(j) * static_cast<size_t>(n) +
                    static_cast<size_t>(k)];
      }
      if (i == j) {
        if (sum <= 0.0) return false;
        (*a)[static_cast<size_t>(i) * static_cast<size_t>(n) +
             static_cast<size_t>(i)] = std::sqrt(sum);
      } else {
        (*a)[static_cast<size_t>(i) * static_cast<size_t>(n) +
             static_cast<size_t>(j)] =
            sum / (*a)[static_cast<size_t>(j) * static_cast<size_t>(n) +
                       static_cast<size_t>(j)];
      }
    }
    for (int j = i + 1; j < n; ++j) {
      (*a)[static_cast<size_t>(i) * static_cast<size_t>(n) +
           static_cast<size_t>(j)] = 0.0;
    }
  }
  return true;
}

/// Solves L z = b then L^T x = z for SPD K = L L^T.
std::vector<double> CholeskySolve(const std::vector<double>& chol, int n,
                                  std::vector<double> b) {
  for (int i = 0; i < n; ++i) {
    double sum = b[static_cast<size_t>(i)];
    for (int k = 0; k < i; ++k) {
      sum -= chol[static_cast<size_t>(i) * static_cast<size_t>(n) +
                  static_cast<size_t>(k)] *
             b[static_cast<size_t>(k)];
    }
    b[static_cast<size_t>(i)] =
        sum / chol[static_cast<size_t>(i) * static_cast<size_t>(n) +
                   static_cast<size_t>(i)];
  }
  for (int i = n - 1; i >= 0; --i) {
    double sum = b[static_cast<size_t>(i)];
    for (int k = i + 1; k < n; ++k) {
      sum -= chol[static_cast<size_t>(k) * static_cast<size_t>(n) +
                  static_cast<size_t>(i)] *
             b[static_cast<size_t>(k)];
    }
    b[static_cast<size_t>(i)] =
        sum / chol[static_cast<size_t>(i) * static_cast<size_t>(n) +
                   static_cast<size_t>(i)];
  }
  return b;
}

}  // namespace

double GprNoiseModel::Kernel(double a, double b) const {
  double d = (a - b) / options_.length_scale;
  return options_.signal_variance * std::exp(-0.5 * d * d);
}

Status GprNoiseModel::Fit(const std::vector<double>& predicted,
                          const std::vector<double>& actual) {
  if (predicted.size() != actual.size() || predicted.empty()) {
    return Status::InvalidArgument("predicted/actual size mismatch or empty");
  }
  Rng rng(options_.seed);

  // Residuals in log space; the GP models E[log actual - log pred | pred].
  std::vector<double> xs, ys;
  xs.reserve(predicted.size());
  ys.reserve(predicted.size());
  for (size_t i = 0; i < predicted.size(); ++i) {
    xs.push_back(std::log(std::max(1e-3, predicted[i])));
    ys.push_back(std::log(std::max(1e-3, actual[i])) -
                 std::log(std::max(1e-3, predicted[i])));
  }
  // The residual spread is the GPR's sigma: it widens for worse bootstrap
  // models (the Expt 12 mechanism).
  residual_variance_ = 0.0;
  y_mean_ = Mean(ys);
  for (double y : ys) residual_variance_ += (y - y_mean_) * (y - y_mean_);
  residual_variance_ =
      std::max(1e-4, residual_variance_ / static_cast<double>(ys.size()));

  // Subsample inducing points.
  std::vector<size_t> order(xs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng.engine());
  const int k = std::min<int>(options_.max_inducing_points,
                              static_cast<int>(xs.size()));
  x_.resize(static_cast<size_t>(k));
  std::vector<double> y(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    x_[static_cast<size_t>(i)] = xs[order[static_cast<size_t>(i)]];
    y[static_cast<size_t>(i)] = ys[order[static_cast<size_t>(i)]] - y_mean_;
  }

  chol_.assign(static_cast<size_t>(k) * static_cast<size_t>(k), 0.0);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      double v = Kernel(x_[static_cast<size_t>(i)], x_[static_cast<size_t>(j)]);
      if (i == j) v += residual_variance_ + options_.noise_floor;
      chol_[static_cast<size_t>(i) * static_cast<size_t>(k) +
            static_cast<size_t>(j)] = v;
    }
  }
  if (!Cholesky(&chol_, k)) {
    return Status::Internal("GPR kernel matrix not positive definite");
  }
  alpha_ = CholeskySolve(chol_, k, y);
  return Status::OK();
}

void GprNoiseModel::PredictDistribution(double predicted_latency, double* mu,
                                        double* sigma) const {
  const double x = std::log(std::max(1e-3, predicted_latency));
  if (!fitted()) {
    *mu = x;
    *sigma = 0.1;
    return;
  }
  const int k = static_cast<int>(x_.size());
  std::vector<double> ks(static_cast<size_t>(k));
  double mean_resid = y_mean_;
  for (int i = 0; i < k; ++i) {
    ks[static_cast<size_t>(i)] = Kernel(x, x_[static_cast<size_t>(i)]);
    mean_resid += ks[static_cast<size_t>(i)] * alpha_[static_cast<size_t>(i)];
  }
  // Posterior variance: k(x,x) - k* K^-1 k* + residual noise.
  std::vector<double> v = CholeskySolve(chol_, k, ks);
  double reduction = 0.0;
  for (int i = 0; i < k; ++i) {
    reduction += ks[static_cast<size_t>(i)] * v[static_cast<size_t>(i)];
  }
  double var = std::max(1e-6, Kernel(x, x) - reduction + residual_variance_);
  *mu = x + mean_resid;
  *sigma = std::sqrt(var);
}

double GprNoiseModel::Sample(double predicted_latency, Rng* rng) const {
  double mu = 0.0, sigma = 0.0;
  PredictDistribution(predicted_latency, &mu, &sigma);
  double z = Clamp(rng->Normal(0.0, 1.0), -3.0, 3.0);
  return std::max(0.005, std::exp(mu + sigma * z));
}

}  // namespace fgro
