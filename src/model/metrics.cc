#include "model/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"

namespace fgro {

ModelMetrics ComputeModelMetrics(const std::vector<double>& actual,
                                 const std::vector<double>& predicted,
                                 const std::vector<double>& cost_rates) {
  FGRO_CHECK(actual.size() == predicted.size());
  FGRO_CHECK(actual.size() == cost_rates.size());
  ModelMetrics m;
  if (actual.empty()) return m;

  double abs_err_sum = 0.0, actual_sum = 0.0;
  double cost_a = 0.0, cost_p = 0.0;
  std::vector<double> rel_errs;
  rel_errs.reserve(actual.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    const double a = actual[i], p = predicted[i];
    abs_err_sum += std::abs(a - p);
    actual_sum += a;
    rel_errs.push_back(a > 1e-12 ? std::abs(a - p) / a : 0.0);
    cost_a += a * cost_rates[i];
    cost_p += p * cost_rates[i];
  }
  m.wmape = actual_sum > 0.0 ? abs_err_sum / actual_sum : 0.0;
  m.mderr = Median(rel_errs);
  m.p95err = Percentile(rel_errs, 95.0);
  m.corr = PearsonCorrelation(actual, predicted);
  m.glberr = cost_a > 0.0 ? std::abs(cost_a - cost_p) / cost_a : 0.0;
  return m;
}

ModelMetrics ComputeModelMetrics(const std::vector<double>& actual,
                                 const std::vector<double>& predicted) {
  return ComputeModelMetrics(actual, predicted,
                             std::vector<double>(actual.size(), 1.0));
}

}  // namespace fgro
