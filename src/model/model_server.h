#ifndef FGRO_MODEL_MODEL_SERVER_H_
#define FGRO_MODEL_MODEL_SERVER_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "model/latency_model.h"
#include "model/model_registry.h"
#include "trace/data_split.h"

namespace fgro {

/// The model-server component of Fig. 3: owns the online latency model and
/// its update schedule. RunDriftSimulation implements Expt 7's prequential
/// protocol — each incoming time bucket is first *evaluated* with the
/// current model (that is the reported WMAPE), then becomes training data
/// according to the update policy.
class ModelServer {
 public:
  enum class UpdatePolicy {
    kStatic,           // train once on the first day's first window, never update
    kRetrain,          // retrain every 24h on all data seen so far
    kRetrainFinetune,  // retrain every 24h + fine-tune every 6h on recent data
  };

  struct DriftOptions {
    LatencyModel::Options model;
    TrainOptions train;
    double bucket_hours = 6.0;      // wall-clock span of each bucket
    int warmup_buckets = 1;         // buckets used for the initial training
    // The first training waits until this many records accumulated; an
    // undertrained model would otherwise dominate every policy's early
    // error and hide the drift signal the experiment measures.
    int min_training_records = 400;
    TrainOptions finetune;          // lr/epochs for the 6h fine-tune arm
    /// Gated adoption: every retrain / fine-tune runs on a clone and is
    /// promoted only if RunModelGate passes it against the incumbent on
    /// the bucket just evaluated (the freshest held-out data). A rejected
    /// candidate is discarded and the incumbent keeps serving — this is
    /// what contains a divergent fine-tune. Off by default: the classic
    /// Expt 7 arms update in place.
    bool gate_updates = false;
    ModelGateOptions gate;
  };

  struct DriftResult {
    std::vector<double> bucket_wmape;   // one per evaluated bucket
    std::vector<double> bucket_hours;   // bucket start, in hours
    /// Gated-adoption accounting (zero unless gate_updates).
    int updates_adopted = 0;
    int updates_rejected = 0;
  };

  static const char* PolicyName(UpdatePolicy policy);

  /// `buckets` are record-index buckets in injection order (by time for the
  /// realistic setting, by descending latency for the hypothetical worst).
  static Result<DriftResult> RunDriftSimulation(
      const TraceDataset& dataset,
      const std::vector<std::vector<int>>& buckets, UpdatePolicy policy,
      const DriftOptions& options);
};

}  // namespace fgro

#endif  // FGRO_MODEL_MODEL_SERVER_H_
