#include "model/prediction_cache.h"

namespace fgro {
namespace {

// splitmix64: cheap, well-mixed 64-bit finalizer.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t PredictionKey::Hash() const {
  uint64_t h = Mix(static_cast<uint64_t>(static_cast<uint32_t>(job_id)) |
                   (static_cast<uint64_t>(static_cast<uint32_t>(stage_id))
                    << 32));
  h = Mix(h ^ (static_cast<uint64_t>(static_cast<uint32_t>(instance_idx)) |
               (static_cast<uint64_t>(static_cast<uint32_t>(hardware_type))
                << 32)));
  h = Mix(h ^ theta_cores_bits);
  h = Mix(h ^ theta_memory_bits);
  h = Mix(h ^ cpu_bits);
  h = Mix(h ^ mem_bits);
  h = Mix(h ^ io_bits);
  h = Mix(h ^ model_tag);
  return h;
}

PredictionMemo::PredictionMemo(size_t capacity)
    : capacity_(capacity < kShards ? kShards : capacity) {}

bool PredictionMemo::Lookup(const PredictionKey& key, double* value) {
  Shard& shard = shards_[key.Hash() % kShards];
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      *value = it->second;
      hit = true;
    }
  }
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (obs_hits_ != nullptr) obs_hits_->Increment();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (obs_misses_ != nullptr) obs_misses_->Increment();
  }
  if (obs_hit_ratio_ != nullptr) {
    const double h = static_cast<double>(hits());
    const double total = h + static_cast<double>(misses());
    obs_hit_ratio_->Set(total > 0.0 ? h / total : 0.0);
  }
  return hit;
}

void PredictionMemo::Insert(const PredictionKey& key, double value) {
  Shard& shard = shards_[key.Hash() % kShards];
  const size_t shard_capacity = capacity_ / kShards;
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.map.emplace(key, value);
  if (!inserted) return;
  shard.order.push_back(key);
  while (shard.order.size() > shard_capacity) {
    shard.map.erase(shard.order.front());
    shard.order.pop_front();
  }
}

void PredictionMemo::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
    shard.order.clear();
  }
}

size_t PredictionMemo::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

void PredictionMemo::set_obs(const obs::Obs& obs) {
  if (obs.metrics == nullptr) {
    obs_hits_ = nullptr;
    obs_misses_ = nullptr;
    obs_hit_ratio_ = nullptr;
    return;
  }
  obs_hits_ = obs.metrics->GetCounter("model.memo.hits");
  obs_misses_ = obs.metrics->GetCounter("model.memo.misses");
  obs_hit_ratio_ = obs.metrics->GetGauge("model.memo.hit_ratio");
}

}  // namespace fgro
