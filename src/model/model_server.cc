#include "model/model_server.h"

#include <cmath>
#include <functional>
#include <utility>

#include "common/logging.h"
#include "model/metrics.h"
#include "model/model_registry.h"

namespace fgro {

const char* ModelServer::PolicyName(UpdatePolicy policy) {
  switch (policy) {
    case UpdatePolicy::kStatic: return "static";
    case UpdatePolicy::kRetrain: return "retrain";
    case UpdatePolicy::kRetrainFinetune: return "retrain+finetune";
  }
  return "?";
}

Result<ModelServer::DriftResult> ModelServer::RunDriftSimulation(
    const TraceDataset& dataset, const std::vector<std::vector<int>>& buckets,
    UpdatePolicy policy, const DriftOptions& options) {
  if (buckets.empty()) return Status::InvalidArgument("no buckets");
  LatencyModel model(options.model);

  DriftResult result;
  std::vector<int> seen;  // all records already "in the past"
  const int retrain_every =
      std::max(1, static_cast<int>(std::lround(24.0 / options.bucket_hours)));

  for (size_t b = 0; b < buckets.size(); ++b) {
    const std::vector<int>& bucket = buckets[b];
    // 1. Prequential evaluation of this bucket with the current model.
    if (model.trained() && !bucket.empty()) {
      Result<std::vector<double>> preds =
          model.PredictRecords(dataset, bucket);
      if (!preds.ok()) return preds.status();
      std::vector<double> actual;
      actual.reserve(bucket.size());
      for (int idx : bucket) {
        actual.push_back(
            dataset.records[static_cast<size_t>(idx)].actual_latency);
      }
      result.bucket_wmape.push_back(
          ComputeModelMetrics(actual, preds.value()).wmape);
      result.bucket_hours.push_back(static_cast<double>(b) *
                                    options.bucket_hours);
    }
    // 2. Absorb the bucket and update per policy.
    seen.insert(seen.end(), bucket.begin(), bucket.end());
    const bool warmup_done =
        static_cast<int>(b) + 1 >= options.warmup_buckets;
    if (!model.trained()) {
      if (warmup_done &&
          static_cast<int>(seen.size()) >= options.min_training_records) {
        FGRO_RETURN_IF_ERROR(model.Train(dataset, seen, {}, options.train));
      }
      continue;
    }
    // Gated adoption updates a clone and swaps it in only if the static
    // gate passes it against the incumbent on the bucket this round just
    // evaluated (the freshest data neither model has trained on yet).
    auto adopt = [&](const std::function<Status(LatencyModel*)>& update)
        -> Status {
      if (!options.gate_updates) return update(&model);
      LatencyModel candidate(model);
      FGRO_RETURN_IF_ERROR(update(&candidate));
      ModelGateResult gate =
          RunModelGate(&candidate, &model, dataset, bucket, options.gate);
      if (gate.passed) {
        model = std::move(candidate);
        ++result.updates_adopted;
      } else {
        ++result.updates_rejected;
      }
      return Status::OK();
    };
    switch (policy) {
      case UpdatePolicy::kStatic:
        break;
      case UpdatePolicy::kRetrainFinetune:
        if ((b + 1) % static_cast<size_t>(retrain_every) == 0) {
          FGRO_RETURN_IF_ERROR(adopt([&](LatencyModel* m) {
            return m->Train(dataset, seen, {}, options.train);
          }));
        } else {
          FGRO_RETURN_IF_ERROR(adopt([&](LatencyModel* m) {
            return m->FineTune(dataset, bucket, options.finetune);
          }));
        }
        break;
      case UpdatePolicy::kRetrain:
        if ((b + 1) % static_cast<size_t>(retrain_every) == 0) {
          FGRO_RETURN_IF_ERROR(adopt([&](LatencyModel* m) {
            return m->Train(dataset, seen, {}, options.train);
          }));
        }
        break;
    }
  }
  return result;
}

}  // namespace fgro
