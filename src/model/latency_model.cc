#include "model/latency_model.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/stopwatch.h"
#include "featurize/discretize.h"
#include "featurize/validate.h"
#include "model/metrics.h"

namespace fgro {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMciGtn: return "MCI+GTN";
    case ModelKind::kMciTlstm: return "MCI+TLSTM";
    case ModelKind::kMciQppnet: return "MCI+QPPNet";
    case ModelKind::kTlstmOriginal: return "TLSTM";
    case ModelKind::kQppnetOriginal: return "QPPNet";
  }
  return "?";
}

void Standardizer::Fit(const std::vector<const Vec*>& rows) {
  if (rows.empty()) return;
  const size_t d = rows[0]->size();
  mean.assign(d, 0.0);
  Vec sq(d, 0.0);
  for (const Vec* row : rows) {
    for (size_t i = 0; i < d; ++i) {
      mean[i] += (*row)[i];
      sq[i] += (*row)[i] * (*row)[i];
    }
  }
  const double n = static_cast<double>(rows.size());
  inv_std.assign(d, 1.0);
  for (size_t i = 0; i < d; ++i) {
    mean[i] /= n;
    double var = std::max(0.0, sq[i] / n - mean[i] * mean[i]);
    // Floor the deviation relative to the feature's own magnitude: a
    // near-constant dimension in a small training slice must not amplify
    // out-of-slice values by orders of magnitude (the drift experiments
    // retrain on thin windows where this bites hard).
    double floor = std::max(1e-3, 0.02 * std::abs(mean[i]));
    inv_std[i] = 1.0 / std::max(floor, std::sqrt(var));
  }
}

void Standardizer::Apply(Vec* row) const {
  if (!fitted()) return;
  FGRO_CHECK(row->size() == mean.size());
  for (size_t i = 0; i < row->size(); ++i) {
    // Clamp to a wide band: values far outside the training distribution
    // carry no usable signal and would destabilize the network.
    (*row)[i] = std::clamp(((*row)[i] - mean[i]) * inv_std[i], -10.0, 10.0);
  }
}

LatencyModel::LatencyModel(Options options) : options_(std::move(options)) {
  Rng rng(options_.seed);
  const int h = options_.mlp_hidden;
  const int e = options_.embed_dim;
  switch (options_.kind) {
    case ModelKind::kMciGtn:
      gnn_ = GraphEmbedder(kOpFeatureDim, e, options_.gnn_layers, &rng);
      predictor_ = Mlp({e + kInstanceFeatureDim, h, h, 1}, &rng);
      break;
    case ModelKind::kMciTlstm:
      tlstm_ = TreeLstm(kOpFeatureDim, e, &rng);
      predictor_ = Mlp({e + kInstanceFeatureDim, h, h, 1}, &rng);
      break;
    case ModelKind::kMciQppnet:
      qpp_ = QppNet(kNumOperatorTypes, kOpFeatureDim + kInstanceFeatureDim,
                    options_.qpp_data_dim, h, &rng);
      break;
    case ModelKind::kTlstmOriginal:
      tlstm_ = TreeLstm(kOpFeatureDim, e, &rng);
      predictor_ = Mlp({e, h, 1}, &rng);
      break;
    case ModelKind::kQppnetOriginal:
      qpp_ = QppNet(kNumOperatorTypes, kOpFeatureDim, options_.qpp_data_dim,
                    h, &rng);
      break;
  }
  RetagParams();
}

void LatencyModel::RetagParams() {
  // Process-wide monotone counter: two models whose parameters ever diverged
  // can never share a tag, so PredictionMemo keys built from the tag are
  // exact whatever mix of base/tuned/promoted models touches one memo. The
  // tag value itself never influences a prediction, so replays stay
  // byte-identical regardless of construction order across threads.
  static std::atomic<uint64_t> next_tag{1};
  params_tag_ = next_tag.fetch_add(1, std::memory_order_relaxed);
}

bool LatencyModel::HasFiniteParameters() const {
  auto all_finite = [](const Vec& v) {
    for (double x : v) {
      if (!std::isfinite(x)) return false;
    }
    return true;
  };
  std::vector<Param*> params = const_cast<LatencyModel*>(this)->AllParams();
  for (const Param* p : params) {
    if (!all_finite(p->value)) return false;
  }
  return all_finite(op_standardizer_.mean) &&
         all_finite(op_standardizer_.inv_std) &&
         all_finite(inst_standardizer_.mean) &&
         all_finite(inst_standardizer_.inv_std);
}

void LatencyModel::CorruptParamForTest(double value) {
  std::vector<Param*> params = AllParams();
  if (!params.empty() && !params[0]->value.empty()) {
    params[0]->value[0] = value;
  }
  RetagParams();
}

bool LatencyModel::UsesTree() const {
  return options_.kind != ModelKind::kMciGtn;
}

bool LatencyModel::UsesInstanceFeatures() const {
  return options_.kind == ModelKind::kMciGtn ||
         options_.kind == ModelKind::kMciTlstm ||
         options_.kind == ModelKind::kMciQppnet;
}

double LatencyModel::TargetOf(const InstanceRecord& record,
                              Target target) const {
  switch (target) {
    case Target::kInstanceLatency: return record.actual_latency;
    case Target::kActualCpuTime: return record.actual_cpu_seconds;
    case Target::kActualCpuTimeStar: return record.actual_cpu_seconds_star;
  }
  return record.actual_latency;
}

Status LatencyModel::PrepareSample(const TraceDataset& dataset,
                                   int record_idx, Target target,
                                   PreparedSample* out) const {
  const InstanceRecord& record =
      dataset.records[static_cast<size_t>(record_idx)];
  const Stage& stage = dataset.StageOf(record);
  FGRO_RETURN_IF_ERROR(PrepareForInference(stage, record.instance_idx,
                                           record.theta, record.machine_state,
                                           record.hardware_type, out));
  out->target_raw = std::max(0.005, TargetOf(record, target));
  out->target_log = std::log1p(out->target_raw);
  return Status::OK();
}

Status LatencyModel::PrepareForInference(const Stage& stage, int instance_idx,
                                         const ResourceConfig& theta,
                                         const SystemState& state,
                                         int hardware_type,
                                         PreparedSample* out) const {
  const Featurizer& fz = options_.featurizer;
  // Featurizer-boundary validation: a corrupt trace row or a bit-flipped
  // import must fail here with kInvalidArgument, not surface as a NaN
  // prediction inside IPA/RAA. (PredictFromEmbedding skips this on purpose:
  // its inputs were validated when the embedding was built.)
  FGRO_RETURN_IF_ERROR(ValidateInstanceMeta(stage, instance_idx));
  FGRO_RETURN_IF_ERROR(ValidateChannels(theta, state, hardware_type,
                                        fz.discretization_degree()));
  if (UsesTree()) {
    Result<PlanGraph> tree = fz.BuildPlanTree(stage, instance_idx,
                                              &out->tree_root);
    if (!tree.ok()) return tree.status();
    out->graph = std::move(tree).value();
  } else {
    Result<PlanGraph> graph = fz.BuildPlanGraph(stage, instance_idx);
    if (!graph.ok()) return graph.status();
    out->graph = std::move(graph).value();
  }
  out->inst_features = fz.InstanceFeatures(stage, instance_idx, theta, state,
                                           hardware_type);
  // Standardize (no-op before Fit during training preparation). The MCI
  // broadcast for QPPNet happens inside QppNet::Forward via the context
  // argument, so node rows always keep the plan-channel width here.
  for (Vec& row : out->graph.node_features) op_standardizer_.Apply(&row);
  inst_standardizer_.Apply(&out->inst_features);
  return Status::OK();
}

double LatencyModel::ForwardBackward(const PreparedSample& sample,
                                     const double* dpred) {
  switch (options_.kind) {
    case ModelKind::kMciGtn: {
      GraphEmbedder::Cache cache;
      Vec emb = gnn_.Forward(sample.graph, &cache);
      Vec input = emb;
      input.insert(input.end(), sample.inst_features.begin(),
                   sample.inst_features.end());
      MlpCache mc;
      double pred = predictor_.Forward(input, &mc)[0];
      if (dpred != nullptr) {
        Vec dinput = predictor_.Backward(mc, Vec{*dpred});
        Vec demb(dinput.begin(),
                 dinput.begin() + static_cast<long>(emb.size()));
        gnn_.Backward(cache, demb);
      }
      return pred;
    }
    case ModelKind::kMciTlstm:
    case ModelKind::kTlstmOriginal: {
      TreeLstm::Cache cache;
      Vec emb = tlstm_.Forward(sample.graph, sample.tree_root, &cache);
      Vec input = emb;
      if (options_.kind == ModelKind::kMciTlstm) {
        input.insert(input.end(), sample.inst_features.begin(),
                     sample.inst_features.end());
      }
      MlpCache mc;
      double pred = predictor_.Forward(input, &mc)[0];
      if (dpred != nullptr) {
        Vec dinput = predictor_.Backward(mc, Vec{*dpred});
        Vec demb(dinput.begin(),
                 dinput.begin() + static_cast<long>(emb.size()));
        tlstm_.Backward(cache, demb);
      }
      return pred;
    }
    case ModelKind::kMciQppnet:
    case ModelKind::kQppnetOriginal: {
      QppNet::Cache cache;
      const Vec* context = options_.kind == ModelKind::kMciQppnet
                               ? &sample.inst_features
                               : nullptr;
      double pred =
          qpp_.Forward(sample.graph, sample.tree_root, &cache, context);
      if (dpred != nullptr) qpp_.Backward(cache, *dpred);
      return pred;
    }
  }
  return 0.0;
}

double LatencyModel::ForwardOnly(const PreparedSample& sample) const {
  // Forward never mutates parameters; the const_cast spares a parallel
  // const implementation of the cached forward passes.
  return const_cast<LatencyModel*>(this)->ForwardBackward(sample, nullptr);
}

std::vector<Param*> LatencyModel::AllParams() {
  std::vector<Param*> params;
  switch (options_.kind) {
    case ModelKind::kMciGtn:
      gnn_.AppendParams(&params);
      predictor_.AppendParams(&params);
      break;
    case ModelKind::kMciTlstm:
    case ModelKind::kTlstmOriginal:
      tlstm_.AppendParams(&params);
      predictor_.AppendParams(&params);
      break;
    case ModelKind::kMciQppnet:
    case ModelKind::kQppnetOriginal:
      qpp_.AppendParams(&params);
      break;
  }
  return params;
}

Status LatencyModel::Train(const TraceDataset& dataset,
                           const std::vector<int>& train_idx,
                           const std::vector<int>& val_idx,
                           const TrainOptions& options, Target target) {
  target_ = target;
  Rng rng(options.seed);

  // Subsample the training set to the cap (uniformly, preserving skew).
  std::vector<int> indices = train_idx;
  std::shuffle(indices.begin(), indices.end(), rng.engine());
  if (static_cast<int>(indices.size()) > options.max_train_samples) {
    indices.resize(static_cast<size_t>(options.max_train_samples));
  }
  if (indices.empty()) return Status::InvalidArgument("empty training set");

  // Pass 1: raw features to fit the standardizers.
  op_standardizer_ = Standardizer{};
  inst_standardizer_ = Standardizer{};
  std::vector<PreparedSample> samples(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    FGRO_RETURN_IF_ERROR(
        PrepareSample(dataset, indices[i], target, &samples[i]));
  }
  {
    std::vector<const Vec*> op_rows, inst_rows;
    for (const PreparedSample& s : samples) {
      for (const Vec& row : s.graph.node_features) op_rows.push_back(&row);
      inst_rows.push_back(&s.inst_features);
    }
    op_standardizer_.Fit(op_rows);
    inst_standardizer_.Fit(inst_rows);
  }
  // Pass 2: re-prepare with standardization (and QPPNet broadcast) applied.
  for (size_t i = 0; i < indices.size(); ++i) {
    double raw = samples[i].target_raw, lg = samples[i].target_log;
    FGRO_RETURN_IF_ERROR(
        PrepareSample(dataset, indices[i], target, &samples[i]));
    samples[i].target_raw = raw;
    samples[i].target_log = lg;
  }

  adam_ = Adam(Adam::Options{.lr = options.lr});
  std::vector<Param*> params = AllParams();
  std::vector<size_t> order(samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    double loss_sum = 0.0;
    size_t pos = 0;
    while (pos < order.size()) {
      adam_.ZeroGrad(params);
      int batch = 0;
      for (; batch < options.batch_size && pos < order.size();
           ++batch, ++pos) {
        const PreparedSample& s = samples[order[pos]];
        double pred = ForwardOnly(s);
        double dpred = pred - s.target_log;
        loss_sum += 0.5 * dpred * dpred;
        ForwardBackward(s, &dpred);
      }
      adam_.Step(params, batch);
    }
    adam_.set_lr(adam_.lr() * options.lr_decay);
    if (options.verbose) {
      trained_ = true;
      double val_wmape = -1.0;
      if (!val_idx.empty()) {
        Result<std::vector<double>> preds = PredictRecords(dataset, val_idx);
        if (preds.ok()) {
          std::vector<double> actual;
          actual.reserve(val_idx.size());
          for (int idx : val_idx) {
            actual.push_back(TargetOf(
                dataset.records[static_cast<size_t>(idx)], target));
          }
          val_wmape = ComputeModelMetrics(actual, preds.value()).wmape;
        }
      }
      FGRO_LOG(kInfo) << ModelKindName(options_.kind) << " epoch " << epoch
                      << " train_loss=" << loss_sum / samples.size()
                      << " val_wmape=" << val_wmape;
    }
  }
  trained_ = true;
  RetagParams();
  return Status::OK();
}

Status LatencyModel::FineTune(const TraceDataset& dataset,
                              const std::vector<int>& indices,
                              const TrainOptions& options) {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  if (indices.empty()) return Status::OK();
  Rng rng(options.seed);

  std::vector<int> subset = indices;
  std::shuffle(subset.begin(), subset.end(), rng.engine());
  if (static_cast<int>(subset.size()) > options.max_train_samples) {
    subset.resize(static_cast<size_t>(options.max_train_samples));
  }
  std::vector<PreparedSample> samples(subset.size());
  for (size_t i = 0; i < subset.size(); ++i) {
    FGRO_RETURN_IF_ERROR(
        PrepareSample(dataset, subset[i], target_, &samples[i]));
  }
  std::vector<Param*> params = AllParams();
  Adam tuner(Adam::Options{.lr = options.lr});
  std::vector<size_t> order(samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    size_t pos = 0;
    while (pos < order.size()) {
      tuner.ZeroGrad(params);
      int batch = 0;
      for (; batch < options.batch_size && pos < order.size();
           ++batch, ++pos) {
        const PreparedSample& s = samples[order[pos]];
        double pred = ForwardOnly(s);
        double dpred = pred - s.target_log;
        ForwardBackward(s, &dpred);
      }
      tuner.Step(params, batch);
    }
  }
  RetagParams();
  return Status::OK();
}

Result<double> LatencyModel::PredictImpl(const Stage& stage, int instance_idx,
                                         const ResourceConfig& theta,
                                         const SystemState& state,
                                         int hardware_type) const {
  PreparedSample sample;
  FGRO_RETURN_IF_ERROR(PrepareForInference(
      stage, instance_idx, theta, state, hardware_type, &sample));
  double pred_log = Clamp(ForwardOnly(sample), -2.0, 12.5);
  return std::max(0.005, std::expm1(pred_log));
}

Result<double> LatencyModel::Predict(const Stage& stage, int instance_idx,
                                     const ResourceConfig& theta,
                                     const SystemState& state,
                                     int hardware_type) const {
  const bool instrumented = hardware_type >= 0 &&
                            hardware_type < kNumHardwareTypes &&
                            obs_predict_calls_[hardware_type] != nullptr;
  if (!instrumented) {
    return PredictImpl(stage, instance_idx, theta, state, hardware_type);
  }
  Stopwatch timer;
  Result<double> out =
      PredictImpl(stage, instance_idx, theta, state, hardware_type);
  obs_predict_calls_[hardware_type]->Increment();
  obs_predict_seconds_[hardware_type]->Observe(timer.ElapsedSeconds());
  return out;
}

void LatencyModel::set_obs(const obs::Obs& obs) {
  for (int h = 0; h < kNumHardwareTypes; ++h) {
    if (obs.metrics == nullptr) {
      obs_predict_calls_[h] = nullptr;
      obs_predict_fast_calls_[h] = nullptr;
      obs_predict_seconds_[h] = nullptr;
    } else {
      const std::string suffix = ".hw" + std::to_string(h);
      obs_predict_calls_[h] =
          obs.metrics->GetCounter("model.predict_calls" + suffix);
      obs_predict_fast_calls_[h] =
          obs.metrics->GetCounter("model.predict_fast_calls" + suffix);
      obs_predict_seconds_[h] =
          obs.metrics->GetLatencyHistogram("model.predict_seconds" + suffix);
    }
  }
  if (obs.metrics == nullptr) {
    obs_predict_records_ = nullptr;
    obs_predict_batch_calls_ = nullptr;
    obs_predict_batch_rows_ = nullptr;
    obs_predict_batch_size_ = nullptr;
    obs_predict_batch_seconds_ = nullptr;
  } else {
    obs_predict_records_ =
        obs.metrics->GetCounter("model.predict_records_calls");
    obs_predict_batch_calls_ =
        obs.metrics->GetCounter("model.predict_batch_calls");
    obs_predict_batch_rows_ =
        obs.metrics->GetCounter("model.predict_batch_rows");
    // Power-of-two batch-size buckets: 1 .. 2^19 (+overflow) spans one RAA
    // grid row through the largest IPA matrices.
    obs_predict_batch_size_ = obs.metrics->GetHistogram(
        "model.predict_batch_size",
        obs::Histogram::ExponentialBounds(1.0, 2.0, 20));
    obs_predict_batch_seconds_ =
        obs.metrics->GetLatencyHistogram("model.predict_batch_seconds");
  }
}

Result<LatencyModel::EmbeddedInstance> LatencyModel::Embed(
    const Stage& stage, int instance_idx) const {
  EmbeddedInstance out;
  out.stage = &stage;
  out.instance_idx = instance_idx;
  if (options_.kind == ModelKind::kMciGtn ||
      options_.kind == ModelKind::kMciTlstm) {
    PreparedSample sample;
    // theta/state/hw are placeholders: only the plan graph matters here.
    FGRO_RETURN_IF_ERROR(PrepareForInference(
        stage, instance_idx, ResourceConfig{}, SystemState{}, 0, &sample));
    if (options_.kind == ModelKind::kMciGtn) {
      GraphEmbedder::Cache cache;
      out.plan_embedding = gnn_.Forward(sample.graph, &cache);
    } else {
      TreeLstm::Cache cache;
      out.plan_embedding =
          tlstm_.Forward(sample.graph, sample.tree_root, &cache);
    }
    // Standardized Channel-2 slice (first kCh2Dim entries of inst features).
    out.ch2_features.assign(sample.inst_features.begin(),
                            sample.inst_features.begin() + kCh2Dim);
  }
  return out;
}

double LatencyModel::PredictFromEmbedding(const EmbeddedInstance& embedded,
                                          const ResourceConfig& theta,
                                          const SystemState& state,
                                          int hardware_type) const {
  // Count-only on the fast path: this runs once per grid configuration in
  // RAA's frontier sweep, so a timer here would distort exactly the numbers
  // the breakdown is meant to explain. (The QPPNet fallback below lands in
  // Predict and is timed there.)
  if (hardware_type >= 0 && hardware_type < kNumHardwareTypes &&
      obs_predict_fast_calls_[hardware_type] != nullptr) {
    obs_predict_fast_calls_[hardware_type]->Increment();
  }
  if (options_.kind == ModelKind::kMciGtn ||
      options_.kind == ModelKind::kMciTlstm) {
    Vec context =
        options_.featurizer.ContextFeatures(theta, state, hardware_type);
    // Standardize the context slice with the tail of the instance
    // standardizer (indices kCh2Dim..).
    if (inst_standardizer_.fitted()) {
      for (size_t i = 0; i < context.size(); ++i) {
        size_t j = static_cast<size_t>(kCh2Dim) + i;
        context[i] =
            (context[i] - inst_standardizer_.mean[j]) *
            inst_standardizer_.inv_std[j];
      }
    }
    // Assemble [embedding | ch2 | context] with one reservation; the old
    // copy-then-insert form reallocated the vector up to twice per call,
    // which dominated the RAA sweep's allocator traffic.
    Vec input;
    input.reserve(embedded.plan_embedding.size() +
                  embedded.ch2_features.size() + context.size());
    input.insert(input.end(), embedded.plan_embedding.begin(),
                 embedded.plan_embedding.end());
    input.insert(input.end(), embedded.ch2_features.begin(),
                 embedded.ch2_features.end());
    input.insert(input.end(), context.begin(), context.end());
    double pred_log = Clamp(predictor_.Forward(input)[0], -2.0, 12.5);
    return std::max(0.005, std::expm1(pred_log));
  }
  // QPPNet-style and original models: full forward pass.
  Result<double> pred = Predict(*embedded.stage, embedded.instance_idx, theta,
                                state, hardware_type);
  return pred.ok() ? pred.value() : 1.0;
}

namespace {

/// Chunk size for batched feature-matrix assembly: bounds the scratch at
/// kBatchChunk x in_dim doubles (~100 KB for the default GTN head) so an
/// IPA matrix with a million cells never materializes as one allocation.
constexpr int kBatchChunk = 256;

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

PredictionKey MakePredictionKey(const LatencyModel::EmbeddedInstance& embedded,
                                const ResourceConfig& theta,
                                const SystemState& state, int hardware_type,
                                int discretization_degree,
                                uint64_t model_tag) {
  PredictionKey key;
  if (embedded.stage != nullptr) {
    key.job_id = embedded.stage->job_id;
    key.stage_id = embedded.stage->id;
  }
  key.instance_idx = embedded.instance_idx;
  key.hardware_type = hardware_type;
  key.theta_cores_bits = DoubleBits(theta.cores);
  key.theta_memory_bits = DoubleBits(theta.memory_gb);
  // The model sees the machine state only through its discretization, so
  // keying on the discretized bits is exact (see PredictionKey docs).
  const SystemState d = DiscretizeState(state, discretization_degree);
  key.cpu_bits = DoubleBits(d.cpu_util);
  key.mem_bits = DoubleBits(d.mem_util);
  key.io_bits = DoubleBits(d.io_util);
  key.model_tag = model_tag;
  return key;
}

}  // namespace

void LatencyModel::PredictBatch(const std::vector<PredictionQuery>& queries,
                                double* out, BatchScratch* scratch,
                                PredictionMemo* memo) const {
  const int n = static_cast<int>(queries.size());
  if (n == 0) return;
  Stopwatch timer;
  if (obs_predict_batch_calls_ != nullptr) {
    obs_predict_batch_calls_->Increment();
    obs_predict_batch_size_->Observe(static_cast<double>(n));
  }
  const int dd = options_.featurizer.discretization_degree();

  // Memo pass: resolve hits up front; only misses reach the forward pass.
  scratch->pending.clear();
  scratch->pending.reserve(static_cast<size_t>(n));
  if (memo != nullptr) {
    for (int i = 0; i < n; ++i) {
      const PredictionQuery& q = queries[i];
      const PredictionKey key =
          MakePredictionKey(*q.embedded, q.candidate.theta, q.candidate.state,
                            q.candidate.hardware_type, dd, params_tag_);
      if (!memo->Lookup(key, &out[i])) scratch->pending.push_back(i);
    }
  } else {
    for (int i = 0; i < n; ++i) scratch->pending.push_back(i);
  }
  if (scratch->pending.empty()) {
    if (obs_predict_batch_seconds_ != nullptr) {
      obs_predict_batch_seconds_->Observe(timer.ElapsedSeconds());
    }
    return;
  }

  const bool fast = options_.kind == ModelKind::kMciGtn ||
                    options_.kind == ModelKind::kMciTlstm;
  if (!fast) {
    // QPPNet-style kinds broadcast context into every unit, so there is no
    // reusable embedding to batch over; fall through to the scalar path
    // (these rows land in model.predict_calls, not predict_batch_rows).
    for (int i : scratch->pending) {
      const PredictionQuery& q = queries[i];
      out[i] = PredictFromEmbedding(*q.embedded, q.candidate.theta,
                                    q.candidate.state,
                                    q.candidate.hardware_type);
      if (memo != nullptr) {
        memo->Insert(MakePredictionKey(*q.embedded, q.candidate.theta,
                                       q.candidate.state,
                                       q.candidate.hardware_type, dd,
                                       params_tag_),
                     out[i]);
      }
    }
    // No predict_batch_seconds observation here: these rows were already
    // timed inside Predict, and the breakdown rollup must not count the
    // same wall-clock twice.
    return;
  }

  const int in_dim = predictor_.in_dim();
  const int pending_count = static_cast<int>(scratch->pending.size());
  if (obs_predict_batch_rows_ != nullptr) {
    obs_predict_batch_rows_->Increment(static_cast<uint64_t>(pending_count));
  }
  for (int start = 0; start < pending_count; start += kBatchChunk) {
    const int m = std::min(kBatchChunk, pending_count - start);
    scratch->features.Resize(m, in_dim);
    for (int r = 0; r < m; ++r) {
      const PredictionQuery& q = queries[scratch->pending[start + r]];
      const EmbeddedInstance& e = *q.embedded;
      FGRO_CHECK(static_cast<int>(e.plan_embedding.size() +
                                  e.ch2_features.size()) +
                     kContextDim ==
                 in_dim);
      double* row = scratch->features.Row(r);
      std::memcpy(row, e.plan_embedding.data(),
                  e.plan_embedding.size() * sizeof(double));
      double* cursor = row + e.plan_embedding.size();
      std::memcpy(cursor, e.ch2_features.data(),
                  e.ch2_features.size() * sizeof(double));
      cursor += e.ch2_features.size();
      ContextFeatureRowInto(q.candidate.theta, q.candidate.state,
                            q.candidate.hardware_type,
                            options_.featurizer.mask(), dd, cursor);
      // Same (unclamped) tail standardization as PredictFromEmbedding —
      // identical operations in identical order keeps rows bit-identical
      // to the scalar path.
      if (inst_standardizer_.fitted()) {
        for (int i = 0; i < kContextDim; ++i) {
          const size_t j = static_cast<size_t>(kCh2Dim + i);
          cursor[i] = (cursor[i] - inst_standardizer_.mean[j]) *
                      inst_standardizer_.inv_std[j];
        }
      }
    }
    const Mat& y = predictor_.ForwardBatch(scratch->features, &scratch->mlp);
    for (int r = 0; r < m; ++r) {
      const int i = scratch->pending[start + r];
      const double pred_log = Clamp(y.Row(r)[0], -2.0, 12.5);
      out[i] = std::max(0.005, std::expm1(pred_log));
      if (memo != nullptr) {
        const PredictionQuery& q = queries[i];
        memo->Insert(MakePredictionKey(*q.embedded, q.candidate.theta,
                                       q.candidate.state,
                                       q.candidate.hardware_type, dd,
                                       params_tag_),
                     out[i]);
      }
    }
  }
  if (obs_predict_batch_seconds_ != nullptr) {
    obs_predict_batch_seconds_->Observe(timer.ElapsedSeconds());
  }
}

void LatencyModel::PredictBatch(
    const EmbeddedInstance& embedded,
    const std::vector<PredictionCandidate>& candidates, double* out,
    BatchScratch* scratch, PredictionMemo* memo) const {
  scratch->queries.clear();
  scratch->queries.reserve(candidates.size());
  for (const PredictionCandidate& c : candidates) {
    scratch->queries.push_back(PredictionQuery{&embedded, c});
  }
  PredictBatch(scratch->queries, out, scratch, memo);
}

Result<std::vector<double>> LatencyModel::PredictRecords(
    const TraceDataset& dataset, const std::vector<int>& indices) const {
  if (obs_predict_records_ != nullptr) obs_predict_records_->Increment();
  std::vector<double> out;
  out.reserve(indices.size());
  for (int idx : indices) {
    const InstanceRecord& r = dataset.records[static_cast<size_t>(idx)];
    Result<double> pred = Predict(dataset.StageOf(r), r.instance_idx, r.theta,
                                  r.machine_state, r.hardware_type);
    if (!pred.ok()) return pred.status();
    out.push_back(pred.value());
  }
  return out;
}

namespace {
constexpr const char* kModelMagic = "fgro-model-v2";
constexpr const char* kChecksumPrefix = "checksum ";

void WriteVec(std::FILE* f, const Vec& v) {
  std::fprintf(f, "%zu", v.size());
  for (double x : v) std::fprintf(f, " %.17g", x);
  std::fprintf(f, "\n");
}

bool ReadVec(std::FILE* f, Vec* v) {
  size_t n = 0;
  if (std::fscanf(f, "%zu", &n) != 1) return false;
  // Cap against a crafted header demanding an absurd allocation before any
  // value has been read; no real snapshot's vector comes close.
  if (n > (1u << 26)) return false;
  v->resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (std::fscanf(f, "%lg", &(*v)[i]) != 1) return false;
  }
  return true;
}

/// FNV-1a 64 over the snapshot body. The footer makes truncation, bit
/// flips, and appended junk detectable as framing damage (kDataLoss)
/// instead of surfacing as a subtly wrong model.
uint64_t SnapshotChecksum(const char* data, size_t size) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

Status LatencyModel::Save(const std::string& path) const {
  // Assemble the body in memory so the checksum footer can cover every
  // byte exactly as written.
  char* body = nullptr;
  size_t body_size = 0;
  std::FILE* f = open_memstream(&body, &body_size);
  if (f == nullptr) return Status::Internal("cannot buffer snapshot");
  const ChannelMask& mask = options_.featurizer.mask();
  std::fprintf(f, "%s\n", kModelMagic);
  std::fprintf(f, "%d %d %d %d %d %lu\n", static_cast<int>(options_.kind),
               options_.embed_dim, options_.gnn_layers, options_.mlp_hidden,
               options_.qpp_data_dim,
               static_cast<unsigned long>(options_.seed));
  std::fprintf(f, "%d %d %d %d %d %d %d\n", mask.ch1 ? 1 : 0,
               mask.ch2 ? 1 : 0, mask.ch3 ? 1 : 0, mask.ch4 ? 1 : 0,
               mask.ch5 ? 1 : 0, static_cast<int>(mask.aim),
               options_.featurizer.discretization_degree());
  std::fprintf(f, "%d %d\n", trained_ ? 1 : 0, static_cast<int>(target_));
  WriteVec(f, op_standardizer_.mean);
  WriteVec(f, op_standardizer_.inv_std);
  WriteVec(f, inst_standardizer_.mean);
  WriteVec(f, inst_standardizer_.inv_std);
  std::vector<Param*> params = const_cast<LatencyModel*>(this)->AllParams();
  std::fprintf(f, "%zu\n", params.size());
  for (const Param* p : params) {
    std::fprintf(f, "%d %d ", p->rows, p->cols);
    WriteVec(f, p->value);
  }
  std::fclose(f);

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::free(body);
    return Status::Internal("cannot open " + path);
  }
  const size_t written = std::fwrite(body, 1, body_size, out);
  std::fprintf(out, "%s%016llx\n", kChecksumPrefix,
               static_cast<unsigned long long>(
                   SnapshotChecksum(body, body_size)));
  std::free(body);
  if (written != body_size || std::fclose(out) != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<LatencyModel>> LatencyModel::Load(
    const std::string& path) {
  std::FILE* raw = std::fopen(path.c_str(), "rb");
  if (raw == nullptr) return Status::NotFound("cannot open " + path);
  std::string content;
  {
    char buf[1 << 16];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), raw)) > 0) {
      content.append(buf, n);
    }
    const bool read_error = std::ferror(raw) != 0;
    std::fclose(raw);
    if (read_error) return Status::DataLoss(path + ": read error");
  }

  // Framing first: the last line must be the checksum footer and it must
  // match the body byte-for-byte. Anything else — empty file, truncation,
  // a flipped bit, appended junk — is storage damage, not a caller error.
  auto damaged = [&](const std::string& why) -> Status {
    return Status::DataLoss(path + ": " + why);
  };
  if (content.empty()) return damaged("empty snapshot");
  if (content.back() != '\n') return damaged("truncated snapshot");
  const size_t footer_start = content.rfind('\n', content.size() - 2);
  const size_t body_size = footer_start == std::string::npos
                               ? 0
                               : footer_start + 1;
  const std::string footer =
      content.substr(body_size, content.size() - body_size - 1);
  unsigned long long stored = 0;
  char trailing = '\0';
  if (footer.compare(0, std::strlen(kChecksumPrefix), kChecksumPrefix) != 0 ||
      std::sscanf(footer.c_str() + std::strlen(kChecksumPrefix), "%16llx%c",
                  &stored, &trailing) != 1) {
    return damaged("missing or malformed checksum footer");
  }
  if (SnapshotChecksum(content.data(), body_size) != stored) {
    return damaged("checksum mismatch");
  }

  // The body verified, so parse it; any structural or value-level garbage
  // past this point was *written* that way — an invalid snapshot, not a
  // damaged one.
  std::FILE* f = fmemopen(const_cast<char*>(content.data()), body_size, "r");
  if (f == nullptr) return Status::Internal("cannot buffer snapshot");
  auto fail = [&](const std::string& why) -> Status {
    std::fclose(f);
    return Status::InvalidArgument(path + ": " + why);
  };
  char magic[64] = {0};
  if (std::fscanf(f, "%63s", magic) != 1 ||
      std::string(magic) != kModelMagic) {
    return fail("bad magic");
  }
  Options options;
  int kind = 0;
  unsigned long seed = 0;
  if (std::fscanf(f, "%d %d %d %d %d %lu", &kind, &options.embed_dim,
                  &options.gnn_layers, &options.mlp_hidden,
                  &options.qpp_data_dim, &seed) != 6) {
    return fail("bad architecture header");
  }
  if (kind < 0 || kind > static_cast<int>(ModelKind::kQppnetOriginal) ||
      options.embed_dim < 1 || options.embed_dim > 4096 ||
      options.gnn_layers < 0 || options.gnn_layers > 64 ||
      options.mlp_hidden < 1 || options.mlp_hidden > 4096 ||
      options.qpp_data_dim < 1 || options.qpp_data_dim > 4096) {
    return fail("architecture header out of range");
  }
  options.kind = static_cast<ModelKind>(kind);
  options.seed = seed;
  int ch[5] = {0}, aim = 0, dd = 10;
  if (std::fscanf(f, "%d %d %d %d %d %d %d", &ch[0], &ch[1], &ch[2], &ch[3],
                  &ch[4], &aim, &dd) != 7) {
    return fail("bad channel mask");
  }
  if (dd < 1 || dd > 1024) return fail("discretization degree out of range");
  ChannelMask mask;
  mask.ch1 = ch[0] != 0;
  mask.ch2 = ch[1] != 0;
  mask.ch3 = ch[2] != 0;
  mask.ch4 = ch[3] != 0;
  mask.ch5 = ch[4] != 0;
  mask.aim = static_cast<AimMode>(aim);
  options.featurizer = Featurizer(mask, dd);

  auto model = std::make_unique<LatencyModel>(options);
  int trained = 0, target = 0;
  if (std::fscanf(f, "%d %d", &trained, &target) != 2) {
    return fail("bad state header");
  }
  if (target < 0 || target > static_cast<int>(Target::kActualCpuTimeStar)) {
    return fail("unknown training target");
  }
  model->trained_ = trained != 0;
  model->target_ = static_cast<Target>(target);
  if (!ReadVec(f, &model->op_standardizer_.mean) ||
      !ReadVec(f, &model->op_standardizer_.inv_std) ||
      !ReadVec(f, &model->inst_standardizer_.mean) ||
      !ReadVec(f, &model->inst_standardizer_.inv_std)) {
    return fail("bad standardizers");
  }
  size_t param_count = 0;
  if (std::fscanf(f, "%zu", &param_count) != 1) return fail("bad param count");
  std::vector<Param*> params = model->AllParams();
  if (params.size() != param_count) return fail("param count mismatch");
  for (Param* p : params) {
    int rows = 0, cols = 0;
    Vec value;
    if (std::fscanf(f, "%d %d", &rows, &cols) != 2 || !ReadVec(f, &value) ||
        rows != p->rows || cols != p->cols ||
        value.size() != p->value.size()) {
      return fail("param shape mismatch");
    }
    p->value = std::move(value);
  }
  char extra[2] = {0};
  if (std::fscanf(f, "%1s", extra) == 1) return fail("trailing data in body");
  std::fclose(f);
  if (!model->HasFiniteParameters()) {
    return Status::InvalidArgument(path + ": non-finite parameter");
  }
  model->RetagParams();
  return model;
}

}  // namespace fgro
