#ifndef FGRO_MODEL_METRICS_H_
#define FGRO_MODEL_METRICS_H_

#include <vector>

namespace fgro {

/// The five accuracy metrics of Section 6.1. WMAPE is the primary one: it
/// weights errors by the actual latency, so long-running instances (the ones
/// resource optimization cares about) dominate it.
struct ModelMetrics {
  double wmape = 0.0;   // sum|a-p| / sum a
  double mderr = 0.0;   // median of |a-p|/a
  double p95err = 0.0;  // 95th percentile of |a-p|/a
  double corr = 0.0;    // Pearson correlation of a and p
  double glberr = 0.0;  // |sum(cost_a) - sum(cost_p)| / sum(cost_a)
};

/// `cost_rates[i]` converts instance i's latency to cloud cost (w . theta);
/// pass all-ones to get GlbErr on total latency instead.
ModelMetrics ComputeModelMetrics(const std::vector<double>& actual,
                                 const std::vector<double>& predicted,
                                 const std::vector<double>& cost_rates);

/// Convenience overload with unit cost rates.
ModelMetrics ComputeModelMetrics(const std::vector<double>& actual,
                                 const std::vector<double>& predicted);

}  // namespace fgro

#endif  // FGRO_MODEL_METRICS_H_
