#ifndef FGRO_MODEL_MODEL_REGISTRY_H_
#define FGRO_MODEL_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/latency_model.h"
#include "obs/obs.h"
#include "trace/trace_collector.h"

namespace fgro {

/// Versioned registry of immutable latency-model snapshots: the safe
/// hand-off point between whoever produces models (scheduled retrains,
/// reconfig fine-tunes, snapshots loaded from disk) and whoever consumes
/// them (RO-service workers mid-solve).
///
/// Concurrency: thread-safe. Readers take a shared_ptr copy of the active
/// snapshot under a brief mutex hold (RCU-style: the swap is an O(1)
/// pointer assignment, readers pin their version with the refcount and
/// never block a promotion; an old version dies when its last in-flight
/// solve drops it). Versions are immutable once installed — promotion and
/// rollback change which version is active, never a version's weights.
///
/// Retention is bounded: beyond `max_versions` the oldest version that is
/// neither active nor the rollback target is evicted (its weights survive
/// until in-flight readers finish, per shared_ptr semantics).
class ModelRegistry {
 public:
  explicit ModelRegistry(int max_versions = 4);

  struct VersionInfo {
    long id = 0;
    std::string source;
    bool active = false;
    bool rolled_back = false;  // was demoted by an automatic rollback
  };

  /// Installs a snapshot as the new active version. Returns its monotone
  /// version id (ids start at 1 and never recycle). Bumps the model epoch.
  long Install(std::shared_ptr<const LatencyModel> model, std::string source);

  /// The active snapshot (null until the first Install). The returned
  /// shared_ptr keeps the version alive across a concurrent swap.
  std::shared_ptr<const LatencyModel> active() const;
  long active_version() const;

  /// Monotone count of activation changes (Install + successful rollback).
  /// Stamped through SchedulingContext/StageDecision so a decision solved
  /// under a superseded model is identifiable.
  long model_epoch() const;

  /// Re-activates the version that was active before the current one and
  /// marks the current one rolled_back. Fails (kFailedPrecondition) when
  /// no predecessor is retained. Returns the re-activated version id.
  Result<long> RollbackToPrevious();

  /// Snapshot of a retained version by id; null when evicted or unknown.
  std::shared_ptr<const LatencyModel> Get(long version_id) const;

  std::vector<VersionInfo> Versions() const;
  size_t size() const;

 private:
  struct Entry {
    long id = 0;
    std::shared_ptr<const LatencyModel> model;
    std::string source;
    bool rolled_back = false;
  };

  void EvictLocked();

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  // install order
  long next_id_ = 1;
  long active_id_ = 0;    // 0 = none
  long previous_id_ = 0;  // rollback target; 0 = none
  long epoch_ = 0;
  int max_versions_;
};

/// Static-validation knobs shared by the lifecycle gate and the model
/// server's gated adoption path.
struct ModelGateOptions {
  /// Candidate holdout WMAPE may exceed the incumbent's by at most this
  /// fraction (0.10 = 10% regression budget).
  double max_wmape_regression = 0.10;
  /// Below this many holdout records the accuracy comparison is skipped
  /// (structural checks still apply).
  int min_holdout_samples = 16;
};

struct ModelGateResult {
  bool passed = false;
  std::string reason;  // human-readable reject reason; "ok" on pass
  double candidate_wmape = 0.0;  // 0 when the accuracy check was skipped
  double incumbent_wmape = 0.0;
};

/// Static validation of a candidate model against the incumbent: the
/// candidate must be trained with all-finite parameters, and — given
/// enough holdout records — its WMAPE on them must be within the
/// regression budget of the incumbent's. Pure and deterministic.
ModelGateResult RunModelGate(const LatencyModel* candidate,
                             const LatencyModel* incumbent,
                             const TraceDataset& holdout,
                             const std::vector<int>& holdout_indices,
                             const ModelGateOptions& options);

/// Knobs for the model lifecycle. Disabled (default), nothing changes: no
/// registry, no shadow scoring, fine-tunes adopt via PR 6's trust windows.
/// Enabled, every candidate model — scheduled retrain, reconfig fine-tune,
/// loaded snapshot — must pass the static gate, then a shadow window
/// scoring live observations alongside the incumbent, before an atomic
/// swap promotes it; a fresh drift alarm inside the probation window after
/// promotion rolls the swap back automatically.
struct ModelLifecycleOptions {
  bool enabled = false;

  ModelGateOptions gate;

  /// Shadow canary: live observations both models score before the
  /// candidate may promote, and the regression budget its shadow WMAPE
  /// must stay within vs. the incumbent's on the same observations.
  int shadow_observations = 48;
  double max_shadow_regression = 0.10;

  /// Probation: observations after a promotion during which a *new* drift
  /// alarm triggers automatic rollback.
  int probation_observations = 128;

  /// Observations after a rollback during which new candidates are
  /// refused (the regime just proved unstable; let the window recover).
  int rollback_cooldown_observations = 96;

  int max_versions = 4;

  /// Bounded ring of completed-instance records: the gate's holdout set
  /// and the scheduled retrains' training data.
  int buffer_capacity = 256;

  /// Scheduled retrains inside the replay (the embedded model-server loop
  /// of Expt 7): every `retrain_period_seconds` of sim time the lifecycle
  /// fine-tunes a clone of the active model on the buffer and submits it
  /// through the gate. 0 disables.
  double retrain_period_seconds = 0.0;
  int retrain_min_samples = 24;
  double retrain_lr = 3e-4;
  int retrain_epochs = 2;
  int retrain_batch = 16;
  int max_retrains = 16;

  /// Fault injection for the rollout bench: poison every scheduled
  /// retrain. kLabelShuffle fine-tunes on a label-permuted copy of the
  /// buffer (the gate still validates on the true labels); kNanInject
  /// corrupts one weight to NaN after the tune.
  enum class RetrainPoison { kNone, kLabelShuffle, kNanInject };
  RetrainPoison poison = RetrainPoison::kNone;

  /// Ablation arm: adopt every candidate instantly — no gate, no shadow,
  /// no rollback. This is the unguarded adoption path the gate replaces;
  /// the rollout bench uses it as the collapse baseline.
  bool unconditional = false;

  uint64_t seed = 20277;
};

struct ModelLifecycleStats {
  long candidates_submitted = 0;
  long gate_rejects = 0;
  long shadow_rejects = 0;
  long promotions = 0;
  long rollbacks = 0;
  long retrains = 0;  // scheduled retrains that produced a candidate
  /// Decisions solved under a model that was later rolled back inside its
  /// probation window, and the solver seconds they burned.
  long wasted_decisions = 0;
  double wasted_solve_seconds = 0.0;
};

/// The model lifecycle: owns the registry, the observation buffer, the
/// in-shadow candidate, and the probation state. One lifecycle per
/// ReplayState (like the Rng and the ReconfigurationEngine): all triggers
/// derive from recorded observations and sim time, never wall clock, so
/// replays stay byte-identical across thread counts. The registry inside
/// is itself thread-safe for the service's concurrent-reader pattern.
class ModelLifecycle {
 public:
  /// `initial` becomes version 1 (must be trained). `workload` backs the
  /// observation buffer's plan lookups, like the reconfig replay buffer.
  ModelLifecycle(const ModelLifecycleOptions& options,
                 std::shared_ptr<const LatencyModel> initial,
                 const Workload* workload, uint64_t stream_seed,
                 const obs::Obs& obs);

  const ModelLifecycleOptions& options() const { return options_; }
  const ModelLifecycleStats& stats() const { return stats_; }
  const ModelRegistry& registry() const { return registry_; }

  /// The model schedulers should use right now (raw pointer valid until
  /// the next promotion/rollback; single-threaded replay use). Concurrent
  /// readers take active_snapshot() instead.
  const LatencyModel* active_model() const { return active_raw_; }
  std::shared_ptr<const LatencyModel> active_snapshot() const {
    return registry_.active();
  }
  long model_epoch() const { return registry_.model_epoch(); }

  /// Submits a candidate through the promotion pipeline: static gate
  /// against the buffered observations, then shadow. At most one candidate
  /// shadows at a time (a second submission while one is in shadow is
  /// refused). In unconditional mode the candidate is promoted on the
  /// spot. Returns true when the candidate was accepted (into shadow, or
  /// promoted).
  bool SubmitCandidate(std::unique_ptr<LatencyModel> candidate,
                       const std::string& source);

  /// Records one completed instance: appends to the observation buffer,
  /// scores the in-shadow candidate and the incumbent on it, advances
  /// probation, and runs a scheduled retrain when due. Returns true when
  /// this observation promoted a candidate — the caller must bump its
  /// decision epoch (in-flight decisions were solved by the old model).
  bool Observe(int job_idx, int stage_idx, const Stage& stage,
               int instance_idx, const ResourceConfig& theta, int machine_id,
               int hardware_type, const SystemState& machine_state,
               double actual_latency, double now);

  /// Feeds the watchdog's cumulative alarm count. A *new* alarm inside the
  /// probation window rolls the promotion back (wasted-work accounted) and
  /// starts the rollback cooldown. Returns true on rollback — the caller
  /// must bump its decision epoch.
  bool NoteDriftAlarms(long alarms_raised);

  /// Accounts one scheduler decision (for wasted-work attribution if the
  /// model it used is rolled back).
  void NoteDecision(double solve_seconds);

  /// True inside the post-promotion probation window. Doubles as the trust
  /// signal against an alarmed watchdog: a just-promoted model earned its
  /// swap through gate + shadow, so the ladder should not demote it while
  /// probation decides (rollback, not demotion, is its failure path).
  bool InProbation() const { return probation_left_ > 0; }
  bool ShadowActive() const { return shadow_ != nullptr; }

 private:
  bool Promote(std::unique_ptr<LatencyModel> candidate,
               const std::string& source);
  void MaybeScheduledRetrain(double now);
  std::vector<int> BufferIndices() const;

  ModelLifecycleOptions options_;
  ModelRegistry registry_;
  uint64_t seed_;
  obs::Obs obs_;

  const LatencyModel* active_raw_ = nullptr;

  TraceDataset buffer_;
  std::size_t buffer_cursor_ = 0;
  long observations_ = 0;

  // In-shadow candidate and its scoring accumulators (same observations,
  // both models, WMAPE = sum|err| / sum actual).
  std::unique_ptr<LatencyModel> shadow_;
  std::string shadow_source_;
  int shadow_scored_ = 0;
  double shadow_abs_err_ = 0.0;
  double incumbent_abs_err_ = 0.0;
  double shadow_actual_sum_ = 0.0;

  long probation_left_ = 0;
  long cooldown_left_ = 0;
  long last_alarms_seen_ = 0;

  long decisions_since_promotion_ = 0;
  double solve_since_promotion_ = 0.0;

  double next_retrain_time_ = 0.0;
  bool retrain_clock_set_ = false;

  ModelLifecycleStats stats_;

  // Pre-resolved obs handles, null when disabled.
  obs::Counter* obs_candidates_ = nullptr;
  obs::Counter* obs_gate_rejects_ = nullptr;
  obs::Counter* obs_shadow_rejects_ = nullptr;
  obs::Counter* obs_promotions_ = nullptr;
  obs::Counter* obs_rollbacks_ = nullptr;
  obs::Counter* obs_retrains_ = nullptr;
  obs::Counter* obs_wasted_decisions_ = nullptr;
};

}  // namespace fgro

#endif  // FGRO_MODEL_MODEL_REGISTRY_H_
