#ifndef FGRO_CLUSTERING_DBSCAN_H_
#define FGRO_CLUSTERING_DBSCAN_H_

#include <vector>

namespace fgro {

/// Standard DBSCAN over points in R^d, used as the off-the-shelf clustering
/// baseline of Expt 9 (IPA+RAA(DBSCAN)). Deliberately the textbook O(n^2)
/// formulation — its cost on wide stages is part of the result.
struct DbscanOptions {
  double eps = 0.5;
  int min_pts = 4;
};

/// Returns a dense cluster id per point. Noise points each become their own
/// singleton cluster (the scheduler must place every instance regardless).
std::vector<int> Dbscan(const std::vector<std::vector<double>>& points,
                        const DbscanOptions& options = {});

}  // namespace fgro

#endif  // FGRO_CLUSTERING_DBSCAN_H_
