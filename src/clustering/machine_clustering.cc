#include "clustering/machine_clustering.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/math_utils.h"
#include "featurize/discretize.h"

namespace fgro {

std::vector<MachineClusterGroup> ClusterMachines(
    const Cluster& cluster, const std::vector<int>& machine_ids,
    int discretization_degree) {
  using Key = std::tuple<int, int, int, int>;  // hw, dcpu, dmem, dio
  std::map<Key, MachineClusterGroup> groups;
  for (int id : machine_ids) {
    const Machine& m = cluster.machine(id);
    Key key{m.hardware().id,
            DiscretizeIndex(m.state().cpu_util, discretization_degree),
            DiscretizeIndex(m.state().mem_util, discretization_degree),
            DiscretizeIndex(m.state().io_util, discretization_degree)};
    MachineClusterGroup& g = groups[key];
    g.machine_ids.push_back(id);
    if (g.representative < 0 ||
        m.state().cpu_util >
            cluster.machine(g.representative).state().cpu_util) {
      g.representative = id;
    }
  }
  std::vector<MachineClusterGroup> out;
  out.reserve(groups.size());
  for (auto& [key, g] : groups) {
    (void)key;
    out.push_back(std::move(g));
  }
  return out;
}

std::vector<InstanceClusterGroup> ClusterInstancesByRows(
    const Stage& stage, const Kde1dOptions& options) {
  const int m = stage.instance_count();
  std::vector<double> log_rows(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    log_rows[static_cast<size_t>(i)] =
        Log1pSafe(stage.instances[static_cast<size_t>(i)].input_rows);
  }
  std::vector<int> labels = Kde1dCluster(log_rows, options);

  std::vector<InstanceClusterGroup> out(
      static_cast<size_t>(NumClusters(labels)));
  for (int i = 0; i < m; ++i) {
    out[static_cast<size_t>(labels[static_cast<size_t>(i)])]
        .instance_ids.push_back(i);
  }
  for (InstanceClusterGroup& g : out) {
    std::sort(g.instance_ids.begin(), g.instance_ids.end(), [&](int a, int b) {
      return stage.instances[static_cast<size_t>(a)].input_rows >
             stage.instances[static_cast<size_t>(b)].input_rows;
    });
    g.representative = g.instance_ids.front();
  }
  return out;
}

}  // namespace fgro
