#include "clustering/dbscan.h"

#include <cmath>
#include <queue>

namespace fgro {

namespace {
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
  return d;
}
}  // namespace

std::vector<int> Dbscan(const std::vector<std::vector<double>>& points,
                        const DbscanOptions& options) {
  const int n = static_cast<int>(points.size());
  const double eps2 = options.eps * options.eps;
  constexpr int kUnvisited = -2;
  constexpr int kNoise = -1;
  std::vector<int> labels(static_cast<size_t>(n), kUnvisited);

  auto neighbors = [&](int p) {
    std::vector<int> out;
    for (int q = 0; q < n; ++q) {
      if (SquaredDistance(points[static_cast<size_t>(p)],
                          points[static_cast<size_t>(q)]) <= eps2) {
        out.push_back(q);
      }
    }
    return out;
  };

  int cluster = 0;
  for (int p = 0; p < n; ++p) {
    if (labels[static_cast<size_t>(p)] != kUnvisited) continue;
    std::vector<int> nbrs = neighbors(p);
    if (static_cast<int>(nbrs.size()) < options.min_pts) {
      labels[static_cast<size_t>(p)] = kNoise;
      continue;
    }
    labels[static_cast<size_t>(p)] = cluster;
    std::queue<int> frontier;
    for (int q : nbrs) frontier.push(q);
    while (!frontier.empty()) {
      int q = frontier.front();
      frontier.pop();
      if (labels[static_cast<size_t>(q)] == kNoise) {
        labels[static_cast<size_t>(q)] = cluster;
      }
      if (labels[static_cast<size_t>(q)] != kUnvisited) continue;
      labels[static_cast<size_t>(q)] = cluster;
      std::vector<int> qn = neighbors(q);
      if (static_cast<int>(qn.size()) >= options.min_pts) {
        for (int r : qn) frontier.push(r);
      }
    }
    ++cluster;
  }
  // Promote noise points to singleton clusters.
  for (int p = 0; p < n; ++p) {
    if (labels[static_cast<size_t>(p)] == kNoise) {
      labels[static_cast<size_t>(p)] = cluster++;
    }
  }
  return labels;
}

}  // namespace fgro
