#ifndef FGRO_CLUSTERING_MACHINE_CLUSTERING_H_
#define FGRO_CLUSTERING_MACHINE_CLUSTERING_H_

#include <vector>

#include "cluster/cluster.h"
#include "clustering/kde1d.h"
#include "plan/stage.h"

namespace fgro {

/// A group of machines sharing discretized system state (Ch4) and hardware
/// type (Ch5). `representative` is the member with the highest CPU
/// utilization, so latency estimates for the cluster err conservative.
struct MachineClusterGroup {
  std::vector<int> machine_ids;
  int representative = -1;
};

std::vector<MachineClusterGroup> ClusterMachines(
    const Cluster& cluster, const std::vector<int>& machine_ids,
    int discretization_degree);

/// A group of a stage's instances with similar input-row counts (1-D KDE on
/// log rows). `representative` is the member with the largest input rows to
/// avoid underestimating the cluster's latency; members are sorted by
/// descending input rows so a prefix of a cluster is always its heaviest
/// instances (used by clustered IPA when a cluster is split across machine
/// groups).
struct InstanceClusterGroup {
  std::vector<int> instance_ids;  // descending input rows
  int representative = -1;
};

std::vector<InstanceClusterGroup> ClusterInstancesByRows(
    const Stage& stage,
    // Narrower-than-Silverman bandwidth: partition sizes are lognormal and
    // unimodal in log space, but the optimizer needs resolution across the
    // size spectrum, not one blob.
    const Kde1dOptions& options = {.grid_size = 128,
                                   .bandwidth_factor = 0.3,
                                   .max_clusters = 40});

}  // namespace fgro

#endif  // FGRO_CLUSTERING_MACHINE_CLUSTERING_H_
