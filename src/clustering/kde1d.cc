#include "clustering/kde1d.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace fgro {

std::vector<int> Kde1dCluster(const std::vector<double>& values,
                              const Kde1dOptions& options) {
  const size_t n = values.size();
  std::vector<int> labels(n, 0);
  if (n <= 1) return labels;

  const double lo = Min(values), hi = Max(values);
  if (hi - lo < 1e-12) return labels;  // all identical: one cluster

  // Silverman's rule-of-thumb bandwidth.
  const double sd = StdDev(values);
  double bw = 1.06 * std::max(sd, (hi - lo) / 100.0) *
              std::pow(static_cast<double>(n), -0.2) *
              options.bandwidth_factor;

  // KDE on a regular grid.
  const int g = std::max(8, options.grid_size);
  std::vector<double> density(static_cast<size_t>(g), 0.0);
  const double step = (hi - lo) / (g - 1);
  for (double v : values) {
    // Only bins within 4 bandwidths matter.
    int first = std::max(0, static_cast<int>((v - 4 * bw - lo) / step));
    int last = std::min(g - 1, static_cast<int>((v + 4 * bw - lo) / step) + 1);
    for (int i = first; i <= last; ++i) {
      double x = lo + i * step;
      double z = (x - v) / bw;
      density[static_cast<size_t>(i)] += std::exp(-0.5 * z * z);
    }
  }

  // Cluster boundaries = local minima of the density.
  std::vector<double> boundaries;
  for (int i = 1; i + 1 < g; ++i) {
    if (density[static_cast<size_t>(i)] <
            density[static_cast<size_t>(i - 1)] &&
        density[static_cast<size_t>(i)] <=
            density[static_cast<size_t>(i + 1)]) {
      boundaries.push_back(lo + i * step);
    }
  }
  // Cap the cluster count by dropping the shallowest minima first: simply
  // keep evenly spread boundaries when there are too many.
  while (static_cast<int>(boundaries.size()) + 1 > options.max_clusters) {
    boundaries.erase(boundaries.begin() +
                     static_cast<long>(boundaries.size() / 2));
  }

  for (size_t i = 0; i < n; ++i) {
    int c = static_cast<int>(
        std::upper_bound(boundaries.begin(), boundaries.end(), values[i]) -
        boundaries.begin());
    labels[i] = c;
  }
  // Re-densify ids (some intervals may be empty).
  std::vector<int> remap(boundaries.size() + 1, -1);
  int next = 0;
  // Assign ids in increasing-value order: iterate sorted values.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  for (size_t oi : order) {
    int c = labels[oi];
    if (remap[static_cast<size_t>(c)] < 0) remap[static_cast<size_t>(c)] = next++;
  }
  for (size_t i = 0; i < n; ++i) {
    labels[i] = remap[static_cast<size_t>(labels[i])];
  }
  return labels;
}

int NumClusters(const std::vector<int>& labels) {
  int k = 0;
  for (int l : labels) k = std::max(k, l + 1);
  return k;
}

}  // namespace fgro
