#ifndef FGRO_CLUSTERING_KDE1D_H_
#define FGRO_CLUSTERING_KDE1D_H_

#include <vector>

namespace fgro {

/// The customized 1-D density-based clustering of Section 5.2: a Gaussian
/// kernel density estimate is computed over the values, and local minima of
/// the density become cluster boundaries. Values should already be in the
/// space where density matters (we pass log input-row counts).
struct Kde1dOptions {
  int grid_size = 64;             // KDE evaluation grid
  double bandwidth_factor = 1.0;  // multiplies Silverman's rule bandwidth
  int max_clusters = 40;          // merge smallest-gap boundaries beyond this
};

/// Returns a cluster id for every value; ids are dense, 0..k-1, ordered by
/// increasing value. n log n overall (sorting dominates).
std::vector<int> Kde1dCluster(const std::vector<double>& values,
                              const Kde1dOptions& options = {});

/// Number of clusters in a labeling produced by Kde1dCluster.
int NumClusters(const std::vector<int>& labels);

}  // namespace fgro

#endif  // FGRO_CLUSTERING_KDE1D_H_
