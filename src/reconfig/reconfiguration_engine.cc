#include "reconfig/reconfiguration_engine.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace fgro {

ReconfigurationEngine::ReconfigurationEngine(const ReconfigOptions& options,
                                             const LatencyModel* base_model,
                                             const Workload* workload,
                                             uint64_t stream_seed,
                                             const obs::Obs& obs)
    : options_(options), base_model_(base_model), seed_(stream_seed),
      obs_(obs) {
  options_.dispatch_hazard_seconds =
      std::max(0.0, options_.dispatch_hazard_seconds);
  options_.max_replans_per_stage = std::max(0, options_.max_replans_per_stage);
  options_.max_migrations_per_stage =
      std::max(0, options_.max_migrations_per_stage);
  options_.replay_buffer_capacity =
      std::max(1, options_.replay_buffer_capacity);
  options_.fine_tune_min_samples = std::max(1, options_.fine_tune_min_samples);
  buffer_.workload = workload;
  buffer_.records.reserve(
      static_cast<std::size_t>(options_.replay_buffer_capacity));
  if (obs_.metrics != nullptr) {
    obs_epoch_bumps_ = obs_.metrics->GetCounter("reconfig.epoch_bumps");
    obs_replans_ = obs_.metrics->GetCounter("reconfig.replans");
    obs_replan_failures_ =
        obs_.metrics->GetCounter("reconfig.replan_failures");
    obs_stale_drops_ = obs_.metrics->GetCounter("reconfig.stale_drops");
    obs_migrations_ = obs_.metrics->GetCounter("reconfig.migrations");
    obs_migration_wins_ =
        obs_.metrics->GetCounter("reconfig.migration_wins");
    obs_fine_tunes_ = obs_.metrics->GetCounter("reconfig.fine_tunes");
    obs_observations_ = obs_.metrics->GetCounter("reconfig.observations");
  }
}

long ReconfigurationEngine::BumpEpoch() {
  ++epoch_;
  ++stats_.epoch_bumps;
  if (obs_epoch_bumps_ != nullptr) obs_epoch_bumps_->Increment();
  return epoch_;
}

bool ReconfigurationEngine::NoteMachineLiveness(Cluster* cluster,
                                                const MachineUpFn& machine_up,
                                                double now) {
  const std::size_t n = static_cast<std::size_t>(cluster->size());
  const bool first = machine_up_.empty();
  if (first) machine_up_.assign(n, 1);
  bool transition = false;
  for (std::size_t i = 0; i < n; ++i) {
    const bool up = machine_up(static_cast<int>(i), now);
    if (!first && (machine_up_[i] != 0) != up) transition = true;
    machine_up_[i] = up ? 1 : 0;
    cluster->machine(static_cast<int>(i)).SetUp(up);
  }
  if (transition && options_.replan_on_machine_event) BumpEpoch();
  return transition;
}

bool ReconfigurationEngine::NoteDriftAlarms(long alarms_raised) {
  if (alarms_raised <= last_alarms_seen_) return false;
  last_alarms_seen_ = alarms_raised;
  // A fresh alarm means the model drifted (again): any trust bought by an
  // earlier fine-tune is void.
  trust_until_observation_ = -1;
  if (options_.replan_on_drift_alarm) BumpEpoch();
  return true;
}

void ReconfigurationEngine::RecordObservation(
    int job_idx, int stage_idx, const Stage& stage, int instance_idx,
    const ResourceConfig& theta, const Machine& machine,
    double actual_latency) {
  ++stats_.observations;
  if (obs_observations_ != nullptr) obs_observations_->Increment();
  if (!options_.online_model_update) return;
  if (!(actual_latency > 0.0)) return;  // log-latency target needs > 0

  InstanceRecord record;
  record.job_idx = job_idx;
  record.stage_idx = stage_idx;
  record.instance_idx = instance_idx;
  record.template_id = stage.template_id;
  record.theta = theta;
  record.machine_id = machine.id();
  record.hardware_type = machine.hardware().id;
  record.machine_state = machine.state();
  record.actual_latency = actual_latency;

  const std::size_t cap =
      static_cast<std::size_t>(options_.replay_buffer_capacity);
  if (buffer_.records.size() < cap) {
    buffer_.records.push_back(std::move(record));
  } else {
    buffer_.records[buffer_cursor_] = std::move(record);
    buffer_cursor_ = (buffer_cursor_ + 1) % cap;
  }
}

bool ReconfigurationEngine::MaybeFineTune() {
  const LatencyModel* source =
      lifecycle_ != nullptr ? lifecycle_->active_model() : base_model_;
  if (!options_.online_model_update || source == nullptr ||
      !source->trained()) {
    return false;
  }
  const int n = static_cast<int>(buffer_.records.size());
  if (n < options_.fine_tune_min_samples) return false;
  if (stats_.fine_tunes >= options_.max_fine_tunes) return false;
  if (last_tune_observation_ >= 0 &&
      stats_.observations - last_tune_observation_ <
          options_.fine_tune_cooldown_observations) {
    return false;
  }

  obs::ScopedSpan span(obs_.tracer, "reconfig.fine_tune");
  std::vector<int> indices(static_cast<std::size_t>(n));
  std::iota(indices.begin(), indices.end(), 0);
  TrainOptions tune;
  tune.epochs = options_.fine_tune_epochs;
  tune.batch_size = options_.fine_tune_batch;
  tune.lr = options_.fine_tune_lr;
  tune.lr_decay = 1.0;
  tune.max_train_samples = n;
  tune.seed =
      MixSeed(seed_, 0xF17EULL + static_cast<uint64_t>(stats_.fine_tunes));

  if (lifecycle_ != nullptr) {
    // Gated path: tune a clone of the registry's active version and
    // submit it as a promotion candidate. The active model is unchanged
    // here — the swap, if the candidate survives gate + shadow, happens
    // inside a later lifecycle Observe and is reported there.
    if (lifecycle_->ShadowActive()) return false;  // one canary at a time
    auto candidate = std::make_unique<LatencyModel>(*source);
    if (!candidate->FineTune(buffer_, indices, tune).ok()) return false;
    ++stats_.fine_tunes;
    if (obs_fine_tunes_ != nullptr) obs_fine_tunes_->Increment();
    last_tune_observation_ = stats_.observations;
    lifecycle_->SubmitCandidate(std::move(candidate), "fine-tune");
    return false;
  }

  if (tuned_ == nullptr) {
    tuned_ = std::make_unique<LatencyModel>(*base_model_);
  }
  if (!tuned_->FineTune(buffer_, indices, tune).ok()) return false;

  ++stats_.fine_tunes;
  if (obs_fine_tunes_ != nullptr) obs_fine_tunes_->Increment();
  last_tune_observation_ = stats_.observations;
  trust_until_observation_ =
      stats_.observations + options_.post_tune_trust_observations;
  return true;
}

int ReconfigurationEngine::PickMigrationTarget(
    const Cluster& cluster, const MachineUpFn& machine_up, const Stage& stage,
    int instance_idx, const ResourceConfig& theta, double now,
    int current_machine) const {
  const LatencyModel* model = active_model();
  if (model == nullptr || !model->trained()) return -1;
  Result<LatencyModel::EmbeddedInstance> embedded =
      model->Embed(stage, instance_idx);
  if (!embedded.ok()) return -1;

  // The current machine is a candidate too: a straggler is attempt-level
  // interference, not a property of the machine, so a fresh container on
  // the same host (the killed run's slot frees up) is a legitimate rescue
  // when no other machine predicts better. It needs no CanFit check — it
  // inherits the killed run's allocation.
  std::vector<LatencyModel::PredictionCandidate> candidates;
  std::vector<int> ids;
  const bool current_up = machine_up(current_machine, now);
  if (current_up) {
    const Machine& current = cluster.machine(current_machine);
    candidates.push_back({theta, current.state(), current.hardware().id});
    ids.push_back(current_machine);
  }
  for (const Machine& m : cluster.machines()) {
    if (m.id() == current_machine) continue;
    if (!machine_up(m.id(), now)) continue;
    if (!m.CanFit(theta)) continue;
    candidates.push_back({theta, m.state(), m.hardware().id});
    ids.push_back(m.id());
  }
  if (candidates.empty()) return -1;

  std::vector<double> predicted(candidates.size());
  LatencyModel::BatchScratch scratch;
  model->PredictBatch(embedded.value(), candidates, predicted.data(),
                      &scratch);
  // Lowest prediction wins; the current machine is listed first, so on a
  // tie the rescue stays put (no pointless move).
  int best = -1;
  double best_pred = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (best < 0 || predicted[i] < best_pred) {
      best_pred = predicted[i];
      best = ids[i];
    }
  }
  return best;
}

void ReconfigurationEngine::CountStaleDrop() {
  ++stats_.stale_decision_drops;
  if (obs_stale_drops_ != nullptr) obs_stale_drops_->Increment();
}
void ReconfigurationEngine::CountReplan() {
  ++stats_.replans;
  if (obs_replans_ != nullptr) obs_replans_->Increment();
}
void ReconfigurationEngine::CountReplanFailure() {
  ++stats_.replan_failures;
  if (obs_replan_failures_ != nullptr) obs_replan_failures_->Increment();
}
void ReconfigurationEngine::CountMigration() {
  ++stats_.migrations;
  if (obs_migrations_ != nullptr) obs_migrations_->Increment();
}
void ReconfigurationEngine::CountMigrationWin() {
  ++stats_.migration_wins;
  if (obs_migration_wins_ != nullptr) obs_migration_wins_->Increment();
}

}  // namespace fgro
