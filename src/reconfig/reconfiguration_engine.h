#ifndef FGRO_RECONFIG_RECONFIGURATION_ENGINE_H_
#define FGRO_RECONFIG_RECONFIGURATION_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "model/latency_model.h"
#include "model/model_registry.h"
#include "obs/obs.h"
#include "trace/trace_collector.h"

namespace fgro {

/// Knobs for online reconfiguration of in-flight work. Disabled (the
/// default) the simulator replays exactly as before — the engine is never
/// constructed and no code path changes. Enabled, the replay loop repairs
/// running stages instead of only riding the degradation ladder down:
/// re-planning not-yet-dispatched instances when a drift alarm or a machine
/// up/down transition supersedes the current decision epoch, migrating
/// stragglers to healthier machines, and fine-tuning the latency model on
/// the replay's own observations so the watchdog re-promotes early.
struct ReconfigOptions {
  bool enabled = false;

  /// Re-plan remaining instances when the DriftWatchdog raises an alarm
  /// mid-stage (only after a successful fine-tune repaired the model —
  /// re-planning with a model that just proved untrustworthy is pointless).
  bool replan_on_drift_alarm = true;

  /// Re-plan remaining instances when a machine they are assigned to goes
  /// down, and drop decisions whose epoch was superseded by a machine
  /// transition inside the dispatch hazard window.
  bool replan_on_machine_event = true;

  /// Sim-time window after a decision within which a crash of an assigned
  /// machine supersedes the decision's epoch (the decision is dropped
  /// undispatched and re-solved against the projected liveness). Fixed in
  /// sim time — never wall clock — so replays stay deterministic.
  double dispatch_hazard_seconds = 1.0;

  /// Cap on mid-stage re-plans per stage (each one is a fresh partial
  /// IPA/RAA solve; the cap bounds solve-time amplification under flapping).
  int max_replans_per_stage = 2;

  /// Straggler migration: an instance whose winning attempt runs longer
  /// than `migration_threshold` x its detection anchor gets a replacement
  /// launched on the best healthy machine at the detection point; original
  /// and replacement race, the loser is killed when the winner finishes,
  /// and the loser's burned runtime is wasted cost. Detection trips on
  /// whichever anchor fires first: the active model's prediction (counted
  /// only while the model is trustworthy — no alarm, or inside a fresh
  /// fine-tune's trust window) or the running median of the stage's
  /// completed runs (once 3 samples exist), so detection stays armed
  /// mid-drift without a half-repaired model flagging every instance.
  bool migrate_stragglers = true;
  double migration_threshold = 2.5;
  int max_migrations_per_stage = 4;

  /// Incremental model update: successful instance runs feed a bounded
  /// replay buffer of (features, latency) pairs; while the watchdog is
  /// alarmed the engine fine-tunes a private copy of the model on the
  /// buffer with a small learning rate, then trusts the repaired copy for
  /// `post_tune_trust_observations` observations while the q-error window
  /// catches up.
  bool online_model_update = true;
  int replay_buffer_capacity = 256;
  int fine_tune_min_samples = 24;
  /// Observations that must accrue between fine-tunes (prevents tuning on
  /// a buffer the previous tune already saw).
  int fine_tune_cooldown_observations = 48;
  /// How long (in observations) a fresh fine-tune is trusted against a
  /// still-alarmed watchdog window. If the window has not recovered by
  /// then, the repair did not take and the ladder demotes again.
  int post_tune_trust_observations = 96;
  double fine_tune_lr = 3e-4;
  int fine_tune_epochs = 2;
  int fine_tune_batch = 16;
  int max_fine_tunes = 16;

  uint64_t seed = 1013;
};

/// Counters of one replay's reconfiguration activity (per ReplayState: per
/// job in service mode, per run in the sequential replay).
struct ReconfigStats {
  long epoch_bumps = 0;
  long replans = 0;           // partial re-plans whose result was swapped in
  long replan_failures = 0;   // partial re-plans that came back infeasible
  long stale_decision_drops = 0;
  long migrations = 0;
  long migration_wins = 0;    // migrated run beat the original's completion
  long fine_tunes = 0;
  long observations = 0;      // (features, latency) pairs recorded
};

/// The online reconfiguration engine: owns the decision epoch, the machine
/// liveness view it diffs for up/down transitions, the bounded replay
/// buffer, and the lazily cloned fine-tuned model. Deterministic by
/// construction: every trigger derives from injector windows, watchdog
/// state, or recorded observations — never from wall clock or shared
/// mutable state — so replays with reconfiguration enabled stay
/// byte-identical across thread counts under the MixSeed convention.
///
/// Not thread-safe; one engine per ReplayState, like the Rng.
class ReconfigurationEngine {
 public:
  /// Liveness oracle: up(machine_id, sim_time). Wraps FaultInjector in the
  /// simulator; a std::function keeps this library below sim in the layer
  /// graph.
  using MachineUpFn = std::function<bool(int, double)>;

  ReconfigurationEngine(const ReconfigOptions& options,
                        const LatencyModel* base_model,
                        const Workload* workload, uint64_t stream_seed,
                        const obs::Obs& obs);

  const ReconfigOptions& options() const { return options_; }
  const ReconfigStats& stats() const { return stats_; }

  /// Routes model updates through a lifecycle's promotion gate instead of
  /// the engine's private clone + trust window: with a lifecycle attached,
  /// active_model() reads the registry's active version, fine-tuned clones
  /// are submitted as gate candidates rather than swapped in, and
  /// ModelTrusted() delegates to the probation window. The lifecycle must
  /// outlive the engine.
  void AttachLifecycle(ModelLifecycle* lifecycle) { lifecycle_ = lifecycle; }
  bool lifecycle_attached() const { return lifecycle_ != nullptr; }

  /// The model schedulers should currently use: the lifecycle's active
  /// version when attached, else the fine-tuned clone once one exists,
  /// else the base model (possibly null).
  const LatencyModel* active_model() const {
    if (lifecycle_ != nullptr) return lifecycle_->active_model();
    return tuned_ != nullptr ? tuned_.get() : base_model_;
  }
  bool model_tuned() const { return tuned_ != nullptr; }

  /// Monotone decision epoch. A StageDecision stamped with an older epoch
  /// than current was superseded by a trigger event and must not dispatch.
  long current_epoch() const { return epoch_; }
  bool DecisionIsStale(long decision_epoch) const {
    return decision_epoch < epoch_;
  }
  long BumpEpoch();

  /// Projects machine liveness at `now` onto the cluster (Machine::SetUp)
  /// and diffs it against the last projection; any up/down transition bumps
  /// the epoch (when replan_on_machine_event). Returns true on transition.
  bool NoteMachineLiveness(Cluster* cluster, const MachineUpFn& machine_up,
                           double now);

  /// Feeds the watchdog's cumulative alarm count; a new alarm revokes trust
  /// in any earlier fine-tune and bumps the epoch (when
  /// replan_on_drift_alarm). Returns true on a new alarm.
  bool NoteDriftAlarms(long alarms_raised);

  /// True when the scheduler may trust the active model against an alarmed
  /// watchdog window: a recent fine-tune bought a trust window that has not
  /// yet expired — or, with a lifecycle attached, the active model is a
  /// fresh promotion inside its probation window (it earned the swap
  /// through gate + shadow; rollback, not ladder demotion, is its failure
  /// path). With no alarm the question never arises; callers combine this
  /// with the watchdog state.
  bool ModelTrusted() const {
    if (lifecycle_ != nullptr) return lifecycle_->InProbation();
    return trust_until_observation_ >= 0 &&
           stats_.observations < trust_until_observation_;
  }

  /// Records one successful instance run into the bounded replay buffer
  /// (ring-replace beyond capacity) and the observation counter.
  void RecordObservation(int job_idx, int stage_idx, const Stage& stage,
                         int instance_idx, const ResourceConfig& theta,
                         const Machine& machine, double actual_latency);

  /// Fine-tunes the cloned model on the replay buffer when due (enough
  /// samples, cooldown elapsed, cap not hit). Returns true when the active
  /// model changed: without a lifecycle the clone is swapped in on the
  /// spot (with a trust window); with one attached the clone is only
  /// *submitted* as a gate candidate, so this returns false — the swap, if
  /// any, happens at promotion time and is reported by the lifecycle.
  bool MaybeFineTune();

  /// Best healthy machine to re-run a straggling instance on, the current
  /// machine included (a straggler is attempt-level interference, so a
  /// fresh container in place is a legitimate rescue): the up machine that
  /// fits `theta` with the lowest predicted latency. -1 only when no
  /// healthy machine exists or the model cannot predict. Deterministic:
  /// pure model inference over the cluster snapshot; ties keep the rescue
  /// on the current machine, then lowest id.
  int PickMigrationTarget(const Cluster& cluster,
                          const MachineUpFn& machine_up, const Stage& stage,
                          int instance_idx, const ResourceConfig& theta,
                          double now, int current_machine) const;

  // Outcome accounting, mirrored into obs counters when wired.
  void CountStaleDrop();
  void CountReplan();
  void CountReplanFailure();
  void CountMigration();
  void CountMigrationWin();

 private:
  ReconfigOptions options_;
  const LatencyModel* base_model_;
  ModelLifecycle* lifecycle_ = nullptr;  // not owned; null = legacy path
  uint64_t seed_;
  obs::Obs obs_;

  long epoch_ = 0;
  long last_alarms_seen_ = 0;
  std::vector<char> machine_up_;  // last projected liveness; empty = unset

  /// Bounded replay buffer of synthesized trace records (ring).
  TraceDataset buffer_;
  std::size_t buffer_cursor_ = 0;

  std::unique_ptr<LatencyModel> tuned_;
  long last_tune_observation_ = -1;
  long trust_until_observation_ = -1;

  ReconfigStats stats_;

  // Pre-resolved obs handles, null when disabled.
  obs::Counter* obs_epoch_bumps_ = nullptr;
  obs::Counter* obs_replans_ = nullptr;
  obs::Counter* obs_replan_failures_ = nullptr;
  obs::Counter* obs_stale_drops_ = nullptr;
  obs::Counter* obs_migrations_ = nullptr;
  obs::Counter* obs_migration_wins_ = nullptr;
  obs::Counter* obs_fine_tunes_ = nullptr;
  obs::Counter* obs_observations_ = nullptr;
};

}  // namespace fgro

#endif  // FGRO_RECONFIG_RECONFIGURATION_ENGINE_H_
