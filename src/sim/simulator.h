#ifndef FGRO_SIM_SIMULATOR_H_
#define FGRO_SIM_SIMULATOR_H_

#include <functional>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "env/ground_truth.h"
#include "hbo/hbo.h"
#include "model/drift_watchdog.h"
#include "model/gpr.h"
#include "model/latency_model.h"
#include "model/model_registry.h"
#include "obs/obs.h"
#include "optimizer/scheduler_types.h"
#include "reconfig/reconfiguration_engine.h"
#include "sim/fault_injector.h"
#include "trace/workload_gen.h"

namespace fgro {

/// How "actual" instance latency is determined after a scheduling decision
/// (Expt 11's noise-free vs noisy settings).
enum class OutcomeMode {
  kNoiseFree,    // predicted latency is the true latency
  kGprNoise,     // actual ~ GPR(predicted), sampled within mu +/- 3 sigma
  kEnvironment,  // actual sampled from the hidden ground-truth environment
};

struct SimOptions {
  ClusterOptions cluster;
  OutcomeMode outcome = OutcomeMode::kEnvironment;
  const GprNoiseModel* gpr = nullptr;  // required for kGprNoise
  double ro_time_limit_seconds = 60.0; // coverage cutoff per stage
  /// Fault model for this replay. Disabled (the default) replays the exact
  /// happy path, bit-identical to a build without fault injection.
  FaultOptions faults;
  /// Online drift watchdog: compares the model's predicted instance latency
  /// against the simulated actual, per hardware type, and demotes the
  /// scheduler down the fallback ladder while the rolling q-error window is
  /// in alarm. Disabled by default (zero overhead on the happy path).
  DriftWatchdogOptions drift_watchdog;
  /// Deterministic drift pulse: actual latencies are multiplied by
  /// `drift_multiplier` while sim time is inside
  /// [drift_start_seconds, drift_end_seconds). 1.0 (default) is a no-op;
  /// the drift bench uses this to force the watchdog through a
  /// demote -> recover -> re-promote cycle.
  double drift_multiplier = 1.0;
  double drift_start_seconds = 0.0;
  double drift_end_seconds = 0.0;
  /// Online reconfiguration of in-flight work (drift-alarm / machine-event
  /// re-planning, straggler migration, incremental model update). Disabled
  /// by default: the engine is never constructed and the replay is
  /// byte-identical to builds without the reconfig subsystem.
  ReconfigOptions reconfig;
  /// Safe model lifecycle: versioned registry + gated promotion (static
  /// validation, shadow canary, probation rollback) for every model update
  /// — scheduled retrains inside the replay and reconfig fine-tunes alike.
  /// Disabled by default: no registry is built and the replay is
  /// byte-identical to builds without the lifecycle subsystem. Enabled,
  /// the replay state owns one ModelLifecycle per ReplayState (per job in
  /// service mode), seeded MixSeed(seed, lifecycle.seed).
  ModelLifecycleOptions lifecycle;
  /// Concurrent multi-job service mode (consumed by RoService, not by the
  /// sequential Run/RunJobs path): number of worker threads replaying jobs
  /// as independent requests via ReplayJobIsolated. Each job gets its own
  /// cluster view and a private RNG stream seeded MixSeed(seed, job_idx),
  /// so the merged result is byte-identical across thread counts. 0 keeps
  /// the classic sequential shared-cluster replay.
  int service_threads = 0;
  /// Observability hookup, default-disabled. When wired, the replay loop
  /// emits sim.job / sim.stage spans, the sim.* counters and
  /// stage-solve-time histogram, and forwards the hookup to the scheduler
  /// via SchedulingContext::obs. Metrics never feed back into the replay:
  /// outcomes are byte-identical with or without this set (the PR 3
  /// determinism guarantee), and both registry and tracer are internally
  /// synchronized so concurrent service workers may share them.
  obs::Obs obs;
  /// Batched inference for the optimizer hot path (forwarded to
  /// SchedulingContext::batched_inference). On by default; replays are
  /// bit-identical either way, so flipping this only changes wall-clock.
  bool batched_inference = true;
  /// Optional prediction memo shared across stages (caller-owned; clear it
  /// whenever the model is retrained). Null = no memoization.
  PredictionMemo* memo = nullptr;
  /// Frontier compression (DESIGN.md §16), forwarded to every stage's
  /// SchedulingContext. On by default; replays are byte-identical across
  /// thread counts and cache warmth either way (every cached template is a
  /// pure function of its key), and `frontier_compression = false` restores
  /// the uncompressed legacy solve bit-for-bit.
  bool frontier_compression = true;
  /// Optional frontier-template cache shared across stages, epochs and
  /// (in service mode) jobs (caller-owned, thread-safe). Content-based keys
  /// make it safe under reconfig partial re-plans and sharded sub-solves;
  /// model hot-swaps invalidate wholesale via params_tag. Null = each RAA
  /// solve uses a solve-local cache (compression still on, no cross-stage
  /// reuse).
  FrontierCache* frontier_cache = nullptr;
  /// Optional worker pool for the optimizer's parallel fan-outs (RAA group
  /// frontiers, per-instance embedding; caller-owned). Null = serial.
  /// Deterministic merge keeps replays byte-identical across thread counts.
  ThreadPool* worker_pool = nullptr;
  /// POP-style sharded solve (DESIGN.md §15), forwarded to every stage's
  /// SchedulingContext — the reconfiguration engine's partial re-plans
  /// inherit it through the context copy. 1 (default) = the exact legacy
  /// whole-fleet solve; replays at any fixed (shard_seed, shard_count) are
  /// byte-identical across service_threads and repeated runs.
  int shard_count = 1;
  uint64_t shard_seed = 0x706f70;  // "pop"
  uint64_t seed = 5;
};

/// Per-stage result of one replay.
struct StageOutcome {
  int job_idx = 0;
  int stage_idx = 0;
  bool feasible = false;
  int num_instances = 0;
  double stage_latency = 0.0;     // max instance latency (excl. RO time)
  double stage_latency_in = 0.0;  // including RO solve time
  double stage_cost = 0.0;        // sum of latency * (w . theta), incl. waste
  double solve_seconds = 0.0;
  double default_theta_cores = 0.0;  // HBO theta0, for diagnostics
  /// Fault-tolerance accounting (all zero when faults are disabled).
  int retries = 0;             // failed attempts that were re-executed
  int failovers = 0;           // retries that moved to another machine
  int speculative_copies = 0;  // backup copies launched for stragglers
  int speculative_wins = 0;    // copies that beat the original
  int failed_instances = 0;    // instances that exhausted their retry budget
  double wasted_cost = 0.0;    // cost of lost work (part of stage_cost)
  /// Degradation-ladder level the scheduler reported for this stage.
  FallbackLevel fallback = FallbackLevel::kPrimary;
  /// Defensive-layer accounting (all false when breaker/watchdog are off).
  bool model_short_circuited = false;  // breaker refused the model probe
  bool breaker_tripped = false;        // breaker opened on this stage
  bool breaker_recovered = false;      // half-open probe closed it here
  bool drift_demoted = false;          // watchdog alarm forced degradation
  bool drift_alarm_raised = false;     // alarm transitioned on this stage
  /// Reconfiguration accounting (all zero when reconfig is disabled).
  int replans = 0;                // mid-stage partial re-plans swapped in
  int stale_decision_drops = 0;   // decisions dropped for a superseded epoch
  int migrations = 0;             // stragglers migrated to healthier machines
  int migration_wins = 0;         // migrations that beat the original run
  int fine_tunes = 0;             // online model updates during this stage
  /// Model-lifecycle accounting (all zero when the lifecycle is off);
  /// per-stage deltas of the ModelLifecycleStats counters.
  int promotions = 0;             // candidates promoted during this stage
  int rollbacks = 0;              // probation rollbacks during this stage
  int gate_rejects = 0;           // candidates the static gate refused
  int shadow_rejects = 0;         // candidates the shadow window refused
  int lifecycle_retrains = 0;     // scheduled retrains that produced one
  long wasted_decisions = 0;      // decisions invalidated by a rollback
  double wasted_solve_seconds = 0.0;
  /// Serving-accuracy accumulators over the shadow observations of this
  /// stage (active model's |pred - actual| and actual sums); RoSummary
  /// derives the serving WMAPE from them. Zero when neither the watchdog
  /// nor the lifecycle is on.
  double pred_abs_error = 0.0;
  double pred_actual_sum = 0.0;
  std::vector<double> instance_latencies;  // populated when requested
  std::vector<ResourceConfig> instance_thetas;
};

struct SimResult {
  std::vector<StageOutcome> outcomes;
};

/// Replays a workload through the extended-MaxCompute simulator: jobs arrive
/// in trace order, the dependency manager releases stages, the given
/// scheduler decides placement + resources, machines are charged for the
/// stage's containers, and actual latencies are drawn per OutcomeMode.
/// With faults enabled, machines crash and recover on the injector's
/// schedule, instance attempts fail and are retried with exponential
/// backoff on surviving machines, stragglers trigger speculative backup
/// copies, and the model server suffers outages the scheduler must
/// degrade through.
class Simulator {
 public:
  using SchedulerFn = std::function<StageDecision(const SchedulingContext&)>;

  Simulator(const Workload* workload, const LatencyModel* model,
            SimOptions options);

  /// `keep_instance_detail` retains per-instance latencies/thetas in the
  /// outcomes (needed by the diagnostics benches; costs memory).
  Result<SimResult> Run(const SchedulerFn& scheduler,
                        bool keep_instance_detail = false);

  /// Runs only the subset of job indices (for subworkload experiments).
  Result<SimResult> RunJobs(const SchedulerFn& scheduler,
                            const std::vector<int>& job_indices,
                            bool keep_instance_detail = false);

  /// Replays one job in isolation: a fresh cluster view, a private RNG
  /// stream (`seed`), and per-job fault-injector/breaker/watchdog state.
  /// This is the unit of work of the concurrent RO service — the result
  /// depends only on (workload, model, options, job_idx, seed), never on
  /// the calling thread or on what other jobs are in flight. Thread-safe:
  /// concurrent calls share only immutable state (the workload, the
  /// trained model, and this simulator's options).
  /// `allow_reconfig=false` suppresses the reconfiguration engine for this
  /// job even when SimOptions::reconfig.enabled — the service uses it to
  /// keep browned-out (Fuxi-level) requests on the cheapest path.
  Result<std::vector<StageOutcome>> ReplayJobIsolated(
      const SchedulerFn& scheduler, int job_idx, uint64_t seed,
      bool keep_instance_detail = false, bool allow_reconfig = true) const;

 private:
  const Workload* workload_;
  const LatencyModel* model_;
  SimOptions options_;
};

}  // namespace fgro

#endif  // FGRO_SIM_SIMULATOR_H_
