#ifndef FGRO_SIM_RO_METRICS_H_
#define FGRO_SIM_RO_METRICS_H_

#include <array>

#include "sim/simulator.h"

namespace fgro {

/// Aggregate resource-optimization metrics over one replay (the columns of
/// Tables 2 and 11), plus the fault-tolerance accounting of the
/// failure-sweep bench.
struct RoSummary {
  int num_stages = 0;
  int feasible_stages = 0;
  double coverage = 0.0;        // feasible within the RO time limit
  double avg_latency = 0.0;     // excluding solve time, feasible stages
  double avg_latency_in = 0.0;  // including solve time
  double avg_cost = 0.0;
  double avg_solve_ms = 0.0;
  double max_solve_ms = 0.0;
  // Fault-tolerance accounting, over ALL stages (failed ones included).
  long total_retries = 0;
  long total_failovers = 0;
  long speculative_copies = 0;
  long speculative_wins = 0;
  int failed_instances = 0;
  double total_wasted_cost = 0.0;
  double total_cost = 0.0;      // useful + wasted, all stages
  double goodput = 1.0;         // useful cost / total cost
  /// Stages decided at each degradation-ladder level, indexed by
  /// FallbackLevel (primary / theta0 / fuxi).
  std::array<int, 3> fallback_histogram = {0, 0, 0};
  /// Defensive-layer accounting (all zero with breaker/watchdog off).
  long breaker_trips = 0;           // stages where the breaker opened
  long breaker_short_circuits = 0;  // stages that skipped the model probe
  long breaker_recoveries = 0;      // stages where a half-open probe closed it
  long drift_alarms = 0;            // watchdog alarm transitions
  long drift_demoted_stages = 0;    // stages degraded by an active alarm
  /// Reconfiguration accounting (all zero with the engine off).
  long total_replans = 0;           // mid-stage partial re-plans swapped in
  long stale_decision_drops = 0;    // decisions dropped for superseded epoch
  long migrations = 0;              // straggler migrations executed
  long migration_wins = 0;          // migrations that beat the original run
  long fine_tunes = 0;              // online model updates
  /// Model-lifecycle accounting (all zero with the lifecycle off).
  long promotions = 0;              // candidates promoted into service
  long rollbacks = 0;               // probation rollbacks to the predecessor
  long gate_rejects = 0;            // candidates the static gate refused
  long shadow_rejects = 0;          // candidates the shadow window refused
  long lifecycle_retrains = 0;      // scheduled retrains submitted
  long wasted_decisions = 0;        // decisions invalidated by a rollback
  double wasted_solve_seconds = 0.0;
  /// Serving WMAPE of the active model over the shadow observations
  /// (sum |pred - actual| / sum actual); 0 when nothing was observed.
  double serving_wmape = 0.0;
  /// Concurrent-service accounting (all zero in sequential replays).
  /// Filled by RoService, not by Summarize(); the wall-clock fields
  /// (queue_wait_p95_ms, service_p95_ms, max_queue_depth) depend on thread
  /// count and load and are excluded from determinism comparisons.
  long jobs_offered = 0;       // Submit() calls
  long jobs_admitted = 0;      // accepted into the admission queue
  long jobs_shed = 0;          // rejected with kResourceExhausted
  long jobs_completed = 0;     // replays that finished (ok or failed)
  long jobs_failed = 0;        // replays that returned an error status
  long jobs_latency_sensitive = 0;  // admitted on the priority lane
  long brownout_demotions = 0;      // controller level-increase transitions
  long brownout_promotions = 0;     // controller level-decrease transitions
  long brownout_theta0_jobs = 0;    // jobs served at the theta0 level
  long brownout_fuxi_jobs = 0;      // jobs served at the fuxi level
  long deadline_expired_jobs = 0;   // per-request deadline gone at dequeue
  long expired_in_queue = 0;        // expired requests completed as shed
  /// CoDel-arm accounting (all zero when the adaptive arm is off).
  long codel_shed_jobs = 0;         // early-dropped at admission
  long codel_theta0_jobs = 0;       // served one ladder level down
  long codel_fuxi_jobs = 0;         // served at the floor level
  long codel_interval_resets = 0;   // overload episodes ended
  long codel_target_adaptations = 0;  // learned-target steps
  double codel_target_ms = 0.0;     // final learned sojourn target
  double queue_wait_p95_ms = 0.0;   // admission -> dequeue (wall clock)
  double service_p95_ms = 0.0;      // dequeue -> completion (wall clock)
  int max_queue_depth = 0;          // high-water mark of the queue
};

RoSummary Summarize(const SimResult& result);

/// Reduction rates against a baseline (Fuxi): positive = this method is
/// better. Averaged over totals, as in Table 2.
struct ReductionRates {
  double latency_in_rr = 0.0;  // on Lat_s^(in)
  double latency_rr = 0.0;     // on Lat_s (excluding solve time)
  double cost_rr = 0.0;
};

ReductionRates ComputeReduction(const RoSummary& baseline,
                                const RoSummary& method);

/// Paired comparison: summaries restricted to the stages feasible in BOTH
/// replays, so a low-coverage method is not judged on a cherry-picked
/// subset. Both results must come from the same job set (same outcome
/// order).
struct PairedSummaries {
  RoSummary baseline;
  RoSummary method;
  int paired_stages = 0;
};
PairedSummaries SummarizePaired(const SimResult& baseline,
                                const SimResult& method);

}  // namespace fgro

#endif  // FGRO_SIM_RO_METRICS_H_
