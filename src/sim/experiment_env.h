#ifndef FGRO_SIM_EXPERIMENT_ENV_H_
#define FGRO_SIM_EXPERIMENT_ENV_H_

#include <memory>

#include "model/latency_model.h"
#include "sim/simulator.h"
#include "trace/data_split.h"

namespace fgro {

/// One fully prepared experiment: a generated workload, its collected
/// trace, the train/val/test split, and a trained fine-grained model.
/// Benches and examples share this so every table starts from the same
/// pipeline the paper's Fig. 3 describes. Heap-only (the trace dataset
/// points into the workload).
class ExperimentEnv {
 public:
  struct Options {
    WorkloadId workload = WorkloadId::kA;
    double scale = 1.0;
    ModelKind model_kind = ModelKind::kMciGtn;
    ChannelMask channels;
    int discretization_degree = 10;
    TrainOptions train;
    ClusterOptions collect_cluster;  // cluster used for trace collection
    bool train_model = true;
    uint64_t seed = 3;
  };

  static Result<std::unique_ptr<ExperimentEnv>> Build(const Options& options);

  const Workload& workload() const { return workload_; }
  const TraceDataset& dataset() const { return dataset_; }
  const DataSplit& split() const { return split_; }
  const LatencyModel& model() const { return *model_; }
  LatencyModel* mutable_model() { return model_.get(); }
  const Options& options() const { return options_; }

  /// Test-set actuals and model predictions (convenience for metric rows).
  Result<std::vector<double>> TestActuals() const;
  Result<std::vector<double>> TestPredictions() const;

  ExperimentEnv(const ExperimentEnv&) = delete;
  ExperimentEnv& operator=(const ExperimentEnv&) = delete;

 private:
  ExperimentEnv() = default;

  Options options_;
  Workload workload_;
  TraceDataset dataset_;
  DataSplit split_;
  std::unique_ptr<LatencyModel> model_;
};

}  // namespace fgro

#endif  // FGRO_SIM_EXPERIMENT_ENV_H_
