#include "sim/ro_metrics.h"

#include <algorithm>

namespace fgro {

RoSummary Summarize(const SimResult& result) {
  RoSummary s;
  s.num_stages = static_cast<int>(result.outcomes.size());
  double lat = 0.0, lat_in = 0.0, cost = 0.0, solve = 0.0;
  double abs_err = 0.0, actual_sum = 0.0;
  for (const StageOutcome& o : result.outcomes) {
    solve += o.solve_seconds * 1e3;
    s.max_solve_ms = std::max(s.max_solve_ms, o.solve_seconds * 1e3);
    s.total_retries += o.retries;
    s.total_failovers += o.failovers;
    s.speculative_copies += o.speculative_copies;
    s.speculative_wins += o.speculative_wins;
    s.failed_instances += o.failed_instances;
    s.total_wasted_cost += o.wasted_cost;
    s.total_cost += o.stage_cost;
    s.fallback_histogram[static_cast<size_t>(o.fallback)]++;
    s.breaker_trips += o.breaker_tripped ? 1 : 0;
    s.breaker_short_circuits += o.model_short_circuited ? 1 : 0;
    s.breaker_recoveries += o.breaker_recovered ? 1 : 0;
    s.drift_alarms += o.drift_alarm_raised ? 1 : 0;
    s.drift_demoted_stages += o.drift_demoted ? 1 : 0;
    s.total_replans += o.replans;
    s.stale_decision_drops += o.stale_decision_drops;
    s.migrations += o.migrations;
    s.migration_wins += o.migration_wins;
    s.fine_tunes += o.fine_tunes;
    s.promotions += o.promotions;
    s.rollbacks += o.rollbacks;
    s.gate_rejects += o.gate_rejects;
    s.shadow_rejects += o.shadow_rejects;
    s.lifecycle_retrains += o.lifecycle_retrains;
    s.wasted_decisions += o.wasted_decisions;
    s.wasted_solve_seconds += o.wasted_solve_seconds;
    abs_err += o.pred_abs_error;
    actual_sum += o.pred_actual_sum;
    if (!o.feasible) continue;
    ++s.feasible_stages;
    lat += o.stage_latency;
    lat_in += o.stage_latency_in;
    cost += o.stage_cost;
  }
  if (s.total_cost > 0.0) {
    s.goodput = (s.total_cost - s.total_wasted_cost) / s.total_cost;
  }
  if (actual_sum > 0.0) s.serving_wmape = abs_err / actual_sum;
  if (s.num_stages > 0) {
    s.coverage = static_cast<double>(s.feasible_stages) / s.num_stages;
    s.avg_solve_ms = solve / s.num_stages;
  }
  if (s.feasible_stages > 0) {
    s.avg_latency = lat / s.feasible_stages;
    s.avg_latency_in = lat_in / s.feasible_stages;
    s.avg_cost = cost / s.feasible_stages;
  }
  return s;
}

PairedSummaries SummarizePaired(const SimResult& baseline,
                                const SimResult& method) {
  PairedSummaries out;
  SimResult base_paired, method_paired;
  size_t n = std::min(baseline.outcomes.size(), method.outcomes.size());
  for (size_t i = 0; i < n; ++i) {
    if (baseline.outcomes[i].feasible && method.outcomes[i].feasible) {
      base_paired.outcomes.push_back(baseline.outcomes[i]);
      method_paired.outcomes.push_back(method.outcomes[i]);
    }
  }
  out.paired_stages = static_cast<int>(base_paired.outcomes.size());
  out.baseline = Summarize(base_paired);
  out.method = Summarize(method_paired);
  return out;
}

ReductionRates ComputeReduction(const RoSummary& baseline,
                                const RoSummary& method) {
  ReductionRates rr;
  if (baseline.avg_latency_in > 0.0) {
    rr.latency_in_rr =
        (baseline.avg_latency_in - method.avg_latency_in) /
        baseline.avg_latency_in;
  }
  if (baseline.avg_latency > 0.0) {
    rr.latency_rr =
        (baseline.avg_latency - method.avg_latency) / baseline.avg_latency;
  }
  if (baseline.avg_cost > 0.0) {
    rr.cost_rr = (baseline.avg_cost - method.avg_cost) / baseline.avg_cost;
  }
  return rr;
}

}  // namespace fgro
