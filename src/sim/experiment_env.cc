#include "sim/experiment_env.h"

#include "common/logging.h"

namespace fgro {

Result<std::unique_ptr<ExperimentEnv>> ExperimentEnv::Build(
    const Options& options) {
  std::unique_ptr<ExperimentEnv> env(new ExperimentEnv());
  env->options_ = options;

  WorkloadGenerator generator(
      GetWorkloadProfile(options.workload, options.scale));
  Result<Workload> workload = generator.Generate();
  if (!workload.ok()) return workload.status();
  env->workload_ = std::move(workload).value();

  TraceCollector collector(options.collect_cluster, options.seed);
  Result<TraceDataset> dataset = collector.Collect(env->workload_);
  if (!dataset.ok()) return dataset.status();
  env->dataset_ = std::move(dataset).value();
  env->dataset_.workload = &env->workload_;  // re-anchor after the move

  Rng split_rng(options.seed ^ 0xabcdef);
  env->split_ = SplitByTemplateFrequency(env->dataset_, &split_rng);

  LatencyModel::Options model_options;
  model_options.kind = options.model_kind;
  model_options.featurizer =
      Featurizer(options.channels, options.discretization_degree);
  model_options.seed = options.seed + 13;
  env->model_ = std::make_unique<LatencyModel>(model_options);
  if (options.train_model) {
    FGRO_RETURN_IF_ERROR(env->model_->Train(env->dataset_,
                                            env->split_.train,
                                            env->split_.val, options.train));
  }
  return env;
}

Result<std::vector<double>> ExperimentEnv::TestActuals() const {
  std::vector<double> out;
  out.reserve(split_.test.size());
  for (int idx : split_.test) {
    out.push_back(dataset_.records[static_cast<size_t>(idx)].actual_latency);
  }
  return out;
}

Result<std::vector<double>> ExperimentEnv::TestPredictions() const {
  return model_->PredictRecords(dataset_, split_.test);
}

}  // namespace fgro
