#include "sim/fault_injector.h"

#include <cmath>

#include "common/rng.h"

namespace fgro {

namespace {

// SplitMix64 finalizer: a cheap, well-mixed hash for counter-based draws.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Poisson process over [0, horizon): exponential inter-arrival times with
// the given events-per-second rate, each event opening a fixed-length
// window. Windows are already sorted and non-overlapping by construction
// (the next arrival is drawn after the previous window closes).
std::vector<FaultWindow> DrawWindows(Rng* rng, double rate_per_second,
                                     double window_seconds, double horizon) {
  std::vector<FaultWindow> windows;
  if (rate_per_second <= 0.0 || horizon <= 0.0) return windows;
  double t = 0.0;
  while (true) {
    double u = rng->Uniform(1e-12, 1.0);
    t += -std::log(u) / rate_per_second;
    if (t >= horizon) break;
    windows.push_back({t, t + window_seconds});
    t += window_seconds;
  }
  return windows;
}

bool InWindow(const std::vector<FaultWindow>& windows, double now) {
  for (const FaultWindow& w : windows) {
    if (now < w.start) return false;  // sorted: no later window covers now
    if (now < w.end) return true;
  }
  return false;
}

}  // namespace

FaultInjector::FaultInjector(const FaultOptions& options, int num_machines)
    : options_(options) {
  if (!options_.active()) return;
  machine_windows_.resize(static_cast<size_t>(num_machines));
  const double crash_rate = options_.machine_failure_rate_per_day / 86400.0;
  for (int m = 0; m < num_machines; ++m) {
    Rng rng(Mix64(options_.seed ^ Mix64(0x6d61636800ULL + m)));
    machine_windows_[static_cast<size_t>(m)] =
        DrawWindows(&rng, crash_rate, options_.machine_recovery_seconds,
                    options_.horizon_seconds);
  }
  Rng model_rng(Mix64(options_.seed ^ 0x6d6f64656cULL));
  model_windows_ =
      DrawWindows(&model_rng, options_.model_outage_rate_per_day / 86400.0,
                  options_.model_outage_seconds, options_.horizon_seconds);
}

bool FaultInjector::MachineUp(int machine_id, double now) const {
  if (machine_windows_.empty()) return true;
  return !InWindow(machine_windows_[static_cast<size_t>(machine_id)], now);
}

bool FaultInjector::ModelAvailable(double now) const {
  return !InWindow(model_windows_, now);
}

double FaultInjector::MachineRecoveryTime(int machine_id, double now) const {
  if (machine_windows_.empty()) return now;
  for (const FaultWindow& w :
       machine_windows_[static_cast<size_t>(machine_id)]) {
    if (now < w.start) break;
    if (now < w.end) return w.end;
  }
  return now;
}

bool FaultInjector::MachineCrashesWithin(int machine_id, double start,
                                         double duration,
                                         double* crash_at) const {
  if (machine_windows_.empty()) return false;
  for (const FaultWindow& w :
       machine_windows_[static_cast<size_t>(machine_id)]) {
    if (w.start >= start + duration) break;
    if (w.start >= start) {
      if (crash_at != nullptr) *crash_at = w.start;
      return true;
    }
  }
  return false;
}

double FaultInjector::UnitDraw(uint64_t stream, int job, int stage,
                               int instance, int attempt) const {
  uint64_t h = Mix64(options_.seed ^ stream);
  h = Mix64(h ^ static_cast<uint64_t>(job));
  h = Mix64(h ^ (static_cast<uint64_t>(stage) << 20));
  h = Mix64(h ^ (static_cast<uint64_t>(instance) << 40));
  h = Mix64(h ^ (static_cast<uint64_t>(attempt) << 52));
  // 53-bit mantissa -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

bool FaultInjector::InstanceFails(int job, int stage, int instance,
                                  int attempt) const {
  if (options_.instance_failure_prob <= 0.0) return false;
  return UnitDraw(0x6661696cULL, job, stage, instance, attempt) <
         options_.instance_failure_prob;
}

double FaultInjector::FailurePointFraction(int job, int stage, int instance,
                                           int attempt) const {
  double u = UnitDraw(0x706f696e74ULL, job, stage, instance, attempt);
  // Avoid the degenerate endpoints: a failure always wastes some work but
  // never a full completed run.
  return 0.02 + 0.96 * u;
}

double FaultInjector::StragglerMultiplier(int job, int stage, int instance,
                                          int attempt) const {
  if (options_.straggler_prob <= 0.0) return 1.0;
  if (UnitDraw(0x736c6f77ULL, job, stage, instance, attempt) <
      options_.straggler_prob) {
    return options_.straggler_slowdown;
  }
  return 1.0;
}

}  // namespace fgro
