#ifndef FGRO_SIM_FAULT_INJECTOR_H_
#define FGRO_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/retry.h"

namespace fgro {

/// Fault-model knobs for one replay. All faults are generated from `seed`
/// only, so two runs with identical options produce byte-identical fault
/// schedules (the determinism tests assert this). `enabled = false` (the
/// default) makes the simulator take exactly the seed's happy path.
struct FaultOptions {
  bool enabled = false;

  /// Machine crashes follow a per-machine Poisson process with this many
  /// expected crashes per machine per day; each crash takes the machine
  /// down for `machine_recovery_seconds`.
  double machine_failure_rate_per_day = 0.0;
  double machine_recovery_seconds = 1800.0;

  /// Probability that any single instance attempt fails mid-run (container
  /// OOM, disk error, preemption). Independent per (job, stage, instance,
  /// attempt).
  double instance_failure_prob = 0.0;

  /// Probability that an attempt is a straggler, and the latency multiplier
  /// it suffers (hidden interference, bad disk — the cases speculative
  /// re-execution exists for).
  double straggler_prob = 0.0;
  double straggler_slowdown = 4.0;

  /// Speculative re-execution: when an instance's completion exceeds
  /// `speculative_threshold` x the stage median, a backup copy is launched;
  /// the first finisher wins and the loser's work is wasted cost.
  bool speculative_execution = true;
  double speculative_threshold = 2.0;

  /// Model-server outages: a Poisson process of unavailability windows
  /// during which schedulers see no model and must degrade.
  double model_outage_rate_per_day = 0.0;
  double model_outage_seconds = 600.0;

  /// Circuit breaker over model-server probes. Disabled (default), every
  /// stage probes the server directly (the oracle behavior). Enabled, the
  /// simulator probes through the breaker: repeated failed probes trip it
  /// and subsequent stages fall straight to the theta0/Fuxi ladder without
  /// burning a probe, until a half-open probe after the cooldown succeeds.
  CircuitBreakerOptions model_breaker;

  /// Horizon over which crash/outage schedules are generated. Events past
  /// the horizon never fire.
  double horizon_seconds = 7.0 * 86400.0;

  /// Retry policy for failed instance attempts; backoff is charged to the
  /// stage's simulated latency.
  RetryPolicy retry;

  uint64_t seed = 17;

  /// True when fault injection changes anything at all.
  bool active() const {
    return enabled &&
           (machine_failure_rate_per_day > 0.0 ||
            instance_failure_prob > 0.0 || straggler_prob > 0.0 ||
            model_outage_rate_per_day > 0.0);
  }
};

/// A half-open unavailability window [start, end) in absolute sim seconds.
struct FaultWindow {
  double start = 0.0;
  double end = 0.0;
};

/// Deterministic, order-independent fault source. Crash/outage windows are
/// materialized up front from per-entity forked seeds; per-attempt draws
/// (instance failure, straggler, failure point) are counter-based hashes of
/// (seed, job, stage, instance, attempt), so the same attempt always sees
/// the same fate regardless of how many draws other attempts consumed.
class FaultInjector {
 public:
  FaultInjector(const FaultOptions& options, int num_machines);

  const FaultOptions& options() const { return options_; }
  bool active() const { return options_.active(); }

  bool MachineUp(int machine_id, double now) const;
  bool ModelAvailable(double now) const;

  /// End of the machine's downtime window covering `now`, or `now` itself
  /// if the machine is up.
  double MachineRecoveryTime(int machine_id, double now) const;

  /// True when the machine has a crash window starting inside
  /// [start, start + duration); `*crash_at` receives the window start.
  bool MachineCrashesWithin(int machine_id, double start, double duration,
                            double* crash_at) const;

  bool InstanceFails(int job, int stage, int instance, int attempt) const;

  /// Fraction of the attempt's latency already executed when it fails
  /// (work lost to the failure), in (0, 1).
  double FailurePointFraction(int job, int stage, int instance,
                              int attempt) const;

  /// 1.0 for a normal attempt, `straggler_slowdown` for a straggler.
  double StragglerMultiplier(int job, int stage, int instance,
                             int attempt) const;

  const std::vector<std::vector<FaultWindow>>& machine_windows() const {
    return machine_windows_;
  }
  const std::vector<FaultWindow>& model_windows() const {
    return model_windows_;
  }

 private:
  double UnitDraw(uint64_t stream, int job, int stage, int instance,
                  int attempt) const;

  FaultOptions options_;
  std::vector<std::vector<FaultWindow>> machine_windows_;  // per machine
  std::vector<FaultWindow> model_windows_;
};

}  // namespace fgro

#endif  // FGRO_SIM_FAULT_INJECTOR_H_
