#ifndef FGRO_SIM_DEPENDENCY_MANAGER_H_
#define FGRO_SIM_DEPENDENCY_MANAGER_H_

#include <vector>

#include "common/status.h"
#include "plan/job.h"

namespace fgro {

/// The Stage Dependency Manager of Fig. 1: tracks which stages of a job have
/// all shuffle dependencies satisfied and releases them to the scheduler.
class StageDependencyManager {
 public:
  explicit StageDependencyManager(const Job& job);

  /// FailedPrecondition when the job's stage DAG contains a dependency
  /// cycle (such a job can never finish — the replay loop would otherwise
  /// spin on an empty ready set forever). Callers must check before
  /// replaying.
  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

  /// Stages whose dependencies are met and that have not been released yet.
  /// Each stage is returned exactly once across calls.
  std::vector<int> PopReadyStages();

  void MarkCompleted(int stage_idx);

  bool AllCompleted() const { return completed_count_ == num_stages_; }
  int num_stages() const { return num_stages_; }

 private:
  int num_stages_ = 0;
  int completed_count_ = 0;
  Status status_;
  std::vector<int> pending_deps_;   // unmet dependency count per stage
  std::vector<bool> released_;
  std::vector<bool> completed_;
  std::vector<std::vector<int>> downstream_;
};

}  // namespace fgro

#endif  // FGRO_SIM_DEPENDENCY_MANAGER_H_
