#include "sim/dependency_manager.h"

#include "common/logging.h"

namespace fgro {

StageDependencyManager::StageDependencyManager(const Job& job)
    : num_stages_(job.stage_count()) {
  pending_deps_.assign(static_cast<size_t>(num_stages_), 0);
  released_.assign(static_cast<size_t>(num_stages_), false);
  completed_.assign(static_cast<size_t>(num_stages_), false);
  downstream_.assign(static_cast<size_t>(num_stages_), {});
  for (int s = 0; s < num_stages_; ++s) {
    pending_deps_[static_cast<size_t>(s)] =
        static_cast<int>(job.stage_deps[static_cast<size_t>(s)].size());
    for (int d : job.stage_deps[static_cast<size_t>(s)]) {
      downstream_[static_cast<size_t>(d)].push_back(s);
    }
  }
  // Kahn's algorithm over a scratch copy of the in-degrees: if a topological
  // order does not cover every stage, the DAG has a cycle and a replay
  // would deadlock silently.
  std::vector<int> indegree = pending_deps_;
  std::vector<int> frontier;
  for (int s = 0; s < num_stages_; ++s) {
    if (indegree[static_cast<size_t>(s)] == 0) frontier.push_back(s);
  }
  int ordered = 0;
  while (!frontier.empty()) {
    int s = frontier.back();
    frontier.pop_back();
    ++ordered;
    for (int d : downstream_[static_cast<size_t>(s)]) {
      if (--indegree[static_cast<size_t>(d)] == 0) frontier.push_back(d);
    }
  }
  if (ordered != num_stages_) {
    status_ = Status::FailedPrecondition(
        "stage dependency graph contains a cycle");
  }
}

std::vector<int> StageDependencyManager::PopReadyStages() {
  std::vector<int> ready;
  for (int s = 0; s < num_stages_; ++s) {
    if (!released_[static_cast<size_t>(s)] &&
        pending_deps_[static_cast<size_t>(s)] == 0) {
      released_[static_cast<size_t>(s)] = true;
      ready.push_back(s);
    }
  }
  return ready;
}

void StageDependencyManager::MarkCompleted(int stage_idx) {
  FGRO_CHECK(stage_idx >= 0 && stage_idx < num_stages_);
  if (completed_[static_cast<size_t>(stage_idx)]) return;
  completed_[static_cast<size_t>(stage_idx)] = true;
  ++completed_count_;
  for (int d : downstream_[static_cast<size_t>(stage_idx)]) {
    --pending_deps_[static_cast<size_t>(d)];
  }
}

}  // namespace fgro
