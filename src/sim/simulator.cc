#include "sim/simulator.h"

#include <algorithm>

#include "common/circuit_breaker.h"
#include "common/logging.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "featurize/channels.h"
#include "sim/dependency_manager.h"

namespace fgro {

namespace {

/// Per-instance record of the fault-tolerant replay of one stage.
struct InstanceRun {
  double completion = 0.0;     // elapsed since stage start, incl. backoff
  double final_run = 0.0;      // runtime of the winning attempt
  int machine = -1;            // machine the winning attempt ran on
  bool succeeded = false;
};

/// Deterministic retry placement: the up machine with the most free cores
/// that fits theta (lowest id breaks ties), excluding `exclude`. -1 when
/// the cluster has nowhere left to put the container.
int PickRetryMachine(const Cluster& cluster, const FaultInjector& injector,
                     const ResourceConfig& theta, double now, int exclude) {
  int best = -1;
  double best_cores = -1.0;
  for (const Machine& m : cluster.machines()) {
    if (m.id() == exclude) continue;
    if (!injector.MachineUp(m.id(), now)) continue;
    if (!(theta.cores <= m.available_cores() + 1e-9 &&
          theta.memory_gb <= m.available_memory_gb() + 1e-9)) {
      continue;
    }
    if (m.available_cores() > best_cores) {
      best_cores = m.available_cores();
      best = m.id();
    }
  }
  return best;
}

/// All mutable state of one replay. The sequential path builds one and
/// threads it through every job (cluster time and breaker/watchdog state
/// span jobs, exactly as before the service refactor); the concurrent
/// service builds a fresh one per job so nothing is shared across workers.
struct ReplayState {
  ReplayState(const SimOptions& options, const WorkloadProfile& profile,
              uint64_t seed)
      : rng(seed),
        cluster(options.cluster),
        env(profile.env),
        hbo(profile.hbo),
        injector(options.faults, cluster.size()),
        breaker(options.faults.model_breaker),
        watchdog(options.drift_watchdog, kNumHardwareTypes) {}

  Rng rng;
  Cluster cluster;
  GroundTruthEnv env;
  Hbo hbo;
  FaultInjector injector;
  CircuitBreaker breaker;
  DriftWatchdog watchdog;
};

/// Replays one job against `st`, appending its stage outcomes to `out`.
/// This is the body shared by the sequential replay (one ReplayState for
/// the whole run) and the isolated per-job replay (one per job).
Status ReplayJobInState(const Workload& workload, const LatencyModel* model,
                        const SimOptions& options, ReplayState& st,
                        int job_idx, const Simulator::SchedulerFn& scheduler,
                        bool keep_instance_detail,
                        std::vector<StageOutcome>* out) {
  Rng& rng = st.rng;
  Cluster& cluster = st.cluster;
  GroundTruthEnv& env = st.env;
  FaultInjector& injector = st.injector;
  CircuitBreaker& breaker = st.breaker;
  DriftWatchdog& watchdog = st.watchdog;

  const bool faults = injector.active();
  // Breaker over the model-server probe: only consulted when faults are on
  // AND the breaker is enabled, so the oracle probe path is untouched by
  // default and existing replays stay byte-identical.
  const bool use_breaker = faults && options.faults.model_breaker.enabled;
  // Online drift watchdog: shadow-compares predictions against simulated
  // actuals per hardware type; independent of the fault injector.
  const bool shadow =
      watchdog.enabled() && model != nullptr && model->trained();

  // Deterministic drift pulse: scales actual latencies while sim time is
  // inside the pulse window. The 1.0 fast path keeps the default replay
  // bit-identical.
  auto apply_drift = [&](double actual) {
    if (options.drift_multiplier == 1.0) return actual;
    const double now = cluster.now();
    if (now >= options.drift_start_seconds &&
        now < options.drift_end_seconds) {
      return actual * options.drift_multiplier;
    }
    return actual;
  };

  // One "actual" latency draw for an attempt of instance i on a machine.
  auto sample_actual = [&](const Stage& stage, int i, const Machine& machine,
                           const ResourceConfig& theta) -> Result<double> {
    switch (options.outcome) {
      case OutcomeMode::kNoiseFree: {
        FGRO_ASSIGN_OR_RETURN(
            double pred,
            model->Predict(stage, i, theta, machine.state(),
                           machine.hardware().id));
        return apply_drift(pred);
      }
      case OutcomeMode::kGprNoise: {
        FGRO_ASSIGN_OR_RETURN(
            double pred,
            model->Predict(stage, i, theta, machine.state(),
                           machine.hardware().id));
        return apply_drift(options.gpr->Sample(pred, &rng));
      }
      case OutcomeMode::kEnvironment:
        return apply_drift(env.SampleLatency(stage, i, machine, theta, &rng));
    }
    return Status::Internal("unknown outcome mode");
  };

  // Shadow prediction for the watchdog; never fails the replay (a failed
  // shadow predict just skips the observation).
  auto observe_drift = [&](const Stage& stage, int i, const Machine& machine,
                           const ResourceConfig& theta, double actual) {
    Result<double> pred = model->Predict(stage, i, theta, machine.state(),
                                         machine.hardware().id);
    if (pred.ok()) {
      watchdog.Observe(machine.hardware().id, pred.value(), actual);
    }
  };

  obs::ScopedSpan job_span(options.obs.tracer, "sim.job");
  obs::MetricsRegistry* metrics = options.obs.metrics;
  if (metrics != nullptr) metrics->GetCounter("sim.jobs_replayed")->Increment();

  const Job& job = workload.jobs[static_cast<size_t>(job_idx)];
  cluster.AdvanceTime(job.arrival_time);
  if (faults) {
    // Project the crash/recovery schedule onto machine liveness.
    for (Machine& m : cluster.machines()) {
      m.SetUp(injector.MachineUp(m.id(), cluster.now()));
    }
  }
  StageDependencyManager deps(job);
  if (!deps.ok()) return deps.status();

  while (!deps.AllCompleted()) {
    std::vector<int> ready = deps.PopReadyStages();
    if (ready.empty()) {
      return Status::Internal("dependency deadlock in job replay");
    }
    for (int s : ready) {
      const Stage& stage = job.stages[static_cast<size_t>(s)];
      obs::ScopedSpan stage_span(options.obs.tracer, "sim.stage",
                                 job_span.id());
      HboRecommendation rec = st.hbo.Recommend(stage);

      SchedulingContext context;
      context.stage = &stage;
      context.cluster = &cluster;
      context.model = model;
      context.theta0 = rec.theta0;
      context.ro_time_limit_seconds = options.ro_time_limit_seconds;
      context.obs = options.obs;
      context.trace_parent = stage_span.id();
      context.batched_inference = options.batched_inference;
      context.memo = options.memo;
      context.worker_pool = options.worker_pool;

      StageOutcome outcome;
      outcome.job_idx = job_idx;
      outcome.stage_idx = s;
      outcome.num_instances = stage.instance_count();
      outcome.default_theta_cores = rec.theta0.cores;

      if (faults) {
        if (use_breaker) {
          // Breaker-gated probe: while open, stages skip the probe
          // entirely (short circuit) and degrade immediately; a half-open
          // probe after the cooldown decides recovery vs. re-trip.
          const double now = cluster.now();
          if (!breaker.AllowRequest(now)) {
            context.model_available = false;
            outcome.model_short_circuited = true;
          } else {
            const long trips_before = breaker.trips();
            const long recoveries_before = breaker.recoveries();
            const bool up = injector.ModelAvailable(now);
            if (up) {
              breaker.RecordSuccess(now);
            } else {
              breaker.RecordFailure(now);
            }
            context.model_available = up;
            outcome.breaker_tripped = breaker.trips() > trips_before;
            outcome.breaker_recovered =
                breaker.recoveries() > recoveries_before;
          }
        } else {
          context.model_available = injector.ModelAvailable(cluster.now());
        }
      }
      if (watchdog.enabled() && watchdog.alarmed()) {
        // Drift demotion: the model is reachable but untrustworthy; the
        // ladder treats it like an outage. Shadow evaluation continues
        // below, so the window can recover and re-promote.
        context.model_available = false;
        outcome.drift_demoted = true;
      }
      const long alarms_before = watchdog.alarms_raised();

      StageDecision decision = scheduler(context);
      outcome.solve_seconds = decision.solve_seconds;
      outcome.fallback = decision.fallback;
      if (metrics != nullptr) {
        metrics->GetCounter("sim.stages_replayed")->Increment();
        metrics->GetLatencyHistogram("sim.stage_solve_seconds")
            ->Observe(decision.solve_seconds);
        if (!decision.feasible) {
          metrics->GetCounter("sim.stages_infeasible")->Increment();
        }
      }
      // A degraded decision already paid its (abandoned) primary solve
      // time; what matters is that the fallback itself is usable.
      outcome.feasible =
          decision.feasible &&
          (decision.solve_seconds <= options.ro_time_limit_seconds ||
           decision.fallback != FallbackLevel::kPrimary);
      if (!outcome.feasible) {
        out->push_back(std::move(outcome));
        deps.MarkCompleted(s);
        continue;
      }

      // Charge the machines for the stage's containers.
      const int m = stage.instance_count();
      for (int i = 0; i < m; ++i) {
        cluster
            .machine(decision.machine_of_instance[static_cast<size_t>(i)])
            .Allocate(decision.theta_of_instance[static_cast<size_t>(i)]);
      }

      if (!faults) {
        // Happy path, bit-identical to the fault-free build.
        double max_latency = 0.0, cost = 0.0;
        std::vector<double> latencies(static_cast<size_t>(m));
        for (int i = 0; i < m; ++i) {
          const Machine& machine = cluster.machine(
              decision.machine_of_instance[static_cast<size_t>(i)]);
          const ResourceConfig& theta =
              decision.theta_of_instance[static_cast<size_t>(i)];
          Result<double> actual = sample_actual(stage, i, machine, theta);
          if (!actual.ok()) return actual.status();
          latencies[static_cast<size_t>(i)] = actual.value();
          max_latency = std::max(max_latency, actual.value());
          cost += actual.value() * context.cost_weights.Rate(theta);
          if (shadow) observe_drift(stage, i, machine, theta, actual.value());
        }
        for (int i = 0; i < m; ++i) {
          cluster
              .machine(decision.machine_of_instance[static_cast<size_t>(i)])
              .Release(decision.theta_of_instance[static_cast<size_t>(i)]);
        }
        outcome.stage_latency = max_latency;
        outcome.stage_latency_in = max_latency + decision.solve_seconds;
        outcome.stage_cost = cost;
        outcome.drift_alarm_raised = watchdog.alarms_raised() > alarms_before;
        if (keep_instance_detail) {
          outcome.instance_latencies = std::move(latencies);
          outcome.instance_thetas = decision.theta_of_instance;
        }
        out->push_back(std::move(outcome));
        deps.MarkCompleted(s);
        continue;
      }

      // Fault-tolerant path: attempts fail (injected failures, machine
      // crashes) and are retried with backoff on surviving machines; the
      // lost work of every failed or killed attempt is wasted cost.
      const double stage_start = cluster.now();
      const RetryPolicy& policy = options.faults.retry;
      std::vector<InstanceRun> runs(static_cast<size_t>(m));
      // Extra allocations made by failovers, released at stage end.
      std::vector<std::pair<int, ResourceConfig>> extra_allocs;

      for (int i = 0; i < m; ++i) {
        const ResourceConfig& theta =
            decision.theta_of_instance[static_cast<size_t>(i)];
        const double rate = context.cost_weights.Rate(theta);
        InstanceRun& run = runs[static_cast<size_t>(i)];
        run.machine =
            decision.machine_of_instance[static_cast<size_t>(i)];
        double t = 0.0;  // elapsed since stage start, this instance
        for (int attempt = 1;; ++attempt) {
          const Machine& machine = cluster.machine(run.machine);
          Result<double> drawn = sample_actual(stage, i, machine, theta);
          if (!drawn.ok()) return drawn.status();
          double nominal =
              drawn.value() *
              injector.StragglerMultiplier(job_idx, s, i, attempt);

          double crash_at = 0.0;
          const bool machine_crash = injector.MachineCrashesWithin(
              run.machine, stage_start + t, nominal, &crash_at);
          const bool inst_fail =
              injector.InstanceFails(job_idx, s, i, attempt);
          if (!machine_crash && !inst_fail) {
            run.final_run = nominal;
            run.completion = t + nominal;
            run.succeeded = true;
            break;
          }
          // Work lost at the earlier of the two failure sources.
          double ran = nominal;
          if (inst_fail) {
            ran = injector.FailurePointFraction(job_idx, s, i, attempt) *
                  nominal;
          }
          if (machine_crash) {
            ran = std::min(ran, crash_at - (stage_start + t));
          }
          ran = std::max(0.0, ran);
          outcome.wasted_cost += ran * rate;
          const Status failure =
              machine_crash
                  ? Status::Unavailable("machine crashed mid-attempt")
                  : Status::ResourceExhausted("instance attempt failed");
          if (!policy.ShouldRetry(failure, attempt)) {
            ++outcome.failed_instances;
            run.completion = t + ran;
            break;
          }
          t += ran + policy.BackoffSeconds(attempt);
          ++outcome.retries;
          // Re-place when the current machine is gone; otherwise retry
          // in place (transient container failure).
          if (machine_crash ||
              !injector.MachineUp(run.machine, stage_start + t)) {
            int next = PickRetryMachine(cluster, injector, theta,
                                        stage_start + t, run.machine);
            if (next < 0) {
              ++outcome.failed_instances;
              run.completion = t;
              break;
            }
            ++outcome.failovers;
            run.machine = next;
            if (cluster.machine(next).Allocate(theta)) {
              extra_allocs.emplace_back(next, theta);
            }
          }
        }
      }

      // Speculative re-execution: instances lagging far behind the stage
      // median get a backup copy; first finisher wins, the loser's run
      // is killed and charged as waste.
      if (options.faults.speculative_execution && m >= 3) {
        std::vector<double> completions;
        completions.reserve(static_cast<size_t>(m));
        for (const InstanceRun& run : runs) {
          if (run.succeeded) completions.push_back(run.completion);
        }
        const double median = Median(completions);
        const double detect_at =
            options.faults.speculative_threshold * median;
        if (!completions.empty() && median > 0.0) {
          for (int i = 0; i < m; ++i) {
            InstanceRun& run = runs[static_cast<size_t>(i)];
            if (!run.succeeded || run.completion <= detect_at) continue;
            const ResourceConfig& theta =
                decision.theta_of_instance[static_cast<size_t>(i)];
            const double rate = context.cost_weights.Rate(theta);
            int copy_machine =
                PickRetryMachine(cluster, injector, theta,
                                 stage_start + detect_at, run.machine);
            if (copy_machine < 0) continue;
            Result<double> drawn = sample_actual(
                stage, i, cluster.machine(copy_machine), theta);
            if (!drawn.ok()) return drawn.status();
            // The copy gets its own straggler draw on a high attempt
            // index so it never collides with a retry attempt's fate.
            double copy_run =
                drawn.value() *
                injector.StragglerMultiplier(job_idx, s, i, 1000);
            double copy_completion = detect_at + copy_run;
            ++outcome.speculative_copies;
            if (copy_completion < run.completion) {
              ++outcome.speculative_wins;
              // Original killed when the copy finishes: everything the
              // final original attempt ran is lost.
              double original_started = run.completion - run.final_run;
              outcome.wasted_cost +=
                  std::max(0.0, copy_completion - original_started) * rate;
              run.final_run = copy_run;
              run.completion = copy_completion;
              run.machine = copy_machine;
            } else {
              // Copy killed when the original finishes.
              outcome.wasted_cost +=
                  std::max(0.0, run.completion - detect_at) * rate;
            }
          }
        }
      }

      double max_latency = 0.0, useful_cost = 0.0;
      std::vector<double> latencies(static_cast<size_t>(m));
      bool all_succeeded = true;
      for (int i = 0; i < m; ++i) {
        const InstanceRun& run = runs[static_cast<size_t>(i)];
        const ResourceConfig& theta =
            decision.theta_of_instance[static_cast<size_t>(i)];
        latencies[static_cast<size_t>(i)] = run.completion;
        max_latency = std::max(max_latency, run.completion);
        if (run.succeeded) {
          useful_cost += run.final_run * context.cost_weights.Rate(theta);
          if (shadow) {
            // Feed the winning attempt's runtime; straggler noise is part
            // of the drift signal the watchdog is meant to see.
            observe_drift(stage, i, cluster.machine(run.machine), theta,
                          run.final_run);
          }
        } else {
          all_succeeded = false;
        }
      }
      for (int i = 0; i < m; ++i) {
        cluster
            .machine(decision.machine_of_instance[static_cast<size_t>(i)])
            .Release(decision.theta_of_instance[static_cast<size_t>(i)]);
      }
      for (const auto& [machine_id, theta] : extra_allocs) {
        cluster.machine(machine_id).Release(theta);
      }

      // A stage that lost an instance past its retry budget did not
      // produce its output: it fails cleanly (no crash, waste recorded).
      outcome.feasible = all_succeeded;
      outcome.stage_latency = max_latency;
      outcome.stage_latency_in = max_latency + decision.solve_seconds;
      outcome.stage_cost = useful_cost + outcome.wasted_cost;
      outcome.drift_alarm_raised = watchdog.alarms_raised() > alarms_before;
      if (keep_instance_detail) {
        outcome.instance_latencies = std::move(latencies);
        outcome.instance_thetas = decision.theta_of_instance;
      }
      out->push_back(std::move(outcome));
      deps.MarkCompleted(s);
    }
  }
  return Status::OK();
}

Status ValidateOutcomeMode(const SimOptions& options) {
  if (options.outcome == OutcomeMode::kGprNoise &&
      (options.gpr == nullptr || !options.gpr->fitted())) {
    return Status::FailedPrecondition("GPR noise model required but missing");
  }
  return Status::OK();
}

}  // namespace

Simulator::Simulator(const Workload* workload, const LatencyModel* model,
                     SimOptions options)
    : workload_(workload), model_(model), options_(options) {}

Result<SimResult> Simulator::Run(const SchedulerFn& scheduler,
                                 bool keep_instance_detail) {
  std::vector<int> all(workload_->jobs.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return RunJobs(scheduler, all, keep_instance_detail);
}

Result<SimResult> Simulator::RunJobs(const SchedulerFn& scheduler,
                                     const std::vector<int>& job_indices,
                                     bool keep_instance_detail) {
  FGRO_RETURN_IF_ERROR(ValidateOutcomeMode(options_));
  // One shared state for the whole replay: cluster time advances across
  // jobs and breaker/watchdog state carries over, as it always has.
  ReplayState state(options_, workload_->profile, options_.seed);
  SimResult result;
  for (int job_idx : job_indices) {
    FGRO_RETURN_IF_ERROR(ReplayJobInState(*workload_, model_, options_, state,
                                          job_idx, scheduler,
                                          keep_instance_detail,
                                          &result.outcomes));
  }
  return result;
}

Result<std::vector<StageOutcome>> Simulator::ReplayJobIsolated(
    const SchedulerFn& scheduler, int job_idx, uint64_t seed,
    bool keep_instance_detail) const {
  if (job_idx < 0 ||
      job_idx >= static_cast<int>(workload_->jobs.size())) {
    return Status::InvalidArgument("job index out of range");
  }
  FGRO_RETURN_IF_ERROR(ValidateOutcomeMode(options_));
  ReplayState state(options_, workload_->profile, seed);
  std::vector<StageOutcome> outcomes;
  FGRO_RETURN_IF_ERROR(ReplayJobInState(*workload_, model_, options_, state,
                                        job_idx, scheduler,
                                        keep_instance_detail, &outcomes));
  return outcomes;
}

}  // namespace fgro
