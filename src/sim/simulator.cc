#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "common/circuit_breaker.h"
#include "common/logging.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "featurize/channels.h"
#include "sim/dependency_manager.h"

namespace fgro {

namespace {

/// Per-instance record of the fault-tolerant replay of one stage.
struct InstanceRun {
  double completion = 0.0;     // elapsed since stage start, incl. backoff
  double final_run = 0.0;      // runtime of the winning attempt
  int machine = -1;            // machine the winning attempt ran on
  bool succeeded = false;
};

/// Deterministic retry placement: the up machine with the most free cores
/// that fits theta (lowest id breaks ties), excluding `exclude`. -1 when
/// the cluster has nowhere left to put the container.
int PickRetryMachine(const Cluster& cluster, const FaultInjector& injector,
                     const ResourceConfig& theta, double now, int exclude) {
  int best = -1;
  double best_cores = -1.0;
  for (const Machine& m : cluster.machines()) {
    if (m.id() == exclude) continue;
    if (!injector.MachineUp(m.id(), now)) continue;
    if (!(theta.cores <= m.available_cores() + 1e-9 &&
          theta.memory_gb <= m.available_memory_gb() + 1e-9)) {
      continue;
    }
    if (m.available_cores() > best_cores) {
      best_cores = m.available_cores();
      best = m.id();
    }
  }
  return best;
}

/// All mutable state of one replay. The sequential path builds one and
/// threads it through every job (cluster time and breaker/watchdog state
/// span jobs, exactly as before the service refactor); the concurrent
/// service builds a fresh one per job so nothing is shared across workers.
struct ReplayState {
  ReplayState(const SimOptions& options, const Workload& workload,
              const LatencyModel* model, uint64_t seed,
              bool allow_reconfig = true)
      : rng(seed),
        cluster(options.cluster),
        env(workload.profile.env),
        hbo(workload.profile.hbo),
        injector(options.faults, cluster.size()),
        breaker(options.faults.model_breaker),
        watchdog(options.drift_watchdog, kNumHardwareTypes) {
    watchdog.set_obs(options.obs);
    if (options.reconfig.enabled && allow_reconfig) {
      reconfig = std::make_unique<ReconfigurationEngine>(
          options.reconfig, model, &workload,
          MixSeed(seed, options.reconfig.seed), options.obs);
    }
    if (options.lifecycle.enabled && model != nullptr && model->trained()) {
      // The initial registry version aliases the caller-owned base model
      // (no-op deleter): the lifecycle never outlives the replay, and the
      // base model must stay the rollback target of the first promotion.
      lifecycle = std::make_unique<ModelLifecycle>(
          options.lifecycle,
          std::shared_ptr<const LatencyModel>(model,
                                              [](const LatencyModel*) {}),
          &workload, MixSeed(seed, options.lifecycle.seed), options.obs);
      if (reconfig != nullptr) reconfig->AttachLifecycle(lifecycle.get());
    }
  }

  Rng rng;
  Cluster cluster;
  GroundTruthEnv env;
  Hbo hbo;
  FaultInjector injector;
  CircuitBreaker breaker;
  DriftWatchdog watchdog;
  /// Null unless SimOptions::reconfig.enabled (and the caller allowed it):
  /// the replay then repairs in-flight work instead of only degrading.
  std::unique_ptr<ReconfigurationEngine> reconfig;
  /// Null unless SimOptions::lifecycle.enabled with a trained base model:
  /// model updates then flow through the gated promotion pipeline and the
  /// replay can roll a bad promotion back.
  std::unique_ptr<ModelLifecycle> lifecycle;
};

/// Replays one job against `st`, appending its stage outcomes to `out`.
/// This is the body shared by the sequential replay (one ReplayState for
/// the whole run) and the isolated per-job replay (one per job).
Status ReplayJobInState(const Workload& workload, const LatencyModel* model,
                        const SimOptions& options, ReplayState& st,
                        int job_idx, const Simulator::SchedulerFn& scheduler,
                        bool keep_instance_detail,
                        std::vector<StageOutcome>* out) {
  Rng& rng = st.rng;
  Cluster& cluster = st.cluster;
  GroundTruthEnv& env = st.env;
  FaultInjector& injector = st.injector;
  CircuitBreaker& breaker = st.breaker;
  DriftWatchdog& watchdog = st.watchdog;
  ReconfigurationEngine* engine = st.reconfig.get();
  ModelLifecycle* lifecycle = st.lifecycle.get();
  // Liveness oracle handed to the engine (keeps fgro_reconfig below sim in
  // the layer graph; the injector cannot be linked from there).
  const ReconfigurationEngine::MachineUpFn up_fn = [&injector](int id,
                                                              double t) {
    return injector.MachineUp(id, t);
  };

  const bool faults = injector.active();
  // Breaker over the model-server probe: only consulted when faults are on
  // AND the breaker is enabled, so the oracle probe path is untouched by
  // default and existing replays stay byte-identical.
  const bool use_breaker = faults && options.faults.model_breaker.enabled;
  // Online drift watchdog: shadow-compares predictions against simulated
  // actuals per hardware type; independent of the fault injector. The
  // model lifecycle rides the same per-completion hook (its observation
  // buffer, shadow canary, and scheduled retrains all advance there), so
  // either subsystem being on enables it.
  const bool shadow = (watchdog.enabled() || lifecycle != nullptr) &&
                      model != nullptr && model->trained();

  // Deterministic drift pulse: scales actual latencies while sim time is
  // inside the pulse window. The 1.0 fast path keeps the default replay
  // bit-identical.
  auto apply_drift = [&](double actual) {
    if (options.drift_multiplier == 1.0) return actual;
    const double now = cluster.now();
    if (now >= options.drift_start_seconds &&
        now < options.drift_end_seconds) {
      return actual * options.drift_multiplier;
    }
    return actual;
  };

  // One "actual" latency draw for an attempt of instance i on a machine.
  auto sample_actual = [&](const Stage& stage, int i, const Machine& machine,
                           const ResourceConfig& theta) -> Result<double> {
    switch (options.outcome) {
      case OutcomeMode::kNoiseFree: {
        FGRO_ASSIGN_OR_RETURN(
            double pred,
            model->Predict(stage, i, theta, machine.state(),
                           machine.hardware().id));
        return apply_drift(pred);
      }
      case OutcomeMode::kGprNoise: {
        FGRO_ASSIGN_OR_RETURN(
            double pred,
            model->Predict(stage, i, theta, machine.state(),
                           machine.hardware().id));
        return apply_drift(options.gpr->Sample(pred, &rng));
      }
      case OutcomeMode::kEnvironment:
        return apply_drift(env.SampleLatency(stage, i, machine, theta, &rng));
    }
    return Status::Internal("unknown outcome mode");
  };

  // Shadow prediction for the watchdog; never fails the replay (a failed
  // shadow predict just skips the observation). Under reconfiguration the
  // shadow uses the engine's active (possibly fine-tuned or promoted)
  // model — that is the whole point of the online update: the repaired
  // model's q-error recovers and the watchdog re-promotes early. The
  // ground-truth draw in sample_actual always stays on the base model, so
  // the tune chases a fixed target.
  //
  // With the model lifecycle on, this is also its per-completion hook:
  // the observation lands in the lifecycle buffer, the shadow candidate
  // scores it, scheduled retrains fire on it, and a promotion or a
  // probation rollback surfaces here. Either supersedes in-flight
  // decisions, so the engine's epoch is bumped. Returns true when the
  // observation promoted a candidate (the caller may want to re-plan the
  // undispatched tail with the new model).
  auto observe_drift = [&](const Stage& stage, int stage_idx, int i,
                           const Machine& machine, const ResourceConfig& theta,
                           double actual, StageOutcome* outcome) -> bool {
    const LatencyModel* shadow_model =
        engine != nullptr
            ? engine->active_model()
            : (lifecycle != nullptr ? lifecycle->active_model() : model);
    Result<double> pred = shadow_model->Predict(
        stage, i, theta, machine.state(), machine.hardware().id);
    if (pred.ok()) {
      if (watchdog.enabled()) {
        watchdog.Observe(machine.hardware().id, pred.value(), actual);
      }
      outcome->pred_abs_error += std::abs(pred.value() - actual);
      outcome->pred_actual_sum += actual;
    }
    bool promoted = false;
    if (lifecycle != nullptr) {
      promoted = lifecycle->Observe(job_idx, stage_idx, stage, i, theta,
                                    machine.id(), machine.hardware().id,
                                    machine.state(), actual, cluster.now());
      if (promoted && engine != nullptr) engine->BumpEpoch();
      if (lifecycle->NoteDriftAlarms(watchdog.alarms_raised())) {
        // Probation rollback: the promotion this observation's alarm
        // indicts is gone; decisions solved under it are stale.
        if (engine != nullptr) engine->BumpEpoch();
      }
    }
    return promoted;
  };

  obs::ScopedSpan job_span(options.obs.tracer, "sim.job");
  obs::MetricsRegistry* metrics = options.obs.metrics;
  if (metrics != nullptr) metrics->GetCounter("sim.jobs_replayed")->Increment();

  const Job& job = workload.jobs[static_cast<size_t>(job_idx)];
  cluster.AdvanceTime(job.arrival_time);
  if (faults) {
    if (engine != nullptr) {
      // Same liveness projection as below, but diffed against the last
      // view: an up/down transition supersedes the decision epoch.
      engine->NoteMachineLiveness(&cluster, up_fn, cluster.now());
    } else {
      // Project the crash/recovery schedule onto machine liveness.
      for (Machine& m : cluster.machines()) {
        m.SetUp(injector.MachineUp(m.id(), cluster.now()));
      }
    }
  }
  StageDependencyManager deps(job);
  if (!deps.ok()) return deps.status();

  while (!deps.AllCompleted()) {
    std::vector<int> ready = deps.PopReadyStages();
    if (ready.empty()) {
      return Status::Internal("dependency deadlock in job replay");
    }
    for (int s : ready) {
      const Stage& stage = job.stages[static_cast<size_t>(s)];
      obs::ScopedSpan stage_span(options.obs.tracer, "sim.stage",
                                 job_span.id());
      HboRecommendation rec = st.hbo.Recommend(stage);

      SchedulingContext context;
      context.stage = &stage;
      context.cluster = &cluster;
      context.model = model;
      context.theta0 = rec.theta0;
      context.ro_time_limit_seconds = options.ro_time_limit_seconds;
      context.obs = options.obs;
      context.trace_parent = stage_span.id();
      context.batched_inference = options.batched_inference;
      context.memo = options.memo;
      context.frontier_compression = options.frontier_compression;
      context.frontier_cache = options.frontier_cache;
      context.worker_pool = options.worker_pool;
      context.shard_count = options.shard_count;
      context.shard_seed = options.shard_seed;

      StageOutcome outcome;
      outcome.job_idx = job_idx;
      outcome.stage_idx = s;
      outcome.num_instances = stage.instance_count();
      outcome.default_theta_cores = rec.theta0.cores;

      if (faults) {
        if (use_breaker) {
          // Breaker-gated probe: while open, stages skip the probe
          // entirely (short circuit) and degrade immediately; a half-open
          // probe after the cooldown decides recovery vs. re-trip.
          const double now = cluster.now();
          if (!breaker.AllowRequest(now)) {
            context.model_available = false;
            outcome.model_short_circuited = true;
          } else {
            const long trips_before = breaker.trips();
            const long recoveries_before = breaker.recoveries();
            const bool up = injector.ModelAvailable(now);
            if (up) {
              breaker.RecordSuccess(now);
            } else {
              breaker.RecordFailure(now);
            }
            context.model_available = up;
            outcome.breaker_tripped = breaker.trips() > trips_before;
            outcome.breaker_recovered =
                breaker.recoveries() > recoveries_before;
          }
        } else {
          context.model_available = injector.ModelAvailable(cluster.now());
        }
      }
      // Whether the model *server* is reachable, independent of drift
      // trust — replans must not resurrect a model the breaker took away.
      const bool model_server_up = context.model_available;
      const long tunes_before =
          engine != nullptr ? engine->stats().fine_tunes : 0;
      ModelLifecycleStats lc_before;
      if (lifecycle != nullptr) {
        lc_before = lifecycle->stats();
        // A probation rollback pending from an alarm the last stage
        // raised supersedes any in-flight epoch before this solve starts.
        if (lifecycle->NoteDriftAlarms(watchdog.alarms_raised()) &&
            engine != nullptr) {
          engine->BumpEpoch();
        }
      }
      if (engine != nullptr) {
        // Alarms raised since the last look supersede the epoch; an alarm
        // is also the cue to fine-tune on the replay buffer, ideally before
        // this stage's decision so the repaired model can serve it.
        engine->NoteDriftAlarms(watchdog.alarms_raised());
        if (watchdog.enabled() && watchdog.alarmed()) {
          engine->MaybeFineTune();
        }
        // The prediction memo keys on the scoring model's params_tag, so
        // a tuned or hot-swapped model reads only its own entries — no
        // need to bypass it anymore.
        context.model = engine->active_model();
        context.epoch = engine->current_epoch();
      } else if (lifecycle != nullptr) {
        context.model = lifecycle->active_model();
      }
      if (lifecycle != nullptr) {
        context.model_epoch = lifecycle->model_epoch();
      }
      const bool model_trusted =
          engine != nullptr
              ? engine->ModelTrusted()
              : (lifecycle != nullptr && lifecycle->InProbation());
      if (watchdog.enabled() && watchdog.alarmed() && !model_trusted) {
        // Drift demotion: the model is reachable but untrustworthy; the
        // ladder treats it like an outage. Shadow evaluation continues
        // below, so the window can recover and re-promote. A fresh
        // fine-tune buys a trust window — or, under the lifecycle, a
        // fresh promotion's probation window — that overrides the alarm
        // until the q-error window catches up (or a new alarm revokes it).
        context.model_available = false;
        outcome.drift_demoted = true;
      }
      const long alarms_before = watchdog.alarms_raised();

      // Per-stage deltas of the lifecycle counters, written into the
      // outcome on every exit path below.
      auto finish_lifecycle = [&](StageOutcome* o) {
        if (lifecycle == nullptr) return;
        const ModelLifecycleStats& lc = lifecycle->stats();
        o->promotions =
            static_cast<int>(lc.promotions - lc_before.promotions);
        o->rollbacks = static_cast<int>(lc.rollbacks - lc_before.rollbacks);
        o->gate_rejects =
            static_cast<int>(lc.gate_rejects - lc_before.gate_rejects);
        o->shadow_rejects =
            static_cast<int>(lc.shadow_rejects - lc_before.shadow_rejects);
        o->lifecycle_retrains =
            static_cast<int>(lc.retrains - lc_before.retrains);
        o->wasted_decisions = lc.wasted_decisions - lc_before.wasted_decisions;
        o->wasted_solve_seconds =
            lc.wasted_solve_seconds - lc_before.wasted_solve_seconds;
      };

      StageDecision decision = scheduler(context);
      if (lifecycle != nullptr) {
        lifecycle->NoteDecision(decision.solve_seconds);
      }
      if (engine != nullptr && faults && decision.feasible &&
          engine->options().replan_on_machine_event &&
          engine->options().dispatch_hazard_seconds > 0.0) {
        // Stale-decision hazard: a machine assigned by this decision
        // crashes within the (fixed, sim-time) dispatch hazard window —
        // the event supersedes the decision's epoch, so it is dropped
        // undispatched and re-solved against the projected liveness.
        const double hazard = engine->options().dispatch_hazard_seconds;
        bool superseded = false;
        for (int i = 0; i < stage.instance_count() && !superseded; ++i) {
          double crash_at = 0.0;
          superseded = injector.MachineCrashesWithin(
              decision.machine_of_instance[static_cast<size_t>(i)],
              cluster.now(), hazard, &crash_at);
        }
        if (superseded) engine->BumpEpoch();
        if (engine->DecisionIsStale(decision.epoch)) {
          engine->CountStaleDrop();
          ++outcome.stale_decision_drops;
          const double spent = decision.solve_seconds;
          engine->NoteMachineLiveness(&cluster, up_fn,
                                      cluster.now() + hazard);
          context.epoch = engine->current_epoch();
          decision = scheduler(context);
          decision.solve_seconds += spent;
        }
      }
      outcome.solve_seconds = decision.solve_seconds;
      outcome.fallback = decision.fallback;
      if (metrics != nullptr) {
        metrics->GetCounter("sim.stages_replayed")->Increment();
        metrics->GetLatencyHistogram("sim.stage_solve_seconds")
            ->Observe(decision.solve_seconds);
        if (!decision.feasible) {
          metrics->GetCounter("sim.stages_infeasible")->Increment();
        }
      }
      // A degraded decision already paid its (abandoned) primary solve
      // time; what matters is that the fallback itself is usable.
      outcome.feasible =
          decision.feasible &&
          (decision.solve_seconds <= options.ro_time_limit_seconds ||
           decision.fallback != FallbackLevel::kPrimary);
      if (!outcome.feasible) {
        finish_lifecycle(&outcome);
        out->push_back(std::move(outcome));
        deps.MarkCompleted(s);
        continue;
      }

      if (engine != nullptr) {
        // Reconfiguration dispatch: instances launch in index order and the
        // engine may repair the not-yet-dispatched tail mid-stage. With no
        // trigger firing this path consumes the RNG in exactly the legacy
        // order (one draw per instance, i ascending), so reconfig-on
        // replays without faults or drift stay byte-identical to
        // reconfig-off ones.
        const int m = stage.instance_count();
        const double stage_start = cluster.now();
        const RetryPolicy& policy = options.faults.retry;
        std::vector<int> assign_machine = decision.machine_of_instance;
        std::vector<ResourceConfig> assign_theta = decision.theta_of_instance;
        std::vector<double> start_offset(static_cast<size_t>(m), 0.0);
        // What is actually charged per slot (replans re-point the tail).
        std::vector<int> alloc_machine = assign_machine;
        std::vector<ResourceConfig> alloc_theta = assign_theta;
        for (int i = 0; i < m; ++i) {
          cluster.machine(alloc_machine[static_cast<size_t>(i)])
              .Allocate(alloc_theta[static_cast<size_t>(i)]);
        }
        std::vector<InstanceRun> runs(static_cast<size_t>(m));
        std::vector<std::pair<int, ResourceConfig>> extra_allocs;
        double solve_total = decision.solve_seconds;
        int replans_done = 0;
        int migrations_done = 0;
        // Completed (post-rescue) run durations so far this stage; the
        // running median is the self-normalizing straggler anchor.
        std::vector<double> completed_runs;
        completed_runs.reserve(static_cast<size_t>(m));

        for (int i = 0; i < m; ++i) {
          const ResourceConfig theta = assign_theta[static_cast<size_t>(i)];
          const double rate = context.cost_weights.Rate(theta);
          InstanceRun& run = runs[static_cast<size_t>(i)];
          run.machine = assign_machine[static_cast<size_t>(i)];
          double t = start_offset[static_cast<size_t>(i)];
          // Jitter stream for this instance's retries: a pure function of
          // (job, stage, instance), so the full-jitter backoff is
          // byte-identical at any thread count yet decorrelated across
          // the instances that failed in the same machine-down epoch.
          const uint64_t retry_stream =
              MixSeed(MixSeed(static_cast<uint64_t>(job_idx),
                              static_cast<uint64_t>(s)),
                      static_cast<uint64_t>(i));

          if (!faults) {
            const Machine& machine = cluster.machine(run.machine);
            Result<double> drawn = sample_actual(stage, i, machine, theta);
            if (!drawn.ok()) return drawn.status();
            run.final_run = drawn.value();
            run.completion = t + drawn.value();
            run.succeeded = true;
          } else {
            for (int attempt = 1;; ++attempt) {
              if (!injector.MachineUp(run.machine, stage_start + t)) {
                // Machine already down at dispatch (e.g. it crashed between
                // a re-plan and this launch): nothing ran, nothing is
                // wasted; route through the ordinary retry/failover path.
                const Status failure =
                    Status::Unavailable("machine down at dispatch");
                if (!policy.ShouldRetry(failure, attempt)) {
                  ++outcome.failed_instances;
                  run.completion = t;
                  break;
                }
                t += policy.BackoffSeconds(attempt, retry_stream);
                ++outcome.retries;
                int next = PickRetryMachine(cluster, injector, theta,
                                            stage_start + t, run.machine);
                if (next < 0) {
                  ++outcome.failed_instances;
                  run.completion = t;
                  break;
                }
                ++outcome.failovers;
                run.machine = next;
                if (cluster.machine(next).Allocate(theta)) {
                  extra_allocs.emplace_back(next, theta);
                }
                continue;
              }
              const Machine& machine = cluster.machine(run.machine);
              Result<double> drawn = sample_actual(stage, i, machine, theta);
              if (!drawn.ok()) return drawn.status();
              double nominal =
                  drawn.value() *
                  injector.StragglerMultiplier(job_idx, s, i, attempt);

              double crash_at = 0.0;
              const bool machine_crash = injector.MachineCrashesWithin(
                  run.machine, stage_start + t, nominal, &crash_at);
              const bool inst_fail =
                  injector.InstanceFails(job_idx, s, i, attempt);
              if (!machine_crash && !inst_fail) {
                run.final_run = nominal;
                run.completion = t + nominal;
                run.succeeded = true;
                break;
              }
              double ran = nominal;
              if (inst_fail) {
                ran = injector.FailurePointFraction(job_idx, s, i, attempt) *
                      nominal;
              }
              if (machine_crash) {
                ran = std::min(ran, crash_at - (stage_start + t));
              }
              ran = std::max(0.0, ran);
              outcome.wasted_cost += ran * rate;
              const Status failure =
                  machine_crash
                      ? Status::Unavailable("machine crashed mid-attempt")
                      : Status::ResourceExhausted("instance attempt failed");
              if (!policy.ShouldRetry(failure, attempt)) {
                ++outcome.failed_instances;
                run.completion = t + ran;
                break;
              }
              t += ran + policy.BackoffSeconds(attempt, retry_stream);
              ++outcome.retries;
              if (machine_crash ||
                  !injector.MachineUp(run.machine, stage_start + t)) {
                int next = PickRetryMachine(cluster, injector, theta,
                                            stage_start + t, run.machine);
                if (next < 0) {
                  ++outcome.failed_instances;
                  run.completion = t;
                  break;
                }
                ++outcome.failovers;
                run.machine = next;
                if (cluster.machine(next).Allocate(theta)) {
                  extra_allocs.emplace_back(next, theta);
                }
              }
            }
          }

          // Straggler migration: the winning attempt ran far past a
          // detection anchor, so at the detection point a replacement is
          // launched on the best healthy machine and races the original;
          // the loser is killed the moment the winner finishes and its
          // burned runtime is wasted cost. Detection trips on whichever of
          // two anchors fires first (the race makes over-eager trips cost
          // only waste, while a missed trip costs stage latency):
          //  - the active model's per-instance prediction, counted only
          //    while the model is trustworthy (no alarm, or a fresh
          //    fine-tune inside its trust window) — mid-drift a
          //    half-repaired model underpredicts uniformly and would flag
          //    every instance;
          //  - the running median of this stage's completed runs (once 3
          //    samples exist) — self-normalizing under regime shift, the
          //    same property that makes speculative execution key on it,
          //    so real stragglers are still rescued while the watchdog is
          //    alarmed with no trusted repair.
          if (run.succeeded && engine->options().migrate_stragglers &&
              migrations_done < engine->options().max_migrations_per_stage) {
            const LatencyModel* active = engine->active_model();
            if (active != nullptr && active->trained()) {
              const double threshold = engine->options().migration_threshold;
              double anchor = -1.0;  // smallest anchor the run overran
              if (completed_runs.size() >= 3) {
                std::vector<double> sorted = completed_runs;
                const std::size_t mid = sorted.size() / 2;
                std::nth_element(sorted.begin(), sorted.begin() + mid,
                                 sorted.end());
                if (run.final_run > threshold * sorted[mid]) {
                  anchor = sorted[mid];
                }
              }
              if (!(watchdog.enabled() && watchdog.alarmed()) ||
                  engine->ModelTrusted()) {
                const Machine& current = cluster.machine(run.machine);
                Result<double> pred =
                    active->Predict(stage, i, theta, current.state(),
                                    current.hardware().id);
                if (pred.ok() && pred.value() > 0.0 &&
                    run.final_run > threshold * pred.value() &&
                    (anchor < 0.0 || pred.value() < anchor)) {
                  anchor = pred.value();
                }
              }
              if (anchor > 0.0) {
                const double started = run.completion - run.final_run;
                const double detect_at = started + threshold * anchor;
                const int target = engine->PickMigrationTarget(
                    cluster, up_fn, stage, i, theta, stage_start + detect_at,
                    run.machine);
                if (target >= 0) {
                  Result<double> drawn = sample_actual(
                      stage, i, cluster.machine(target), theta);
                  if (!drawn.ok()) return drawn.status();
                  // Attempt index 2000: a private straggler-fate stream for
                  // migrated runs (speculative copies use 1000).
                  const double mig_run =
                      drawn.value() *
                      injector.StragglerMultiplier(job_idx, s, i, 2000);
                  const double mig_completion = detect_at + mig_run;
                  ++migrations_done;
                  engine->CountMigration();
                  ++outcome.migrations;
                  // The replacement occupied a real slot whichever way the
                  // race went.
                  if (cluster.machine(target).Allocate(theta)) {
                    extra_allocs.emplace_back(target, theta);
                  }
                  // The original keeps running while the replacement races
                  // it; the first to finish wins and the loser is killed at
                  // that instant, its whole burned runtime charged as
                  // waste. Killing the original at detection instead would
                  // gamble the stage tail on the replacement not
                  // re-straggling — a lost race must never make the stage
                  // slower than doing nothing.
                  if (mig_completion < run.completion) {
                    engine->CountMigrationWin();
                    ++outcome.migration_wins;
                    outcome.wasted_cost +=
                        std::max(0.0, mig_completion - started) * rate;
                    run.machine = target;
                    run.final_run = mig_run;
                    run.completion = mig_completion;
                  } else {
                    outcome.wasted_cost +=
                        std::max(0.0, run.completion - detect_at) * rate;
                  }
                }
              }
            }
          }

          bool promoted_now = false;
          if (run.succeeded) {
            completed_runs.push_back(run.final_run);
            const Machine& machine = cluster.machine(run.machine);
            if (shadow) {
              promoted_now = observe_drift(stage, s, i, machine, theta,
                                           run.final_run, &outcome);
            }
            engine->RecordObservation(job_idx, s, stage, i, theta, machine,
                                      run.final_run);
          }

          // Mid-stage triggers: a drift alarm that a fine-tune just
          // repaired, or a remaining assignment pointing at a machine that
          // has gone down, re-plans the not-yet-dispatched tail.
          if (i + 1 >= m || replans_done >= engine->options().max_replans_per_stage) {
            continue;
          }
          const double t_check = stage_start + run.completion;
          bool want_replan = false;
          // When the re-plan is repairing a machine event, the repair point
          // is the event itself (the crash a heartbeat would detect), not
          // the completion of instance i where this loop happens to look.
          double replan_at = run.completion;
          bool drift_replan = false;
          if (promoted_now && engine->options().replan_on_drift_alarm) {
            // A mid-stage promotion: the undispatched tail was planned by
            // the superseded model; re-solve it with the promoted one.
            want_replan = true;
            drift_replan = true;
          }
          if (engine->NoteDriftAlarms(watchdog.alarms_raised()) &&
              engine->options().replan_on_drift_alarm) {
            // Re-planning with the model that just proved untrustworthy
            // would reproduce the same plan: only worth it if the tune ran.
            // (Under the lifecycle the tune is only *submitted* as a gate
            // candidate — the active model is unchanged, so no re-plan
            // until a later observation promotes it.)
            if (engine->MaybeFineTune()) {
              want_replan = true;
              drift_replan = true;
            }
          }
          if (!want_replan && faults &&
              engine->options().replan_on_machine_event) {
            for (int j = i + 1; j < m; ++j) {
              const int mj = assign_machine[static_cast<size_t>(j)];
              if (injector.MachineUp(mj, t_check)) continue;
              want_replan = true;
              double crash_at = 0.0;
              // Down since before the stage started -> event time 0.
              double event = 0.0;
              if (injector.MachineCrashesWithin(mj, stage_start,
                                                run.completion, &crash_at)) {
                event = crash_at - stage_start;
              }
              replan_at = std::min(replan_at, std::max(0.0, event));
            }
          }
          if (!want_replan) continue;

          ++replans_done;
          for (int j = i + 1; j < m; ++j) {
            cluster.machine(alloc_machine[static_cast<size_t>(j)])
                .Release(alloc_theta[static_cast<size_t>(j)]);
          }
          if (faults) {
            engine->NoteMachineLiveness(&cluster, up_fn,
                                        stage_start + replan_at);
          }
          // A drift re-plan re-optimizes the whole undispatched tail (the
          // repaired model may prefer different placements everywhere). A
          // machine-event re-plan solves only the instances that actually
          // need repair — re-pointing healthy instances would charge them
          // the re-dispatch delay for no reason.
          std::vector<int> remaining;
          if (drift_replan) {
            remaining.resize(static_cast<size_t>(m - i - 1));
            std::iota(remaining.begin(), remaining.end(), i + 1);
          } else {
            for (int j = i + 1; j < m; ++j) {
              if (!injector.MachineUp(assign_machine[static_cast<size_t>(j)],
                                      t_check)) {
                remaining.push_back(j);
              }
            }
          }
          SchedulingContext sub = context;
          sub.model = engine->active_model();
          sub.model_available =
              model_server_up &&
              (!(watchdog.enabled() && watchdog.alarmed()) ||
               engine->ModelTrusted());
          sub.memo = nullptr;
          // sub.frontier_cache is inherited through the copy on purpose:
          // its content-based keys (params_tag included) stay exact under
          // the swapped model and the reduced stage view, so partial
          // re-plans hit warm frontier templates.
          sub.instance_subset = &remaining;
          sub.epoch = engine->current_epoch();
          if (lifecycle != nullptr) {
            sub.model_epoch = lifecycle->model_epoch();
          }
          sub.deadline = Deadline::After(std::max(
              0.1, options.ro_time_limit_seconds - solve_total));
          StageDecision redo;
          {
            obs::ScopedSpan replan_span(options.obs.tracer,
                                        "reconfig.replan", stage_span.id());
            redo = scheduler(sub);
          }
          if (lifecycle != nullptr) {
            lifecycle->NoteDecision(redo.solve_seconds);
          }
          solve_total += redo.solve_seconds;
          if (redo.feasible &&
              redo.machine_of_instance.size() == remaining.size()) {
            engine->CountReplan();
            ++outcome.replans;
            for (size_t r = 0; r < remaining.size(); ++r) {
              const size_t j = static_cast<size_t>(remaining[r]);
              const bool moved =
                  assign_machine[j] != redo.machine_of_instance[r] ||
                  !(assign_theta[j] == redo.theta_of_instance[r]);
              assign_machine[j] = redo.machine_of_instance[r];
              assign_theta[j] = redo.theta_of_instance[r];
              // Instances the re-plan actually moved re-dispatch at the
              // repair point — the delay is honestly charged to latency.
              // Instances whose assignment survived were never recalled
              // and keep their original dispatch time.
              if (moved) start_offset[j] = replan_at;
            }
          } else {
            engine->CountReplanFailure();
          }
          for (int j = i + 1; j < m; ++j) {
            alloc_machine[static_cast<size_t>(j)] =
                assign_machine[static_cast<size_t>(j)];
            alloc_theta[static_cast<size_t>(j)] =
                assign_theta[static_cast<size_t>(j)];
            cluster.machine(alloc_machine[static_cast<size_t>(j)])
                .Allocate(alloc_theta[static_cast<size_t>(j)]);
          }
        }

        double max_latency = 0.0, useful_cost = 0.0;
        std::vector<double> latencies(static_cast<size_t>(m));
        bool all_succeeded = true;
        for (int i = 0; i < m; ++i) {
          const InstanceRun& run = runs[static_cast<size_t>(i)];
          const ResourceConfig& theta = assign_theta[static_cast<size_t>(i)];
          latencies[static_cast<size_t>(i)] = run.completion;
          max_latency = std::max(max_latency, run.completion);
          if (run.succeeded) {
            useful_cost += run.final_run * context.cost_weights.Rate(theta);
          } else {
            all_succeeded = false;
          }
        }
        for (int i = 0; i < m; ++i) {
          cluster.machine(alloc_machine[static_cast<size_t>(i)])
              .Release(alloc_theta[static_cast<size_t>(i)]);
        }
        for (const auto& [machine_id, extra_theta] : extra_allocs) {
          cluster.machine(machine_id).Release(extra_theta);
        }

        outcome.feasible = all_succeeded;
        outcome.solve_seconds = solve_total;
        outcome.stage_latency = max_latency;
        outcome.stage_latency_in = max_latency + solve_total;
        outcome.stage_cost = useful_cost + outcome.wasted_cost;
        outcome.drift_alarm_raised = watchdog.alarms_raised() > alarms_before;
        outcome.fine_tunes =
            static_cast<int>(engine->stats().fine_tunes - tunes_before);
        finish_lifecycle(&outcome);
        if (keep_instance_detail) {
          outcome.instance_latencies = std::move(latencies);
          outcome.instance_thetas = std::move(assign_theta);
        }
        out->push_back(std::move(outcome));
        deps.MarkCompleted(s);
        continue;
      }

      // Charge the machines for the stage's containers.
      const int m = stage.instance_count();
      for (int i = 0; i < m; ++i) {
        cluster
            .machine(decision.machine_of_instance[static_cast<size_t>(i)])
            .Allocate(decision.theta_of_instance[static_cast<size_t>(i)]);
      }

      if (!faults) {
        // Happy path, bit-identical to the fault-free build.
        double max_latency = 0.0, cost = 0.0;
        std::vector<double> latencies(static_cast<size_t>(m));
        for (int i = 0; i < m; ++i) {
          const Machine& machine = cluster.machine(
              decision.machine_of_instance[static_cast<size_t>(i)]);
          const ResourceConfig& theta =
              decision.theta_of_instance[static_cast<size_t>(i)];
          Result<double> actual = sample_actual(stage, i, machine, theta);
          if (!actual.ok()) return actual.status();
          latencies[static_cast<size_t>(i)] = actual.value();
          max_latency = std::max(max_latency, actual.value());
          cost += actual.value() * context.cost_weights.Rate(theta);
          if (shadow) {
            observe_drift(stage, s, i, machine, theta, actual.value(),
                          &outcome);
          }
        }
        for (int i = 0; i < m; ++i) {
          cluster
              .machine(decision.machine_of_instance[static_cast<size_t>(i)])
              .Release(decision.theta_of_instance[static_cast<size_t>(i)]);
        }
        outcome.stage_latency = max_latency;
        outcome.stage_latency_in = max_latency + decision.solve_seconds;
        outcome.stage_cost = cost;
        outcome.drift_alarm_raised = watchdog.alarms_raised() > alarms_before;
        finish_lifecycle(&outcome);
        if (keep_instance_detail) {
          outcome.instance_latencies = std::move(latencies);
          outcome.instance_thetas = decision.theta_of_instance;
        }
        out->push_back(std::move(outcome));
        deps.MarkCompleted(s);
        continue;
      }

      // Fault-tolerant path: attempts fail (injected failures, machine
      // crashes) and are retried with backoff on surviving machines; the
      // lost work of every failed or killed attempt is wasted cost.
      const double stage_start = cluster.now();
      const RetryPolicy& policy = options.faults.retry;
      std::vector<InstanceRun> runs(static_cast<size_t>(m));
      // Extra allocations made by failovers, released at stage end.
      std::vector<std::pair<int, ResourceConfig>> extra_allocs;

      for (int i = 0; i < m; ++i) {
        const ResourceConfig& theta =
            decision.theta_of_instance[static_cast<size_t>(i)];
        const double rate = context.cost_weights.Rate(theta);
        InstanceRun& run = runs[static_cast<size_t>(i)];
        run.machine =
            decision.machine_of_instance[static_cast<size_t>(i)];
        double t = 0.0;  // elapsed since stage start, this instance
        // Per-(job, stage, instance) jitter stream; see the reconfig
        // dispatch branch for the determinism rationale.
        const uint64_t retry_stream =
            MixSeed(MixSeed(static_cast<uint64_t>(job_idx),
                            static_cast<uint64_t>(s)),
                    static_cast<uint64_t>(i));
        for (int attempt = 1;; ++attempt) {
          const Machine& machine = cluster.machine(run.machine);
          Result<double> drawn = sample_actual(stage, i, machine, theta);
          if (!drawn.ok()) return drawn.status();
          double nominal =
              drawn.value() *
              injector.StragglerMultiplier(job_idx, s, i, attempt);

          double crash_at = 0.0;
          const bool machine_crash = injector.MachineCrashesWithin(
              run.machine, stage_start + t, nominal, &crash_at);
          const bool inst_fail =
              injector.InstanceFails(job_idx, s, i, attempt);
          if (!machine_crash && !inst_fail) {
            run.final_run = nominal;
            run.completion = t + nominal;
            run.succeeded = true;
            break;
          }
          // Work lost at the earlier of the two failure sources.
          double ran = nominal;
          if (inst_fail) {
            ran = injector.FailurePointFraction(job_idx, s, i, attempt) *
                  nominal;
          }
          if (machine_crash) {
            ran = std::min(ran, crash_at - (stage_start + t));
          }
          ran = std::max(0.0, ran);
          outcome.wasted_cost += ran * rate;
          const Status failure =
              machine_crash
                  ? Status::Unavailable("machine crashed mid-attempt")
                  : Status::ResourceExhausted("instance attempt failed");
          if (!policy.ShouldRetry(failure, attempt)) {
            ++outcome.failed_instances;
            run.completion = t + ran;
            break;
          }
          t += ran + policy.BackoffSeconds(attempt, retry_stream);
          ++outcome.retries;
          // Re-place when the current machine is gone; otherwise retry
          // in place (transient container failure).
          if (machine_crash ||
              !injector.MachineUp(run.machine, stage_start + t)) {
            int next = PickRetryMachine(cluster, injector, theta,
                                        stage_start + t, run.machine);
            if (next < 0) {
              ++outcome.failed_instances;
              run.completion = t;
              break;
            }
            ++outcome.failovers;
            run.machine = next;
            if (cluster.machine(next).Allocate(theta)) {
              extra_allocs.emplace_back(next, theta);
            }
          }
        }
      }

      // Speculative re-execution: instances lagging far behind the stage
      // median get a backup copy; first finisher wins, the loser's run
      // is killed and charged as waste.
      if (options.faults.speculative_execution && m >= 3) {
        std::vector<double> completions;
        completions.reserve(static_cast<size_t>(m));
        for (const InstanceRun& run : runs) {
          if (run.succeeded) completions.push_back(run.completion);
        }
        const double median = Median(completions);
        const double detect_at =
            options.faults.speculative_threshold * median;
        if (!completions.empty() && median > 0.0) {
          for (int i = 0; i < m; ++i) {
            InstanceRun& run = runs[static_cast<size_t>(i)];
            if (!run.succeeded || run.completion <= detect_at) continue;
            const ResourceConfig& theta =
                decision.theta_of_instance[static_cast<size_t>(i)];
            const double rate = context.cost_weights.Rate(theta);
            int copy_machine =
                PickRetryMachine(cluster, injector, theta,
                                 stage_start + detect_at, run.machine);
            if (copy_machine < 0) continue;
            Result<double> drawn = sample_actual(
                stage, i, cluster.machine(copy_machine), theta);
            if (!drawn.ok()) return drawn.status();
            // The copy gets its own straggler draw on a high attempt
            // index so it never collides with a retry attempt's fate.
            double copy_run =
                drawn.value() *
                injector.StragglerMultiplier(job_idx, s, i, 1000);
            double copy_completion = detect_at + copy_run;
            ++outcome.speculative_copies;
            if (copy_completion < run.completion) {
              ++outcome.speculative_wins;
              // Original killed when the copy finishes: everything the
              // final original attempt ran is lost.
              double original_started = run.completion - run.final_run;
              outcome.wasted_cost +=
                  std::max(0.0, copy_completion - original_started) * rate;
              run.final_run = copy_run;
              run.completion = copy_completion;
              run.machine = copy_machine;
            } else {
              // Copy killed when the original finishes.
              outcome.wasted_cost +=
                  std::max(0.0, run.completion - detect_at) * rate;
            }
          }
        }
      }

      double max_latency = 0.0, useful_cost = 0.0;
      std::vector<double> latencies(static_cast<size_t>(m));
      bool all_succeeded = true;
      for (int i = 0; i < m; ++i) {
        const InstanceRun& run = runs[static_cast<size_t>(i)];
        const ResourceConfig& theta =
            decision.theta_of_instance[static_cast<size_t>(i)];
        latencies[static_cast<size_t>(i)] = run.completion;
        max_latency = std::max(max_latency, run.completion);
        if (run.succeeded) {
          useful_cost += run.final_run * context.cost_weights.Rate(theta);
          if (shadow) {
            // Feed the winning attempt's runtime; straggler noise is part
            // of the drift signal the watchdog is meant to see.
            observe_drift(stage, s, i, cluster.machine(run.machine), theta,
                          run.final_run, &outcome);
          }
        } else {
          all_succeeded = false;
        }
      }
      for (int i = 0; i < m; ++i) {
        cluster
            .machine(decision.machine_of_instance[static_cast<size_t>(i)])
            .Release(decision.theta_of_instance[static_cast<size_t>(i)]);
      }
      for (const auto& [machine_id, theta] : extra_allocs) {
        cluster.machine(machine_id).Release(theta);
      }

      // A stage that lost an instance past its retry budget did not
      // produce its output: it fails cleanly (no crash, waste recorded).
      outcome.feasible = all_succeeded;
      outcome.stage_latency = max_latency;
      outcome.stage_latency_in = max_latency + decision.solve_seconds;
      outcome.stage_cost = useful_cost + outcome.wasted_cost;
      outcome.drift_alarm_raised = watchdog.alarms_raised() > alarms_before;
      finish_lifecycle(&outcome);
      if (keep_instance_detail) {
        outcome.instance_latencies = std::move(latencies);
        outcome.instance_thetas = decision.theta_of_instance;
      }
      out->push_back(std::move(outcome));
      deps.MarkCompleted(s);
    }
  }
  return Status::OK();
}

Status ValidateOutcomeMode(const SimOptions& options) {
  if (options.outcome == OutcomeMode::kGprNoise &&
      (options.gpr == nullptr || !options.gpr->fitted())) {
    return Status::FailedPrecondition("GPR noise model required but missing");
  }
  return Status::OK();
}

}  // namespace

Simulator::Simulator(const Workload* workload, const LatencyModel* model,
                     SimOptions options)
    : workload_(workload), model_(model), options_(options) {}

Result<SimResult> Simulator::Run(const SchedulerFn& scheduler,
                                 bool keep_instance_detail) {
  std::vector<int> all(workload_->jobs.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return RunJobs(scheduler, all, keep_instance_detail);
}

Result<SimResult> Simulator::RunJobs(const SchedulerFn& scheduler,
                                     const std::vector<int>& job_indices,
                                     bool keep_instance_detail) {
  FGRO_RETURN_IF_ERROR(ValidateOutcomeMode(options_));
  // One shared state for the whole replay: cluster time advances across
  // jobs and breaker/watchdog/reconfig state carries over, as it always
  // has — in particular the fine-tuned model persists across jobs.
  ReplayState state(options_, *workload_, model_, options_.seed);
  SimResult result;
  for (int job_idx : job_indices) {
    FGRO_RETURN_IF_ERROR(ReplayJobInState(*workload_, model_, options_, state,
                                          job_idx, scheduler,
                                          keep_instance_detail,
                                          &result.outcomes));
  }
  return result;
}

Result<std::vector<StageOutcome>> Simulator::ReplayJobIsolated(
    const SchedulerFn& scheduler, int job_idx, uint64_t seed,
    bool keep_instance_detail, bool allow_reconfig) const {
  if (job_idx < 0 ||
      job_idx >= static_cast<int>(workload_->jobs.size())) {
    return Status::InvalidArgument("job index out of range");
  }
  FGRO_RETURN_IF_ERROR(ValidateOutcomeMode(options_));
  ReplayState state(options_, *workload_, model_, seed, allow_reconfig);
  std::vector<StageOutcome> outcomes;
  FGRO_RETURN_IF_ERROR(ReplayJobInState(*workload_, model_, options_, state,
                                        job_idx, scheduler,
                                        keep_instance_detail, &outcomes));
  return outcomes;
}

}  // namespace fgro
