#include "sim/simulator.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/dependency_manager.h"

namespace fgro {

Simulator::Simulator(const Workload* workload, const LatencyModel* model,
                     SimOptions options)
    : workload_(workload), model_(model), options_(options) {}

Result<SimResult> Simulator::Run(const SchedulerFn& scheduler,
                                 bool keep_instance_detail) {
  std::vector<int> all(workload_->jobs.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return RunJobs(scheduler, all, keep_instance_detail);
}

Result<SimResult> Simulator::RunJobs(const SchedulerFn& scheduler,
                                     const std::vector<int>& job_indices,
                                     bool keep_instance_detail) {
  if (options_.outcome == OutcomeMode::kGprNoise &&
      (options_.gpr == nullptr || !options_.gpr->fitted())) {
    return Status::FailedPrecondition("GPR noise model required but missing");
  }
  Rng rng(options_.seed);
  Cluster cluster(options_.cluster);
  GroundTruthEnv env(workload_->profile.env);
  Hbo hbo(workload_->profile.hbo);
  SimResult result;

  for (int job_idx : job_indices) {
    const Job& job = workload_->jobs[static_cast<size_t>(job_idx)];
    cluster.AdvanceTime(job.arrival_time);
    StageDependencyManager deps(job);

    while (!deps.AllCompleted()) {
      std::vector<int> ready = deps.PopReadyStages();
      if (ready.empty()) {
        return Status::Internal("dependency deadlock in job replay");
      }
      for (int s : ready) {
        const Stage& stage = job.stages[static_cast<size_t>(s)];
        HboRecommendation rec = hbo.Recommend(stage);

        SchedulingContext context;
        context.stage = &stage;
        context.cluster = &cluster;
        context.model = model_;
        context.theta0 = rec.theta0;

        StageOutcome outcome;
        outcome.job_idx = job_idx;
        outcome.stage_idx = s;
        outcome.num_instances = stage.instance_count();
        outcome.default_theta_cores = rec.theta0.cores;

        StageDecision decision = scheduler(context);
        outcome.solve_seconds = decision.solve_seconds;
        outcome.feasible = decision.feasible &&
                           decision.solve_seconds <=
                               options_.ro_time_limit_seconds;
        if (!outcome.feasible) {
          result.outcomes.push_back(std::move(outcome));
          deps.MarkCompleted(s);
          continue;
        }

        // Charge the machines for the stage's containers.
        const int m = stage.instance_count();
        for (int i = 0; i < m; ++i) {
          cluster
              .machine(decision.machine_of_instance[static_cast<size_t>(i)])
              .Allocate(decision.theta_of_instance[static_cast<size_t>(i)]);
        }

        double max_latency = 0.0, cost = 0.0;
        std::vector<double> latencies(static_cast<size_t>(m));
        for (int i = 0; i < m; ++i) {
          const Machine& machine = cluster.machine(
              decision.machine_of_instance[static_cast<size_t>(i)]);
          const ResourceConfig& theta =
              decision.theta_of_instance[static_cast<size_t>(i)];
          double actual = 0.0;
          switch (options_.outcome) {
            case OutcomeMode::kNoiseFree: {
              Result<double> pred = model_->Predict(
                  stage, i, theta, machine.state(), machine.hardware().id);
              if (!pred.ok()) return pred.status();
              actual = pred.value();
              break;
            }
            case OutcomeMode::kGprNoise: {
              Result<double> pred = model_->Predict(
                  stage, i, theta, machine.state(), machine.hardware().id);
              if (!pred.ok()) return pred.status();
              actual = options_.gpr->Sample(pred.value(), &rng);
              break;
            }
            case OutcomeMode::kEnvironment:
              actual = env.SampleLatency(stage, i, machine, theta, &rng);
              break;
          }
          latencies[static_cast<size_t>(i)] = actual;
          max_latency = std::max(max_latency, actual);
          cost += actual * context.cost_weights.Rate(theta);
        }
        for (int i = 0; i < m; ++i) {
          cluster
              .machine(decision.machine_of_instance[static_cast<size_t>(i)])
              .Release(decision.theta_of_instance[static_cast<size_t>(i)]);
        }

        outcome.stage_latency = max_latency;
        outcome.stage_latency_in = max_latency + decision.solve_seconds;
        outcome.stage_cost = cost;
        if (keep_instance_detail) {
          outcome.instance_latencies = std::move(latencies);
          outcome.instance_thetas = decision.theta_of_instance;
        }
        result.outcomes.push_back(std::move(outcome));
        deps.MarkCompleted(s);
      }
    }
  }
  return result;
}

}  // namespace fgro
