#ifndef FGRO_NN_MLP_H_
#define FGRO_NN_MLP_H_

#include <vector>

#include "nn/linear.h"

namespace fgro {

/// Forward-pass cache needed by Backward: the input to each layer plus each
/// layer's post-activation output.
struct MlpCache {
  std::vector<Vec> layer_inputs;   // one per layer
  std::vector<Vec> layer_outputs;  // post-activation (last layer: raw)
};

/// Caller-owned scratch for the batched forward: two activation matrices
/// ping-ponged across layers. Reusing one scratch across batches makes the
/// forward allocation-free once the buffers are warm.
struct MlpScratch {
  Mat a;
  Mat b;
};

/// Caller-owned scratch for the single-row inference path (same ping-pong,
/// vector-sized).
struct MlpVecScratch {
  Vec a;
  Vec b;
};

/// Multilayer perceptron with ReLU between layers and a linear final layer.
/// This is the paper's "latency predictor" head and is also reused inside
/// the QPPNet neural units.
class Mlp {
 public:
  Mlp() = default;
  /// dims = {in, hidden..., out}.
  Mlp(const std::vector<int>& dims, Rng* rng);

  Vec Forward(const Vec& x, MlpCache* cache) const;
  /// Inference-only forward. Internally ping-pongs two buffers across
  /// layers, so it no longer allocates one Vec per layer; use ForwardInto
  /// with caller scratch to drop even those.
  Vec Forward(const Vec& x) const;
  /// Single-row inference into caller buffers: no allocation once scratch
  /// is warm. `out` and `scratch` must not alias `x`. Bit-identical to
  /// Forward(x).
  void ForwardInto(const Vec& x, Vec* out, MlpVecScratch* scratch) const;
  /// Batched inference: runs every row of `x` through the network with
  /// in-place ReLU between layers, returning a reference to the scratch
  /// matrix holding the final activations (x.rows x out_dim). Row i is
  /// bit-identical to Forward(row i). No allocation once scratch is warm.
  const Mat& ForwardBatch(const Mat& x, MlpScratch* scratch) const;

  /// Accumulates parameter gradients; returns dL/dx.
  Vec Backward(const MlpCache& cache, const Vec& dout);

  void AppendParams(std::vector<Param*>* out);

  int in_dim() const { return layers_.empty() ? 0 : layers_.front().in_dim(); }
  int out_dim() const {
    return layers_.empty() ? 0 : layers_.back().out_dim();
  }

 private:
  std::vector<Linear> layers_;
};

}  // namespace fgro

#endif  // FGRO_NN_MLP_H_
