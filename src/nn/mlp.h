#ifndef FGRO_NN_MLP_H_
#define FGRO_NN_MLP_H_

#include <vector>

#include "nn/linear.h"

namespace fgro {

/// Forward-pass cache needed by Backward: the input to each layer plus each
/// layer's post-activation output.
struct MlpCache {
  std::vector<Vec> layer_inputs;   // one per layer
  std::vector<Vec> layer_outputs;  // post-activation (last layer: raw)
};

/// Multilayer perceptron with ReLU between layers and a linear final layer.
/// This is the paper's "latency predictor" head and is also reused inside
/// the QPPNet neural units.
class Mlp {
 public:
  Mlp() = default;
  /// dims = {in, hidden..., out}.
  Mlp(const std::vector<int>& dims, Rng* rng);

  Vec Forward(const Vec& x, MlpCache* cache) const;
  /// Inference-only forward without cache allocation churn.
  Vec Forward(const Vec& x) const;

  /// Accumulates parameter gradients; returns dL/dx.
  Vec Backward(const MlpCache& cache, const Vec& dout);

  void AppendParams(std::vector<Param*>* out);

  int in_dim() const { return layers_.empty() ? 0 : layers_.front().in_dim(); }
  int out_dim() const {
    return layers_.empty() ? 0 : layers_.back().out_dim();
  }

 private:
  std::vector<Linear> layers_;
};

}  // namespace fgro

#endif  // FGRO_NN_MLP_H_
