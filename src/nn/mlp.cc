#include "nn/mlp.h"

#include "common/logging.h"

namespace fgro {

Mlp::Mlp(const std::vector<int>& dims, Rng* rng) {
  FGRO_CHECK(dims.size() >= 2);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Vec Mlp::Forward(const Vec& x, MlpCache* cache) const {
  cache->layer_inputs.clear();
  cache->layer_outputs.clear();
  Vec h = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    cache->layer_inputs.push_back(h);
    Vec z = layers_[l].Forward(h);
    if (l + 1 < layers_.size()) z = Relu(z);
    cache->layer_outputs.push_back(z);
    h = std::move(z);
  }
  return h;
}

Vec Mlp::Forward(const Vec& x) const {
  MlpVecScratch scratch;
  Vec out;
  ForwardInto(x, &out, &scratch);
  return out;
}

void Mlp::ForwardInto(const Vec& x, Vec* out, MlpVecScratch* scratch) const {
  FGRO_CHECK(!layers_.empty());
  const Vec* in = &x;
  const size_t last = layers_.size() - 1;
  for (size_t l = 0; l < layers_.size(); ++l) {
    Vec* dst = l == last ? out
                         : (in == &scratch->a ? &scratch->b : &scratch->a);
    layers_[l].ForwardInto(*in, dst);
    if (l != last) {
      for (double& v : *dst) v = v > 0.0 ? v : 0.0;
    }
    in = dst;
  }
}

const Mat& Mlp::ForwardBatch(const Mat& x, MlpScratch* scratch) const {
  FGRO_CHECK(!layers_.empty());
  const Mat* in = &x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    Mat* dst = in == &scratch->a ? &scratch->b : &scratch->a;
    layers_[l].ForwardBatch(*in, dst);
    if (l + 1 < layers_.size()) ReluInPlace(dst);
    in = dst;
  }
  return *in;
}

Vec Mlp::Backward(const MlpCache& cache, const Vec& dout) {
  Vec grad = dout;
  for (size_t l = layers_.size(); l-- > 0;) {
    if (l + 1 < layers_.size()) {
      grad = ReluBackward(cache.layer_outputs[l], grad);
    }
    grad = layers_[l].Backward(cache.layer_inputs[l], grad);
  }
  return grad;
}

void Mlp::AppendParams(std::vector<Param*>* out) {
  for (Linear& layer : layers_) layer.AppendParams(out);
}

}  // namespace fgro
