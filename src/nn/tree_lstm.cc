#include "nn/tree_lstm.h"

#include <functional>

#include "common/logging.h"

namespace fgro {

TreeLstm::TreeLstm(int in_dim, int hidden_dim, Rng* rng)
    : hidden_dim_(hidden_dim),
      wi_(in_dim, hidden_dim, rng), ui_(hidden_dim, hidden_dim, rng),
      wo_(in_dim, hidden_dim, rng), uo_(hidden_dim, hidden_dim, rng),
      wu_(in_dim, hidden_dim, rng), uu_(hidden_dim, hidden_dim, rng),
      wf_(in_dim, hidden_dim, rng), uf_(hidden_dim, hidden_dim, rng) {}

Vec TreeLstm::Forward(const PlanGraph& tree, int root, Cache* cache) const {
  const int n = tree.size();
  cache->graph = &tree;
  cache->root = root;
  cache->nodes.assign(static_cast<size_t>(n), NodeCache{});
  cache->order.clear();

  // Bottom-up post-order traversal from the root.
  std::function<void(int)> visit = [&](int j) {
    for (int c : tree.children[static_cast<size_t>(j)]) visit(c);
    cache->order.push_back(j);

    NodeCache& nc = cache->nodes[static_cast<size_t>(j)];
    nc.x = tree.node_features[static_cast<size_t>(j)];
    nc.h_sum.assign(static_cast<size_t>(hidden_dim_), 0.0);
    for (int c : tree.children[static_cast<size_t>(j)]) {
      const Vec& hc = cache->nodes[static_cast<size_t>(c)].h;
      for (int k = 0; k < hidden_dim_; ++k) {
        nc.h_sum[static_cast<size_t>(k)] += hc[static_cast<size_t>(k)];
      }
    }

    Vec zi = wi_.Forward(nc.x), zhi = ui_.Forward(nc.h_sum);
    Vec zo = wo_.Forward(nc.x), zho = uo_.Forward(nc.h_sum);
    Vec zu = wu_.Forward(nc.x), zhu = uu_.Forward(nc.h_sum);
    nc.i.resize(static_cast<size_t>(hidden_dim_));
    nc.o.resize(static_cast<size_t>(hidden_dim_));
    nc.u.resize(static_cast<size_t>(hidden_dim_));
    for (int k = 0; k < hidden_dim_; ++k) {
      size_t kk = static_cast<size_t>(k);
      nc.i[kk] = Sigmoid(zi[kk] + zhi[kk]);
      nc.o[kk] = Sigmoid(zo[kk] + zho[kk]);
      nc.u[kk] = Tanh(zu[kk] + zhu[kk]);
    }

    nc.c.assign(static_cast<size_t>(hidden_dim_), 0.0);
    Vec zf = wf_.Forward(nc.x);
    nc.f.clear();
    for (int c : tree.children[static_cast<size_t>(j)]) {
      const NodeCache& child = cache->nodes[static_cast<size_t>(c)];
      Vec zhf = uf_.Forward(child.h);
      Vec f(static_cast<size_t>(hidden_dim_));
      for (int k = 0; k < hidden_dim_; ++k) {
        size_t kk = static_cast<size_t>(k);
        f[kk] = Sigmoid(zf[kk] + zhf[kk]);
        nc.c[kk] += f[kk] * child.c[kk];
      }
      nc.f.push_back(std::move(f));
    }
    nc.tanh_c.resize(static_cast<size_t>(hidden_dim_));
    nc.h.resize(static_cast<size_t>(hidden_dim_));
    for (int k = 0; k < hidden_dim_; ++k) {
      size_t kk = static_cast<size_t>(k);
      nc.c[kk] += nc.i[kk] * nc.u[kk];
      nc.tanh_c[kk] = Tanh(nc.c[kk]);
      nc.h[kk] = nc.o[kk] * nc.tanh_c[kk];
    }
  };
  visit(root);
  return cache->nodes[static_cast<size_t>(root)].h;
}

void TreeLstm::Backward(Cache& cache, const Vec& droot_h) {
  const PlanGraph& tree = *cache.graph;
  const int n = tree.size();
  std::vector<Vec> dh(static_cast<size_t>(n),
                      Vec(static_cast<size_t>(hidden_dim_), 0.0));
  std::vector<Vec> dc(static_cast<size_t>(n),
                      Vec(static_cast<size_t>(hidden_dim_), 0.0));
  dh[static_cast<size_t>(cache.root)] = droot_h;

  // Reverse of the bottom-up order = parents before children.
  for (size_t oi = cache.order.size(); oi-- > 0;) {
    int j = cache.order[oi];
    NodeCache& nc = cache.nodes[static_cast<size_t>(j)];
    const std::vector<int>& kids = tree.children[static_cast<size_t>(j)];
    Vec& dhj = dh[static_cast<size_t>(j)];
    Vec& dcj = dc[static_cast<size_t>(j)];

    Vec dpre_i(static_cast<size_t>(hidden_dim_));
    Vec dpre_o(static_cast<size_t>(hidden_dim_));
    Vec dpre_u(static_cast<size_t>(hidden_dim_));
    for (int k = 0; k < hidden_dim_; ++k) {
      size_t kk = static_cast<size_t>(k);
      // h = o * tanh(c)
      double do_ = dhj[kk] * nc.tanh_c[kk];
      dcj[kk] += dhj[kk] * nc.o[kk] * (1.0 - nc.tanh_c[kk] * nc.tanh_c[kk]);
      // c = i*u + sum f_k * c_k
      double di = dcj[kk] * nc.u[kk];
      double du = dcj[kk] * nc.i[kk];
      dpre_i[kk] = di * nc.i[kk] * (1.0 - nc.i[kk]);
      dpre_o[kk] = do_ * nc.o[kk] * (1.0 - nc.o[kk]);
      dpre_u[kk] = du * (1.0 - nc.u[kk] * nc.u[kk]);
    }

    Vec dx(nc.x.size(), 0.0);
    Vec dh_sum(static_cast<size_t>(hidden_dim_), 0.0);
    wi_.BackwardInto(nc.x, dpre_i, &dx);
    ui_.BackwardInto(nc.h_sum, dpre_i, &dh_sum);
    wo_.BackwardInto(nc.x, dpre_o, &dx);
    uo_.BackwardInto(nc.h_sum, dpre_o, &dh_sum);
    wu_.BackwardInto(nc.x, dpre_u, &dx);
    uu_.BackwardInto(nc.h_sum, dpre_u, &dh_sum);

    for (size_t ci = 0; ci < kids.size(); ++ci) {
      int c = kids[ci];
      NodeCache& child = cache.nodes[static_cast<size_t>(c)];
      Vec dpre_f(static_cast<size_t>(hidden_dim_));
      for (int k = 0; k < hidden_dim_; ++k) {
        size_t kk = static_cast<size_t>(k);
        double df = dcj[kk] * child.c[kk];
        dc[static_cast<size_t>(c)][kk] += dcj[kk] * nc.f[ci][kk];
        dpre_f[kk] = df * nc.f[ci][kk] * (1.0 - nc.f[ci][kk]);
        // child-sum: h_sum gradient flows to each child hidden state.
        dh[static_cast<size_t>(c)][kk] += dh_sum[kk];
      }
      wf_.BackwardInto(nc.x, dpre_f, &dx);
      uf_.BackwardInto(child.h, dpre_f, &dh[static_cast<size_t>(c)]);
    }
    // dx (input-feature gradient) is discarded: features are data.
  }
}

void TreeLstm::AppendParams(std::vector<Param*>* out) {
  for (Linear* l : {&wi_, &ui_, &wo_, &uo_, &wu_, &uu_, &wf_, &uf_}) {
    l->AppendParams(out);
  }
}

}  // namespace fgro
