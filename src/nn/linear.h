#ifndef FGRO_NN_LINEAR_H_
#define FGRO_NN_LINEAR_H_

#include <vector>

#include "nn/mat.h"
#include "nn/param.h"

namespace fgro {

/// y = W x + b with manual backprop. Forward is const; Backward accumulates
/// gradients into the Params and returns dL/dx.
class Linear {
 public:
  Linear() = default;
  Linear(int in_dim, int out_dim, Rng* rng);

  Vec Forward(const Vec& x) const;
  /// Single-row forward into a caller-owned buffer (resized to out_dim, no
  /// allocation once warm). `y` must not alias `x`. Bit-identical to
  /// Forward: same per-element accumulation order.
  void ForwardInto(const Vec& x, Vec* y) const;
  /// Batched forward: y = x W^T + b over `x.rows` candidate rows, written
  /// into the caller-provided scratch `y` (resized, capacity reused). The
  /// kernel blocks over batch rows — each output element keeps the exact
  /// ascending-k accumulation of the scalar path, so results are
  /// bit-identical to calling Forward row by row; the blocking only
  /// interleaves *independent* accumulator chains for ILP. `y` must not
  /// alias `x`.
  void ForwardBatch(const Mat& x, Mat* y) const;
  /// `x` must be the same input passed to Forward.
  Vec Backward(const Vec& x, const Vec& dy);
  /// Accumulates into an existing dx instead of allocating (hot paths).
  void BackwardInto(const Vec& x, const Vec& dy, Vec* dx);

  void AppendParams(std::vector<Param*>* out) {
    out->push_back(&weight_);
    out->push_back(&bias_);
  }

  int in_dim() const { return weight_.cols; }
  int out_dim() const { return weight_.rows; }

 private:
  Param weight_;  // out x in
  Param bias_;    // out x 1
};

/// Elementwise activations used across the models.
Vec Relu(const Vec& x);
/// dL/dx given post-activation y = relu(x) and upstream dy.
Vec ReluBackward(const Vec& y, const Vec& dy);

double Sigmoid(double x);
double Tanh(double x);

}  // namespace fgro

#endif  // FGRO_NN_LINEAR_H_
