#ifndef FGRO_NN_QPPNET_H_
#define FGRO_NN_QPPNET_H_

#include <vector>

#include "nn/graph_embedder.h"
#include "nn/mlp.h"

namespace fgro {

/// QPPNet stand-in (Marcus & Papaemmanouil): one neural unit per operator
/// type, composed along the (DAG-to-tree converted) plan. Each unit maps
/// [node features, aggregated child data vector] to [latency, data vector];
/// the prediction is the root unit's latency channel. Children are
/// aggregated by summation so any arity (including the artificial root) is
/// supported. Unlike the original we train only on the root latency — the
/// per-operator latencies the original supervises on are folded into the
/// trace's op_seconds and used elsewhere for error attribution.
class QppNet {
 public:
  QppNet() = default;
  /// `num_types` operator units plus one extra unit for the artificial root.
  QppNet(int num_types, int feat_dim, int data_dim, int hidden_dim, Rng* rng);

  struct NodeCache {
    Vec input;          // [features, child data sum]
    MlpCache mlp_cache;
    Vec raw_out;        // pre-ReLU unit output
    Vec data;           // ReLU'd data channels
    int unit = 0;
  };

  struct Cache {
    std::vector<NodeCache> nodes;
    std::vector<int> order;  // bottom-up
    const PlanGraph* graph = nullptr;
    int root = 0;
  };

  /// Returns the predicted (log-)latency from the root unit. `context` is
  /// an optional vector broadcast into every unit's input (the MCI
  /// retrofit's Channels 2-5); node features plus context must total
  /// feat_dim.
  double Forward(const PlanGraph& tree, int root, Cache* cache,
                 const Vec* context = nullptr) const;
  void Backward(Cache& cache, double dprediction);

  void AppendParams(std::vector<Param*>* out);
  int data_dim() const { return data_dim_; }

 private:
  int UnitIndex(int node_type) const;

  int feat_dim_ = 0;
  int data_dim_ = 0;
  std::vector<Mlp> units_;  // one per operator type + artificial root
};

}  // namespace fgro

#endif  // FGRO_NN_QPPNET_H_
