#ifndef FGRO_NN_TREE_LSTM_H_
#define FGRO_NN_TREE_LSTM_H_

#include <vector>

#include "nn/graph_embedder.h"
#include "nn/linear.h"

namespace fgro {

/// Child-sum Tree-LSTM (Tai et al.), the plan embedder used by the TLSTM
/// baseline. Consumes a PlanGraph that must be a tree (each node appears as
/// a child of at most one parent — the DAG-to-tree conversion guarantees
/// this); the embedding is the root's hidden state.
class TreeLstm {
 public:
  TreeLstm() = default;
  TreeLstm(int in_dim, int hidden_dim, Rng* rng);

  struct NodeCache {
    Vec x;       // input features
    Vec h_sum;   // sum of child hidden states
    Vec i, o, u; // gate activations
    std::vector<Vec> f;  // forget gate per child
    Vec c, tanh_c, h;
  };

  struct Cache {
    std::vector<NodeCache> nodes;
    std::vector<int> order;  // bottom-up evaluation order
    const PlanGraph* graph = nullptr;
    int root = 0;
  };

  /// Returns the root hidden state. `root` is the tree's root node index.
  Vec Forward(const PlanGraph& tree, int root, Cache* cache) const;
  void Backward(Cache& cache, const Vec& droot_h);

  void AppendParams(std::vector<Param*>* out);
  int out_dim() const { return hidden_dim_; }

 private:
  int hidden_dim_ = 0;
  // W* act on the node input x (with bias); U* act on hidden states
  // (bias folded into the W side is fine for our purposes).
  Linear wi_, ui_;
  Linear wo_, uo_;
  Linear wu_, uu_;
  Linear wf_, uf_;
};

}  // namespace fgro

#endif  // FGRO_NN_TREE_LSTM_H_
