#ifndef FGRO_NN_MAT_H_
#define FGRO_NN_MAT_H_

#include "nn/param.h"

namespace fgro {

/// Dense row-major matrix used by the batched inference engine: one row per
/// candidate, one column per feature/activation. Resize() keeps the backing
/// capacity, so a scratch Mat reused across batches stops allocating after
/// the first (largest) batch — the zero-allocation contract of the batched
/// forward paths.
struct Mat {
  int rows = 0;
  int cols = 0;
  Vec data;  // rows * cols, row-major

  void Resize(int r, int c) {
    rows = r;
    cols = c;
    data.resize(static_cast<size_t>(r) * static_cast<size_t>(c));
  }

  double* Row(int r) {
    return data.data() + static_cast<size_t>(r) * static_cast<size_t>(cols);
  }
  const double* Row(int r) const {
    return data.data() + static_cast<size_t>(r) * static_cast<size_t>(cols);
  }
};

/// In-place ReLU over a whole activation matrix (between batched layers).
inline void ReluInPlace(Mat* m) {
  for (double& v : m->data) v = v > 0.0 ? v : 0.0;
}

}  // namespace fgro

#endif  // FGRO_NN_MAT_H_
