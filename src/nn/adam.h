#ifndef FGRO_NN_ADAM_H_
#define FGRO_NN_ADAM_H_

#include <vector>

#include "nn/param.h"

namespace fgro {

/// Adam optimizer over a flat list of Params. Gradients are expected to be
/// accumulated (summed) over the minibatch; Step() scales by 1/batch_size.
class Adam {
 public:
  struct Options {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
    double grad_clip = 5.0;  // per-element clip after batch averaging
  };

  Adam() = default;
  explicit Adam(Options options) : options_(options) {}

  void Step(const std::vector<Param*>& params, int batch_size);
  void ZeroGrad(const std::vector<Param*>& params);

  void set_lr(double lr) { options_.lr = lr; }
  double lr() const { return options_.lr; }

 private:
  Options options_;
  long t_ = 0;
};

}  // namespace fgro

#endif  // FGRO_NN_ADAM_H_
