#ifndef FGRO_NN_PARAM_H_
#define FGRO_NN_PARAM_H_

#include <vector>

#include "common/rng.h"

namespace fgro {

using Vec = std::vector<double>;

/// One learnable tensor (matrix or bias vector) with its gradient and Adam
/// moment buffers. All neural modules expose their Params so a single
/// optimizer can step them.
struct Param {
  int rows = 0;
  int cols = 0;  // 1 for bias vectors
  Vec value;
  Vec grad;
  Vec m;  // Adam first moment
  Vec v;  // Adam second moment

  void Resize(int r, int c) {
    rows = r;
    cols = c;
    size_t n = static_cast<size_t>(r) * static_cast<size_t>(c);
    value.assign(n, 0.0);
    grad.assign(n, 0.0);
    m.assign(n, 0.0);
    v.assign(n, 0.0);
  }

  /// Xavier/Glorot-style uniform init.
  void InitXavier(Rng* rng) {
    double scale = std::sqrt(6.0 / (rows + cols));
    for (double& w : value) w = rng->Uniform(-scale, scale);
  }

  void ZeroGrad() { std::fill(grad.begin(), grad.end(), 0.0); }

  double& at(int r, int c) {
    return value[static_cast<size_t>(r) * static_cast<size_t>(cols) +
                 static_cast<size_t>(c)];
  }
  double at(int r, int c) const {
    return value[static_cast<size_t>(r) * static_cast<size_t>(cols) +
                 static_cast<size_t>(c)];
  }
  double& grad_at(int r, int c) {
    return grad[static_cast<size_t>(r) * static_cast<size_t>(cols) +
                static_cast<size_t>(c)];
  }
};

}  // namespace fgro

#endif  // FGRO_NN_PARAM_H_
