#include "nn/graph_embedder.h"

#include "common/logging.h"

namespace fgro {

GraphEmbedder::GraphEmbedder(int in_dim, int hidden_dim, int num_layers,
                             Rng* rng)
    : hidden_dim_(hidden_dim), input_(in_dim, hidden_dim, rng) {
  layers_.reserve(static_cast<size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l) {
    layers_.push_back(MessageLayer{Linear(hidden_dim, hidden_dim, rng),
                                   Linear(hidden_dim, hidden_dim, rng),
                                   Linear(hidden_dim, hidden_dim, rng)});
  }
}

Vec GraphEmbedder::Forward(const PlanGraph& graph, Cache* cache) const {
  const int n = graph.size();
  FGRO_CHECK(n > 0);
  cache->graph = &graph;
  cache->h.assign(layers_.size() + 1, {});
  cache->child_means.assign(layers_.size(), {});
  cache->parent_means.assign(layers_.size(), {});

  // Reverse adjacency.
  cache->parents.assign(static_cast<size_t>(n), {});
  for (int i = 0; i < n; ++i) {
    for (int c : graph.children[static_cast<size_t>(i)]) {
      cache->parents[static_cast<size_t>(c)].push_back(i);
    }
  }

  // Input projection.
  cache->h[0].resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    cache->h[0][static_cast<size_t>(i)] =
        Relu(input_.Forward(graph.node_features[static_cast<size_t>(i)]));
  }

  const Vec zeros(static_cast<size_t>(hidden_dim_), 0.0);
  auto mean_of = [&](const std::vector<Vec>& h,
                     const std::vector<int>& ids) -> Vec {
    if (ids.empty()) return zeros;
    Vec m(static_cast<size_t>(hidden_dim_), 0.0);
    for (int j : ids) {
      const Vec& hj = h[static_cast<size_t>(j)];
      for (int k = 0; k < hidden_dim_; ++k) {
        m[static_cast<size_t>(k)] += hj[static_cast<size_t>(k)];
      }
    }
    for (double& x : m) x /= static_cast<double>(ids.size());
    return m;
  };

  for (size_t l = 0; l < layers_.size(); ++l) {
    const std::vector<Vec>& prev = cache->h[l];
    cache->child_means[l].resize(static_cast<size_t>(n));
    cache->parent_means[l].resize(static_cast<size_t>(n));
    cache->h[l + 1].resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Vec cm = mean_of(prev, graph.children[static_cast<size_t>(i)]);
      Vec pm = mean_of(prev, cache->parents[static_cast<size_t>(i)]);
      Vec pre = layers_[l].self.Forward(prev[static_cast<size_t>(i)]);
      Vec from_child = layers_[l].child.Forward(cm);
      Vec from_parent = layers_[l].parent.Forward(pm);
      for (int k = 0; k < hidden_dim_; ++k) {
        pre[static_cast<size_t>(k)] += from_child[static_cast<size_t>(k)] +
                                       from_parent[static_cast<size_t>(k)];
      }
      cache->h[l + 1][static_cast<size_t>(i)] = Relu(pre);
      cache->child_means[l][static_cast<size_t>(i)] = std::move(cm);
      cache->parent_means[l][static_cast<size_t>(i)] = std::move(pm);
    }
  }

  // Mean-pool readout.
  Vec emb(static_cast<size_t>(hidden_dim_), 0.0);
  const std::vector<Vec>& last = cache->h.back();
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < hidden_dim_; ++k) {
      emb[static_cast<size_t>(k)] += last[static_cast<size_t>(i)][static_cast<size_t>(k)];
    }
  }
  for (double& x : emb) x /= static_cast<double>(n);
  return emb;
}

void GraphEmbedder::Backward(Cache& cache, const Vec& dembedding) {
  const PlanGraph& graph = *cache.graph;
  const int n = graph.size();

  // d(readout): mean-pool spreads the gradient uniformly.
  std::vector<Vec> dh(static_cast<size_t>(n),
                      Vec(static_cast<size_t>(hidden_dim_), 0.0));
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < hidden_dim_; ++k) {
      dh[static_cast<size_t>(i)][static_cast<size_t>(k)] =
          dembedding[static_cast<size_t>(k)] / static_cast<double>(n);
    }
  }

  for (size_t l = layers_.size(); l-- > 0;) {
    std::vector<Vec> dprev(static_cast<size_t>(n),
                           Vec(static_cast<size_t>(hidden_dim_), 0.0));
    for (int i = 0; i < n; ++i) {
      // Through the ReLU of layer l+1's output.
      Vec dpre = ReluBackward(cache.h[l + 1][static_cast<size_t>(i)],
                              dh[static_cast<size_t>(i)]);
      // Self path.
      layers_[l].self.BackwardInto(cache.h[l][static_cast<size_t>(i)], dpre,
                                   &dprev[static_cast<size_t>(i)]);
      // Child-mean path: gradient splits evenly over children.
      const std::vector<int>& kids = graph.children[static_cast<size_t>(i)];
      if (!kids.empty()) {
        Vec dcm(static_cast<size_t>(hidden_dim_), 0.0);
        layers_[l].child.BackwardInto(
            cache.child_means[l][static_cast<size_t>(i)], dpre, &dcm);
        for (int c : kids) {
          for (int k = 0; k < hidden_dim_; ++k) {
            dprev[static_cast<size_t>(c)][static_cast<size_t>(k)] +=
                dcm[static_cast<size_t>(k)] /
                static_cast<double>(kids.size());
          }
        }
      } else {
        Vec scratch(static_cast<size_t>(hidden_dim_), 0.0);
        layers_[l].child.BackwardInto(
            cache.child_means[l][static_cast<size_t>(i)], dpre, &scratch);
      }
      // Parent-mean path.
      const std::vector<int>& pars = cache.parents[static_cast<size_t>(i)];
      if (!pars.empty()) {
        Vec dpm(static_cast<size_t>(hidden_dim_), 0.0);
        layers_[l].parent.BackwardInto(
            cache.parent_means[l][static_cast<size_t>(i)], dpre, &dpm);
        for (int p : pars) {
          for (int k = 0; k < hidden_dim_; ++k) {
            dprev[static_cast<size_t>(p)][static_cast<size_t>(k)] +=
                dpm[static_cast<size_t>(k)] / static_cast<double>(pars.size());
          }
        }
      } else {
        Vec scratch(static_cast<size_t>(hidden_dim_), 0.0);
        layers_[l].parent.BackwardInto(
            cache.parent_means[l][static_cast<size_t>(i)], dpre, &scratch);
      }
    }
    dh = std::move(dprev);
  }

  // Input projection; node features are data, their gradient is discarded.
  for (int i = 0; i < n; ++i) {
    Vec dpre = ReluBackward(cache.h[0][static_cast<size_t>(i)],
                            dh[static_cast<size_t>(i)]);
    Vec scratch(graph.node_features[static_cast<size_t>(i)].size(), 0.0);
    input_.BackwardInto(graph.node_features[static_cast<size_t>(i)], dpre,
                        &scratch);
  }
}

void GraphEmbedder::AppendParams(std::vector<Param*>* out) {
  input_.AppendParams(out);
  for (MessageLayer& layer : layers_) {
    layer.self.AppendParams(out);
    layer.child.AppendParams(out);
    layer.parent.AppendParams(out);
  }
}

}  // namespace fgro
