#ifndef FGRO_NN_GRAPH_EMBEDDER_H_
#define FGRO_NN_GRAPH_EMBEDDER_H_

#include <vector>

#include "nn/linear.h"

namespace fgro {

/// Generic plan-graph input consumed by every embedder. For DAG models the
/// `children` lists come straight from the stage; for tree models they come
/// from the DAG-to-tree conversion. `node_types` selects QPPNet units
/// (kArtificialRoot = -1 maps to a dedicated unit).
struct PlanGraph {
  std::vector<Vec> node_features;
  std::vector<std::vector<int>> children;
  std::vector<int> node_types;

  int size() const { return static_cast<int>(node_features.size()); }
};

/// The GTN stand-in: a message-passing network over the operator DAG. Each
/// layer mixes a node's own state with the mean of its children's and
/// parents' states (so information flows both with and against the data
/// flow, which is what lets the embedding capture DAG context); the stage
/// embedding is the mean over final node states.
class GraphEmbedder {
 public:
  GraphEmbedder() = default;
  GraphEmbedder(int in_dim, int hidden_dim, int num_layers, Rng* rng);

  struct Cache {
    // h[0] = post-input-projection states; h[l+1] = after message layer l.
    std::vector<std::vector<Vec>> h;
    std::vector<std::vector<Vec>> child_means;   // per message layer
    std::vector<std::vector<Vec>> parent_means;  // per message layer
    std::vector<std::vector<int>> parents;
    const PlanGraph* graph = nullptr;
  };

  Vec Forward(const PlanGraph& graph, Cache* cache) const;
  /// Accumulates parameter gradients given dL/d(embedding).
  void Backward(Cache& cache, const Vec& dembedding);

  void AppendParams(std::vector<Param*>* out);

  int out_dim() const { return hidden_dim_; }
  int in_dim() const { return input_.in_dim(); }

 private:
  struct MessageLayer {
    Linear self;
    Linear child;
    Linear parent;
  };

  int hidden_dim_ = 0;
  Linear input_;
  std::vector<MessageLayer> layers_;
};

}  // namespace fgro

#endif  // FGRO_NN_GRAPH_EMBEDDER_H_
