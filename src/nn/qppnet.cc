#include "nn/qppnet.h"

#include <functional>

#include "common/logging.h"

namespace fgro {

QppNet::QppNet(int num_types, int feat_dim, int data_dim, int hidden_dim,
               Rng* rng)
    : feat_dim_(feat_dim), data_dim_(data_dim) {
  units_.reserve(static_cast<size_t>(num_types) + 1);
  for (int t = 0; t <= num_types; ++t) {
    units_.emplace_back(
        std::vector<int>{feat_dim + data_dim, hidden_dim, data_dim + 1}, rng);
  }
}

int QppNet::UnitIndex(int node_type) const {
  if (node_type < 0 || node_type >= static_cast<int>(units_.size()) - 1) {
    return static_cast<int>(units_.size()) - 1;  // artificial root unit
  }
  return node_type;
}

double QppNet::Forward(const PlanGraph& tree, int root, Cache* cache,
                       const Vec* context) const {
  cache->graph = &tree;
  cache->root = root;
  cache->nodes.assign(tree.node_features.size(), NodeCache{});
  cache->order.clear();

  std::function<void(int)> visit = [&](int j) {
    for (int c : tree.children[static_cast<size_t>(j)]) visit(c);
    cache->order.push_back(j);

    NodeCache& nc = cache->nodes[static_cast<size_t>(j)];
    nc.unit = UnitIndex(tree.node_types[static_cast<size_t>(j)]);
    nc.input.assign(static_cast<size_t>(feat_dim_ + data_dim_), 0.0);
    const Vec& feats = tree.node_features[static_cast<size_t>(j)];
    const size_t ctx_dim = context != nullptr ? context->size() : 0;
    FGRO_CHECK(feats.size() + ctx_dim == static_cast<size_t>(feat_dim_));
    std::copy(feats.begin(), feats.end(), nc.input.begin());
    if (context != nullptr) {
      std::copy(context->begin(), context->end(),
                nc.input.begin() + static_cast<long>(feats.size()));
    }
    for (int c : tree.children[static_cast<size_t>(j)]) {
      const Vec& cd = cache->nodes[static_cast<size_t>(c)].data;
      for (int k = 0; k < data_dim_; ++k) {
        nc.input[static_cast<size_t>(feat_dim_ + k)] +=
            cd[static_cast<size_t>(k)];
      }
    }
    nc.raw_out = units_[static_cast<size_t>(nc.unit)].Forward(nc.input,
                                                              &nc.mlp_cache);
    // Channel 0 is the latency output (linear); the rest is the ReLU'd data
    // vector handed to the parent.
    nc.data.resize(static_cast<size_t>(data_dim_));
    for (int k = 0; k < data_dim_; ++k) {
      double v = nc.raw_out[static_cast<size_t>(k + 1)];
      nc.data[static_cast<size_t>(k)] = v > 0.0 ? v : 0.0;
    }
  };
  visit(root);
  return cache->nodes[static_cast<size_t>(root)].raw_out[0];
}

void QppNet::Backward(Cache& cache, double dprediction) {
  const PlanGraph& tree = *cache.graph;
  std::vector<Vec> ddata(cache.nodes.size(),
                         Vec(static_cast<size_t>(data_dim_), 0.0));
  // Parents before children.
  for (size_t oi = cache.order.size(); oi-- > 0;) {
    int j = cache.order[oi];
    NodeCache& nc = cache.nodes[static_cast<size_t>(j)];
    Vec dout(static_cast<size_t>(data_dim_ + 1), 0.0);
    if (j == cache.root) dout[0] = dprediction;
    for (int k = 0; k < data_dim_; ++k) {
      // ReLU on the data channels.
      if (nc.raw_out[static_cast<size_t>(k + 1)] > 0.0) {
        dout[static_cast<size_t>(k + 1)] =
            ddata[static_cast<size_t>(j)][static_cast<size_t>(k)];
      }
    }
    Vec dinput =
        units_[static_cast<size_t>(nc.unit)].Backward(nc.mlp_cache, dout);
    // The child-data slice of dinput flows to every child (sum aggregation
    // passes the gradient through unchanged).
    for (int c : tree.children[static_cast<size_t>(j)]) {
      for (int k = 0; k < data_dim_; ++k) {
        ddata[static_cast<size_t>(c)][static_cast<size_t>(k)] +=
            dinput[static_cast<size_t>(feat_dim_ + k)];
      }
    }
  }
}

void QppNet::AppendParams(std::vector<Param*>* out) {
  for (Mlp& unit : units_) unit.AppendParams(out);
}

}  // namespace fgro
