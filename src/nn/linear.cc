#include "nn/linear.h"

#include <cmath>

#include "common/logging.h"

namespace fgro {

Linear::Linear(int in_dim, int out_dim, Rng* rng) {
  weight_.Resize(out_dim, in_dim);
  weight_.InitXavier(rng);
  bias_.Resize(out_dim, 1);
}

Vec Linear::Forward(const Vec& x) const {
  FGRO_CHECK(static_cast<int>(x.size()) == weight_.cols)
      << x.size() << " vs " << weight_.cols;
  Vec y(static_cast<size_t>(weight_.rows));
  for (int r = 0; r < weight_.rows; ++r) {
    double acc = bias_.value[static_cast<size_t>(r)];
    const double* wr =
        &weight_.value[static_cast<size_t>(r) * static_cast<size_t>(weight_.cols)];
    for (int c = 0; c < weight_.cols; ++c) acc += wr[c] * x[static_cast<size_t>(c)];
    y[static_cast<size_t>(r)] = acc;
  }
  return y;
}

void Linear::BackwardInto(const Vec& x, const Vec& dy, Vec* dx) {
  for (int r = 0; r < weight_.rows; ++r) {
    const double g = dy[static_cast<size_t>(r)];
    if (g == 0.0) continue;
    double* gw = &weight_.grad[static_cast<size_t>(r) *
                               static_cast<size_t>(weight_.cols)];
    const double* wr = &weight_.value[static_cast<size_t>(r) *
                                      static_cast<size_t>(weight_.cols)];
    for (int c = 0; c < weight_.cols; ++c) {
      gw[c] += g * x[static_cast<size_t>(c)];
      (*dx)[static_cast<size_t>(c)] += g * wr[c];
    }
    bias_.grad[static_cast<size_t>(r)] += g;
  }
}

Vec Linear::Backward(const Vec& x, const Vec& dy) {
  Vec dx(x.size(), 0.0);
  BackwardInto(x, dy, &dx);
  return dx;
}

Vec Relu(const Vec& x) {
  Vec y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = x[i] > 0.0 ? x[i] : 0.0;
  return y;
}

Vec ReluBackward(const Vec& y, const Vec& dy) {
  Vec dx(y.size());
  for (size_t i = 0; i < y.size(); ++i) dx[i] = y[i] > 0.0 ? dy[i] : 0.0;
  return dx;
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double Tanh(double x) { return std::tanh(x); }

}  // namespace fgro
