#include "nn/linear.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace fgro {

namespace {

#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__)
// Runtime ISA dispatch for the GEMM panel kernel: the portable binary keeps
// the x86-64 baseline (SSE2) as its default clone and upgrades to AVX2 or
// AVX-512 on hosts that have them. No clone enables FMA, and the build pins
// -ffp-contract=off, so every lane computes mul-then-add in the exact
// scalar order on every ISA — dispatch can never change a prediction bit.
#define FGRO_KERNEL_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#else
#define FGRO_KERNEL_CLONES
#endif

#if defined(__GNUC__) || defined(__clang__)
#define FGRO_HAVE_VEC 1
// 8 doubles per logical vector: one zmm under AVX-512, split into two ymm
// ops under AVX2 and four xmm ops at the SSE2 baseline by the compiler.
typedef double V8 __attribute__((vector_size(64)));

inline V8 LoadV8(const double* p) {
  V8 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// One 16-row panel block of y = x W^T + b. `panel` holds the 16 input
/// rows column-major (panel[c * 16 + lane] = feature c of row lane), so
/// each weight element is broadcast against 16 contiguous doubles — and
/// each weight row is streamed once per 16 batch rows. Lane `lane`
/// accumulates bias + sum over ascending c — the exact scalar-path chain;
/// the vector ops only run the 16 independent chains side by side.
FGRO_KERNEL_CLONES
void GemmPanelKernel(const double* panel, const double* w, const double* b,
                     int in, int out, double* const* y_rows) {
  for (int r = 0; r < out; ++r) {
    const double* wr = w + static_cast<size_t>(r) * static_cast<size_t>(in);
    V8 acc0 = {b[r], b[r], b[r], b[r], b[r], b[r], b[r], b[r]};
    V8 acc1 = acc0;
    const double* p = panel;
    for (int c = 0; c < in; ++c, p += 16) {
      const double wc = wr[c];
      const V8 wv = {wc, wc, wc, wc, wc, wc, wc, wc};
      acc0 += wv * LoadV8(p);
      acc1 += wv * LoadV8(p + 8);
    }
    double lanes[16];
    std::memcpy(lanes, &acc0, sizeof(acc0));
    std::memcpy(lanes + 8, &acc1, sizeof(acc1));
    for (int lane = 0; lane < 16; ++lane) y_rows[lane][r] = lanes[lane];
  }
}
#endif  // __GNUC__ || __clang__

}  // namespace

Linear::Linear(int in_dim, int out_dim, Rng* rng) {
  weight_.Resize(out_dim, in_dim);
  weight_.InitXavier(rng);
  bias_.Resize(out_dim, 1);
}

Vec Linear::Forward(const Vec& x) const {
  Vec y;
  ForwardInto(x, &y);
  return y;
}

void Linear::ForwardInto(const Vec& x, Vec* y) const {
  FGRO_CHECK(static_cast<int>(x.size()) == weight_.cols)
      << x.size() << " vs " << weight_.cols;
  y->resize(static_cast<size_t>(weight_.rows));
  for (int r = 0; r < weight_.rows; ++r) {
    double acc = bias_.value[static_cast<size_t>(r)];
    const double* wr =
        &weight_.value[static_cast<size_t>(r) * static_cast<size_t>(weight_.cols)];
    for (int c = 0; c < weight_.cols; ++c) acc += wr[c] * x[static_cast<size_t>(c)];
    (*y)[static_cast<size_t>(r)] = acc;
  }
}

void Linear::ForwardBatch(const Mat& x, Mat* y) const {
  FGRO_CHECK(x.cols == weight_.cols) << x.cols << " vs " << weight_.cols;
  const int in = weight_.cols;
  const int out = weight_.rows;
  y->Resize(x.rows, out);
  const double* w = weight_.value.data();
  const double* b = bias_.value.data();
  int i = 0;
#ifdef FGRO_HAVE_VEC
  // 16-row panels: each block's inputs are repacked column-major
  // (panel[c * 16 + lane] = row `i + lane`, feature c) so GemmPanelKernel
  // can run 16 independent accumulator chains in SIMD lanes. Bit-identity
  // constrains each chain's order, not the chains' interleaving, so the
  // lanes are legal; the remainder rows fall through to the blocks below.
  constexpr int kLanes = 16;
  static thread_local std::vector<double> panel;
  if (x.rows >= kLanes) {
    panel.resize(static_cast<size_t>(kLanes) * static_cast<size_t>(in));
    double* pd = panel.data();
    for (; i + kLanes <= x.rows; i += kLanes) {
      double* y_rows[kLanes];
      for (int lane = 0; lane < kLanes; ++lane) {
        const double* xr = x.Row(i + lane);
        for (int c = 0; c < in; ++c) {
          pd[static_cast<size_t>(c) * kLanes + static_cast<size_t>(lane)] =
              xr[c];
        }
        y_rows[lane] = y->Row(i + lane);
      }
      GemmPanelKernel(pd, w, b, in, out, y_rows);
    }
  }
#endif
  for (; i + 4 <= x.rows; i += 4) {
    const double* x0 = x.Row(i);
    const double* x1 = x.Row(i + 1);
    const double* x2 = x.Row(i + 2);
    const double* x3 = x.Row(i + 3);
    double* y0 = y->Row(i);
    double* y1 = y->Row(i + 1);
    double* y2 = y->Row(i + 2);
    double* y3 = y->Row(i + 3);
    for (int r = 0; r < out; ++r) {
      const double* wr = w + static_cast<size_t>(r) * static_cast<size_t>(in);
      double a0 = b[r], a1 = b[r], a2 = b[r], a3 = b[r];
      for (int c = 0; c < in; ++c) {
        const double wv = wr[c];
        a0 += wv * x0[c];
        a1 += wv * x1[c];
        a2 += wv * x2[c];
        a3 += wv * x3[c];
      }
      y0[r] = a0;
      y1[r] = a1;
      y2[r] = a2;
      y3[r] = a3;
    }
  }
  for (; i < x.rows; ++i) {
    const double* xr = x.Row(i);
    double* yr = y->Row(i);
    for (int r = 0; r < out; ++r) {
      const double* wr = w + static_cast<size_t>(r) * static_cast<size_t>(in);
      double acc = b[r];
      for (int c = 0; c < in; ++c) acc += wr[c] * xr[c];
      yr[r] = acc;
    }
  }
}

void Linear::BackwardInto(const Vec& x, const Vec& dy, Vec* dx) {
  for (int r = 0; r < weight_.rows; ++r) {
    const double g = dy[static_cast<size_t>(r)];
    if (g == 0.0) continue;
    double* gw = &weight_.grad[static_cast<size_t>(r) *
                               static_cast<size_t>(weight_.cols)];
    const double* wr = &weight_.value[static_cast<size_t>(r) *
                                      static_cast<size_t>(weight_.cols)];
    for (int c = 0; c < weight_.cols; ++c) {
      gw[c] += g * x[static_cast<size_t>(c)];
      (*dx)[static_cast<size_t>(c)] += g * wr[c];
    }
    bias_.grad[static_cast<size_t>(r)] += g;
  }
}

Vec Linear::Backward(const Vec& x, const Vec& dy) {
  Vec dx(x.size(), 0.0);
  BackwardInto(x, dy, &dx);
  return dx;
}

Vec Relu(const Vec& x) {
  Vec y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = x[i] > 0.0 ? x[i] : 0.0;
  return y;
}

Vec ReluBackward(const Vec& y, const Vec& dy) {
  Vec dx(y.size());
  for (size_t i = 0; i < y.size(); ++i) dx[i] = y[i] > 0.0 ? dy[i] : 0.0;
  return dx;
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double Tanh(double x) { return std::tanh(x); }

}  // namespace fgro
