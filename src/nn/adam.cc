#include "nn/adam.h"

#include <algorithm>
#include <cmath>

namespace fgro {

void Adam::Step(const std::vector<Param*>& params, int batch_size) {
  ++t_;
  const double inv_batch = 1.0 / std::max(1, batch_size);
  const double bias1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  for (Param* p : params) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      double g = p->grad[i] * inv_batch;
      g = std::clamp(g, -options_.grad_clip, options_.grad_clip);
      if (options_.weight_decay > 0.0) {
        g += options_.weight_decay * p->value[i];
      }
      p->m[i] = options_.beta1 * p->m[i] + (1.0 - options_.beta1) * g;
      p->v[i] = options_.beta2 * p->v[i] + (1.0 - options_.beta2) * g * g;
      double m_hat = p->m[i] / bias1;
      double v_hat = p->v[i] / bias2;
      p->value[i] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
  }
}

void Adam::ZeroGrad(const std::vector<Param*>& params) {
  for (Param* p : params) p->ZeroGrad();
}

}  // namespace fgro
