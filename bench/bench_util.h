#ifndef FGRO_BENCH_BENCH_UTIL_H_
#define FGRO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "model/metrics.h"
#include "sim/experiment_env.h"
#include "sim/ro_metrics.h"

namespace fgro {
namespace bench {

/// Standard experiment sizes. kHeadline reproduces the main tables;
/// kAblation keeps many-configuration sweeps affordable on one core.
enum class BenchScale { kHeadline, kAblation, kSmoke };

inline ExperimentEnv::Options DefaultOptions(WorkloadId workload,
                                             BenchScale scale) {
  ExperimentEnv::Options options;
  options.workload = workload;
  switch (scale) {
    case BenchScale::kHeadline:
      options.scale = 0.28;
      options.train.epochs = 14;
      options.train.max_train_samples = 14000;
      break;
    case BenchScale::kAblation:
      options.scale = 0.12;
      options.train.epochs = 7;
      options.train.max_train_samples = 7000;
      break;
    case BenchScale::kSmoke:
      options.scale = 0.05;
      options.train.epochs = 3;
      options.train.max_train_samples = 3000;
      break;
  }
  return options;
}

/// Computes the five Table-3 metrics of a trained environment's test set.
inline Result<ModelMetrics> TestMetrics(const ExperimentEnv& env) {
  Result<std::vector<double>> predictions = env.TestPredictions();
  if (!predictions.ok()) return predictions.status();
  Result<std::vector<double>> actuals = env.TestActuals();
  std::vector<double> rates;
  CostWeights weights;
  rates.reserve(env.split().test.size());
  for (int idx : env.split().test) {
    rates.push_back(weights.Rate(
        env.dataset().records[static_cast<size_t>(idx)].theta));
  }
  return ComputeModelMetrics(actuals.value(), predictions.value(), rates);
}

inline void PrintMetricsRow(const std::string& label, const ModelMetrics& m) {
  std::printf("  %-22s WMAPE=%5.1f%%  MdErr=%5.1f%%  95%%Err=%6.1f%%  "
              "Corr=%5.1f%%  GlbErr=%4.1f%%\n",
              label.c_str(), m.wmape * 100, m.mderr * 100, m.p95err * 100,
              m.corr * 100, m.glberr * 100);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRoRow(const std::string& label, const RoSummary& s,
                       const ReductionRates* rr = nullptr) {
  std::printf("  %-18s cov=%4.0f%%  Lat=%7.2fs  Lat(in)=%7.2fs  "
              "Cost=%8.4fm$  avgT=%7.1fms  maxT=%8.1fms",
              label.c_str(), s.coverage * 100, s.avg_latency,
              s.avg_latency_in, s.avg_cost * 1000, s.avg_solve_ms,
              s.max_solve_ms);
  if (rr != nullptr) {
    std::printf("  | RR lat(in)=%4.0f%% cost=%4.0f%%", rr->latency_in_rr * 100,
                rr->cost_rr * 100);
  }
  std::printf("\n");
}

/// One subworkload of Expt 8-10: a day's jobs replayed against a busy or an
/// idle cluster (Appendix F.9).
struct Subworkload {
  std::string name;
  std::vector<int> job_indices;
  ClusterOptions cluster;
};

/// Partitions a workload's jobs into per-day busy/idle subworkloads,
/// mirroring the paper's 29 subworkloads (one may come out empty and is
/// skipped, exactly like workload C's idle day 2).
inline std::vector<Subworkload> MakeSubworkloads(const Workload& workload) {
  std::map<int, std::vector<int>> by_day;
  for (size_t j = 0; j < workload.jobs.size(); ++j) {
    int day = static_cast<int>(workload.jobs[j].arrival_time / 86400.0);
    by_day[day].push_back(static_cast<int>(j));
  }
  std::vector<Subworkload> out;
  for (const auto& [day, jobs] : by_day) {
    if (jobs.empty()) continue;
    for (bool busy : {true, false}) {
      Subworkload sw;
      sw.name = "day" + std::to_string(day) + (busy ? "-busy" : "-idle");
      sw.job_indices = jobs;
      sw.cluster.num_machines = 96;
      sw.cluster.base_util_mean = busy ? 0.72 : 0.33;
      sw.cluster.seed = 100 + static_cast<uint64_t>(day) * 2 + (busy ? 1 : 0);
      out.push_back(std::move(sw));
    }
  }
  return out;
}

}  // namespace bench
}  // namespace fgro

#endif  // FGRO_BENCH_BENCH_UTIL_H_
