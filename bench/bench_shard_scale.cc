// POP-style sharded solve at cluster scale (DESIGN.md §15): partition the
// machines and instances of each stage decision into k shards, solve the
// shards independently, merge, and polish the critical instances. This
// bench is the scale-sweep acceptance harness for that path:
//
//   1. Near-linear solve-time scaling: on a >=10x fleet (1280 machines vs
//      the 128-machine seed experiments) with width-scaled stages, total
//      IPA(Org)+RAA solve time must drop near-linearly in k across
//      k in {1,2,4,8}. The sweep runs serially (no worker pool), so the
//      gate measures the algorithmic m*n/k win, not the box's core count.
//   2. Bounded quality: the sharded plan's WUN quality (3:1 latency:cost
//      under the model's own predictions) stays within a declared
//      tolerance of the k=1 exact solve, which remains the oracle.
//   3. Determinism: a sharded replay through the RO service is
//      byte-identical across service_threads {1,2,8}.
//
// The exit code enforces all three; --quick runs a smaller fleet with
// relaxed timing gates for CI smoke, --json_out= emits the sweep.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "hbo/hbo.h"
#include "obs/snapshot.h"
#include "optimizer/sharding.h"
#include "optimizer/stage_optimizer.h"
#include "service/ro_service.h"
#include "trace/workload_gen.h"

using namespace fgro;
using namespace fgro::bench;

namespace {

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::string FlagValue(int argc, char** argv, const char* prefix) {
  const std::size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
  }
  return "";
}

/// Model-predicted WUN ingredients of a decision: stage latency (max over
/// instances) and monetary cost (sum of predicted seconds * rate(theta)).
void PredictedLatencyCost(const SchedulingContext& context,
                          const StageDecision& decision, double* latency,
                          double* cost) {
  const LatencyModel& model = *context.model;
  const Cluster& cluster = *context.cluster;
  *latency = 0.0;
  *cost = 0.0;
  for (int i = 0; i < context.stage->instance_count(); ++i) {
    Result<LatencyModel::EmbeddedInstance> embedded =
        model.Embed(*context.stage, i);
    FGRO_CHECK_OK(embedded.status());
    const Machine& machine =
        cluster.machine(decision.machine_of_instance[static_cast<size_t>(i)]);
    const ResourceConfig& theta =
        decision.theta_of_instance[static_cast<size_t>(i)];
    const double p = model.PredictFromEmbedding(
        embedded.value(), theta, machine.state(), machine.hardware().id);
    *latency = std::max(*latency, p);
    *cost += p * context.cost_weights.Rate(theta);
  }
}

struct SweepRow {
  int k = 1;
  double solve_seconds = 0.0;
  double speedup = 1.0;       // vs the k=1 oracle sweep
  double wun_quality = 1.0;   // 3:1 latency:cost vs the k=1 oracle
};

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  const bool quick = HasFlag(argc, argv, "--quick");
  const std::string json_out = FlagValue(argc, argv, "--json_out=");
  PrintHeader("POP-style sharding: scale sweep vs the k=1 oracle");

  // The model only has to be competent, not headline-grade: the sweep
  // compares sharded vs exact solves under the SAME model.
  ExperimentEnv::Options options =
      DefaultOptions(WorkloadId::kA, BenchScale::kSmoke);
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());

  // >=10x the seed experiments' 128-machine fleet, with width-scaled
  // stages approaching the paper's wide production stages.
  const int fleet = quick ? 256 : 1280;
  const double width_scale = quick ? 4.0 : 10.0;
  const int want_stages = quick ? 2 : 4;
  const int min_instances = quick ? 48 : 96;
  const std::vector<int> ks = quick ? std::vector<int>{1, 2, 4}
                                    : std::vector<int>{1, 2, 4, 8};

  WorkloadProfile wide_profile =
      GetWorkloadProfile(WorkloadId::kA, 0.05, width_scale);
  Result<Workload> wide = WorkloadGenerator(wide_profile).Generate();
  FGRO_CHECK_OK(wide.status());
  std::vector<const Stage*> stages;
  for (const Job& job : wide->jobs) {
    for (const Stage& stage : job.stages) {
      if (stage.instance_count() >= min_instances &&
          static_cast<int>(stages.size()) < want_stages) {
        stages.push_back(&stage);
      }
    }
  }
  FGRO_CHECK(static_cast<int>(stages.size()) == want_stages)
      << "width-scaled workload produced too few wide stages";

  Cluster cluster(ClusterOptions{.num_machines = fleet, .seed = 17});
  Hbo hbo;
  // IPA(Org)+RAA: the full m*n inference bill, where sharding's m*n/k
  // algorithmic win actually shows (the clustered path is already mc*nc).
  StageOptimizer so(StageOptimizer::Config{
      StageOptimizer::Placement::kIpaOrg, true,
      {RaaClustering::kFastMci, RaaAlgorithm::kPath}});

  int total_instances = 0;
  for (const Stage* stage : stages) total_instances += stage->instance_count();
  std::printf("  fleet=%d machines, %d stages, %d instances, width x%.0f\n",
              fleet, want_stages, total_instances, width_scale);

  std::vector<SweepRow> rows;
  std::vector<double> oracle_latency(stages.size());
  std::vector<double> oracle_cost(stages.size());
  for (int k : ks) {
    SweepRow row;
    row.k = k;
    double quality_sum = 0.0;
    for (size_t i = 0; i < stages.size(); ++i) {
      SchedulingContext context;
      context.stage = stages[i];
      context.cluster = &cluster;
      context.model = &(*env)->model();
      context.theta0 = hbo.Recommend(*stages[i]).theta0;
      context.shard_count = k;
      // Serial on purpose: the gate measures algorithmic work, and CI
      // boxes have few cores. The shard fan still parallelizes in
      // production through SchedulingContext::worker_pool.
      context.worker_pool = nullptr;
      StageDecision decision = so.Optimize(context);
      FGRO_CHECK(decision.feasible);
      row.solve_seconds += decision.solve_seconds;
      double latency = 0.0, cost = 0.0;
      PredictedLatencyCost(context, decision, &latency, &cost);
      if (k == 1) {
        oracle_latency[i] = latency;
        oracle_cost[i] = cost;
      }
      quality_sum += (3.0 * (latency / oracle_latency[i]) +
                      1.0 * (cost / oracle_cost[i])) /
                     4.0;
    }
    row.wun_quality = quality_sum / static_cast<double>(stages.size());
    row.speedup = rows.empty() ? 1.0
                               : rows.front().solve_seconds / row.solve_seconds;
    std::printf("    k=%d  solve=%7.3fs  speedup=%5.2fx  WUN=%6.4f\n", row.k,
                row.solve_seconds, row.speedup, row.wun_quality);
    rows.push_back(row);
  }

  // Determinism: a sharded replay must not depend on the worker count.
  bool identical = true;
  {
    std::vector<RoSummary> by_threads;
    for (int threads : {1, 2, 8}) {
      SimOptions sim_options;
      sim_options.seed = 11;
      sim_options.cluster.num_machines = quick ? 96 : 192;
      sim_options.shard_count = 4;
      sim_options.service_threads = threads;
      Result<SimResult> result =
          ServeWorkload((*env)->workload(), &(*env)->model(), sim_options,
                        StageOptimizer::IpaRaaPathWithFallback());
      FGRO_CHECK_OK(result.status());
      by_threads.push_back(Summarize(result.value()));
    }
    for (size_t i = 1; i < by_threads.size(); ++i) {
      identical = identical &&
                  by_threads[i].coverage == by_threads[0].coverage &&
                  by_threads[i].avg_latency == by_threads[0].avg_latency &&
                  by_threads[i].avg_cost == by_threads[0].avg_cost &&
                  by_threads[i].goodput == by_threads[0].goodput &&
                  by_threads[i].fallback_histogram ==
                      by_threads[0].fallback_histogram;
    }
    std::printf("  sharded replay, service_threads {1,2,8} byte-identical: "
                "%s\n",
                identical ? "yes" : "NO - DETERMINISM REGRESSION");
  }

  if (!json_out.empty()) {
    std::string json = "{\"fleet\":" + std::to_string(fleet) +
                       ",\"stages\":" + std::to_string(want_stages) +
                       ",\"instances\":" + std::to_string(total_instances) +
                       ",\"rows\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"k\":%d,\"solve_seconds\":%.6f,\"speedup\":%.4f,"
                    "\"wun_quality\":%.6f}",
                    i > 0 ? "," : "", rows[i].k, rows[i].solve_seconds,
                    rows[i].speedup, rows[i].wun_quality);
      json += buf;
    }
    json += std::string("],\"threads_identical\":") +
            (identical ? "true" : "false") + "}\n";
    FGRO_CHECK_OK(obs::WriteJsonFile(json, json_out));
    std::printf("  wrote %s\n", json_out.c_str());
  }

  // Acceptance gates. Timing: near-linear means each doubling of k keeps
  // buying real solve time — the floor is a fraction of ideal k to absorb
  // the constant embed + refinement terms. Quick mode keeps only a token
  // timing gate (tiny fleets are noise-dominated on shared CI boxes).
  const double speedup_floor_frac = quick ? 0.20 : 0.45;
  const double quality_tolerance = quick ? 0.15 : 0.10;
  bool ok = identical;
  for (const SweepRow& row : rows) {
    if (row.k == 1) continue;
    const double floor = speedup_floor_frac * row.k;
    if (row.speedup < floor) {
      std::printf("  GATE FAIL: k=%d speedup %.2fx below floor %.2fx\n",
                  row.k, row.speedup, floor);
      ok = false;
    }
    if (row.wun_quality > 1.0 + quality_tolerance) {
      std::printf("  GATE FAIL: k=%d WUN %.4f above tolerance %.2f\n", row.k,
                  row.wun_quality, 1.0 + quality_tolerance);
      ok = false;
    }
  }
  std::printf("  %s\n", ok ? "PASS: near-linear scaling, bounded quality, "
                             "thread-count independent"
                           : "FAIL");
  return ok ? 0 : 1;
}
