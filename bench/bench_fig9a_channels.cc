// Reproduces Fig. 9(a) (Expt 2): multi-channel input ablation. Trains
// leave-one-out models (Chx_off), the five basic channels (all_on) and the
// AIM-augmented default (all_on+calib) on each workload and reports test
// WMAPE.
//
// Paper shape: instance meta (Ch2), query plan (Ch1) and system states
// (Ch4) are the top-3 channels; hardware type (Ch5) and the sparse resource
// plan (Ch3) matter least; AIM improves over all_on.

#include <cstdio>

#include "bench_util.h"

using namespace fgro;
using namespace fgro::bench;

namespace {

struct Variant {
  const char* name;
  ChannelMask mask;
};

std::vector<Variant> MakeVariants() {
  std::vector<Variant> variants;
  ChannelMask all_on;
  all_on.aim = AimMode::kOff;
  for (int ch = 1; ch <= 5; ++ch) {
    ChannelMask mask = all_on;
    switch (ch) {
      case 1: mask.ch1 = false; break;
      case 2: mask.ch2 = false; break;
      case 3: mask.ch3 = false; break;
      case 4: mask.ch4 = false; break;
      case 5: mask.ch5 = false; break;
    }
    static const char* kNames[] = {"Ch1_off", "Ch2_off", "Ch3_off",
                                   "Ch4_off", "Ch5_off"};
    variants.push_back({kNames[ch - 1], mask});
  }
  variants.push_back({"all_on", all_on});
  ChannelMask with_aim;  // default: everything + calibrated AIM
  variants.push_back({"all_on+calib", with_aim});
  return variants;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  PrintHeader("Fig. 9(a) (Expt 2): channel ablation, test WMAPE");
  for (WorkloadId id : {WorkloadId::kA, WorkloadId::kB, WorkloadId::kC}) {
    std::printf("  workload %s:\n", WorkloadName(id));
    std::vector<Variant> variants = MakeVariants();
    std::vector<double> wmapes;
    for (const Variant& variant : variants) {
      ExperimentEnv::Options options =
          DefaultOptions(id, BenchScale::kAblation);
      options.channels = variant.mask;
      Result<std::unique_ptr<ExperimentEnv>> env =
          ExperimentEnv::Build(options);
      FGRO_CHECK_OK(env.status());
      Result<ModelMetrics> metrics = TestMetrics(**env);
      FGRO_CHECK_OK(metrics.status());
      wmapes.push_back(metrics->wmape);
    }
    double all_on_wmape = wmapes[5];  // the "all_on" row
    for (size_t v = 0; v < variants.size(); ++v) {
      std::printf("    %-13s WMAPE=%5.1f%%", variants[v].name,
                  wmapes[v] * 100);
      if (std::string(variants[v].name).find("_off") != std::string::npos &&
          all_on_wmape > 0.0) {
        std::printf("  (vs all_on: %+d%%)",
                    static_cast<int>(
                        100.0 * (wmapes[v] - all_on_wmape) / all_on_wmape));
      }
      std::printf("\n");
    }
  }
  std::printf("\nPaper shape: turning off Ch2/Ch1/Ch4 hurts most "
              "(18-66%%/16-50%%/9-27%% worse); Ch3/Ch5 matter least; "
              "AIM (all_on+calib) is the best configuration.\n");
  return 0;
}
