// Reproduces Table 4 top (Expt 11): net benefit of SO (IPA and IPA+RAA)
// over Fuxi across the full workloads, in the noise-free setting (the
// predicted latency is the true latency) and in the noisy setting (actual
// latency sampled from a GPR fit on the model's validation predictions,
// within mu +/- 3 sigma).
//
// Paper: IPA 10-44% latency / 3-12% cost; IPA+RAA 37-72% latency /
// 43-78% cost; noise barely dents the benefit.

#include <cstdio>

#include "bench_util.h"
#include "model/gpr.h"
#include "optimizer/fuxi.h"
#include "optimizer/stage_optimizer.h"

using namespace fgro;
using namespace fgro::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  PrintHeader("Table 4 (Expt 11): net benefit, noise-free vs noisy (GPR)");
  for (WorkloadId id : {WorkloadId::kA, WorkloadId::kB, WorkloadId::kC}) {
    ExperimentEnv::Options options = DefaultOptions(id, BenchScale::kHeadline);
    options.scale = 0.2;
    Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
    FGRO_CHECK_OK(env.status());

    // GPR actual-latency simulator fit on validation (predicted, actual).
    GprNoiseModel gpr;
    {
      Result<std::vector<double>> preds =
          (*env)->model().PredictRecords((*env)->dataset(),
                                         (*env)->split().val);
      FGRO_CHECK_OK(preds.status());
      std::vector<double> actual;
      for (int idx : (*env)->split().val) {
        actual.push_back(
            (*env)->dataset().records[static_cast<size_t>(idx)]
                .actual_latency);
      }
      FGRO_CHECK_OK(gpr.Fit(preds.value(), actual));
    }

    std::printf("  workload %s:\n", WorkloadName(id));
    for (OutcomeMode mode : {OutcomeMode::kNoiseFree, OutcomeMode::kGprNoise}) {
      SimOptions sim_options;
      sim_options.outcome = mode;
      sim_options.gpr = &gpr;
      sim_options.cluster.num_machines = 96;
      const char* mode_name =
          mode == OutcomeMode::kNoiseFree ? "noise-free" : "noisy (GPR)";

      Simulator fuxi_sim(&(*env)->workload(), &(*env)->model(), sim_options);
      Result<SimResult> fuxi_result = fuxi_sim.Run(
          [](const SchedulingContext& c) { return FuxiSchedule(c); });
      FGRO_CHECK_OK(fuxi_result.status());
      RoSummary fuxi = Summarize(fuxi_result.value());

      for (const StageOptimizer::Config& config :
           {StageOptimizer::IpaCluster(), StageOptimizer::IpaRaaPath()}) {
        StageOptimizer so(config);
        Simulator sim(&(*env)->workload(), &(*env)->model(), sim_options);
        Result<SimResult> result = sim.Run(
            [&](const SchedulingContext& c) { return so.Optimize(c); });
        FGRO_CHECK_OK(result.status());
        RoSummary summary = Summarize(result.value());
        ReductionRates rr = ComputeReduction(fuxi, summary);
        std::printf("    %-11s %-14s RR Lat(in)=%4.0f%%  RR Cost=%4.0f%%\n",
                    mode_name, StageOptimizer::ConfigName(config).c_str(),
                    rr.latency_in_rr * 100, rr.cost_rr * 100);
      }
    }
  }
  std::printf("\nPaper shape: IPA+RAA reduces both objectives by large\n"
              "margins on the full replay; the noisy (GPR) setting tracks\n"
              "the noise-free one closely.\n");
  return 0;
}
