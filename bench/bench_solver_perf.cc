// Microbenchmarks (google-benchmark) backing the complexity claims of
// Section 5: IPA's greedy matching, clustered IPA's reduced problem,
// RAA-Path's O(m p log(m p)) walk vs the O((m p)^2) general algorithm,
// 1-D KDE clustering vs O(n^2) DBSCAN. These are the solve-time mechanics
// behind Table 2's timing columns.
//
// In addition to the microbenchmarks, `--breakdown_out=PATH` replays a
// smoke-scale workload with the observability layer attached and writes the
// per-phase timing rollup (IPA / RAA / WUN / Predict) as JSON — the
// end-to-end counterpart of the per-kernel numbers above. `--breakdown_only`
// skips the microbenchmarks (what CI uses to produce the artifact).
//
// `--json_out=PATH` runs the batched-inference throughput comparison: the
// same prediction sweep through the scalar PredictFromEmbedding loop and
// through one PredictBatch GEMM call (plus a memoized pass reporting the
// PredictionMemo hit rate), reporting predictions/sec for both phases, the
// speedup, and a checksum delta that must be exactly 0.0 (the two paths are
// bit-identical by construction). `--inference_only` skips the
// microbenchmarks after it.
//
// `--frontier_sweep` runs the frontier-compression acceptance sweep
// (DESIGN.md §16): end-to-end IPA+RAA stage solves per-instance
// (RAA(W/O_C), compression off — the quality oracle) vs per-cluster
// (RAA(Fast_MCI) + FrontierCache) at stage widths x1 and x10, over
// repeated rounds so warm templates amortize the way recurring production
// stages do. Its exit code gates the >=10x amortized floor at width x10,
// the WUN-quality bound vs the oracle, decision-checksum stability across
// rounds (cold cache == warm cache), and byte-identical RoSummary across
// service_threads {1,2,8} with compression on. When combined with
// --json_out, both sections land in one JSON document.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "clustering/dbscan.h"
#include "clustering/kde1d.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "hbo/hbo.h"
#include "nn/mlp.h"
#include "obs/snapshot.h"
#include "optimizer/frontier_cache.h"
#include "optimizer/ipa.h"
#include "optimizer/raa_general.h"
#include "optimizer/raa_path.h"
#include "optimizer/stage_optimizer.h"
#include "service/ro_service.h"
#include "trace/workload_gen.h"

namespace fgro {
namespace {

void BM_IpaGreedyMatch(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Rng rng(7);
  std::vector<double> inst(static_cast<size_t>(m)), mach(static_cast<size_t>(n));
  for (double& v : inst) v = rng.Pareto(1.0, 1.3);
  for (double& v : mach) v = rng.Uniform(0.5, 2.0);
  std::vector<std::vector<double>> L(static_cast<size_t>(m),
                                     std::vector<double>(static_cast<size_t>(n)));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      L[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          inst[static_cast<size_t>(i)] * mach[static_cast<size_t>(j)];
    }
  }
  std::vector<int> capacity(static_cast<size_t>(n), (m + n - 1) / n + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IpaGreedyMatch(L, capacity));
  }
  state.SetComplexityN(static_cast<int64_t>(m));
}
BENCHMARK(BM_IpaGreedyMatch)
    ->Args({64, 64})
    ->Args({256, 128})
    ->Args({1024, 128})
    ->Args({4096, 256})
    ->Unit(benchmark::kMillisecond);

std::vector<std::vector<InstanceParetoPoint>> RandomParetoSets(int m, int p,
                                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<InstanceParetoPoint>> sets(static_cast<size_t>(m));
  for (auto& set : sets) {
    double lat = rng.Uniform(100, 500), cost = rng.Uniform(1, 3);
    for (int j = 0; j < p; ++j) {
      set.push_back({{}, lat, cost});
      lat *= rng.Uniform(0.5, 0.9);
      cost *= rng.Uniform(1.2, 2.0);
    }
  }
  return sets;
}

void BM_RaaPath(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int p = static_cast<int>(state.range(1));
  auto sets = RandomParetoSets(m, p, 11);
  std::vector<double> mult(static_cast<size_t>(m), 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RaaPath(sets, mult));
  }
  state.SetComplexityN(static_cast<int64_t>(m) * p);
}
BENCHMARK(BM_RaaPath)
    ->Args({16, 6})
    ->Args({64, 8})
    ->Args({256, 8})
    ->Args({1024, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_RaaGeneral(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int p = static_cast<int>(state.range(1));
  auto sets = RandomParetoSets(m, p, 13);
  std::vector<std::vector<std::vector<double>>> solutions(sets.size());
  for (size_t i = 0; i < sets.size(); ++i) {
    for (const InstanceParetoPoint& point : sets[i]) {
      solutions[i].push_back({point.latency, point.cost});
    }
  }
  std::vector<double> mult(static_cast<size_t>(m), 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GeneralHierarchicalMoo(solutions, {true, false}, mult));
  }
}
BENCHMARK(BM_RaaGeneral)
    ->Args({16, 6})
    ->Args({64, 8})
    ->Args({256, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_Kde1dCluster(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(17);
  std::vector<double> values(static_cast<size_t>(n));
  for (double& v : values) v = rng.LogNormal(10.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Kde1dCluster(values));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Kde1dCluster)->Arg(256)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMicrosecond);

void BM_Dbscan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(19);
  std::vector<std::vector<double>> points(static_cast<size_t>(n));
  for (auto& p : points) p = {rng.Normal(0, 1), rng.Normal(0, 1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dbscan(points, {.eps = 0.2, .min_pts = 4}));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Dbscan)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_MlpForwardRowByRow(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(23);
  Mlp mlp({46, 48, 48, 1}, &rng);  // the latency predictor head's shape
  Mat x;
  x.Resize(batch, 46);
  for (double& v : x.data) v = rng.Normal();
  MlpVecScratch scratch;
  Vec row(46), out;
  for (auto _ : state) {
    double sum = 0.0;
    for (int r = 0; r < x.rows; ++r) {
      std::memcpy(row.data(), x.Row(r), sizeof(double) * 46);
      mlp.ForwardInto(row, &out, &scratch);
      sum += out[0];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForwardRowByRow)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_MlpForwardBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(23);
  Mlp mlp({46, 48, 48, 1}, &rng);
  Mat x;
  x.Resize(batch, 46);
  for (double& v : x.data) v = rng.Normal();
  MlpScratch scratch;
  for (auto _ : state) {
    const Mat& y = mlp.ForwardBatch(x, &scratch);
    double sum = 0.0;
    for (int r = 0; r < y.rows; ++r) sum += y.Row(r)[0];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForwardBatch)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

/// Replays a smoke-scale workload with metrics wired through every layer
/// (optimizer spans/histograms, per-hardware-type model predict timing) and
/// emits the per-phase rollup. Returns nonzero on replay failure.
int RunBreakdown(const std::string& out_path) {
  SetLogLevel(LogLevel::kWarning);
  bench::PrintHeader("Per-phase solve-time breakdown (smoke-scale replay)");

  ExperimentEnv::Options options =
      bench::DefaultOptions(WorkloadId::kA, bench::BenchScale::kSmoke);
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());

  obs::MetricsRegistry registry;
  obs::Obs obs;
  obs.metrics = &registry;
  (*env)->mutable_model()->set_obs(obs);

  SimOptions sim_options;
  sim_options.outcome = OutcomeMode::kEnvironment;
  sim_options.obs = obs;
  StageOptimizer optimizer(StageOptimizer::IpaRaaPathWithFallback());
  Simulator sim(&(*env)->workload(), &(*env)->model(), sim_options);
  Result<SimResult> result = sim.Run(
      [&](const SchedulingContext& context) {
        return optimizer.Optimize(context);
      });
  FGRO_CHECK_OK(result.status());
  (*env)->mutable_model()->set_obs(obs::Obs{});  // unwire before env dies

  const std::string json = obs::PhaseBreakdownJson(registry);
  std::printf("%s\n", json.c_str());
  if (!out_path.empty()) {
    FGRO_CHECK_OK(obs::WriteJsonFile(json, out_path));
    std::printf("  wrote %s\n", out_path.c_str());
  }
  return 0;
}

/// Scalar-vs-batched prediction throughput on the optimizer's hot query
/// shape: one embedded instance swept over a candidate grid, exactly what
/// IPA's machine sweep and RAA's configuration sweep issue. The model is
/// untrained (Xavier init) — throughput does not depend on the weights.
/// Fills *json_section with the result object and returns nonzero on
/// failure or if the two paths disagree on any output bit.
int RunInferenceBench(std::string* json_section) {
  SetLogLevel(LogLevel::kWarning);
  bench::PrintHeader("Batched-inference throughput (scalar vs PredictBatch)");

  ExperimentEnv::Options options =
      bench::DefaultOptions(WorkloadId::kA, bench::BenchScale::kSmoke);
  options.train_model = false;
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());
  const LatencyModel& model = (*env)->model();
  const Stage& stage = (*env)->workload().jobs[0].stages[0];
  Result<LatencyModel::EmbeddedInstance> embedded = model.Embed(stage, 0);
  FGRO_CHECK_OK(embedded.status());

  constexpr int kCandidates = 2048;
  constexpr int kRepeats = 50;
  Rng rng(29);
  std::vector<LatencyModel::PredictionCandidate> candidates;
  candidates.reserve(kCandidates);
  for (int i = 0; i < kCandidates; ++i) {
    LatencyModel::PredictionCandidate c;
    c.theta.cores = 0.5 * static_cast<double>(rng.UniformInt(1, 16));
    c.theta.memory_gb = static_cast<double>(rng.UniformInt(1, 64));
    c.state.cpu_util = rng.Uniform();
    c.state.mem_util = rng.Uniform();
    c.state.io_util = rng.Uniform();
    c.hardware_type = static_cast<int>(rng.UniformInt(0, 4));
    candidates.push_back(c);
  }
  const double total = static_cast<double>(kCandidates) * kRepeats;

  double scalar_sum = 0.0;
  Stopwatch scalar_timer;
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (const LatencyModel::PredictionCandidate& c : candidates) {
      scalar_sum += model.PredictFromEmbedding(embedded.value(), c.theta,
                                               c.state, c.hardware_type);
    }
  }
  const double scalar_seconds = scalar_timer.ElapsedSeconds();

  LatencyModel::BatchScratch scratch;
  std::vector<double> out(kCandidates);
  double batched_sum = 0.0;
  // Warm the scratch outside the timed region so the steady-state
  // (allocation-free) throughput is what gets reported.
  model.PredictBatch(embedded.value(), candidates, out.data(), &scratch);
  Stopwatch batched_timer;
  for (int rep = 0; rep < kRepeats; ++rep) {
    model.PredictBatch(embedded.value(), candidates, out.data(), &scratch);
    for (double v : out) batched_sum += v;
  }
  const double batched_seconds = batched_timer.ElapsedSeconds();

  // Memoized pass: same sweep through a PredictionMemo (cold round inserts,
  // warm rounds hit), reporting the hit rate the obs gauge
  // (model.memo.hit_ratio) would show. Hits must be bit-identical to the
  // batched values, so the checksum accumulates the same way.
  PredictionMemo memo;
  double memoized_sum = 0.0;
  Stopwatch memo_timer;
  for (int rep = 0; rep < kRepeats; ++rep) {
    model.PredictBatch(embedded.value(), candidates, out.data(), &scratch,
                       &memo);
    for (double v : out) memoized_sum += v;
  }
  const double memo_seconds = memo_timer.ElapsedSeconds();
  const double memo_total =
      static_cast<double>(memo.hits() + memo.misses());
  const double memo_hit_rate =
      memo_total > 0.0 ? static_cast<double>(memo.hits()) / memo_total : 0.0;

  const double scalar_rate = total / scalar_seconds;
  const double batched_rate = total / batched_seconds;
  const double speedup = scalar_seconds / batched_seconds;
  const double checksum_delta = batched_sum - scalar_sum;
  const double memo_checksum_delta = memoized_sum - batched_sum;

  char json[1536];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"predictions_per_phase\": %.0f,\n"
                "  \"scalar\": {\"seconds\": %.6f, "
                "\"predictions_per_sec\": %.0f},\n"
                "  \"batched\": {\"seconds\": %.6f, "
                "\"predictions_per_sec\": %.0f},\n"
                "  \"memoized\": {\"seconds\": %.6f, "
                "\"predictions_per_sec\": %.0f, \"hits\": %llu, "
                "\"misses\": %llu, \"hit_rate\": %.4f},\n"
                "  \"speedup\": %.3f,\n"
                "  \"checksum_delta\": %.17g,\n"
                "  \"memo_checksum_delta\": %.17g\n"
                "}",
                total, scalar_seconds, scalar_rate, batched_seconds,
                batched_rate, memo_seconds, total / memo_seconds,
                static_cast<unsigned long long>(memo.hits()),
                static_cast<unsigned long long>(memo.misses()),
                memo_hit_rate, speedup, checksum_delta, memo_checksum_delta);
  std::printf("%s\n", json);
  *json_section = json;
  if (checksum_delta != 0.0 || memo_checksum_delta != 0.0) {
    std::fprintf(stderr, "FAIL: batched/memoized path is not bit-identical\n");
    return 1;
  }
  return 0;
}

/// Model-predicted WUN ingredients of a decision: stage latency (max over
/// instances) and monetary cost (sum of predicted seconds * rate(theta)),
/// evaluated per instance with its OWN embedding — the compressed solve is
/// judged against the per-instance oracle on the model's own terms.
void PredictedLatencyCost(const SchedulingContext& context,
                          const StageDecision& decision, double* latency,
                          double* cost) {
  const LatencyModel& model = *context.model;
  const Cluster& cluster = *context.cluster;
  *latency = 0.0;
  *cost = 0.0;
  for (int i = 0; i < context.stage->instance_count(); ++i) {
    Result<LatencyModel::EmbeddedInstance> embedded =
        model.Embed(*context.stage, i);
    FGRO_CHECK_OK(embedded.status());
    const Machine& machine =
        cluster.machine(decision.machine_of_instance[static_cast<size_t>(i)]);
    const ResourceConfig& theta =
        decision.theta_of_instance[static_cast<size_t>(i)];
    const double p = model.PredictFromEmbedding(
        embedded.value(), theta, machine.state(), machine.hardware().id);
    *latency = std::max(*latency, p);
    *cost += p * context.cost_weights.Rate(theta);
  }
}

uint64_t MixBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t DecisionChecksum(const StageDecision& decision) {
  uint64_t h = MixBits(decision.machine_of_instance.size());
  for (int machine : decision.machine_of_instance) {
    h = MixBits(h ^ static_cast<uint64_t>(static_cast<uint32_t>(machine)));
  }
  for (const ResourceConfig& theta : decision.theta_of_instance) {
    uint64_t bits = 0;
    std::memcpy(&bits, &theta.cores, sizeof(bits));
    h = MixBits(h ^ bits);
    std::memcpy(&bits, &theta.memory_gb, sizeof(bits));
    h = MixBits(h ^ bits);
  }
  return h;
}

/// Frontier-compression acceptance sweep: per-instance oracle vs compressed
/// per-cluster solves over repeated rounds at widths x1 / x10. See the file
/// header for the gates. Fills *json_section; returns nonzero on gate fail.
int RunFrontierSweep(bool quick, std::string* json_section) {
  SetLogLevel(LogLevel::kWarning);
  bench::PrintHeader(
      "Frontier compression: per-cluster templates vs the per-instance "
      "oracle");

  ExperimentEnv::Options options =
      bench::DefaultOptions(WorkloadId::kA, bench::BenchScale::kSmoke);
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());

  const int fleet = quick ? 256 : 1280;
  const int want_stages = quick ? 1 : 2;
  const int min_instances = quick ? 48 : 96;
  const int rounds = quick ? 3 : 5;
  const std::vector<double> widths = {1.0, 10.0};

  // Arm A: the per-instance oracle — RAA(W/O_C), compression off (the
  // bit-identical legacy path). Arm B: RAA(Fast_MCI) + frontier
  // compression. Same clustered-IPA placement on both arms, so the delta
  // is purely the RAA frontier bill. No PredictionMemo on either arm:
  // memoization (PR 5) is orthogonal and would blur the attribution.
  StageOptimizer oracle_so(StageOptimizer::IpaRaaWithoutClustering());
  StageOptimizer compressed_so(StageOptimizer::IpaRaaPath());
  Hbo hbo;

  struct WidthRow {
    double width = 1.0;
    int instances = 0;
    double oracle_cold = 0.0, oracle_total = 0.0;
    double compressed_cold = 0.0, compressed_total = 0.0;
    double cold_speedup = 0.0, amortized_speedup = 0.0;
    double wun_quality = 1.0;
    bool checksums_stable = true;
  };
  std::vector<WidthRow> table;
  FrontierCache cache;

  for (double width : widths) {
    WidthRow row;
    row.width = width;
    WorkloadProfile profile = GetWorkloadProfile(WorkloadId::kA, 0.05, width);
    Result<Workload> workload = WorkloadGenerator(profile).Generate();
    FGRO_CHECK_OK(workload.status());
    Cluster cluster(ClusterOptions{.num_machines = fleet, .seed = 17});
    auto solve = [&](const StageOptimizer& so, const Stage* stage,
                     bool compression, StageDecision* decision) {
      SchedulingContext context;
      context.stage = stage;
      context.cluster = &cluster;
      context.model = &(*env)->model();
      context.theta0 = hbo.Recommend(*stage).theta0;
      context.frontier_compression = compression;
      context.frontier_cache = compression ? &cache : nullptr;
      context.worker_pool = nullptr;  // serial: measure algorithmic work
      *decision = so.Optimize(context);
      return context;
    };

    // The widest stages this fleet can actually place (the production shape
    // frontier compression targets): probe widest-first with the cheap
    // compressed solve, then clear the warm-up templates so round 0 of the
    // timed sweep really is cold.
    std::vector<const Stage*> candidates;
    for (const Job& job : workload->jobs) {
      for (const Stage& stage : job.stages) {
        if (stage.instance_count() >= min_instances) {
          candidates.push_back(&stage);
        }
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Stage* a, const Stage* b) {
                return a->instance_count() != b->instance_count()
                           ? a->instance_count() > b->instance_count()
                           : a->id < b->id;
              });
    std::vector<const Stage*> stages;
    for (const Stage* stage : candidates) {
      if (static_cast<int>(stages.size()) == want_stages) break;
      StageDecision probe;
      solve(compressed_so, stage, /*compression=*/true, &probe);
      if (probe.feasible) stages.push_back(stage);
    }
    FGRO_CHECK(static_cast<int>(stages.size()) == want_stages)
        << "no placeable wide stages at width x" << width;
    cache.Clear();
    for (const Stage* stage : stages) row.instances += stage->instance_count();

    double quality_sum = 0.0;
    int quality_n = 0;
    for (const Stage* stage : stages) {
      std::vector<uint64_t> oracle_sums, compressed_sums;
      double oracle_latency = 0.0, oracle_cost = 0.0;
      for (int r = 0; r < rounds; ++r) {
        StageDecision decision;
        SchedulingContext context =
            solve(oracle_so, stage, /*compression=*/false, &decision);
        FGRO_CHECK(decision.feasible);
        row.oracle_total += decision.solve_seconds;
        if (r == 0) {
          row.oracle_cold += decision.solve_seconds;
          PredictedLatencyCost(context, decision, &oracle_latency,
                               &oracle_cost);
        }
        oracle_sums.push_back(DecisionChecksum(decision));
      }
      for (int r = 0; r < rounds; ++r) {
        StageDecision decision;
        SchedulingContext context =
            solve(compressed_so, stage, /*compression=*/true, &decision);
        FGRO_CHECK(decision.feasible);
        row.compressed_total += decision.solve_seconds;
        if (r == 0) {
          row.compressed_cold += decision.solve_seconds;
          double latency = 0.0, cost = 0.0;
          PredictedLatencyCost(context, decision, &latency, &cost);
          quality_sum += (3.0 * (latency / oracle_latency) +
                          1.0 * (cost / oracle_cost)) /
                         4.0;
          quality_n++;
        }
        compressed_sums.push_back(DecisionChecksum(decision));
      }
      // Stationary machine state: every round must reproduce round 0 on
      // both arms — in particular the compressed arm's warm-cache rounds
      // must equal its cold-cache round bit-for-bit.
      for (int r = 1; r < rounds; ++r) {
        row.checksums_stable = row.checksums_stable &&
                               oracle_sums[static_cast<size_t>(r)] ==
                                   oracle_sums[0] &&
                               compressed_sums[static_cast<size_t>(r)] ==
                                   compressed_sums[0];
      }
    }
    row.wun_quality = quality_sum / static_cast<double>(quality_n);
    row.cold_speedup = row.oracle_cold / row.compressed_cold;
    row.amortized_speedup = row.oracle_total / row.compressed_total;
    std::printf(
        "  width x%-3.0f m=%4d  oracle %7.3fs (cold %6.3fs)  "
        "compressed %7.3fs (cold %6.3fs)  speedup %5.1fx (cold %4.1fx)  "
        "WUN=%6.4f  stable=%s\n",
        row.width, row.instances, row.oracle_total, row.oracle_cold,
        row.compressed_total, row.compressed_cold, row.amortized_speedup,
        row.cold_speedup, row.wun_quality,
        row.checksums_stable ? "yes" : "NO");
    table.push_back(row);
  }

  const double frontier_queries =
      static_cast<double>(cache.hits() + cache.misses());
  const double frontier_hit_rate =
      frontier_queries > 0.0
          ? static_cast<double>(cache.hits()) / frontier_queries
          : 0.0;
  std::printf(
      "  frontier cache: %llu hits, %llu misses (%.0f%% hit rate), "
      "%llu builds, %llu donor patches\n",
      static_cast<unsigned long long>(cache.hits()),
      static_cast<unsigned long long>(cache.misses()), frontier_hit_rate * 100,
      static_cast<unsigned long long>(cache.inserts()),
      static_cast<unsigned long long>(cache.donor_hits()));

  // Determinism: a compressed replay through the RO service must not depend
  // on the worker count, with the frontier cache shared across jobs and
  // runs (so later thread counts run warm — purity of the cached templates
  // is exactly what is under test).
  bool identical = true;
  {
    FrontierCache service_cache;
    std::vector<RoSummary> by_threads;
    for (int threads : {1, 2, 8}) {
      SimOptions sim_options;
      sim_options.seed = 11;
      sim_options.cluster.num_machines = quick ? 64 : 96;
      sim_options.service_threads = threads;
      sim_options.frontier_compression = true;
      sim_options.frontier_cache = &service_cache;
      Result<SimResult> result =
          ServeWorkload((*env)->workload(), &(*env)->model(), sim_options,
                        StageOptimizer::IpaRaaPathWithFallback());
      FGRO_CHECK_OK(result.status());
      by_threads.push_back(Summarize(result.value()));
    }
    for (size_t i = 1; i < by_threads.size(); ++i) {
      identical = identical &&
                  by_threads[i].coverage == by_threads[0].coverage &&
                  by_threads[i].avg_latency == by_threads[0].avg_latency &&
                  by_threads[i].avg_cost == by_threads[0].avg_cost &&
                  by_threads[i].goodput == by_threads[0].goodput &&
                  by_threads[i].fallback_histogram ==
                      by_threads[0].fallback_histogram;
    }
    std::printf(
        "  compressed replay, service_threads {1,2,8} byte-identical: %s\n",
        identical ? "yes" : "NO - DETERMINISM REGRESSION");
  }

  std::string json = "{\"rounds\":" + std::to_string(rounds) + ",\"rows\":[";
  for (size_t i = 0; i < table.size(); ++i) {
    char buf[384];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"width\":%.0f,\"instances\":%d,"
        "\"oracle_seconds\":%.6f,\"oracle_cold_seconds\":%.6f,"
        "\"compressed_seconds\":%.6f,\"compressed_cold_seconds\":%.6f,"
        "\"amortized_speedup\":%.3f,\"cold_speedup\":%.3f,"
        "\"wun_quality\":%.6f,\"checksums_stable\":%s}",
        i > 0 ? "," : "", table[i].width, table[i].instances,
        table[i].oracle_total, table[i].oracle_cold,
        table[i].compressed_total, table[i].compressed_cold,
        table[i].amortized_speedup, table[i].cold_speedup,
        table[i].wun_quality, table[i].checksums_stable ? "true" : "false");
    json += buf;
  }
  char tail[256];
  std::snprintf(tail, sizeof(tail),
                "],\"frontier_cache\":{\"hits\":%llu,\"misses\":%llu,"
                "\"hit_rate\":%.4f,\"builds\":%llu,\"donor_patches\":%llu},"
                "\"threads_identical\":%s}",
                static_cast<unsigned long long>(cache.hits()),
                static_cast<unsigned long long>(cache.misses()),
                frontier_hit_rate,
                static_cast<unsigned long long>(cache.inserts()),
                static_cast<unsigned long long>(cache.donor_hits()),
                identical ? "true" : "false");
  json += tail;
  *json_section = json;

  // Acceptance gates (ISSUE 10): >=10x end-to-end at width x10 with
  // compression on (amortized over the recurring-stage rounds), WUN quality
  // within 5% of the per-instance oracle at every width, checksum-stable
  // decisions, thread-count identity.
  bool ok = identical;
  for (const WidthRow& row : table) {
    if (!row.checksums_stable) {
      std::printf("  GATE FAIL: width x%.0f decisions not checksum-stable\n",
                  row.width);
      ok = false;
    }
    if (row.wun_quality > 1.05) {
      std::printf("  GATE FAIL: width x%.0f WUN %.4f above 1.05\n", row.width,
                  row.wun_quality);
      ok = false;
    }
    if (row.width >= 10.0 && row.amortized_speedup < 10.0) {
      std::printf("  GATE FAIL: width x%.0f speedup %.2fx below 10x\n",
                  row.width, row.amortized_speedup);
      ok = false;
    }
  }
  std::printf("  %s\n",
              ok ? "PASS: >=10x at width x10, bounded quality, stable "
                   "decisions, thread-count independent"
                 : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace fgro

int main(int argc, char** argv) {
  // Peel off our flags before google-benchmark sees (and rejects) them.
  bool breakdown_only = false;
  bool inference_only = false;
  bool frontier_sweep = false;
  bool quick = false;
  std::string breakdown_out;
  std::string json_out;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--breakdown_only") == 0) {
      breakdown_only = true;
    } else if (std::strcmp(argv[i], "--inference_only") == 0) {
      inference_only = true;
    } else if (std::strcmp(argv[i], "--frontier_sweep") == 0) {
      frontier_sweep = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--breakdown_out=", 16) == 0) {
      breakdown_out = argv[i] + 16;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  const bool want_inference = inference_only || !json_out.empty();
  if (want_inference || frontier_sweep) {
    // Run every requested section (even past a failure) so the JSON
    // artifact always carries whatever was measured; the exit code is the
    // OR of the section gates.
    std::string inference_json = "null";
    std::string frontier_json = "null";
    int rc = 0;
    if (want_inference) rc |= fgro::RunInferenceBench(&inference_json);
    if (frontier_sweep) rc |= fgro::RunFrontierSweep(quick, &frontier_json);
    if (!json_out.empty()) {
      const std::string combined = "{\n\"inference\": " + inference_json +
                                   ",\n\"frontier_sweep\": " + frontier_json +
                                   "\n}\n";
      FGRO_CHECK_OK(fgro::obs::WriteJsonFile(combined, json_out));
      std::printf("  wrote %s\n", json_out.c_str());
    }
    if (rc != 0 || inference_only || frontier_sweep) return rc;
  }

  if (breakdown_only || !breakdown_out.empty()) {
    const int rc = fgro::RunBreakdown(breakdown_out);
    if (rc != 0 || breakdown_only) return rc;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
