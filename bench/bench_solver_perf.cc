// Microbenchmarks (google-benchmark) backing the complexity claims of
// Section 5: IPA's greedy matching, clustered IPA's reduced problem,
// RAA-Path's O(m p log(m p)) walk vs the O((m p)^2) general algorithm,
// 1-D KDE clustering vs O(n^2) DBSCAN. These are the solve-time mechanics
// behind Table 2's timing columns.
//
// In addition to the microbenchmarks, `--breakdown_out=PATH` replays a
// smoke-scale workload with the observability layer attached and writes the
// per-phase timing rollup (IPA / RAA / WUN / Predict) as JSON — the
// end-to-end counterpart of the per-kernel numbers above. `--breakdown_only`
// skips the microbenchmarks (what CI uses to produce the artifact).
//
// `--json_out=PATH` runs the batched-inference throughput comparison: the
// same prediction sweep through the scalar PredictFromEmbedding loop and
// through one PredictBatch GEMM call, reporting predictions/sec for both
// phases, the speedup, and a checksum delta that must be exactly 0.0 (the
// two paths are bit-identical by construction). `--inference_only` skips
// the microbenchmarks after it.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "clustering/dbscan.h"
#include "clustering/kde1d.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "nn/mlp.h"
#include "obs/snapshot.h"
#include "optimizer/ipa.h"
#include "optimizer/raa_general.h"
#include "optimizer/raa_path.h"
#include "optimizer/stage_optimizer.h"

namespace fgro {
namespace {

void BM_IpaGreedyMatch(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Rng rng(7);
  std::vector<double> inst(static_cast<size_t>(m)), mach(static_cast<size_t>(n));
  for (double& v : inst) v = rng.Pareto(1.0, 1.3);
  for (double& v : mach) v = rng.Uniform(0.5, 2.0);
  std::vector<std::vector<double>> L(static_cast<size_t>(m),
                                     std::vector<double>(static_cast<size_t>(n)));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      L[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          inst[static_cast<size_t>(i)] * mach[static_cast<size_t>(j)];
    }
  }
  std::vector<int> capacity(static_cast<size_t>(n), (m + n - 1) / n + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IpaGreedyMatch(L, capacity));
  }
  state.SetComplexityN(static_cast<int64_t>(m));
}
BENCHMARK(BM_IpaGreedyMatch)
    ->Args({64, 64})
    ->Args({256, 128})
    ->Args({1024, 128})
    ->Args({4096, 256})
    ->Unit(benchmark::kMillisecond);

std::vector<std::vector<InstanceParetoPoint>> RandomParetoSets(int m, int p,
                                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<InstanceParetoPoint>> sets(static_cast<size_t>(m));
  for (auto& set : sets) {
    double lat = rng.Uniform(100, 500), cost = rng.Uniform(1, 3);
    for (int j = 0; j < p; ++j) {
      set.push_back({{}, lat, cost});
      lat *= rng.Uniform(0.5, 0.9);
      cost *= rng.Uniform(1.2, 2.0);
    }
  }
  return sets;
}

void BM_RaaPath(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int p = static_cast<int>(state.range(1));
  auto sets = RandomParetoSets(m, p, 11);
  std::vector<double> mult(static_cast<size_t>(m), 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RaaPath(sets, mult));
  }
  state.SetComplexityN(static_cast<int64_t>(m) * p);
}
BENCHMARK(BM_RaaPath)
    ->Args({16, 6})
    ->Args({64, 8})
    ->Args({256, 8})
    ->Args({1024, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_RaaGeneral(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int p = static_cast<int>(state.range(1));
  auto sets = RandomParetoSets(m, p, 13);
  std::vector<std::vector<std::vector<double>>> solutions(sets.size());
  for (size_t i = 0; i < sets.size(); ++i) {
    for (const InstanceParetoPoint& point : sets[i]) {
      solutions[i].push_back({point.latency, point.cost});
    }
  }
  std::vector<double> mult(static_cast<size_t>(m), 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GeneralHierarchicalMoo(solutions, {true, false}, mult));
  }
}
BENCHMARK(BM_RaaGeneral)
    ->Args({16, 6})
    ->Args({64, 8})
    ->Args({256, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_Kde1dCluster(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(17);
  std::vector<double> values(static_cast<size_t>(n));
  for (double& v : values) v = rng.LogNormal(10.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Kde1dCluster(values));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Kde1dCluster)->Arg(256)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMicrosecond);

void BM_Dbscan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(19);
  std::vector<std::vector<double>> points(static_cast<size_t>(n));
  for (auto& p : points) p = {rng.Normal(0, 1), rng.Normal(0, 1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dbscan(points, {.eps = 0.2, .min_pts = 4}));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Dbscan)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_MlpForwardRowByRow(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(23);
  Mlp mlp({46, 48, 48, 1}, &rng);  // the latency predictor head's shape
  Mat x;
  x.Resize(batch, 46);
  for (double& v : x.data) v = rng.Normal();
  MlpVecScratch scratch;
  Vec row(46), out;
  for (auto _ : state) {
    double sum = 0.0;
    for (int r = 0; r < x.rows; ++r) {
      std::memcpy(row.data(), x.Row(r), sizeof(double) * 46);
      mlp.ForwardInto(row, &out, &scratch);
      sum += out[0];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForwardRowByRow)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_MlpForwardBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(23);
  Mlp mlp({46, 48, 48, 1}, &rng);
  Mat x;
  x.Resize(batch, 46);
  for (double& v : x.data) v = rng.Normal();
  MlpScratch scratch;
  for (auto _ : state) {
    const Mat& y = mlp.ForwardBatch(x, &scratch);
    double sum = 0.0;
    for (int r = 0; r < y.rows; ++r) sum += y.Row(r)[0];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForwardBatch)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

/// Replays a smoke-scale workload with metrics wired through every layer
/// (optimizer spans/histograms, per-hardware-type model predict timing) and
/// emits the per-phase rollup. Returns nonzero on replay failure.
int RunBreakdown(const std::string& out_path) {
  SetLogLevel(LogLevel::kWarning);
  bench::PrintHeader("Per-phase solve-time breakdown (smoke-scale replay)");

  ExperimentEnv::Options options =
      bench::DefaultOptions(WorkloadId::kA, bench::BenchScale::kSmoke);
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());

  obs::MetricsRegistry registry;
  obs::Obs obs;
  obs.metrics = &registry;
  (*env)->mutable_model()->set_obs(obs);

  SimOptions sim_options;
  sim_options.outcome = OutcomeMode::kEnvironment;
  sim_options.obs = obs;
  StageOptimizer optimizer(StageOptimizer::IpaRaaPathWithFallback());
  Simulator sim(&(*env)->workload(), &(*env)->model(), sim_options);
  Result<SimResult> result = sim.Run(
      [&](const SchedulingContext& context) {
        return optimizer.Optimize(context);
      });
  FGRO_CHECK_OK(result.status());
  (*env)->mutable_model()->set_obs(obs::Obs{});  // unwire before env dies

  const std::string json = obs::PhaseBreakdownJson(registry);
  std::printf("%s\n", json.c_str());
  if (!out_path.empty()) {
    FGRO_CHECK_OK(obs::WriteJsonFile(json, out_path));
    std::printf("  wrote %s\n", out_path.c_str());
  }
  return 0;
}

/// Scalar-vs-batched prediction throughput on the optimizer's hot query
/// shape: one embedded instance swept over a candidate grid, exactly what
/// IPA's machine sweep and RAA's configuration sweep issue. The model is
/// untrained (Xavier init) — throughput does not depend on the weights.
/// Writes a JSON artifact and returns nonzero on failure or if the two
/// paths disagree on any output bit.
int RunInferenceBench(const std::string& out_path) {
  SetLogLevel(LogLevel::kWarning);
  bench::PrintHeader("Batched-inference throughput (scalar vs PredictBatch)");

  ExperimentEnv::Options options =
      bench::DefaultOptions(WorkloadId::kA, bench::BenchScale::kSmoke);
  options.train_model = false;
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());
  const LatencyModel& model = (*env)->model();
  const Stage& stage = (*env)->workload().jobs[0].stages[0];
  Result<LatencyModel::EmbeddedInstance> embedded = model.Embed(stage, 0);
  FGRO_CHECK_OK(embedded.status());

  constexpr int kCandidates = 2048;
  constexpr int kRepeats = 50;
  Rng rng(29);
  std::vector<LatencyModel::PredictionCandidate> candidates;
  candidates.reserve(kCandidates);
  for (int i = 0; i < kCandidates; ++i) {
    LatencyModel::PredictionCandidate c;
    c.theta.cores = 0.5 * static_cast<double>(rng.UniformInt(1, 16));
    c.theta.memory_gb = static_cast<double>(rng.UniformInt(1, 64));
    c.state.cpu_util = rng.Uniform();
    c.state.mem_util = rng.Uniform();
    c.state.io_util = rng.Uniform();
    c.hardware_type = static_cast<int>(rng.UniformInt(0, 4));
    candidates.push_back(c);
  }
  const double total = static_cast<double>(kCandidates) * kRepeats;

  double scalar_sum = 0.0;
  Stopwatch scalar_timer;
  for (int rep = 0; rep < kRepeats; ++rep) {
    for (const LatencyModel::PredictionCandidate& c : candidates) {
      scalar_sum += model.PredictFromEmbedding(embedded.value(), c.theta,
                                               c.state, c.hardware_type);
    }
  }
  const double scalar_seconds = scalar_timer.ElapsedSeconds();

  LatencyModel::BatchScratch scratch;
  std::vector<double> out(kCandidates);
  double batched_sum = 0.0;
  // Warm the scratch outside the timed region so the steady-state
  // (allocation-free) throughput is what gets reported.
  model.PredictBatch(embedded.value(), candidates, out.data(), &scratch);
  Stopwatch batched_timer;
  for (int rep = 0; rep < kRepeats; ++rep) {
    model.PredictBatch(embedded.value(), candidates, out.data(), &scratch);
    for (double v : out) batched_sum += v;
  }
  const double batched_seconds = batched_timer.ElapsedSeconds();

  const double scalar_rate = total / scalar_seconds;
  const double batched_rate = total / batched_seconds;
  const double speedup = scalar_seconds / batched_seconds;
  const double checksum_delta = batched_sum - scalar_sum;

  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"predictions_per_phase\": %.0f,\n"
                "  \"scalar\": {\"seconds\": %.6f, "
                "\"predictions_per_sec\": %.0f},\n"
                "  \"batched\": {\"seconds\": %.6f, "
                "\"predictions_per_sec\": %.0f},\n"
                "  \"speedup\": %.3f,\n"
                "  \"checksum_delta\": %.17g\n"
                "}\n",
                total, scalar_seconds, scalar_rate, batched_seconds,
                batched_rate, speedup, checksum_delta);
  std::printf("%s", json);
  if (!out_path.empty()) {
    FGRO_CHECK_OK(obs::WriteJsonFile(json, out_path));
    std::printf("  wrote %s\n", out_path.c_str());
  }
  if (checksum_delta != 0.0) {
    std::fprintf(stderr, "FAIL: batched path is not bit-identical\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fgro

int main(int argc, char** argv) {
  // Peel off our flags before google-benchmark sees (and rejects) them.
  bool breakdown_only = false;
  bool inference_only = false;
  std::string breakdown_out;
  std::string json_out;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--breakdown_only") == 0) {
      breakdown_only = true;
    } else if (std::strcmp(argv[i], "--inference_only") == 0) {
      inference_only = true;
    } else if (std::strncmp(argv[i], "--breakdown_out=", 16) == 0) {
      breakdown_out = argv[i] + 16;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  if (inference_only || !json_out.empty()) {
    const int rc = fgro::RunInferenceBench(json_out);
    if (rc != 0 || inference_only) return rc;
  }

  if (breakdown_only || !breakdown_out.empty()) {
    const int rc = fgro::RunBreakdown(breakdown_out);
    if (rc != 0 || breakdown_only) return rc;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
