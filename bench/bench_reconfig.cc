// Online reconfiguration: repair in-flight work instead of riding the
// degradation ladder down. Two regime-change scenarios (a mid-trace drift
// pulse and heavy machine-crash churn), three arms each:
//
//   do-nothing   - no watchdog, no reconfiguration: the replay trusts the
//                  drifted model / stale placements all the way through.
//   degrade-only - the DriftWatchdog demotes stages down the fallback
//                  ladder while alarmed (the pre-reconfiguration behavior).
//   reconfigure  - watchdog plus the ReconfigurationEngine: partial
//                  re-plans on drift alarms and machine transitions,
//                  stale-decision drops inside the dispatch hazard window,
//                  model-based straggler migration, and online fine-tuning
//                  that wins the primary rung back mid-pulse.
//
// The claim under test: reconfigure strictly dominates degrade-only on
// goodput and on WUN plan quality (3:1 latency:cost, normalized against
// the do-nothing arm) in both scenarios, with the wasted-cost overhead of
// killed stragglers and dropped decisions reported rather than hidden.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/snapshot.h"
#include "optimizer/stage_optimizer.h"
#include "service/ro_service.h"

using namespace fgro;
using namespace fgro::bench;

namespace {

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::string FlagValue(int argc, char** argv, const char* prefix) {
  const std::size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
  }
  return "";
}

enum class Arm { kDoNothing, kDegradeOnly, kReconfigure };

const char* ArmName(Arm arm) {
  switch (arm) {
    case Arm::kDoNothing: return "do-nothing";
    case Arm::kDegradeOnly: return "degrade-only";
    case Arm::kReconfigure: return "reconfigure";
  }
  return "?";
}

struct ArmResult {
  std::string scenario;
  Arm arm = Arm::kDoNothing;
  RoSummary summary;
  double wun_quality = 1.0;  // 3:1 latency:cost vs do-nothing; lower=better
};

/// WUN-weighted plan quality relative to the scenario's do-nothing arm:
/// (3 * Lat/Lat_0 + 1 * Cost/Cost_0) / 4. The do-nothing arm is 1.0 by
/// construction; an arm that improves both is below 1.0.
double WunQuality(const RoSummary& s, const RoSummary& baseline) {
  if (baseline.avg_latency <= 0.0 || baseline.avg_cost <= 0.0) return 1.0;
  return (3.0 * (s.avg_latency / baseline.avg_latency) +
          1.0 * (s.avg_cost / baseline.avg_cost)) /
         4.0;
}

void PrintArmRow(const ArmResult& r) {
  const RoSummary& s = r.summary;
  std::printf(
      "    %-13s cov=%5.1f%%  goodput=%5.1f%%  waste=%7.4fm$  Lat=%7.2fs  "
      "Cost=%7.4fm$  WUN=%5.3f\n"
      "                  ladder[P/th0/Fuxi]=%d/%d/%d  alarms=%ld demoted=%ld  "
      "replans=%ld drops=%ld migr=%ld(w%ld) tunes=%ld\n",
      ArmName(r.arm), s.coverage * 100, s.goodput * 100,
      s.total_wasted_cost * 1000, s.avg_latency, s.avg_cost * 1000,
      r.wun_quality, s.fallback_histogram[0], s.fallback_histogram[1],
      s.fallback_histogram[2], s.drift_alarms, s.drift_demoted_stages,
      s.total_replans, s.stale_decision_drops, s.migrations, s.migration_wins,
      s.fine_tunes);
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  const bool quick = HasFlag(argc, argv, "--quick");
  const std::string json_out = FlagValue(argc, argv, "--json_out=");
  PrintHeader("Online reconfiguration: repair vs degrade vs do-nothing");

  ExperimentEnv::Options options = DefaultOptions(
      WorkloadId::kA, quick ? BenchScale::kSmoke : BenchScale::kAblation);
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());
  const Workload& workload = (*env)->workload();

  double span = 0.0;
  for (const Job& job : workload.jobs) {
    span = std::max(span, job.arrival_time);
  }

  // Scenario base options. The drift pulse is noise-free so the q-error is
  // exactly the pulse multiplier and the demote / fine-tune / re-promote
  // cycle is deterministic; stragglers give all three arms real wasted
  // cost to win back. The crash scenario is the fault sweep's churn cranked
  // to ~25% expected downtime, where re-planning against projected
  // liveness is the difference between failover thrash and clean plans.
  auto scenario_options = [&](const std::string& scenario) {
    SimOptions sim_options;
    sim_options.seed = 29;
    if (scenario == "drift-pulse") {
      sim_options.outcome = OutcomeMode::kNoiseFree;
      sim_options.drift_multiplier = 4.0;
      sim_options.drift_start_seconds = 0.25 * span;
      sim_options.drift_end_seconds = 0.60 * span;
      sim_options.faults.enabled = true;
      sim_options.faults.straggler_prob = 0.08;
      sim_options.faults.straggler_slowdown = 6.0;
      sim_options.faults.seed = 41;
    } else {  // crash
      sim_options.outcome = OutcomeMode::kEnvironment;
      sim_options.faults.enabled = true;
      sim_options.faults.machine_failure_rate_per_day = 36.0;
      sim_options.faults.machine_recovery_seconds = 600.0;
      sim_options.faults.straggler_prob = 0.05;
      sim_options.faults.straggler_slowdown = 5.0;
      sim_options.faults.seed = 41;
    }
    return sim_options;
  };

  auto arm_options = [&](const std::string& scenario, Arm arm) {
    SimOptions sim_options = scenario_options(scenario);
    if (arm != Arm::kDoNothing) {
      sim_options.drift_watchdog.enabled = true;
      sim_options.drift_watchdog.window_size = 32;
      sim_options.drift_watchdog.min_samples = 8;
      sim_options.drift_watchdog.alarm_qerror = 2.0;
      sim_options.drift_watchdog.recover_qerror = 1.5;
    }
    if (arm == Arm::kReconfigure) {
      sim_options.reconfig.enabled = true;
      // Straggler-heavy stages (hundreds of instances) need more rescue
      // slots than the conservative default: stage latency is a max, so
      // one uncapped straggler erases every other rescue's win.
      sim_options.reconfig.max_migrations_per_stage = 1024;
      // Same trip point as the speculative execution it replaces, so the
      // comparison against the degrade-only arm is apples-to-apples.
      sim_options.reconfig.migration_threshold = 2.0;
      sim_options.reconfig.fine_tune_min_samples = 16;
      sim_options.reconfig.fine_tune_cooldown_observations = 24;
      sim_options.reconfig.post_tune_trust_observations = 96;
    }
    return sim_options;
  };

  std::vector<ArmResult> results;
  const std::vector<std::string> scenarios = {"drift-pulse", "crash"};
  for (const std::string& scenario : scenarios) {
    std::printf("  scenario: %s\n", scenario.c_str());
    RoSummary baseline;
    for (Arm arm : {Arm::kDoNothing, Arm::kDegradeOnly, Arm::kReconfigure}) {
      StageOptimizer so(StageOptimizer::IpaRaaPathWithFallback());
      Simulator sim(&workload, &(*env)->model(), arm_options(scenario, arm));
      Result<SimResult> result = sim.Run(
          [&](const SchedulingContext& c) { return so.Optimize(c); });
      FGRO_CHECK_OK(result.status());
      ArmResult r;
      r.scenario = scenario;
      r.arm = arm;
      r.summary = Summarize(result.value());
      if (arm == Arm::kDoNothing) baseline = r.summary;
      r.wun_quality = WunQuality(r.summary, baseline);
      PrintArmRow(r);
      results.push_back(std::move(r));
    }
  }

  // Determinism spot-check: the reconfigure arm's merged service result
  // must not depend on the worker count (the ISSUE's byte-identity
  // acceptance bar, exercised here on the bench configuration itself).
  {
    std::vector<RoSummary> by_threads;
    for (int threads : {1, 2, 8}) {
      SimOptions sim_options = arm_options("drift-pulse", Arm::kReconfigure);
      sim_options.service_threads = threads;
      Result<SimResult> result =
          ServeWorkload(workload, &(*env)->model(), sim_options,
                        StageOptimizer::IpaRaaPathWithFallback());
      FGRO_CHECK_OK(result.status());
      by_threads.push_back(Summarize(result.value()));
    }
    bool identical = true;
    for (size_t i = 1; i < by_threads.size(); ++i) {
      identical = identical &&
                  by_threads[i].avg_latency == by_threads[0].avg_latency &&
                  by_threads[i].avg_cost == by_threads[0].avg_cost &&
                  by_threads[i].total_wasted_cost ==
                      by_threads[0].total_wasted_cost &&
                  by_threads[i].total_replans == by_threads[0].total_replans &&
                  by_threads[i].fine_tunes == by_threads[0].fine_tunes;
    }
    std::printf("  service_threads {1,2,8} byte-identical: %s\n",
                identical ? "yes" : "NO - DETERMINISM REGRESSION");
    if (!identical) return 1;
  }

  if (!json_out.empty()) {
    std::string json = "[";
    for (size_t i = 0; i < results.size(); ++i) {
      const ArmResult& r = results[i];
      const RoSummary& s = r.summary;
      char buf[640];
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"scenario\":\"%s\",\"arm\":\"%s\",\"coverage\":%.6f,"
          "\"goodput\":%.6f,\"wasted_cost\":%.8f,\"avg_latency\":%.6f,"
          "\"avg_cost\":%.8f,\"wun_quality\":%.6f,\"drift_alarms\":%ld,"
          "\"demoted_stages\":%ld,\"replans\":%ld,\"stale_drops\":%ld,"
          "\"migrations\":%ld,\"migration_wins\":%ld,\"fine_tunes\":%ld}",
          i > 0 ? "," : "", r.scenario.c_str(), ArmName(r.arm), s.coverage,
          s.goodput, s.total_wasted_cost, s.avg_latency, s.avg_cost,
          r.wun_quality, s.drift_alarms, s.drift_demoted_stages,
          s.total_replans, s.stale_decision_drops, s.migrations,
          s.migration_wins, s.fine_tunes);
      json += buf;
    }
    json += "]\n";
    FGRO_CHECK_OK(obs::WriteJsonFile(json, json_out));
    std::printf("  wrote %s\n", json_out.c_str());
  }

  // The acceptance bar: in BOTH scenarios the reconfigure arm strictly
  // beats degrade-only on goodput and WUN plan quality.
  bool dominated = true;
  for (const std::string& scenario : scenarios) {
    const ArmResult* degrade = nullptr;
    const ArmResult* reconfigure = nullptr;
    for (const ArmResult& r : results) {
      if (r.scenario != scenario) continue;
      if (r.arm == Arm::kDegradeOnly) degrade = &r;
      if (r.arm == Arm::kReconfigure) reconfigure = &r;
    }
    const bool wins =
        reconfigure->summary.goodput > degrade->summary.goodput &&
        reconfigure->wun_quality < degrade->wun_quality;
    std::printf("  %s: reconfigure %s degrade-only (goodput %.1f%% vs "
                "%.1f%%, WUN %.3f vs %.3f)\n",
                scenario.c_str(), wins ? "dominates" : "DOES NOT dominate",
                reconfigure->summary.goodput * 100,
                degrade->summary.goodput * 100, reconfigure->wun_quality,
                degrade->wun_quality);
    dominated = dominated && wins;
  }

  std::printf(
      "\nExpected shape: do-nothing rides the drifted model through the\n"
      "pulse (bad plans, no accounting); degrade-only demotes to theta0 /\n"
      "Fuxi rungs, trading plan quality for safety; reconfigure fine-tunes\n"
      "on its own observations, wins the primary rung back mid-pulse,\n"
      "migrates stragglers off sick machines, and re-plans around crashes\n"
      "- paying a visible wasted-cost overhead for strictly better goodput\n"
      "and WUN plan quality.\n");
  return dominated ? 0 : 1;
}
