// Fault-tolerance sweep: the same workload replayed under increasing
// instance-failure probability (plus machine crashes, stragglers, and
// model-server outages), comparing the model-free Fuxi baseline against
// IPA+RAA(Path) with the graceful-degradation ladder armed. The claim under
// test: the optimizer's benefit does not come at the price of robustness —
// with the ladder it degrades no worse than Fuxi as faults mount, and with
// faults disabled the replay is bit-identical to the happy-path simulator.

#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util.h"
#include "optimizer/fuxi.h"
#include "optimizer/stage_optimizer.h"

using namespace fgro;
using namespace fgro::bench;

namespace {

FaultOptions SweepFaults(double instance_failure_prob) {
  FaultOptions faults;
  faults.enabled = instance_failure_prob > 0.0;
  faults.instance_failure_prob = instance_failure_prob;
  faults.machine_failure_rate_per_day = instance_failure_prob > 0.0 ? 4.0 : 0.0;
  faults.machine_recovery_seconds = 1200.0;
  faults.straggler_prob = instance_failure_prob / 2.0;
  faults.straggler_slowdown = 4.0;
  faults.model_outage_rate_per_day = instance_failure_prob > 0.0 ? 6.0 : 0.0;
  faults.model_outage_seconds = 3600.0;
  // Breaker over the model probe: outage windows trip it after 3 failed
  // probes and later stages short-circuit to the ladder until a half-open
  // probe succeeds.
  faults.model_breaker.enabled = true;
  faults.model_breaker.failure_threshold = 3;
  faults.model_breaker.open_seconds = 900.0;
  faults.seed = 97;
  return faults;
}

void PrintFaultRow(const char* label, const RoSummary& s) {
  std::printf(
      "    %-16s cov=%5.1f%%  Lat(in)=%7.2fs  Cost=%8.4fm$  "
      "goodput=%5.1f%%  waste=%8.4fm$  retries=%-4ld failovers=%-3ld "
      "spec=%ld/%-3ld  ladder[P/th0/Fuxi]=%d/%d/%d\n",
      label, s.coverage * 100, s.avg_latency_in, s.avg_cost * 1000,
      s.goodput * 100, s.total_wasted_cost * 1000, s.total_retries,
      s.total_failovers, s.speculative_wins, s.speculative_copies,
      s.fallback_histogram[0], s.fallback_histogram[1],
      s.fallback_histogram[2]);
  if (s.breaker_trips > 0 || s.breaker_short_circuits > 0) {
    std::printf("    %-16s breaker: trips=%ld short-circuits=%ld "
                "recoveries=%ld\n",
                "", s.breaker_trips, s.breaker_short_circuits,
                s.breaker_recoveries);
  }
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  // --quick: smoke scale + a two-point sweep, for the CI smoke-bench step.
  const bool quick = HasFlag(argc, argv, "--quick");
  PrintHeader(
      "Fault tolerance: failure-rate sweep, Fuxi vs IPA+RAA(Path)+FB");

  ExperimentEnv::Options options = DefaultOptions(
      WorkloadId::kA, quick ? BenchScale::kSmoke : BenchScale::kAblation);
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());

  StageOptimizer so(StageOptimizer::IpaRaaPathWithFallback());
  const Simulator::SchedulerFn fuxi_fn = [](const SchedulingContext& c) {
    return FuxiSchedule(c);
  };
  const Simulator::SchedulerFn so_fn = [&](const SchedulingContext& c) {
    return so.Optimize(c);
  };

  const std::vector<double> sweep =
      quick ? std::vector<double>{0.0, 0.05}
            : std::vector<double>{0.0, 0.01, 0.05, 0.10};
  for (double p : sweep) {
    std::printf("  instance-failure prob %.0f%% (machine crashes, "
                "stragglers, model outages scale along)\n", p * 100);
    RoSummary fuxi_summary, so_summary;
    for (int which = 0; which < 2; ++which) {
      SimOptions sim_options;
      sim_options.outcome = OutcomeMode::kEnvironment;
      sim_options.seed = 29;
      sim_options.faults = SweepFaults(p);
      Simulator sim(&(*env)->workload(), &(*env)->model(), sim_options);
      Result<SimResult> result = sim.Run(which == 0 ? fuxi_fn : so_fn);
      FGRO_CHECK_OK(result.status());
      (which == 0 ? fuxi_summary : so_summary) = Summarize(result.value());
    }
    PrintFaultRow("Fuxi", fuxi_summary);
    PrintFaultRow("IPA+RAA(Path)+FB", so_summary);
    ReductionRates rr = ComputeReduction(fuxi_summary, so_summary);
    std::printf("    -> RR Lat(in)=%4.0f%%  RR Cost=%4.0f%%  "
                "goodput delta=%+.1fpp\n",
                rr.latency_in_rr * 100, rr.cost_rr * 100,
                (so_summary.goodput - fuxi_summary.goodput) * 100);
  }

  std::printf(
      "\nExpected shape: as failures mount, both schedulers lose goodput to\n"
      "retries and speculation, but IPA+RAA(Path)+FB keeps its latency/cost\n"
      "advantage (RRs stay positive) and its goodput degrades no faster\n"
      "than Fuxi's; model outages show up as theta0/Fuxi rungs in the\n"
      "fallback histogram, never as lost stages.\n");
  return 0;
}
