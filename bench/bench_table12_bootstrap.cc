// Reproduces Table 4 bottom / Table 12 (Expt 12): the impact of model
// accuracy on the resource-optimization benefit. Three bootstrap models of
// decreasing accuracy (MCI+GTN > MCI+TLSTM > QPPNet-style) each drive RAA
// on top of Fuxi's placement plan; the actual latency is simulated by a GPR
// pre-trained on that bootstrap model's own predictions (so a worse model
// implies both worse decisions and wider noise).
//
// Paper shape: more accurate models yield larger latency reduction rates;
// cost reductions degrade much less (errors cancel in the global metric).

#include <cstdio>

#include "bench_util.h"
#include "model/gpr.h"
#include "optimizer/fuxi.h"
#include "optimizer/raa.h"

using namespace fgro;
using namespace fgro::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  PrintHeader("Table 12 (Expt 12): bootstrap model accuracy vs RAA benefit");
  struct Variant {
    ModelKind kind;
    bool use_aim;
  };
  const Variant kVariants[] = {
      {ModelKind::kMciGtn, true},
      {ModelKind::kMciTlstm, true},
      {ModelKind::kQppnetOriginal, false},
  };
  for (WorkloadId id : {WorkloadId::kA, WorkloadId::kB, WorkloadId::kC}) {
    std::printf("  workload %s:\n", WorkloadName(id));
    for (const Variant& variant : kVariants) {
      ExperimentEnv::Options options =
          DefaultOptions(id, BenchScale::kAblation);
      options.scale = 0.14;
      options.model_kind = variant.kind;
      if (!variant.use_aim) options.channels.aim = AimMode::kOff;
      Result<std::unique_ptr<ExperimentEnv>> env =
          ExperimentEnv::Build(options);
      FGRO_CHECK_OK(env.status());
      Result<ModelMetrics> metrics = TestMetrics(**env);
      FGRO_CHECK_OK(metrics.status());

      GprNoiseModel gpr;
      {
        Result<std::vector<double>> preds = (*env)->model().PredictRecords(
            (*env)->dataset(), (*env)->split().val);
        FGRO_CHECK_OK(preds.status());
        std::vector<double> actual;
        for (int idx : (*env)->split().val) {
          actual.push_back((*env)->dataset()
                               .records[static_cast<size_t>(idx)]
                               .actual_latency);
        }
        FGRO_CHECK_OK(gpr.Fit(preds.value(), actual));
      }

      SimOptions sim_options;
      sim_options.outcome = OutcomeMode::kGprNoise;
      sim_options.gpr = &gpr;
      sim_options.cluster.num_machines = 96;

      // Baseline: Fuxi placement + HBO theta0.
      Simulator fuxi_sim(&(*env)->workload(), &(*env)->model(), sim_options);
      Result<SimResult> fuxi_result = fuxi_sim.Run(
          [](const SchedulingContext& c) { return FuxiSchedule(c); });
      FGRO_CHECK_OK(fuxi_result.status());
      RoSummary fuxi = Summarize(fuxi_result.value());

      // RAA on top of the (borrowed) Fuxi placement.
      Simulator raa_sim(&(*env)->workload(), &(*env)->model(), sim_options);
      Result<SimResult> raa_result =
          raa_sim.Run([](const SchedulingContext& c) {
            StageDecision decision = FuxiSchedule(c);
            if (!decision.feasible) return decision;
            RaaResult raa = RunRaa(c, decision, nullptr, RaaOptions{});
            if (raa.ok) {
              decision.theta_of_instance = std::move(raa.theta_of_instance);
            }
            decision.solve_seconds += raa.solve_seconds;
            return decision;
          });
      FGRO_CHECK_OK(raa_result.status());
      ReductionRates rr =
          ComputeReduction(fuxi, Summarize(raa_result.value()));
      std::printf("    %-11s WMAPE=%5.1f%% GlbErr=%4.1f%%  ->  "
                  "RAA RR: Lat(in)=%4.0f%%  Cost=%4.0f%%\n",
                  ModelKindName(variant.kind), metrics->wmape * 100,
                  metrics->glberr * 100, rr.latency_in_rr * 100,
                  rr.cost_rr * 100);
    }
  }
  std::printf("\nPaper shape: the more accurate the bootstrap model, the\n"
              "larger the latency reduction; cost reduction is more robust\n"
              "to model error.\n");
  return 0;
}
