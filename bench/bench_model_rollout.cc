// Safe model lifecycle rollout: gated promotion vs unguarded adoption vs
// never updating. Three retrain scenarios, three arms each:
//
//   never-update   - the lifecycle observes but produces no candidates
//                    (ModelServer's kStatic policy embedded in the replay).
//   unconditional  - every scheduled retrain is adopted on the spot: no
//                    gate, no shadow window, no rollback. This is the
//                    unguarded hot-swap path the lifecycle replaces.
//   gated          - the full pipeline: static gate (finite weights,
//                    holdout WMAPE within the regression budget), shadow
//                    canary scoring live observations against the
//                    incumbent, atomic promotion, probation rollback.
//
// Scenarios: a clean drift regime (retrains genuinely help — the gated
// arm must promote and beat never-update on serving WMAPE) and two
// poisoned-retrain regimes (label-shuffled training data, NaN-injected
// weights) where every candidate is sabotaged and the gated arm must
// contain the damage: reject or roll back within probation, and hold
// serving WMAPE and goodput no worse than never updating at all — while
// the unconditional arm demonstrably adopts the poison.
//
// Exit status is the acceptance bar: non-zero unless the gated arm
// satisfies all of the above AND the service-mode promotion pipeline is
// byte-identical across service_threads {1, 2, 8}.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/snapshot.h"
#include "optimizer/stage_optimizer.h"
#include "service/ro_service.h"

using namespace fgro;
using namespace fgro::bench;

namespace {

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::string FlagValue(int argc, char** argv, const char* prefix) {
  const std::size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
  }
  return "";
}

enum class Arm { kNeverUpdate, kUnconditional, kGated };

const char* ArmName(Arm arm) {
  switch (arm) {
    case Arm::kNeverUpdate: return "never-update";
    case Arm::kUnconditional: return "unconditional";
    case Arm::kGated: return "gated";
  }
  return "?";
}

struct Scenario {
  std::string name;
  ModelLifecycleOptions::RetrainPoison poison =
      ModelLifecycleOptions::RetrainPoison::kNone;
  bool drift = false;
};

struct ArmResult {
  std::string scenario;
  Arm arm = Arm::kNeverUpdate;
  RoSummary summary;
};

void PrintArmRow(const ArmResult& r) {
  const RoSummary& s = r.summary;
  std::printf(
      "    %-13s WMAPE=%6.1f%%  goodput=%5.1f%%  cov=%5.1f%%  Lat=%7.2fs  "
      "Cost=%7.4fm$\n"
      "                  retrains=%ld promo=%ld rollback=%ld gate-rej=%ld "
      "shadow-rej=%ld wasted=%ld(%.2fs)\n",
      ArmName(r.arm), s.serving_wmape * 100, s.goodput * 100,
      s.coverage * 100, s.avg_latency, s.avg_cost * 1000,
      s.lifecycle_retrains, s.promotions, s.rollbacks, s.gate_rejects,
      s.shadow_rejects, s.wasted_decisions, s.wasted_solve_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  const bool quick = HasFlag(argc, argv, "--quick");
  const std::string json_out = FlagValue(argc, argv, "--json_out=");
  PrintHeader("Model rollout: gated vs unconditional vs never-update");

  ExperimentEnv::Options options = DefaultOptions(
      WorkloadId::kA, quick ? BenchScale::kSmoke : BenchScale::kAblation);
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());
  const Workload& workload = (*env)->workload();

  // Clean-drift is a regime change (not a pulse): the seed model is stale
  // for the whole replay, so a promoted retrain pays off for the rest of
  // the run. The poison scenarios run the steady-state regime — a
  // contained poisoned retrain must leave the replay decision-for-decision
  // identical to never updating.
  const std::vector<Scenario> scenarios = {
      {"clean-drift", ModelLifecycleOptions::RetrainPoison::kNone, true},
      {"label-shuffle", ModelLifecycleOptions::RetrainPoison::kLabelShuffle,
       false},
      {"nan-inject", ModelLifecycleOptions::RetrainPoison::kNanInject, false},
  };

  auto arm_options = [&](const Scenario& scenario, Arm arm) {
    SimOptions sim_options;
    sim_options.outcome = OutcomeMode::kNoiseFree;
    sim_options.seed = 13;
    if (scenario.drift) {
      sim_options.drift_multiplier = 3.0;
      sim_options.drift_start_seconds = 0.0;
      sim_options.drift_end_seconds = 1e18;
    }
    sim_options.lifecycle.enabled = true;
    sim_options.lifecycle.shadow_observations = 16;
    sim_options.lifecycle.probation_observations = 32;
    sim_options.lifecycle.poison = scenario.poison;
    if (arm != Arm::kNeverUpdate) {
      sim_options.lifecycle.retrain_period_seconds = 40.0;
      sim_options.lifecycle.retrain_min_samples = 16;
      if (scenario.poison == ModelLifecycleOptions::RetrainPoison::kNone) {
        sim_options.lifecycle.retrain_epochs = 4;
        sim_options.lifecycle.retrain_lr = 3e-3;
      } else {
        // Poison diverges hard so the unguarded arm's collapse is visible.
        sim_options.lifecycle.retrain_epochs = 6;
        sim_options.lifecycle.retrain_lr = 0.05;
      }
    }
    sim_options.lifecycle.unconditional = (arm == Arm::kUnconditional);
    return sim_options;
  };

  std::vector<ArmResult> results;
  for (const Scenario& scenario : scenarios) {
    std::printf("  scenario: %s\n", scenario.name.c_str());
    for (Arm arm : {Arm::kNeverUpdate, Arm::kUnconditional, Arm::kGated}) {
      StageOptimizer so(StageOptimizer::IpaRaaPathWithFallback());
      Simulator sim(&workload, &(*env)->model(), arm_options(scenario, arm));
      Result<SimResult> result = sim.Run(
          [&](const SchedulingContext& c) { return so.Optimize(c); });
      FGRO_CHECK_OK(result.status());
      ArmResult r;
      r.scenario = scenario.name;
      r.arm = arm;
      r.summary = Summarize(result.value());
      PrintArmRow(r);
      results.push_back(std::move(r));
    }
  }

  auto find = [&](const std::string& scenario, Arm arm) -> const RoSummary& {
    for (const ArmResult& r : results) {
      if (r.scenario == scenario && r.arm == arm) return r.summary;
    }
    static const RoSummary empty;
    return empty;
  };

  // Determinism leg of the acceptance bar: a *live* promotion pipeline
  // (candidates from the reconfig engine's fine-tunes — sim time is
  // per-job constant in service mode, so the time-scheduled retrain path
  // stays quiet there by construction) merged byte-identically across
  // worker counts.
  bool identical = true;
  bool pipeline_live = false;
  {
    auto serve_with = [&](int threads) {
      SimOptions sim_options;
      sim_options.outcome = OutcomeMode::kNoiseFree;
      sim_options.seed = 13;
      sim_options.service_threads = threads;
      sim_options.drift_multiplier = 3.0;
      sim_options.drift_start_seconds = 0.0;
      sim_options.drift_end_seconds = 1e18;
      sim_options.drift_watchdog.enabled = true;
      sim_options.drift_watchdog.window_size = 16;
      sim_options.drift_watchdog.min_samples = 4;
      sim_options.reconfig.enabled = true;
      sim_options.reconfig.fine_tune_min_samples = 8;
      sim_options.reconfig.fine_tune_cooldown_observations = 8;
      sim_options.lifecycle.enabled = true;
      sim_options.lifecycle.shadow_observations = 8;
      sim_options.lifecycle.probation_observations = 16;
      Result<SimResult> result =
          ServeWorkload(workload, &(*env)->model(), sim_options,
                        StageOptimizer::IpaRaaPathWithFallback());
      FGRO_CHECK_OK(result.status());
      return Summarize(result.value());
    };
    std::vector<RoSummary> by_threads;
    for (int threads : {1, 2, 8}) by_threads.push_back(serve_with(threads));
    for (size_t i = 1; i < by_threads.size(); ++i) {
      identical = identical &&
                  by_threads[i].avg_latency == by_threads[0].avg_latency &&
                  by_threads[i].avg_cost == by_threads[0].avg_cost &&
                  by_threads[i].serving_wmape == by_threads[0].serving_wmape &&
                  by_threads[i].promotions == by_threads[0].promotions &&
                  by_threads[i].rollbacks == by_threads[0].rollbacks &&
                  by_threads[i].gate_rejects == by_threads[0].gate_rejects &&
                  by_threads[i].shadow_rejects ==
                      by_threads[0].shadow_rejects &&
                  by_threads[i].fine_tunes == by_threads[0].fine_tunes &&
                  by_threads[i].wasted_decisions ==
                      by_threads[0].wasted_decisions;
    }
    pipeline_live = by_threads[0].promotions > 0;
    std::printf(
        "  service_threads {1,2,8} byte-identical: %s (promotions=%ld)\n",
        identical ? "yes" : "NO - DETERMINISM REGRESSION",
        by_threads[0].promotions);
  }

  if (!json_out.empty()) {
    std::string json = "[";
    for (size_t i = 0; i < results.size(); ++i) {
      const ArmResult& r = results[i];
      const RoSummary& s = r.summary;
      char buf[640];
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"scenario\":\"%s\",\"arm\":\"%s\",\"serving_wmape\":%.6f,"
          "\"goodput\":%.6f,\"coverage\":%.6f,\"avg_latency\":%.6f,"
          "\"avg_cost\":%.8f,\"retrains\":%ld,\"promotions\":%ld,"
          "\"rollbacks\":%ld,\"gate_rejects\":%ld,\"shadow_rejects\":%ld,"
          "\"wasted_decisions\":%ld,\"wasted_solve_seconds\":%.6f}",
          i > 0 ? "," : "", r.scenario.c_str(), ArmName(r.arm),
          s.serving_wmape, s.goodput, s.coverage, s.avg_latency, s.avg_cost,
          s.lifecycle_retrains, s.promotions, s.rollbacks, s.gate_rejects,
          s.shadow_rejects, s.wasted_decisions, s.wasted_solve_seconds);
      json += buf;
    }
    json += "]\n";
    FGRO_CHECK_OK(obs::WriteJsonFile(json, json_out));
    std::printf("  wrote %s\n", json_out.c_str());
  }

  // The acceptance bar.
  bool pass = identical && pipeline_live;

  // Clean drift: gated retrains promote and beat never-update (kStatic)
  // on serving accuracy.
  {
    const RoSummary& gated = find("clean-drift", Arm::kGated);
    const RoSummary& never = find("clean-drift", Arm::kNeverUpdate);
    const bool ok = gated.lifecycle_retrains > 0 && gated.promotions > 0 &&
                    gated.serving_wmape < never.serving_wmape;
    std::printf("  clean-drift: gated %s (WMAPE %.1f%% vs never-update "
                "%.1f%%, promotions=%ld)\n",
                ok ? "promotes and wins" : "FAILS",
                gated.serving_wmape * 100, never.serving_wmape * 100,
                gated.promotions);
    pass = pass && ok;
  }

  // Poison: the gated arm contains every sabotaged retrain — rejected at
  // the gate / in shadow, or promoted-then-rolled-back inside probation —
  // and ends no worse than never updating; the unconditional arm adopts
  // the same poison, proving the gate is load-bearing.
  for (const char* name : {"label-shuffle", "nan-inject"}) {
    const RoSummary& gated = find(name, Arm::kGated);
    const RoSummary& never = find(name, Arm::kNeverUpdate);
    const RoSummary& uncond = find(name, Arm::kUnconditional);
    const bool contained =
        gated.lifecycle_retrains > 0 &&
        gated.promotions == gated.rollbacks &&  // nothing poisoned survives
        gated.gate_rejects + gated.shadow_rejects + gated.rollbacks > 0;
    const bool held =
        gated.serving_wmape <= never.serving_wmape * 1.01 + 1e-12 &&
        gated.goodput >= never.goodput - 0.005;
    const bool uncond_adopts = uncond.promotions > 0;
    std::printf("  %s: gated %s (WMAPE %.1f%% vs never-update %.1f%%; "
                "unconditional adopts %ld poisoned models, WMAPE %.1f%%)\n",
                name, contained && held ? "contains the poison" : "FAILS",
                gated.serving_wmape * 100, never.serving_wmape * 100,
                uncond.promotions, uncond.serving_wmape * 100);
    pass = pass && contained && held && uncond_adopts;
  }

  std::printf(
      "\nExpected shape: under the clean drift regime the scheduled retrain\n"
      "learns the new regime from live observations, passes gate + shadow,\n"
      "and the promotion halves the serving error never-update rides to the\n"
      "end. Under poisoned retrains the unconditional arm hot-swaps garbage\n"
      "into the serving path, while the gated arm rejects it (or rolls it\n"
      "back within probation) and stays decision-for-decision at the\n"
      "never-update baseline.\n");
  return pass ? 0 : 1;
}
