// Reproduces Fig. 9(c) (Expt 5): comparison of modeling tools — original
// QPPNet and TLSTM (plan channel only, as published for single-machine
// DBMSs) against their MCI retrofits and our MCI+GTN.
//
// Paper shape: originals are 2-3x worse than MCI+GTN; the MCI retrofit
// recovers most of the gap; MCI+TLSTM is close to MCI+GTN.

#include <cstdio>

#include "bench_util.h"

using namespace fgro;
using namespace fgro::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  PrintHeader("Fig. 9(c) (Expt 5): modeling tools, test WMAPE");
  struct Variant {
    ModelKind kind;
    bool use_aim;
  };
  const Variant kVariants[] = {
      {ModelKind::kQppnetOriginal, false},
      {ModelKind::kTlstmOriginal, false},
      {ModelKind::kMciQppnet, true},
      {ModelKind::kMciTlstm, true},
      {ModelKind::kMciGtn, true},
  };
  for (WorkloadId id : {WorkloadId::kA, WorkloadId::kB, WorkloadId::kC}) {
    std::printf("  workload %s:\n", WorkloadName(id));
    for (const Variant& variant : kVariants) {
      ExperimentEnv::Options options =
          DefaultOptions(id, BenchScale::kAblation);
      options.model_kind = variant.kind;
      if (!variant.use_aim) options.channels.aim = AimMode::kOff;
      Result<std::unique_ptr<ExperimentEnv>> env =
          ExperimentEnv::Build(options);
      FGRO_CHECK_OK(env.status());
      Result<ModelMetrics> metrics = TestMetrics(**env);
      FGRO_CHECK_OK(metrics.status());
      std::printf("    %-11s WMAPE=%5.1f%%  MdErr=%5.1f%%  Corr=%5.1f%%\n",
                  ModelKindName(variant.kind), metrics->wmape * 100,
                  metrics->mderr * 100, metrics->corr * 100);
    }
  }
  std::printf("\nPaper shape: QPPNet 22-36%%, TLSTM 15-31%% (2-3x worse than\n"
              "MCI+GTN's 8.6-19%%); MCI retrofits close most of the gap.\n");
  return 0;
}
