// Reproduces Table 2 / Table 11 (Expts 8-10) and the busy/idle detail of
// Figs. 23-28: the stage optimizer variants and the generic MOO baselines
// replayed over per-day busy/idle subworkloads, reported as average
// reduction rates (RR) against the Fuxi scheduler, with coverage and solve
// times.
//
// Our methods run over every subworkload; the (very slow) generic MOO
// baselines run on the first subworkload of each workload — their being
// 1-2 orders of magnitude slower IS the finding.

#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "optimizer/fuxi.h"
#include "optimizer/moo_baselines.h"
#include "optimizer/stage_optimizer.h"

using namespace fgro;
using namespace fgro::bench;

namespace {

struct ConfigRow {
  std::string name;
  Simulator::SchedulerFn scheduler;
  bool baselines_only_first = false;
};

struct Aggregate {
  double coverage_sum = 0, lat_rr_sum = 0, cost_rr_sum = 0;
  double avg_solve_sum = 0, max_solve = 0;
  double busy_lat_rr = 0, idle_lat_rr = 0;
  int n = 0, n_busy = 0, n_idle = 0;
};

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  PrintHeader(
      "Table 2 (Expts 8-10): SO variants & MOO baselines vs Fuxi, "
      "29 subworkloads");

  for (WorkloadId id : {WorkloadId::kA, WorkloadId::kB, WorkloadId::kC}) {
    ExperimentEnv::Options options = DefaultOptions(id, BenchScale::kHeadline);
    options.scale = 0.16;
    options.train.epochs = 12;
    Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
    FGRO_CHECK_OK(env.status());
    std::vector<Subworkload> subworkloads =
        MakeSubworkloads((*env)->workload());
    std::printf("  workload %s: %zu subworkloads\n", WorkloadName(id),
                subworkloads.size());

    std::vector<ConfigRow> rows;
    auto add_so = [&](StageOptimizer::Config config) {
      auto so = std::make_shared<StageOptimizer>(config);
      rows.push_back({StageOptimizer::ConfigName(config),
                      [so](const SchedulingContext& c) {
                        return so->Optimize(c);
                      }});
    };
    add_so(StageOptimizer::IpaOrg());
    add_so(StageOptimizer::IpaCluster());
    add_so(StageOptimizer::IpaRaaWithoutClustering());
    add_so(StageOptimizer::IpaRaaDbscan());
    add_so(StageOptimizer::IpaRaaGeneral());
    add_so(StageOptimizer::IpaRaaPath());
    for (MooBaselineKind kind :
         {MooBaselineKind::kEvo, MooBaselineKind::kWsSample,
          MooBaselineKind::kPfMogd}) {
      for (bool plan_b : {false, true}) {
        MooBaselineOptions bopt;
        bopt.kind = kind;
        bopt.ipa_placement = plan_b;
        bopt.time_limit_seconds = 20.0;
        bopt.evo_population = 16;
        bopt.evo_generations = 12;
        bopt.ws_samples = 1200;
        bopt.pf_levels = 4;
        rows.push_back({MooBaselineName(bopt),
                        [bopt](const SchedulingContext& c) {
                          return RunMooBaseline(c, bopt);
                        },
                        /*baselines_only_first=*/true});
      }
    }

    // Fuxi baseline per subworkload (kept per stage for paired RRs).
    std::vector<SimResult> fuxi(subworkloads.size());
    for (size_t s = 0; s < subworkloads.size(); ++s) {
      SimOptions sim_options;
      sim_options.cluster = subworkloads[s].cluster;
      sim_options.outcome = OutcomeMode::kEnvironment;
      sim_options.seed = 500 + s;
      Simulator sim(&(*env)->workload(), &(*env)->model(), sim_options);
      Result<SimResult> result = sim.RunJobs(
          [](const SchedulingContext& c) { return FuxiSchedule(c); },
          subworkloads[s].job_indices);
      FGRO_CHECK_OK(result.status());
      fuxi[s] = std::move(result).value();
    }
    {
      RoSummary total;
      for (const SimResult& f : fuxi) {
        RoSummary summary = Summarize(f);
        total.avg_latency_in += summary.avg_latency_in / subworkloads.size();
        total.avg_cost += summary.avg_cost / subworkloads.size();
        total.coverage += summary.coverage / subworkloads.size();
      }
      std::printf("  %-18s cov=%4.0f%%  Lat(in)=%7.2fs  Cost=%8.4fm$  "
                  "(absolute baseline)\n",
                  "Fuxi", total.coverage * 100, total.avg_latency_in,
                  total.avg_cost * 1000);
    }

    for (const ConfigRow& row : rows) {
      Aggregate agg;
      size_t limit = row.baselines_only_first ? 1 : subworkloads.size();
      for (size_t s = 0; s < limit; ++s) {
        SimOptions sim_options;
        sim_options.cluster = subworkloads[s].cluster;
        sim_options.outcome = OutcomeMode::kEnvironment;
        sim_options.seed = 500 + s;
        Simulator sim(&(*env)->workload(), &(*env)->model(), sim_options);
        Result<SimResult> result =
            sim.RunJobs(row.scheduler, subworkloads[s].job_indices);
        FGRO_CHECK_OK(result.status());
        RoSummary summary = Summarize(result.value());
        // RRs over stages feasible in BOTH runs, so low-coverage methods
        // are not judged on a cherry-picked subset.
        PairedSummaries paired = SummarizePaired(fuxi[s], result.value());
        if (paired.paired_stages == 0) continue;
        ReductionRates rr = ComputeReduction(paired.baseline, paired.method);
        agg.coverage_sum += summary.coverage;
        agg.lat_rr_sum += rr.latency_in_rr;
        agg.cost_rr_sum += rr.cost_rr;
        agg.avg_solve_sum += summary.avg_solve_ms;
        agg.max_solve = std::max(agg.max_solve, summary.max_solve_ms);
        agg.n++;
        bool busy = subworkloads[s].name.find("busy") != std::string::npos;
        if (busy) {
          agg.busy_lat_rr += rr.latency_in_rr;
          agg.n_busy++;
        } else {
          agg.idle_lat_rr += rr.latency_in_rr;
          agg.n_idle++;
        }
      }
      if (agg.n == 0) {
        std::printf("  %-18s no feasible stages within the time limit "
                    "(coverage 0%%)\n", row.name.c_str());
        continue;
      }
      std::printf("  %-18s cov=%4.0f%%  RR Lat(in)=%4.0f%%  RR Cost=%4.0f%%  "
                  "avgT=%8.1fms  maxT=%9.1fms%s\n",
                  row.name.c_str(), 100 * agg.coverage_sum / agg.n,
                  100 * agg.lat_rr_sum / agg.n, 100 * agg.cost_rr_sum / agg.n,
                  agg.avg_solve_sum / agg.n, agg.max_solve,
                  row.baselines_only_first ? "  [first subworkload only]"
                                           : "");
      if (!row.baselines_only_first && agg.n_busy > 0 && agg.n_idle > 0) {
        std::printf("    %46s busy RR=%4.0f%%  idle RR=%4.0f%%  "
                    "(Fig. 24/28 detail)\n",
                    "", 100 * agg.busy_lat_rr / agg.n_busy,
                    100 * agg.idle_lat_rr / agg.n_idle);
      }
    }
  }
  std::printf(
      "\nPaper shape: IPA(Cluster) matches IPA(Org)'s reductions at a\n"
      "fraction of the solve time; IPA+RAA(Path) is the best overall and\n"
      "RAA(W/O_C)/RAA(DBSCAN) pay orders-of-magnitude more solve time;\n"
      "generic EVO/WS/PF baselines lose coverage and/or run 1-2 orders\n"
      "slower, and plan-B (IPA+...) hybrids remain dominated by\n"
      "IPA+RAA(Path). Idle clusters allow larger reductions than busy.\n");
  return 0;
}
