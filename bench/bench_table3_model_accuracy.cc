// Reproduces Table 3 (Expt 1): accuracy of the best instance-level model
// (MCI+GTN, all channels + AIM) on workloads A-C, plus the Expt 1 breakdown
// attributing error to operator types (Fig. 21: IO-intensive operators
// dominate the error).
//
// Paper values: WMAPE 8.6/19.0/15.1%, MdErr 7.4/15.1/12.7%,
// 95%Err 62-97%, Corr 96-98%, GlbErr 1.9-5.4%.

#include <cstdio>
#include <map>

#include "bench_util.h"

using namespace fgro;
using namespace fgro::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  PrintHeader("Table 3 (Expt 1): MCI+GTN instance-latency model accuracy");
  for (WorkloadId id : {WorkloadId::kA, WorkloadId::kB, WorkloadId::kC}) {
    ExperimentEnv::Options options = DefaultOptions(id, BenchScale::kHeadline);
    Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
    FGRO_CHECK_OK(env.status());
    Result<ModelMetrics> metrics = TestMetrics(**env);
    FGRO_CHECK_OK(metrics.status());
    PrintMetricsRow(std::string("workload ") +
                        WorkloadName(id),
                    metrics.value());

    // Expt 1 breakdown: attribute each test instance's absolute error to
    // its operators proportionally to their share of the actual runtime,
    // then aggregate by operator type (WMAPE contribution).
    Result<std::vector<double>> preds = (*env)->TestPredictions();
    FGRO_CHECK_OK(preds.status());
    std::map<OperatorType, double> err_contrib;
    double actual_sum = 0.0;
    for (size_t k = 0; k < (*env)->split().test.size(); ++k) {
      const InstanceRecord& r =
          (*env)->dataset().records[static_cast<size_t>(
              (*env)->split().test[k])];
      const Stage& stage = (*env)->dataset().StageOf(r);
      double abs_err = std::abs(r.actual_latency - preds.value()[k]);
      actual_sum += r.actual_latency;
      double op_total = 0.0;
      for (float s : r.op_seconds) op_total += s;
      if (op_total <= 0.0) continue;
      for (size_t o = 0; o < r.op_seconds.size(); ++o) {
        err_contrib[stage.operators[o].type] +=
            abs_err * r.op_seconds[o] / op_total;
      }
    }
    std::vector<std::pair<double, OperatorType>> ranked;
    double io_share = 0.0, total_share = 0.0;
    for (const auto& [type, err] : err_contrib) {
      ranked.push_back({err / actual_sum, type});
      total_share += err / actual_sum;
      if (IsIoIntensive(type)) io_share += err / actual_sum;
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::printf("    top error contributors:");
    for (size_t i = 0; i < std::min<size_t>(3, ranked.size()); ++i) {
      std::printf(" %s(%.1f%%)", OperatorTypeName(ranked[i].second),
                  ranked[i].first * 100);
    }
    std::printf("  [IO-intensive share of WMAPE: %.0f%%]\n",
                100.0 * io_share / std::max(1e-12, total_share));
  }
  std::printf("\nPaper shape: 9-19%% WMAPE, MdErr below WMAPE, GlbErr 3-4.5x\n"
              "smaller than WMAPE (errors cancel in the global cost), and\n"
              "IO-intensive operators (StreamLineWrite/TableScan/MergeJoin)\n"
              "contribute 59-84%% of the error.\n");
  return 0;
}
