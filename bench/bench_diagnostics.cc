// Reproduces the diagnoses of Appendix F.15 (Figs. 30-33): the per-instance
// latency distribution after RAA (uneven behavior / spikes), the model's
// latency-vs-cores response for representative instances (Fig. 32's
// "nonintuitive" regions outside the observed plan window), and the
// clustering sanity check (Fig. 33: instances of a cluster have close
// latencies).

#include <cstdio>

#include "bench_util.h"
#include "clustering/machine_clustering.h"
#include "common/math_utils.h"
#include "env/ground_truth.h"
#include "hbo/hbo.h"
#include "optimizer/ipa_clustered.h"
#include "optimizer/raa.h"

using namespace fgro;
using namespace fgro::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  PrintHeader("Appendix F.15 diagnostics (Figs. 30-33)");
  ExperimentEnv::Options options =
      DefaultOptions(WorkloadId::kC, BenchScale::kAblation);
  options.scale = 0.15;
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());

  // Pick a wide stage.
  const Stage* stage = nullptr;
  for (const Job& job : (*env)->workload().jobs) {
    for (const Stage& s : job.stages) {
      if (stage == nullptr || s.instance_count() > stage->instance_count()) {
        stage = &s;
      }
    }
  }
  Cluster cluster(ClusterOptions{.num_machines = 96, .seed = 3});
  Hbo hbo;
  HboRecommendation rec = hbo.Recommend(*stage);
  SchedulingContext context;
  context.stage = stage;
  context.cluster = &cluster;
  context.model = &(*env)->model();
  context.theta0 = rec.theta0;

  ClusteredIpaResult ipa = IpaClusteredSchedule(context);
  FGRO_CHECK(ipa.decision.feasible);
  RaaResult raa = RunRaa(context, ipa.decision, &ipa.groups, RaaOptions{});
  FGRO_CHECK(raa.ok);

  // Fig. 30/31: instance latency distribution before/after RAA (true env).
  GroundTruthEnv gt((*env)->workload().profile.env);
  std::vector<double> before, after;
  for (int i = 0; i < stage->instance_count(); ++i) {
    const Machine& machine = cluster.machine(
        ipa.decision.machine_of_instance[static_cast<size_t>(i)]);
    before.push_back(
        gt.ExpectedLatency(*stage, i, machine, context.theta0).total);
    after.push_back(gt.ExpectedLatency(*stage, i, machine,
                                       raa.theta_of_instance[static_cast<size_t>(i)])
                        .total);
  }
  std::printf("  stage with %d instances, theta0=(%g cores, %g GB):\n",
              stage->instance_count(), rec.theta0.cores,
              rec.theta0.memory_gb);
  std::printf("    before RAA: p5=%.1fs p50=%.1fs p95=%.1fs max=%.1fs "
              "spread(max/p50)=%.1fx\n",
              Percentile(before, 5), Percentile(before, 50),
              Percentile(before, 95), Max(before),
              Max(before) / Percentile(before, 50));
  std::printf("    after  RAA: p5=%.1fs p50=%.1fs p95=%.1fs max=%.1fs "
              "spread(max/p50)=%.1fx  (uneven tail remains: Fig. 30/31)\n",
              Percentile(after, 5), Percentile(after, 50),
              Percentile(after, 95), Max(after),
              Max(after) / Percentile(after, 50));

  // Fig. 32: model latency response over cores for three representatives.
  std::printf("  Fig. 32: predicted latency vs cores (memory fixed 32 GB)\n");
  const Machine& machine = cluster.machine(0);
  int shown = 0;
  for (const FastMciGroup& group : ipa.groups) {
    if (shown++ >= 3) break;
    std::printf("    group rep %4d (rows=%8.3g): ", group.representative,
                stage->instances[static_cast<size_t>(group.representative)]
                    .input_rows);
    for (double cores : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
      Result<double> p = (*env)->model().Predict(
          *stage, group.representative, {cores, 32}, machine.state(),
          machine.hardware().id);
      std::printf(" %6.1f", p.ok() ? p.value() : -1.0);
    }
    std::printf("   (cores = 0.25 ... 16)\n");
  }
  std::printf("    note: outside the observed plan window the response can\n"
              "    be non-monotone — why RAA restricts its search "
              "(F.15).\n");

  // Fig. 33: within-cluster latency coherence.
  std::vector<InstanceClusterGroup> clusters = ClusterInstancesByRows(*stage);
  std::printf("  Fig. 33: %zu KDE instance clusters; within-cluster latency "
              "spread:\n", clusters.size());
  int printed = 0;
  for (const InstanceClusterGroup& group : clusters) {
    if (group.instance_ids.size() < 3 || printed++ >= 3) continue;
    std::vector<double> lats;
    for (int i : group.instance_ids) {
      lats.push_back(before[static_cast<size_t>(i)]);
    }
    std::printf("    cluster of %3zu instances: p50=%.1fs, spread "
                "(p95/p5)=%.2fx\n",
                group.instance_ids.size(), Percentile(lats, 50),
                Percentile(lats, 95) / std::max(1e-9, Percentile(lats, 5)));
  }
  std::printf("\nPaper shape: clustering is coherent (instances in a cluster\n"
              "have close latencies), while the post-RAA distribution keeps\n"
              "an uneven tail because the searchable plan window is "
              "bounded.\n");
  return 0;
}
