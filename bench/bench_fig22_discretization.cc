// Reproduces Fig. 22 (Expt 4): tradeoff between system-state discretization
// degree (DD), model accuracy, and the number of machine-state combinations
// the optimizer must consider.
//
// Paper shape: WMAPE improves then saturates (and can worsen by overfitting)
// as DD grows, while the state-combination count grows cubically; the paper
// picks DD=10 for A and DD=4 for B/C.

#include <cstdio>

#include "bench_util.h"
#include "featurize/discretize.h"

using namespace fgro;
using namespace fgro::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  PrintHeader("Fig. 22 (Expt 4): discretization degree vs accuracy");
  for (WorkloadId id : {WorkloadId::kA, WorkloadId::kB, WorkloadId::kC}) {
    std::printf("  workload %s:\n", WorkloadName(id));
    for (int dd : {1, 2, 4, 10, 20}) {
      ExperimentEnv::Options options =
          DefaultOptions(id, BenchScale::kAblation);
      options.discretization_degree = dd;
      Result<std::unique_ptr<ExperimentEnv>> env =
          ExperimentEnv::Build(options);
      FGRO_CHECK_OK(env.status());
      Result<ModelMetrics> metrics = TestMetrics(**env);
      FGRO_CHECK_OK(metrics.status());
      std::printf("    DD=%-3d WMAPE=%5.1f%%  state combinations=%ld\n", dd,
                  metrics->wmape * 100, NumStateCombinations(dd));
    }
  }
  std::printf("\nPaper shape: accuracy converges by DD~4-10 while the state\n"
              "space grows as DD^3; pick the smallest DD on the plateau.\n");
  return 0;
}
