// Ablations over the design choices DESIGN.md calls out:
//  (1) the diverse-placement cap alpha (Section 5.2's soft constraint),
//  (2) the KDE instance-clustering bandwidth (granularity vs solve time),
//  (3) the RAA plan-exploration window around theta0 (Appendix F.15:
//      searching outside the traced region lets model extrapolation error
//      in),
//  (4) an empirical check of the column-order assumption behind
//      Theorem 5.1 (the paper measures it holding on 88-96% of stages).

#include <cstdio>

#include "bench_util.h"
#include "clustering/machine_clustering.h"
#include "common/math_utils.h"
#include "hbo/hbo.h"
#include "optimizer/fuxi.h"
#include "optimizer/ipa.h"
#include "optimizer/stage_optimizer.h"

using namespace fgro;
using namespace fgro::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  PrintHeader("Design-choice ablations");
  ExperimentEnv::Options options =
      DefaultOptions(WorkloadId::kA, BenchScale::kAblation);
  options.scale = 0.15;
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());

  // (1) alpha sweep: tighter diversity caps spread a stage over more
  // machines (less contention headroom in reality, more placement pressure).
  std::printf("  (1) diverse-placement cap alpha (IPA+RAA vs Fuxi):\n");
  for (int alpha : {0, 1, 4, 16}) {
    SimOptions sim_options;
    sim_options.outcome = OutcomeMode::kEnvironment;
    sim_options.cluster.num_machines = 96;
    StageOptimizer so(StageOptimizer::IpaRaaPath());
    Simulator fuxi_sim(&(*env)->workload(), &(*env)->model(), sim_options);
    Result<SimResult> fuxi = fuxi_sim.Run([&](const SchedulingContext& c) {
      SchedulingContext ctx = c;
      ctx.alpha = alpha;
      return FuxiSchedule(ctx);
    });
    Simulator so_sim(&(*env)->workload(), &(*env)->model(), sim_options);
    Result<SimResult> ours = so_sim.Run([&](const SchedulingContext& c) {
      SchedulingContext ctx = c;
      ctx.alpha = alpha;
      return so.Optimize(ctx);
    });
    FGRO_CHECK_OK(fuxi.status());
    FGRO_CHECK_OK(ours.status());
    PairedSummaries paired = SummarizePaired(fuxi.value(), ours.value());
    ReductionRates rr = ComputeReduction(paired.baseline, paired.method);
    std::printf("      alpha=%-4s coverage=%3.0f%%  RR lat(in)=%3.0f%%  "
                "RR cost=%3.0f%%\n",
                alpha == 0 ? "auto" : std::to_string(alpha).c_str(),
                Summarize(ours.value()).coverage * 100,
                rr.latency_in_rr * 100, rr.cost_rr * 100);
  }

  // (2) KDE bandwidth: cluster counts vs per-stage grouping granularity.
  std::printf("  (2) KDE instance-clustering bandwidth (widest stage):\n");
  const Stage* widest = nullptr;
  for (const Job& job : (*env)->workload().jobs) {
    for (const Stage& stage : job.stages) {
      if (widest == nullptr ||
          stage.instance_count() > widest->instance_count()) {
        widest = &stage;
      }
    }
  }
  for (double bandwidth : {0.1, 0.3, 1.0, 3.0}) {
    Kde1dOptions kde;
    kde.grid_size = 128;
    kde.bandwidth_factor = bandwidth;
    std::vector<InstanceClusterGroup> groups =
        ClusterInstancesByRows(*widest, kde);
    std::printf("      bandwidth=%.1f -> %3zu clusters over %d instances\n",
                bandwidth, groups.size(), widest->instance_count());
  }

  // (3) Plan-exploration window: how far can RAA trust the model? We emulate
  // narrower windows by clamping RAA's grid through the capacity share
  // (full sweep would need retraining; the measured default already
  // reflects the window the traces cover).
  std::printf("  (3) plan-exploration window: trained window "
              "[%.2fx, %.2fx] of theta0 (see Appendix F.15 discussion;\n"
              "      bench_diagnostics shows model extrapolation outside "
              "it)\n",
              kPlanExplorationLow, kPlanExplorationHigh);

  // (4) Column-order assumption: fraction of sampled instance pairs whose
  // latency order is machine-independent, per stage.
  std::printf("  (4) column-order assumption (Theorem 5.1):\n");
  Cluster cluster(ClusterOptions{.num_machines = 64, .seed = 12});
  Hbo hbo;
  int stages_checked = 0, stages_holding = 0;
  std::vector<double> rates;
  for (const Job& job : (*env)->workload().jobs) {
    for (const Stage& stage : job.stages) {
      if (stage.instance_count() < 4 || stages_checked >= 40) continue;
      ++stages_checked;
      HboRecommendation rec = hbo.Recommend(stage);
      std::vector<int> machines = cluster.AvailableMachines(rec.theta0);
      if (machines.size() > 24) machines.resize(24);
      std::vector<std::vector<double>> L(
          static_cast<size_t>(stage.instance_count()),
          std::vector<double>(machines.size()));
      for (int i = 0; i < stage.instance_count(); ++i) {
        Result<LatencyModel::EmbeddedInstance> embedded =
            (*env)->model().Embed(stage, i);
        FGRO_CHECK_OK(embedded.status());
        for (size_t j = 0; j < machines.size(); ++j) {
          const Machine& machine = cluster.machine(machines[j]);
          L[static_cast<size_t>(i)][j] = (*env)->model().PredictFromEmbedding(
              embedded.value(), rec.theta0, machine.state(),
              machine.hardware().id);
        }
      }
      double rate = ColumnOrderViolationRate(L);
      rates.push_back(rate);
      if (rate < 0.05) ++stages_holding;
    }
  }
  std::printf("      assumption holds (<5%% violations) on %d/%d stages "
              "(%.0f%%); mean violation rate %.1f%%\n",
              stages_holding, stages_checked,
              100.0 * stages_holding / std::max(1, stages_checked),
              Mean(rates) * 100);
  std::printf("\nPaper shape: alpha trades diversity against feasibility;\n"
              "finer clustering costs time for little quality; the\n"
              "column-order assumption holds on ~88-96%% of stages.\n");
  return 0;
}
