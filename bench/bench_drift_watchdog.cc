// Drift-watchdog sweep: the same workload replayed under a deterministic
// drift pulse (actual latencies scaled by a multiplier inside a time
// window), with the online watchdog off vs. on. The claim under test: the
// watchdog detects the pulse from its rolling q-error windows, demotes the
// optimizer down the fallback ladder while the model is untrustworthy, and
// re-promotes once the window recovers after the pulse — with alarm and
// demotion counts surfaced in RoSummary.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "optimizer/stage_optimizer.h"

using namespace fgro;
using namespace fgro::bench;

namespace {

void PrintDriftRow(const char* label, const RoSummary& s) {
  std::printf(
      "    %-14s cov=%5.1f%%  Lat(in)=%7.2fs  Cost=%8.4fm$  "
      "alarms=%-3ld demoted=%-4ld ladder[P/th0/Fuxi]=%d/%d/%d\n",
      label, s.coverage * 100, s.avg_latency_in, s.avg_cost * 1000,
      s.drift_alarms, s.drift_demoted_stages, s.fallback_histogram[0],
      s.fallback_histogram[1], s.fallback_histogram[2]);
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  const bool quick = HasFlag(argc, argv, "--quick");
  PrintHeader("Drift watchdog: pulse sweep, demote and re-promote");

  ExperimentEnv::Options options = DefaultOptions(
      WorkloadId::kA, quick ? BenchScale::kSmoke : BenchScale::kAblation);
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());
  const Workload& workload = (*env)->workload();

  // Pulse over the middle of the trace: stages before it build the
  // baseline window, stages after it let the window recover.
  double span = 0.0;
  for (const Job& job : workload.jobs) {
    span = std::max(span, job.arrival_time);
  }
  const double pulse_start = 0.25 * span;
  const double pulse_end = 0.60 * span;

  StageOptimizer so(StageOptimizer::IpaRaaPathWithFallback());
  const Simulator::SchedulerFn so_fn = [&](const SchedulingContext& c) {
    return so.Optimize(c);
  };

  const std::vector<double> sweep =
      quick ? std::vector<double>{1.0, 4.0}
            : std::vector<double>{1.0, 1.5, 3.0, 6.0};
  for (double mult : sweep) {
    std::printf("  drift x%.1f over [%.0fs, %.0fs) of the trace\n", mult,
                pulse_start, pulse_end);
    for (bool watch : {false, true}) {
      SimOptions sim_options;
      // Noise-free outcomes make the q-error exactly the pulse multiplier,
      // so the demote/re-promote cycle is deterministic.
      sim_options.outcome = OutcomeMode::kNoiseFree;
      sim_options.seed = 29;
      sim_options.drift_multiplier = mult;
      sim_options.drift_start_seconds = pulse_start;
      sim_options.drift_end_seconds = pulse_end;
      sim_options.drift_watchdog.enabled = watch;
      sim_options.drift_watchdog.window_size = 32;
      sim_options.drift_watchdog.min_samples = 8;
      sim_options.drift_watchdog.alarm_qerror = 2.0;
      sim_options.drift_watchdog.recover_qerror = 1.5;
      Simulator sim(&workload, &(*env)->model(), sim_options);
      Result<SimResult> result = sim.Run(so_fn);
      FGRO_CHECK_OK(result.status());
      PrintDriftRow(watch ? "watchdog ON" : "watchdog OFF",
                    Summarize(result.value()));
    }
  }

  std::printf(
      "\nExpected shape: at x1.0 the watchdog never alarms and both rows\n"
      "match; past the alarm threshold (x>=2) the ON row raises an alarm\n"
      "shortly into the pulse, demotes stages to theta0/Fuxi rungs while\n"
      "it holds, and clears the alarm (stages back at P) once enough\n"
      "post-pulse observations wash the window; the OFF row keeps trusting\n"
      "the drifted model the whole way through.\n");
  return 0;
}
