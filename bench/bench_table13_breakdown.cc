// Reproduces Table 13 / Fig. 29 (Expt 12 breakdown): per-category effects
// of IPA+RAA. Stages are bucketed into short (<10s), median (10-100s) and
// long (>100s) by their Fuxi latency; for each category we report the share
// of stages where IPA+RAA dominates Fuxi on BOTH latency and cost, and the
// average reductions. A Fig. 29-style per-instance view of one long stage
// is printed at the end.
//
// Paper: 68-99% of stages dominated, 46-65% latency reduction and 62-77%
// cost reduction, growing with stage length.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/math_utils.h"
#include "optimizer/fuxi.h"
#include "optimizer/stage_optimizer.h"

using namespace fgro;
using namespace fgro::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  PrintHeader("Table 13: short/median/long stage breakdown (IPA+RAA vs Fuxi)");
  for (WorkloadId id : {WorkloadId::kA, WorkloadId::kC}) {
    ExperimentEnv::Options options = DefaultOptions(id, BenchScale::kHeadline);
    options.scale = 0.18;
    Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
    FGRO_CHECK_OK(env.status());

    SimOptions sim_options;
    sim_options.outcome = OutcomeMode::kEnvironment;
    sim_options.cluster.num_machines = 96;
    Simulator fuxi_sim(&(*env)->workload(), &(*env)->model(), sim_options);
    Result<SimResult> fuxi = fuxi_sim.Run(
        [](const SchedulingContext& c) { return FuxiSchedule(c); },
        /*keep_instance_detail=*/true);
    FGRO_CHECK_OK(fuxi.status());

    StageOptimizer so(StageOptimizer::IpaRaaPath());
    Simulator so_sim(&(*env)->workload(), &(*env)->model(), sim_options);
    Result<SimResult> ours = so_sim.Run(
        [&](const SchedulingContext& c) { return so.Optimize(c); },
        /*keep_instance_detail=*/true);
    FGRO_CHECK_OK(ours.status());

    struct Bucket {
      int total = 0, dominated = 0;
      double lat_reduction = 0, lat_base = 0;
      double cost_reduction = 0, cost_base = 0;
    };
    std::map<int, Bucket> buckets;  // 0 short, 1 median, 2 long
    auto category = [](double latency) {
      if (latency < 10.0) return 0;
      if (latency < 100.0) return 1;
      return 2;
    };
    FGRO_CHECK(fuxi->outcomes.size() == ours->outcomes.size());
    for (size_t i = 0; i < fuxi->outcomes.size(); ++i) {
      const StageOutcome& base = fuxi->outcomes[i];
      const StageOutcome& opt = ours->outcomes[i];
      if (!base.feasible || !opt.feasible) continue;
      Bucket& bucket = buckets[category(base.stage_latency)];
      bucket.total++;
      if (opt.stage_latency <= base.stage_latency &&
          opt.stage_cost <= base.stage_cost) {
        bucket.dominated++;
      }
      bucket.lat_reduction += base.stage_latency - opt.stage_latency;
      bucket.lat_base += base.stage_latency;
      bucket.cost_reduction += base.stage_cost - opt.stage_cost;
      bucket.cost_base += base.stage_cost;
    }
    static const char* kNames[] = {"short (<10s)", "median (10-100s)",
                                   "long (>100s)"};
    std::printf("  workload %s:\n", WorkloadName(id));
    for (const auto& [cat, bucket] : buckets) {
      if (bucket.total == 0) continue;
      std::printf("    %-17s stages=%4d  dominates=%3.0f%%  "
                  "avg lat RR=%4.0f%%  avg cost RR=%4.0f%%\n",
                  kNames[cat], bucket.total,
                  100.0 * bucket.dominated / bucket.total,
                  100.0 * bucket.lat_reduction /
                      std::max(1e-9, bucket.lat_base),
                  100.0 * bucket.cost_reduction /
                      std::max(1e-9, bucket.cost_base));
    }

    // Fig. 29: the per-instance picture inside the longest feasible stage.
    size_t longest = 0;
    for (size_t i = 0; i < fuxi->outcomes.size(); ++i) {
      if (fuxi->outcomes[i].feasible && ours->outcomes[i].feasible &&
          fuxi->outcomes[i].stage_latency >
              fuxi->outcomes[longest].stage_latency) {
        longest = i;
      }
    }
    const StageOutcome& base = fuxi->outcomes[longest];
    const StageOutcome& opt = ours->outcomes[longest];
    auto describe = [](const char* label, const StageOutcome& o) {
      std::printf("      %-8s inst lat p5=%.1fs p50=%.1fs p95=%.1fs "
                  "max=%.1fs  cost=%.4fm$\n",
                  label, Percentile(o.instance_latencies, 5),
                  Percentile(o.instance_latencies, 50),
                  Percentile(o.instance_latencies, 95),
                  Max(o.instance_latencies), o.stage_cost * 1000);
    };
    std::printf("    Fig. 29 view of the longest stage (%d instances):\n",
                base.num_instances);
    describe("Fuxi", base);
    describe("IPA+RAA", opt);
    // Count distinct per-instance plans chosen by RAA.
    std::map<std::pair<double, double>, int> plans;
    for (const ResourceConfig& theta : opt.instance_thetas) {
      plans[{theta.cores, theta.memory_gb}]++;
    }
    std::printf("      IPA+RAA uses %zu distinct instance-specific plans "
                "(Fuxi uses 1)\n", plans.size());
  }
  std::printf("\nPaper shape: IPA+RAA dominates Fuxi on most stages in every\n"
              "category, with the largest reductions on long stages, and\n"
              "assigns instance-specific plans (more resources to stragglers,\n"
              "less to short instances).\n");
  return 0;
}
