// Reproduces Fig. 10/18/19 (Expt 7): model adaptivity under workload drift.
// Two injection settings — (a) realistic temporal order and (b) the
// hypothetical worst case (stages injected from longest- to
// shortest-running) — each served by three update policies: static,
// 24h retrain, and 24h retrain + 6h fine-tune.
//
// Paper shape: static degrades badly (up to 72% WMAPE realistic, ~10000%
// in the worst case); retrain and retrain+finetune stay in the 15-25%
// band, with fine-tuning helping most under strong drift.

#include <cstdio>

#include "bench_util.h"
#include "common/math_utils.h"
#include "model/model_server.h"

using namespace fgro;
using namespace fgro::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  PrintHeader("Fig. 10 (Expt 7): WMAPE over time under workload drift (WL C)");

  ExperimentEnv::Options options =
      DefaultOptions(WorkloadId::kC, BenchScale::kAblation);
  options.scale = 0.4;  // enough jobs that every 6h bucket has records
  options.train_model = false;
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());

  ModelServer::DriftOptions drift;
  drift.model.featurizer = Featurizer(ChannelMask{}, 10);
  drift.train.epochs = 5;
  drift.train.max_train_samples = 6000;
  drift.finetune.epochs = 2;
  drift.finetune.lr = 5e-4;
  drift.finetune.max_train_samples = 2000;
  drift.bucket_hours = 6.0;

  struct Setting {
    const char* name;
    std::vector<std::vector<int>> buckets;
  };
  std::vector<Setting> settings;
  settings.push_back(
      {"realistic (temporal order)",
       BucketRecordsByTime((*env)->dataset(), drift.bucket_hours * 3600.0)});
  settings.push_back(
      {"worst case (latency-descending order)",
       BucketRecordsByStageLatencyDesc((*env)->dataset(), 20)});

  for (const Setting& setting : settings) {
    std::printf("  setting: %s\n", setting.name);
    for (ModelServer::UpdatePolicy policy :
         {ModelServer::UpdatePolicy::kStatic,
          ModelServer::UpdatePolicy::kRetrain,
          ModelServer::UpdatePolicy::kRetrainFinetune}) {
      Result<ModelServer::DriftResult> result =
          ModelServer::RunDriftSimulation((*env)->dataset(), setting.buckets,
                                          policy, drift);
      FGRO_CHECK_OK(result.status());
      const std::vector<double>& w = result->bucket_wmape;
      size_t half = w.size() / 2;
      std::vector<double> late(w.begin() + static_cast<long>(half), w.end());
      std::printf("    %-18s buckets=%zu  WMAPE first=%5.1f%%  "
                  "late-half avg=%6.1f%%  max=%7.1f%%\n",
                  ModelServer::PolicyName(policy), w.size(),
                  w.empty() ? 0.0 : w.front() * 100, Mean(late) * 100,
                  Max(w) * 100);
    }
  }
  std::printf("\nPaper shape: 'static' drifts far above the updating\n"
              "policies, most dramatically in the worst-case order;\n"
              "retrain(+finetune) keeps late-window errors low.\n");
  return 0;
}
