// Reproduces Fig. 9(b) (Expt 3): impact of cardinality quality on AIM.
// all_on+calib uses the CBO's estimated selectivities; all_on+simu1 the
// ground-truth stage-level selectivities; all_on+simu2 the (unrealistic)
// ground-truth instance-level cardinalities including per-instance skew.
//
// Paper shape: better cardinalities barely help (<=0.4% WMAPE) — improving
// cardinality estimation alone cannot improve latency prediction much.

#include <cstdio>

#include "bench_util.h"

using namespace fgro;
using namespace fgro::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  PrintHeader("Fig. 9(b) (Expt 3): AIM cardinality source, test WMAPE");
  struct Variant {
    const char* name;
    AimMode mode;
  };
  const Variant kVariants[] = {
      {"all_on+calib", AimMode::kCalibrated},
      {"all_on+simu1", AimMode::kSimu1},
      {"all_on+simu2", AimMode::kSimu2},
  };
  for (WorkloadId id : {WorkloadId::kA, WorkloadId::kB, WorkloadId::kC}) {
    std::printf("  workload %s:\n", WorkloadName(id));
    for (const Variant& variant : kVariants) {
      ExperimentEnv::Options options =
          DefaultOptions(id, BenchScale::kAblation);
      options.channels.aim = variant.mode;
      Result<std::unique_ptr<ExperimentEnv>> env =
          ExperimentEnv::Build(options);
      FGRO_CHECK_OK(env.status());
      Result<ModelMetrics> metrics = TestMetrics(**env);
      FGRO_CHECK_OK(metrics.status());
      std::printf("    %-13s WMAPE=%5.2f%%  MdErr=%5.2f%%\n", variant.name,
                  metrics->wmape * 100, metrics->mderr * 100);
    }
  }
  std::printf("\nPaper shape: simu1/simu2 reduce WMAPE by at most a fraction\n"
              "of a point over calib — cardinality is not the bottleneck\n"
              "(consistent with CLEO's observation).\n");
  return 0;
}
