// Reproduces Table 1 / Fig. 2: workload statistics of the three production
// traces (scaled). Prints per-workload job/stage/instance counts, DAG shape
// averages and the latency scales, plus the Fig. 2(c)-style variance of
// instance latencies inside one wide stage.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/math_utils.h"
#include "trace/trace_collector.h"

using namespace fgro;
using namespace fgro::bench;

int main() {
  SetLogLevel(LogLevel::kWarning);
  PrintHeader("Table 1: workload statistics (scaled reproduction)");
  std::printf("  %-3s %6s %8s %10s %11s %12s %10s %12s %12s %12s\n", "WL",
              "jobs", "stages", "insts", "stages/job", "insts/stage",
              "ops/stage", "job lat(s)", "stage lat(s)", "inst lat(s)");

  for (WorkloadId id : {WorkloadId::kA, WorkloadId::kB, WorkloadId::kC}) {
    WorkloadGenerator gen(GetWorkloadProfile(id, 0.3));
    Result<Workload> workload = gen.Generate();
    FGRO_CHECK_OK(workload.status());
    TraceCollector collector(ClusterOptions{.num_machines = 96, .seed = 7},
                             11);
    Result<TraceDataset> dataset = collector.Collect(workload.value());
    FGRO_CHECK_OK(dataset.status());

    const Workload& w = workload.value();
    int stages = w.TotalStages(), insts = w.TotalInstances();
    double ops = 0.0;
    for (const Job& job : w.jobs) {
      for (const Stage& stage : job.stages) ops += stage.operator_count();
    }
    // Latencies from the collected trace.
    std::map<std::pair<int, int>, double> stage_lat;
    std::map<int, double> job_end, job_begin;
    std::vector<double> inst_lats;
    for (const InstanceRecord& r : dataset->records) {
      auto key = std::make_pair(r.job_idx, r.stage_idx);
      stage_lat[key] = std::max(stage_lat[key], r.actual_latency);
      inst_lats.push_back(r.actual_latency);
    }
    std::vector<double> stage_lats;
    std::map<int, double> job_lat;  // serial-critical-path approximation
    for (const auto& [key, lat] : stage_lat) {
      stage_lats.push_back(lat);
      job_lat[key.first] += lat;
    }
    std::vector<double> job_lats;
    for (const auto& [j, lat] : job_lat) job_lats.push_back(lat);

    std::printf("  %-3s %6zu %8d %10d %11.2f %12.1f %10.2f %12.1f %12.1f "
                "%12.1f\n",
                w.profile.name.c_str(), w.jobs.size(), stages, insts,
                static_cast<double>(stages) / w.jobs.size(),
                static_cast<double>(insts) / stages,
                ops / stages, Mean(job_lats), Mean(stage_lats),
                Mean(inst_lats));

    // Fig. 2(b/c): skew of instances per stage and latency variance in the
    // widest stage.
    const Stage* widest = nullptr;
    for (const Job& job : w.jobs) {
      for (const Stage& stage : job.stages) {
        if (widest == nullptr ||
            stage.instance_count() > widest->instance_count()) {
          widest = &stage;
        }
      }
    }
    std::vector<double> wide_lats;
    for (const InstanceRecord& r : dataset->records) {
      if (&dataset->StageOf(r) == widest) wide_lats.push_back(r.actual_latency);
    }
    std::printf("      widest stage: %d instances; instance latency "
                "p5=%.1fs p50=%.1fs p95=%.1fs max=%.1fs (Fig. 2c variance)\n",
                widest->instance_count(), Percentile(wide_lats, 5),
                Percentile(wide_lats, 50), Percentile(wide_lats, 95),
                Max(wide_lats));
  }
  std::printf("\nPaper shape: A has the most jobs (short ones), B the most\n"
              "complex DAGs, C the widest stages and longest instances;\n"
              "instance latencies within one stage vary by >10x.\n");
  return 0;
}
