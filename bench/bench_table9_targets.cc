// Reproduces Table 9 and Table 10 (Expt 1 breakdown + Expt 6): modeling
// targets. SiSL (single-instance stage latency) is our default target; ACT
// and ACT* (actual CPU time, optionally with lifetime-averaged states) are
// cleaner targets because they dodge the shared-IO noise; MiSL
// (multi-instance end-to-end stage latency, CLEO's style of target) is far
// harder to predict because it inherits the cross-instance variance.
//
// Paper: SiSL 8.6-19% WMAPE; ACT 6.6-14.7%; ACT* 6.3-12.5%;
// MiSL 36.7-53.8% (Table 10), i.e. 2.5-4x worse than SiSL.

#include <cstdio>
#include <map>

#include "bench_util.h"

using namespace fgro;
using namespace fgro::bench;

namespace {

/// Derives the MiSL dataset: one record per (job, stage), carried by the
/// heaviest instance, labeled with the END-TO-END stage latency (max over
/// the stage's instances) — CLEO's coarse-grained modeling target.
TraceDataset MakeMislDataset(const TraceDataset& base) {
  std::map<std::pair<int, int>, double> stage_max;
  std::map<std::pair<int, int>, const InstanceRecord*> heaviest;
  for (const InstanceRecord& r : base.records) {
    auto key = std::make_pair(r.job_idx, r.stage_idx);
    stage_max[key] = std::max(stage_max[key], r.actual_latency);
    const Stage& stage = base.StageOf(r);
    const InstanceRecord*& best = heaviest[key];
    if (best == nullptr ||
        stage.instances[static_cast<size_t>(r.instance_idx)].input_rows >
            stage.instances[static_cast<size_t>(best->instance_idx)]
                .input_rows) {
      best = &r;
    }
  }
  TraceDataset misl;
  misl.workload = base.workload;
  for (const auto& [key, record] : heaviest) {
    InstanceRecord copy = *record;
    copy.actual_latency = stage_max[key];
    misl.records.push_back(std::move(copy));
  }
  return misl;
}

ModelMetrics EvaluateTarget(const ExperimentEnv& env,
                            LatencyModel::Target target) {
  LatencyModel::Options options;
  options.featurizer = Featurizer(ChannelMask{}, 10);
  options.seed = 21;
  LatencyModel model(options);
  TrainOptions train = DefaultOptions(WorkloadId::kA,
                                      BenchScale::kAblation).train;
  FGRO_CHECK_OK(model.Train(env.dataset(), env.split().train,
                            env.split().val, train, target));
  Result<std::vector<double>> preds =
      model.PredictRecords(env.dataset(), env.split().test);
  FGRO_CHECK_OK(preds.status());
  std::vector<double> actual;
  for (int idx : env.split().test) {
    const InstanceRecord& r =
        env.dataset().records[static_cast<size_t>(idx)];
    switch (target) {
      case LatencyModel::Target::kInstanceLatency:
        actual.push_back(r.actual_latency);
        break;
      case LatencyModel::Target::kActualCpuTime:
        actual.push_back(r.actual_cpu_seconds);
        break;
      case LatencyModel::Target::kActualCpuTimeStar:
        actual.push_back(r.actual_cpu_seconds_star);
        break;
    }
  }
  return ComputeModelMetrics(actual, preds.value());
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  PrintHeader("Table 9 (targets) and Table 10 (MiSL, Expt 6)");
  for (WorkloadId id : {WorkloadId::kA, WorkloadId::kB, WorkloadId::kC}) {
    ExperimentEnv::Options options =
        DefaultOptions(id, BenchScale::kAblation);
    options.train_model = false;  // we train per target below
    Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
    FGRO_CHECK_OK(env.status());
    std::printf("  workload %s:\n", WorkloadName(id));

    PrintMetricsRow("SiSL (default)",
                    EvaluateTarget(**env,
                                   LatencyModel::Target::kInstanceLatency));
    PrintMetricsRow("ACT",
                    EvaluateTarget(**env,
                                   LatencyModel::Target::kActualCpuTime));
    PrintMetricsRow(
        "ACT*",
        EvaluateTarget(**env, LatencyModel::Target::kActualCpuTimeStar));

    // MiSL: train on the end-to-end stage latency dataset. One record per
    // stage leaves far less data than the instance-level targets have, so
    // regenerate the workload at a scale giving a few hundred stages
    // (the paper trains MiSL on its full 2M stages).
    ExperimentEnv::Options misl_options = options;
    misl_options.scale =
        std::max(options.scale, 220.0 / std::max(1, (*env)->workload()
                                                          .TotalStages()) *
                                    options.scale);
    Result<std::unique_ptr<ExperimentEnv>> misl_env =
        ExperimentEnv::Build(misl_options);
    FGRO_CHECK_OK(misl_env.status());
    TraceDataset misl = MakeMislDataset((*misl_env)->dataset());
    Rng split_rng(17);
    DataSplit split = SplitByTemplateFrequency(misl, &split_rng);
    LatencyModel::Options mo;
    mo.featurizer = Featurizer(ChannelMask{}, 10);
    LatencyModel model(mo);
    TrainOptions train = options.train;
    FGRO_CHECK_OK(model.Train(misl, split.train, split.val, train));
    Result<std::vector<double>> preds = model.PredictRecords(misl, split.test);
    FGRO_CHECK_OK(preds.status());
    std::vector<double> actual;
    for (int idx : split.test) {
      actual.push_back(misl.records[static_cast<size_t>(idx)].actual_latency);
    }
    PrintMetricsRow("MiSL (end-to-end)",
                    ComputeModelMetrics(actual, preds.value()));
  }
  std::printf("\nPaper shape: ACT/ACT* beat SiSL (less shared-IO noise),\n"
              "while MiSL is several times worse — the core argument for\n"
              "fine-grained instance-level modeling over CLEO-style\n"
              "end-to-end targets.\n");
  return 0;
}
