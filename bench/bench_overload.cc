// Three-arm overload sweep for the concurrent RO service: the same request
// stream offered at a rising multiple of the measured saturation rate,
// against a fixed worker pool, once per admission-control arm:
//
//   none   — bounded queue only (no brown-out, no CoDel),
//   static — the static-threshold brown-out controller (PR 3 baseline),
//   codel  — adaptive sojourn-time CoDel with online target learning.
//
// The claim under test: the adaptive arm keeps the p95/p99 queue wait flat
// across offered load — the other arms let waits grow to the queue bound
// past saturation, so "flat" is judged by the worst point of the sweep
// (a spread metric would reward an arm that is uniformly saturated) —
// without giving up goodput at saturation. The bench exits non-zero unless
// CoDel's worst p95 AND worst p99 across the sweep are no higher than both
// baselines' and its goodput at the 1.0x (saturation) point stays at or
// above the static-brownout arm's.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/snapshot.h"
#include "optimizer/stage_optimizer.h"
#include "service/ro_service.h"

using namespace fgro;
using namespace fgro::bench;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::string FlagValue(int argc, char** argv, const char* prefix) {
  const std::size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
  }
  return "";
}

struct SweepPoint {
  double multiplier = 0.0;
  double offered_rate = 0.0;   // requests/s offered
  double goodput = 0.0;        // completions/s achieved
  double wait_p95_ms = 0.0;    // all-lanes queue wait
  double wait_p99_ms = 0.0;
  double ls_wait_p95_ms = 0.0;  // latency-sensitive lane only
  RoSummary summary;
  std::string breakdown_json;  // per-phase rollup incl. queue wait
};

struct Arm {
  const char* name;
  std::vector<SweepPoint> points;
  double worst_p95_ms = 0.0;  // max across the sweep
  double worst_p99_ms = 0.0;
};

double WorstMs(const std::vector<SweepPoint>& points,
               double SweepPoint::*field) {
  double hi = 0.0;
  for (const SweepPoint& p : points) hi = std::max(hi, p.*field);
  return hi;
}

// Quantile over the bucket-count difference of two snapshots of the same
// histogram — the steady-state tail with the warmup samples subtracted.
// Mirrors Histogram::Quantile: ceil-rank over cumulative counts, linear
// interpolation inside the winning bucket, overflow pinned to the last
// finite bound.
double DiffQuantile(const obs::MetricsRegistry::HistogramView& warm,
                    const obs::MetricsRegistry::HistogramView& full,
                    double q) {
  const std::size_t n = full.buckets.size();
  uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const uint64_t before = i < warm.buckets.size() ? warm.buckets[i].second
                                                    : 0;
    total += full.buckets[i].second - before;
  }
  if (total == 0) return 0.0;
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  double last_finite = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const uint64_t before = i < warm.buckets.size() ? warm.buckets[i].second
                                                    : 0;
    const uint64_t in_bucket = full.buckets[i].second - before;
    const double upper = full.buckets[i].first;
    if (std::isfinite(upper)) last_finite = upper;
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (!std::isfinite(upper)) return last_finite;
    const double lower = i == 0 ? 0.0 : full.buckets[i - 1].first;
    const double fraction = static_cast<double>(rank - cumulative) /
                            static_cast<double>(in_bucket);
    return lower + (upper - lower) * fraction;
  }
  return last_finite;
}

// The sweep point at the calibrated saturation rate (multiplier closest to
// 1.0) — where "goodput holds" is judged.
const SweepPoint& SaturationPoint(const std::vector<SweepPoint>& points) {
  const SweepPoint* best = &points.front();
  for (const SweepPoint& p : points) {
    if (std::abs(p.multiplier - 1.0) < std::abs(best->multiplier - 1.0)) {
      best = &p;
    }
  }
  return *best;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  const bool quick = HasFlag(argc, argv, "--quick");
  const std::string json_out = FlagValue(argc, argv, "--json_out=");
  PrintHeader("Overload: none vs static brown-out vs adaptive CoDel");

  ExperimentEnv::Options options = DefaultOptions(
      WorkloadId::kA, quick ? BenchScale::kSmoke : BenchScale::kAblation);
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());
  const Workload& workload = (*env)->workload();
  const int num_jobs = static_cast<int>(workload.jobs.size());

  const int kWorkers = 2;
  // Deep enough that a full queue means real pain: the static arms let the
  // wait grow to ~capacity * service / workers past saturation, which is
  // exactly the headroom CoDel's sojourn control is supposed to not use.
  const std::size_t kQueueCapacity = 32;
  SimOptions sim;
  sim.outcome = OutcomeMode::kEnvironment;
  sim.service_threads = kWorkers;
  const StageOptimizer::Config config =
      StageOptimizer::IpaRaaPathWithFallback();

  // Calibrate: drive the same kWorkers pool the sweep uses, unthrottled,
  // and measure its completion rate. A single-threaded calibration
  // over-estimates capacity — the sweep's workers contend with each other
  // and with the pacing thread, so "1.0x" would silently mean 2x real
  // overload. Median of three passes, since every arm is judged at
  // multiples of this rate.
  double saturation;  // requests/s at full decision quality
  {
    const int calib_total = std::max(128, 8 * num_jobs);
    double rates[3];
    for (double& rate : rates) {
      RoServiceOptions calib_options;
      calib_options.queue_capacity = static_cast<std::size_t>(calib_total);
      RoService service(&workload, &(*env)->model(), sim, config,
                        calib_options);
      const double start = NowSeconds();
      for (int r = 0; r < calib_total; ++r) {
        (void)service.Submit(r % num_jobs, RequestPriority::kBatch);
      }
      service.Drain();
      rate = calib_total / (NowSeconds() - start);
      service.Stop();
    }
    std::sort(rates, rates + 3);
    saturation = rates[1];
  }
  const double mean_service = kWorkers / saturation;  // effective, per job
  std::printf("  calibration: %d-worker pool saturates at ~%.1f req/s"
              " (effective %.1f ms per job, %d distinct jobs)\n",
              kWorkers, saturation, mean_service * 1e3, num_jobs);

  const std::vector<double> multipliers =
      quick ? std::vector<double>{1.0, 4.0}
            : std::vector<double>{0.5, 1.0, 2.0, 4.0};
  // Each point offers a fixed *duration* of arrivals, not a fixed count: a
  // count-based point at 4x saturation finishes submitting in tens of
  // milliseconds — before any controller has reacted — and then just
  // measures the drain. A time window long enough for the control loop to
  // converge keeps the startup transient out of the p99 at every rate.
  const double window_seconds = quick ? 2.0 : 3.0;

  std::vector<Arm> arms = {{"none", {}, 0, 0},
                           {"static", {}, 0, 0},
                           {"codel", {}, 0, 0}};
  for (Arm& arm : arms) {
    std::printf("\n  arm: %s\n", arm.name);
    std::printf("  %-6s %8s %8s %6s %7s %9s %9s %9s %s\n", "load", "offered",
                "admit", "shed%", "good/s", "waitP95", "waitP99", "lsP95",
                "ladder[P/th0/Fuxi]");
    for (double multiplier : multipliers) {
      RoServiceOptions service_options;
      service_options.queue_capacity = kQueueCapacity;
      if (std::strcmp(arm.name, "static") == 0) {
        service_options.brownout.enabled = true;
        service_options.brownout.queue_high_fraction = 0.6;
        service_options.brownout.queue_low_fraction = 0.25;
        service_options.brownout.demote_after = 3;
        service_options.brownout.promote_after = 5;
      } else if (std::strcmp(arm.name, "codel") == 0) {
        service_options.codel.enabled = true;
        service_options.codel_clock = CodelClockMode::kWallClock;
        // Deliberately calibration-free constants: deriving them from the
        // measured service time just inherits the calibration's noise
        // (the static arm's depth thresholds are calibration-free, which
        // is why it is stable) — finding the right latency target is the
        // adaptive layer's job. The interval is several service times so
        // a fast drain of an above-target backlog cannot fire an
        // escalation per dequeue; demote early (a two-worker pool, not a
        // router with thousands of flows), shed late — demotion
        // multiplies capacity, so the controller spends the whole rung
        // ladder before it starts refusing work.
        service_options.codel.interval_seconds = 0.010;
        service_options.codel.theta0_count = 1;
        service_options.codel.fuxi_count = 2;
        service_options.codel.shed_count = 8;
        service_options.codel.protect_margin = 2;
        service_options.adaptive_target.enabled = true;
        service_options.adaptive_target.initial_target_seconds = 0.010;
        service_options.adaptive_target.min_target_seconds = 0.001;
        service_options.adaptive_target.max_target_seconds = 0.050;
        service_options.adaptive_target.window = 16;
      }
      // One registry per sweep point: the service's queue-wait / service-
      // time histograms and the replay-path phase timings all land here, so
      // the JSON breakdown is per-(arm, multiplier) rather than cumulative.
      obs::MetricsRegistry registry;
      SimOptions point_sim = sim;
      point_sim.obs.metrics = &registry;
      RoService service(&workload, &(*env)->model(), point_sim, config,
                        service_options);

      const double rate = multiplier * saturation;
      const double interval = 1.0 / rate;
      const int offered_total =
          std::max(200, static_cast<int>(rate * window_seconds));
      // Tail quantiles are judged on the steady state: the first chunk of
      // every point is warmup, snapshotted and subtracted out. Sojourn
      // control can only react after requests have waited and been
      // dequeued, so the initial queue-fill (admitted before any
      // controller has seen a single sojourn) is a fixed startup artifact
      // every arm pays once — it measures the cold start, not the
      // control law the sweep compares.
      const int warm_total = offered_total / 4;
      obs::MetricsRegistry::Snapshot warm_snap;
      const double start = NowSeconds();
      for (int r = 0; r < offered_total; ++r) {
        // Paced open-loop arrivals: a shed request is gone, not retried —
        // exactly the regime where an unbounded queue would melt down.
        const double due = start + r * interval;
        const double now = NowSeconds();
        if (due > now) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(due - now));
        }
        // Every 5th request is latency-sensitive, the rest are batch.
        (void)service.Submit(r % num_jobs,
                             r % 5 == 0 ? RequestPriority::kLatencySensitive
                                        : RequestPriority::kBatch);
        if (r + 1 == warm_total) warm_snap = registry.Snap();
      }
      service.Drain();
      const double elapsed = NowSeconds() - start;
      service.Stop();

      SweepPoint point;
      point.multiplier = multiplier;
      point.offered_rate = rate;
      point.summary = service.Summary();
      point.goodput = point.summary.jobs_completed / elapsed;
      const obs::MetricsRegistry::Snapshot full_snap = registry.Snap();
      const obs::MetricsRegistry::HistogramView& wait =
          full_snap.histograms.at("svc.queue_wait_seconds");
      const obs::MetricsRegistry::HistogramView& ls_wait =
          full_snap.histograms.at("svc.queue_wait_ls_seconds");
      const obs::MetricsRegistry::HistogramView empty_view;
      const obs::MetricsRegistry::HistogramView& wait_warm =
          warm_snap.histograms.count("svc.queue_wait_seconds")
              ? warm_snap.histograms.at("svc.queue_wait_seconds")
              : empty_view;
      const obs::MetricsRegistry::HistogramView& ls_wait_warm =
          warm_snap.histograms.count("svc.queue_wait_ls_seconds")
              ? warm_snap.histograms.at("svc.queue_wait_ls_seconds")
              : empty_view;
      point.wait_p95_ms = DiffQuantile(wait_warm, wait, 0.95) * 1e3;
      point.wait_p99_ms = DiffQuantile(wait_warm, wait, 0.99) * 1e3;
      point.ls_wait_p95_ms = DiffQuantile(ls_wait_warm, ls_wait, 0.95) * 1e3;
      point.breakdown_json = obs::PhaseBreakdownJson(registry);
      const RoSummary& s = point.summary;
      std::printf(
          "  %4.1fx %8.1f %8ld %5.1f%% %7.1f %7.1fms %7.1fms %7.1fms"
          " %d/%d/%d\n",
          multiplier, rate, s.jobs_admitted,
          100.0 * s.jobs_shed / s.jobs_offered, point.goodput,
          point.wait_p95_ms, point.wait_p99_ms, point.ls_wait_p95_ms,
          s.fallback_histogram[0], s.fallback_histogram[1],
          s.fallback_histogram[2]);
      if (std::strcmp(arm.name, "codel") == 0) {
        std::printf("        codel: shed %ld theta0 %ld fuxi %ld"
                    " | target %.2fms after %ld adaptations, %ld resets\n",
                    s.codel_shed_jobs, s.codel_theta0_jobs,
                    s.codel_fuxi_jobs, s.codel_target_ms,
                    s.codel_target_adaptations, s.codel_interval_resets);
      }
      arm.points.push_back(std::move(point));
    }
    arm.worst_p95_ms = WorstMs(arm.points, &SweepPoint::wait_p95_ms);
    arm.worst_p99_ms = WorstMs(arm.points, &SweepPoint::wait_p99_ms);
  }

  // Verdict. Flatness: CoDel's worst p95/p99 across the sweep must be no
  // higher than either baseline's worst (small absolute slack for
  // histogram-bucket granularity) — worst-of-sweep, because a spread
  // metric would score an arm that is pinned at the queue bound at every
  // multiplier as perfectly flat. Goodput: at the saturation point CoDel
  // must hold at least ~the static-brownout arm's completion rate — flat
  // latency bought by refusing all the work would be cheating.
  const Arm& none = arms[0];
  const Arm& fixed = arms[1];
  const Arm& codel = arms[2];
  // Slack: absolute for histogram-bucket granularity, proportional for
  // scheduler noise on a shared machine — the claim is "no worse tails",
  // not "wins a coin-flip-sized margin".
  auto no_worse = [](double codel_ms, double base_ms) {
    return codel_ms <= std::max(base_ms + 10.0, 1.25 * base_ms);
  };
  const bool flat_p95 = no_worse(codel.worst_p95_ms, fixed.worst_p95_ms) &&
                        no_worse(codel.worst_p95_ms, none.worst_p95_ms);
  const bool flat_p99 = no_worse(codel.worst_p99_ms, fixed.worst_p99_ms) &&
                        no_worse(codel.worst_p99_ms, none.worst_p99_ms);
  const SweepPoint& codel_sat = SaturationPoint(codel.points);
  const SweepPoint& static_sat = SaturationPoint(fixed.points);
  const bool goodput_holds = codel_sat.goodput >= 0.95 * static_sat.goodput;
  const bool pass = flat_p95 && flat_p99 && goodput_holds;

  std::printf("\n  worst p95: none %.1fms static %.1fms codel %.1fms\n",
              none.worst_p95_ms, fixed.worst_p95_ms, codel.worst_p95_ms);
  std::printf("  worst p99: none %.1fms static %.1fms codel %.1fms\n",
              none.worst_p99_ms, fixed.worst_p99_ms, codel.worst_p99_ms);
  std::printf("  goodput @ %.1fx: codel %.1f/s vs static %.1f/s\n",
              codel_sat.multiplier, codel_sat.goodput, static_sat.goodput);
  std::printf("  verdict: codel flat p95: %s | flat p99: %s"
              " | goodput holds: %s -> %s\n",
              flat_p95 ? "yes" : "NO", flat_p99 ? "yes" : "NO",
              goodput_holds ? "yes" : "NO", pass ? "PASS" : "FAIL");

  if (!json_out.empty()) {
    std::string json = "{\"arms\": [";
    char buf[512];
    for (std::size_t a = 0; a < arms.size(); ++a) {
      const Arm& arm = arms[a];
      if (a > 0) json += ",";
      std::snprintf(buf, sizeof(buf),
                    "{\"arm\": \"%s\", \"worst_p95_ms\": %.17g, "
                    "\"worst_p99_ms\": %.17g, \"points\": [",
                    arm.name, arm.worst_p95_ms, arm.worst_p99_ms);
      json += buf;
      for (std::size_t i = 0; i < arm.points.size(); ++i) {
        const SweepPoint& p = arm.points[i];
        if (i > 0) json += ",";
        std::snprintf(
            buf, sizeof(buf),
            "{\"multiplier\": %.17g, \"offered_rate\": %.17g, "
            "\"goodput\": %.17g, \"shed\": %ld, \"wait_p95_ms\": %.17g, "
            "\"wait_p99_ms\": %.17g, \"ls_wait_p95_ms\": %.17g, "
            "\"codel_shed\": %ld, \"codel_theta0\": %ld, "
            "\"codel_fuxi\": %ld, \"codel_target_ms\": %.17g, "
            "\"breakdown\": ",
            p.multiplier, p.offered_rate, p.goodput, p.summary.jobs_shed,
            p.wait_p95_ms, p.wait_p99_ms, p.ls_wait_p95_ms,
            p.summary.codel_shed_jobs, p.summary.codel_theta0_jobs,
            p.summary.codel_fuxi_jobs, p.summary.codel_target_ms);
        json += buf;
        json += p.breakdown_json;
        json += "}";
      }
      json += "]}";
    }
    std::snprintf(buf, sizeof(buf),
                  "], \"verdict\": {\"flat_p95\": %s, \"flat_p99\": %s, "
                  "\"goodput_holds\": %s, \"pass\": %s}}\n",
                  flat_p95 ? "true" : "false", flat_p99 ? "true" : "false",
                  goodput_holds ? "true" : "false", pass ? "true" : "false");
    json += buf;
    FGRO_CHECK_OK(obs::WriteJsonFile(json, json_out));
    std::printf("  wrote %s\n", json_out.c_str());
  }
  return pass ? 0 : 1;
}
