// Overload sweep for the concurrent RO service: the same request stream
// offered at a rising multiple of the measured saturation rate, against a
// fixed worker pool with a bounded admission queue and the brown-out
// controller armed. The claim under test: the service degrades gracefully
// rather than collapsing — beyond saturation it sheds the excess with
// kResourceExhausted, keeps the p95 queue wait bounded by the queue depth
// (instead of growing with the backlog), holds goodput at the pool's
// capacity, and browns decisions down the IPA+RAA -> theta0 -> Fuxi ladder
// until pressure clears.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/snapshot.h"
#include "optimizer/stage_optimizer.h"
#include "service/ro_service.h"

using namespace fgro;
using namespace fgro::bench;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::string FlagValue(int argc, char** argv, const char* prefix) {
  const std::size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
  }
  return "";
}

struct SweepPoint {
  double multiplier = 0.0;
  double offered_rate = 0.0;   // requests/s offered
  double goodput = 0.0;        // completions/s achieved
  RoSummary summary;
  std::string breakdown_json;  // per-phase rollup incl. queue wait
};

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  const bool quick = HasFlag(argc, argv, "--quick");
  const std::string json_out = FlagValue(argc, argv, "--json_out=");
  PrintHeader("Overload: offered load vs goodput / shed rate / p95");

  ExperimentEnv::Options options = DefaultOptions(
      WorkloadId::kA, quick ? BenchScale::kSmoke : BenchScale::kAblation);
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  FGRO_CHECK_OK(env.status());
  const Workload& workload = (*env)->workload();
  const int num_jobs = static_cast<int>(workload.jobs.size());

  const int kWorkers = 2;
  SimOptions sim;
  sim.outcome = OutcomeMode::kEnvironment;
  sim.service_threads = kWorkers;
  const StageOptimizer::Config config =
      StageOptimizer::IpaRaaPathWithFallback();

  // Calibrate: serve the whole workload once, unthrottled, to measure the
  // mean per-job service time and the pool's saturation throughput.
  double mean_service;
  {
    SimOptions calib = sim;
    calib.service_threads = 1;
    const double start = NowSeconds();
    Result<SimResult> result =
        ServeWorkload(workload, &(*env)->model(), calib, config);
    FGRO_CHECK_OK(result.status());
    mean_service = (NowSeconds() - start) / num_jobs;
  }
  const double saturation = kWorkers / mean_service;  // requests/s
  std::printf("  calibration: %d jobs, mean service %.1f ms"
              " -> saturation ~%.1f req/s with %d workers\n",
              num_jobs, mean_service * 1e3, saturation, kWorkers);

  const std::vector<double> multipliers =
      quick ? std::vector<double>{1.0, 4.0}
            : std::vector<double>{0.5, 1.0, 2.0, 4.0};
  const int offered_total = quick ? 3 * num_jobs : 8 * num_jobs;

  std::printf("\n  %-6s %8s %8s %6s %7s %9s %9s %8s %s\n", "load", "offered",
              "admit", "shed%", "good/s", "waitP95", "servP95", "brown",
              "ladder[P/th0/Fuxi]");
  std::vector<SweepPoint> points;
  for (double multiplier : multipliers) {
    RoServiceOptions service_options;
    service_options.queue_capacity = 8;
    service_options.brownout.enabled = true;
    service_options.brownout.queue_high_fraction = 0.6;
    service_options.brownout.queue_low_fraction = 0.25;
    service_options.brownout.demote_after = 3;
    service_options.brownout.promote_after = 5;
    // One registry per sweep point: the service's queue-wait / service-time
    // histograms and the replay-path phase timings all land here, so the
    // JSON breakdown is per-multiplier rather than cumulative.
    obs::MetricsRegistry registry;
    SimOptions point_sim = sim;
    point_sim.obs.metrics = &registry;
    RoService service(&workload, &(*env)->model(), point_sim, config,
                      service_options);

    const double rate = multiplier * saturation;
    const double interval = 1.0 / rate;
    const double start = NowSeconds();
    for (int r = 0; r < offered_total; ++r) {
      // Paced open-loop arrivals: a shed request is gone, not retried —
      // exactly the regime where an unbounded queue would melt down.
      const double due = start + r * interval;
      const double now = NowSeconds();
      if (due > now) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(due - now));
      }
      // Every 5th request is latency-sensitive, the rest are batch.
      (void)service.Submit(r % num_jobs,
                           r % 5 == 0 ? RequestPriority::kLatencySensitive
                                      : RequestPriority::kBatch);
    }
    service.Drain();
    const double elapsed = NowSeconds() - start;
    service.Stop();

    SweepPoint point;
    point.multiplier = multiplier;
    point.offered_rate = rate;
    point.summary = service.Summary();
    point.goodput = point.summary.jobs_completed / elapsed;
    point.breakdown_json = obs::PhaseBreakdownJson(registry);
    const RoSummary& s = point.summary;
    std::printf("  %4.1fx %8.1f %8ld %5.1f%% %7.1f %7.1fms %7.1fms %5ld/%-2ld"
                " %d/%d/%d\n",
                multiplier, rate, s.jobs_admitted,
                100.0 * s.jobs_shed / s.jobs_offered, point.goodput,
                s.queue_wait_p95_ms, s.service_p95_ms, s.brownout_demotions,
                s.brownout_promotions, s.fallback_histogram[0],
                s.fallback_histogram[1], s.fallback_histogram[2]);
    points.push_back(std::move(point));
  }

  // Graceful-degradation verdict: past saturation the service must shed
  // (bounded queue), keep goodput at or above the 1x point (no collapse),
  // and keep the p95 queue wait bounded by roughly capacity * service time.
  const SweepPoint* one = nullptr;
  bool shed_past_saturation = true, goodput_holds = true, wait_bounded = true;
  for (const SweepPoint& p : points) {
    if (p.multiplier == 1.0) one = &p;
  }
  for (const SweepPoint& p : points) {
    if (p.multiplier >= 2.0) {
      if (p.summary.jobs_shed == 0) shed_past_saturation = false;
      if (one != nullptr && p.goodput < 0.8 * one->goodput) {
        goodput_holds = false;
      }
      if (p.summary.queue_wait_p95_ms >
          2.0 * 8 * (mean_service * 1e3 / kWorkers) + 100.0) {
        wait_bounded = false;
      }
    }
  }
  std::printf("\n  degradation: shed past saturation: %s | goodput holds: %s"
              " | p95 wait bounded: %s\n",
              shed_past_saturation ? "yes" : "NO",
              goodput_holds ? "yes" : "NO", wait_bounded ? "yes" : "NO");

  if (!json_out.empty()) {
    // Per-multiplier phase breakdown (queue wait included) as a JSON array,
    // matching PhaseBreakdownJson's schema per entry.
    std::string json = "[";
    char buf[160];
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      if (i > 0) json += ",";
      std::snprintf(buf, sizeof(buf),
                    "{\"multiplier\": %.17g, \"offered_rate\": %.17g, "
                    "\"goodput\": %.17g, \"shed\": %ld, \"breakdown\": ",
                    p.multiplier, p.offered_rate, p.goodput,
                    p.summary.jobs_shed);
      json += buf;
      json += p.breakdown_json;
      json += "}";
    }
    json += "]\n";
    FGRO_CHECK_OK(obs::WriteJsonFile(json, json_out));
    std::printf("  wrote %s\n", json_out.c_str());
  }
  return (shed_past_saturation && goodput_holds && wait_bounded) ? 0 : 1;
}
