// Scenario: capacity planning. An operator asks "how does the optimizer's
// benefit change if I shrink the fleet or let utilization climb?" — a
// what-if sweep over cluster size and background load, replaying the same
// workload under Fuxi and under the Stage Optimizer and reporting coverage,
// latency and cost for each configuration.
//
// Build & run:  ./build/examples/capacity_what_if

#include <cstdio>

#include "common/logging.h"

#include "optimizer/fuxi.h"
#include "optimizer/stage_optimizer.h"
#include "sim/experiment_env.h"
#include "sim/ro_metrics.h"

using namespace fgro;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("Preparing workload A...\n");
  ExperimentEnv::Options options;
  options.workload = WorkloadId::kA;
  options.scale = 0.08;
  options.train.epochs = 8;
  options.train.max_train_samples = 6000;
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  if (!env.ok()) {
    std::printf("setup failed: %s\n", env.status().ToString().c_str());
    return 1;
  }

  std::printf("%-22s %-9s | %-28s | %-28s | %s\n", "configuration", "",
              "Fuxi", "IPA+RAA(Path)", "savings");
  StageOptimizer optimizer(StageOptimizer::IpaRaaPath());
  for (int machines : {32, 96}) {
    for (double util : {0.35, 0.6, 0.8}) {
      SimOptions sim_options;
      sim_options.outcome = OutcomeMode::kEnvironment;
      sim_options.cluster.num_machines = machines;
      sim_options.cluster.base_util_mean = util;

      Simulator fuxi_sim(&(*env)->workload(), &(*env)->model(), sim_options);
      Result<SimResult> fuxi = fuxi_sim.Run(
          [](const SchedulingContext& c) { return FuxiSchedule(c); });
      Simulator so_sim(&(*env)->workload(), &(*env)->model(), sim_options);
      Result<SimResult> ours = so_sim.Run(
          [&](const SchedulingContext& c) { return optimizer.Optimize(c); });
      if (!fuxi.ok() || !ours.ok()) {
        std::printf("replay failed\n");
        return 1;
      }
      PairedSummaries paired = SummarizePaired(fuxi.value(), ours.value());
      ReductionRates rr = ComputeReduction(paired.baseline, paired.method);
      std::printf("%3d machines @ %2.0f%% util | lat %6.1fs cost %8.4fm$ | "
                  "lat %6.1fs cost %8.4fm$ | -%2.0f%% lat, -%2.0f%% cost\n",
                  machines, util * 100, paired.baseline.avg_latency_in,
                  paired.baseline.avg_cost * 1000,
                  paired.method.avg_latency_in, paired.method.avg_cost * 1000,
                  rr.latency_in_rr * 100, rr.cost_rr * 100);
    }
  }
  std::printf("\nTakeaway: the optimizer's placement advantage grows with\n"
              "cluster heterogeneity headroom (more machines, lower load),\n"
              "while the resource-plan savings persist even on a hot, small\n"
              "fleet — capacity can be traded for intelligence.\n");
  return 0;
}
