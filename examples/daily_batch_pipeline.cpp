// Scenario: a department's daily batch window. A recurring multi-stage ETL
// job DAG (the paper's Fig. 1 motivation) is replayed through the extended
// MaxCompute simulator under the Fuxi scheduler and under the Stage
// Optimizer, on both a busy daytime cluster and an idle overnight cluster,
// reporting per-stage outcomes and the aggregate latency/cost savings.
//
// Build & run:  ./build/examples/daily_batch_pipeline

#include <cstdio>

#include "common/logging.h"

#include "optimizer/fuxi.h"
#include "optimizer/stage_optimizer.h"
#include "sim/experiment_env.h"
#include "sim/ro_metrics.h"

using namespace fgro;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("Preparing workload B (deep multi-stage job DAGs)...\n");
  ExperimentEnv::Options options;
  options.workload = WorkloadId::kB;  // the most DAG-heavy workload
  options.scale = 0.12;
  options.train.epochs = 8;
  options.train.max_train_samples = 6000;
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  if (!env.ok()) {
    std::printf("setup failed: %s\n", env.status().ToString().c_str());
    return 1;
  }

  // The deepest pipeline in the workload plays the "nightly ETL" role.
  int pipeline_job = 0;
  for (size_t j = 0; j < (*env)->workload().jobs.size(); ++j) {
    if ((*env)->workload().jobs[j].stage_count() >
        (*env)->workload().jobs[static_cast<size_t>(pipeline_job)]
            .stage_count()) {
      pipeline_job = static_cast<int>(j);
    }
  }
  const Job& job =
      (*env)->workload().jobs[static_cast<size_t>(pipeline_job)];
  std::printf("Pipeline job #%d: %d stages, dependencies:", job.id,
              job.stage_count());
  for (int s = 0; s < job.stage_count(); ++s) {
    std::printf(" s%d<-(", s);
    for (int d : job.stage_deps[static_cast<size_t>(s)]) std::printf("s%d", d);
    std::printf(")");
  }
  std::printf("\n\n");

  for (double base_util : {0.72, 0.33}) {
    std::printf("--- cluster %s (avg utilization %.0f%%) ---\n",
                base_util > 0.5 ? "BUSY (daytime)" : "IDLE (overnight)",
                base_util * 100);
    SimOptions sim_options;
    sim_options.outcome = OutcomeMode::kEnvironment;
    sim_options.cluster.num_machines = 96;
    sim_options.cluster.base_util_mean = base_util;

    StageOptimizer optimizer(StageOptimizer::IpaRaaPath());
    struct Run {
      const char* name;
      Simulator::SchedulerFn scheduler;
    };
    Run runs[] = {
        {"Fuxi",
         [](const SchedulingContext& c) { return FuxiSchedule(c); }},
        {"IPA+RAA",
         [&](const SchedulingContext& c) { return optimizer.Optimize(c); }},
    };
    RoSummary summaries[2];
    for (int r = 0; r < 2; ++r) {
      Simulator sim(&(*env)->workload(), &(*env)->model(), sim_options);
      Result<SimResult> result =
          sim.RunJobs(runs[r].scheduler, {pipeline_job});
      if (!result.ok()) {
        std::printf("replay failed: %s\n",
                    result.status().ToString().c_str());
        return 1;
      }
      summaries[r] = Summarize(result.value());
      std::printf("  %-8s per-stage:", runs[r].name);
      double pipeline_latency = 0.0;
      for (const StageOutcome& o : result->outcomes) {
        std::printf(" %.0fs", o.stage_latency_in);
        pipeline_latency += o.stage_latency_in;  // critical-path approx.
      }
      std::printf("   | pipeline %.0fs, cost %.4fm$\n", pipeline_latency,
                  summaries[r].avg_cost * result->outcomes.size() * 1000);
    }
    ReductionRates rr = ComputeReduction(summaries[0], summaries[1]);
    std::printf("  -> stage latency -%.0f%%, cost -%.0f%% vs Fuxi\n\n",
                rr.latency_in_rr * 100, rr.cost_rr * 100);
  }
  std::printf("Idle clusters leave more headroom for placement, so the\n"
              "optimizer's advantage is typically larger overnight.\n");
  return 0;
}
