// Scenario: an analytical user exploring the latency/cost tradeoff of a
// wide stage before submitting it. Prints the stage-level Pareto frontier
// that RAA's hierarchical MOO computes from the per-instance frontiers, the
// Weighted-Utopia-Nearest recommendation under several preference weights,
// and the instance-specific resource plans behind the recommended point.
//
// Build & run:  ./build/examples/pareto_explorer

#include <cstdio>

#include "common/logging.h"
#include <map>

#include "hbo/hbo.h"
#include "optimizer/ipa_clustered.h"
#include "optimizer/raa.h"
#include "sim/experiment_env.h"

using namespace fgro;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("Preparing workload C (wide stages)...\n");
  ExperimentEnv::Options options;
  options.workload = WorkloadId::kC;
  options.scale = 0.12;
  options.train.epochs = 8;
  options.train.max_train_samples = 6000;
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  if (!env.ok()) {
    std::printf("setup failed: %s\n", env.status().ToString().c_str());
    return 1;
  }
  const Stage* stage = nullptr;
  for (const Job& job : (*env)->workload().jobs) {
    for (const Stage& candidate : job.stages) {
      if (stage == nullptr ||
          candidate.instance_count() > stage->instance_count()) {
        stage = &candidate;
      }
    }
  }

  Cluster cluster(ClusterOptions{.num_machines = 96, .seed = 5});
  Hbo hbo;
  HboRecommendation rec = hbo.Recommend(*stage);
  SchedulingContext context;
  context.stage = stage;
  context.cluster = &cluster;
  context.model = &(*env)->model();
  context.theta0 = rec.theta0;

  ClusteredIpaResult ipa = IpaClusteredSchedule(context);
  if (!ipa.decision.feasible) {
    std::printf("placement infeasible\n");
    return 1;
  }
  std::printf("Stage: %d instances -> %d instance clusters x %d machine "
              "clusters; IPA solved in %.1f ms.\n",
              stage->instance_count(), ipa.num_instance_clusters,
              ipa.num_machine_clusters,
              ipa.decision.solve_seconds * 1e3);

  for (double latency_weight : {1.0, 3.0, 10.0}) {
    RaaOptions raa_options;
    raa_options.wun_weights = {latency_weight, 1.0};
    RaaResult raa = RunRaa(context, ipa.decision, &ipa.groups, raa_options);
    if (!raa.ok) {
      std::printf("RAA failed\n");
      return 1;
    }
    if (latency_weight == 1.0) {
      std::printf("\nStage-level Pareto frontier (%zu points, predicted):\n",
                  raa.stage_pareto.size());
      size_t step = raa.stage_pareto.size() / 12 + 1;
      for (size_t i = 0; i < raa.stage_pareto.size(); i += step) {
        std::printf("  latency %7.1fs  cost %.5f$\n", raa.stage_pareto[i][0],
                    raa.stage_pareto[i][1]);
      }
    }
    const std::vector<double>& pick =
        raa.stage_pareto[static_cast<size_t>(raa.recommended_index)];
    std::printf("\nWUN with latency:cost weight %g:1 -> latency %.1fs, "
                "cost %.5f$\n", latency_weight, pick[0], pick[1]);
    std::map<std::pair<double, double>, int> plans;
    for (const ResourceConfig& theta : raa.theta_of_instance) {
      plans[{theta.cores, theta.memory_gb}]++;
    }
    std::printf("  instance-specific plans:");
    for (const auto& [plan, count] : plans) {
      std::printf("  %dx(%.2g cores, %.2g GB)", count, plan.first,
                  plan.second);
    }
    std::printf("\n");
  }
  std::printf("\nHigher latency weight pushes the recommendation toward the\n"
              "fast end of the frontier: stragglers get bigger containers\n"
              "while short instances keep small ones.\n");
  return 0;
}
