// Quickstart: the full fine-grained resource-optimization pipeline in one
// file. Generates a synthetic production workload, collects runtime traces,
// trains the instance-level MCI+GTN latency model, and then schedules one
// stage with the Stage Optimizer (IPA placement + RAA instance-specific
// resource plans), comparing the outcome against the Fuxi baseline.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/logging.h"
#include "env/cost.h"
#include "env/ground_truth.h"
#include "hbo/hbo.h"
#include "optimizer/fuxi.h"
#include "optimizer/stage_optimizer.h"
#include "sim/experiment_env.h"

using namespace fgro;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("1. Generating workload A, collecting traces, training the "
              "MCI+GTN model...\n");
  ExperimentEnv::Options options;
  options.workload = WorkloadId::kA;
  options.scale = 0.1;
  options.train.epochs = 8;
  options.train.max_train_samples = 6000;
  Result<std::unique_ptr<ExperimentEnv>> env = ExperimentEnv::Build(options);
  if (!env.ok()) {
    std::printf("setup failed: %s\n", env.status().ToString().c_str());
    return 1;
  }
  std::printf("   %d stages, %d instances traced; model trained.\n",
              (*env)->workload().TotalStages(),
              (*env)->workload().TotalInstances());

  // Pick a mid-sized stage to schedule (wide enough to be interesting,
  // small enough that placement has freedom on a 64-machine cluster).
  const Stage* stage = nullptr;
  for (const Job& job : (*env)->workload().jobs) {
    for (const Stage& candidate : job.stages) {
      if (candidate.instance_count() <= 96 &&
          (stage == nullptr ||
           candidate.instance_count() > stage->instance_count())) {
        stage = &candidate;
      }
    }
  }
  if (stage == nullptr) stage = &(*env)->workload().jobs[0].stages[0];
  std::printf("2. Scheduling a stage with %d instances and %d operators.\n",
              stage->instance_count(), stage->operator_count());

  Cluster cluster(ClusterOptions{.num_machines = 64, .seed = 42});
  Hbo hbo;
  HboRecommendation rec = hbo.Recommend(*stage);
  SchedulingContext context;
  context.stage = stage;
  context.cluster = &cluster;
  context.model = &(*env)->model();
  context.theta0 = rec.theta0;
  std::printf("   HBO suggests theta0 = (%.2g cores, %.2g GB) for every "
              "instance.\n", rec.theta0.cores, rec.theta0.memory_gb);

  // Fuxi vs the Stage Optimizer, scored by the hidden environment.
  GroundTruthEnv ground_truth((*env)->workload().profile.env);
  CostWeights weights;
  auto evaluate = [&](const StageDecision& decision) {
    StageObjectives objectives;
    for (int i = 0; i < stage->instance_count(); ++i) {
      const Machine& machine = cluster.machine(
          decision.machine_of_instance[static_cast<size_t>(i)]);
      const ResourceConfig& theta =
          decision.theta_of_instance[static_cast<size_t>(i)];
      double latency = ground_truth.ExpectedLatency(*stage, i, machine,
                                                    theta).total;
      objectives.latency = std::max(objectives.latency, latency);
      objectives.cost += latency * weights.Rate(theta);
    }
    return objectives;
  };

  StageDecision fuxi = FuxiSchedule(context);
  StageOptimizer optimizer(StageOptimizer::IpaRaaPath());
  StageDecision ours = optimizer.Optimize(context);
  if (!fuxi.feasible || !ours.feasible) {
    std::printf("scheduling infeasible on this cluster\n");
    return 1;
  }
  StageObjectives fuxi_obj = evaluate(fuxi);
  StageObjectives our_obj = evaluate(ours);
  std::printf("3. Results (true environment):\n");
  std::printf("   Fuxi      : latency %6.1fs  cost %.5f$  (solve %.1f ms)\n",
              fuxi_obj.latency, fuxi_obj.cost, fuxi.solve_seconds * 1e3);
  std::printf("   IPA+RAA   : latency %6.1fs  cost %.5f$  (solve %.1f ms)\n",
              our_obj.latency, our_obj.cost, ours.solve_seconds * 1e3);
  std::printf("   -> %.0f%% latency and %.0f%% cost reduction with "
              "instance-specific plans.\n",
              100 * (1 - our_obj.latency / fuxi_obj.latency),
              100 * (1 - our_obj.cost / fuxi_obj.cost));
  return 0;
}
