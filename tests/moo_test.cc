#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "moo/config_space.h"
#include "moo/mogd.h"
#include "moo/nsga2.h"
#include "moo/pareto.h"
#include "moo/progressive_frontier.h"
#include "moo/weighted_sum.h"
#include "moo/wun.h"

namespace fgro {
namespace {

TEST(ParetoTest, DominanceDefinition) {
  EXPECT_TRUE(Dominates({1, 1}, {2, 2}));
  EXPECT_TRUE(Dominates({1, 2}, {2, 2}));
  EXPECT_FALSE(Dominates({1, 3}, {2, 2}));
  EXPECT_FALSE(Dominates({2, 2}, {2, 2}));  // equal does not dominate
}

TEST(ParetoTest, NonFinitePointsNeverDominate) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  // NaN comparisons are all false; without the guard {nan, nan} would
  // "dominate" nothing but {-inf, nan} style points could slip through.
  EXPECT_FALSE(Dominates({nan, 0.0}, {2, 2}));
  EXPECT_FALSE(Dominates({-inf, nan}, {2, 2}));
  EXPECT_FALSE(Dominates({-inf, 0.0}, {2, 2}));  // -inf is corrupt, not good
  EXPECT_FALSE(Dominates({1, 1}, {nan, 2}));
  // A finite point still dominates an infinitely BAD one.
  EXPECT_TRUE(Dominates({1, 1}, {inf, 2}));
}

TEST(ParetoTest, FilterDropsNonFinitePoints) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  // 2-D sweep path.
  std::vector<std::vector<double>> points = {
      {1.0, 4.0}, {nan, 0.0}, {2.0, 3.0}, {0.0, inf}, {3.0, 5.0}};
  std::vector<int> frontier = ParetoFilter(points);
  EXPECT_EQ(frontier, (std::vector<int>{0, 2}));
  // General N-D path.
  std::vector<std::vector<double>> points3 = {
      {1.0, 4.0, 2.0}, {nan, 0.0, 0.0}, {2.0, 3.0, 1.0}, {1.0, -inf, 0.0}};
  frontier = ParetoFilter(points3);
  for (int idx : frontier) {
    for (double v : points3[static_cast<size_t>(idx)]) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
  EXPECT_FALSE(frontier.empty());
  // All-corrupt input yields an empty frontier, not a poisoned one.
  EXPECT_TRUE(ParetoFilter({{nan, 1.0}, {inf, inf}}).empty());
}

std::vector<int> BruteForcePareto(
    const std::vector<std::vector<double>>& points) {
  std::vector<int> out;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i != j && Dominates(points[j], points[i])) dominated = true;
      if (j < i && points[j] == points[i]) dominated = true;
    }
    if (!dominated) out.push_back(static_cast<int>(i));
  }
  return out;
}

class ParetoFilterProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParetoFilterProperty, MatchesBruteForce2D) {
  Rng rng(GetParam());
  std::vector<std::vector<double>> points;
  int n = static_cast<int>(rng.UniformInt(1, 60));
  for (int i = 0; i < n; ++i) {
    points.push_back({rng.UniformInt(0, 10) * 1.0, rng.UniformInt(0, 10) * 1.0});
  }
  EXPECT_EQ(ParetoFilter(points), BruteForcePareto(points));
}

TEST_P(ParetoFilterProperty, MatchesBruteForce3D) {
  Rng rng(GetParam() + 100);
  std::vector<std::vector<double>> points;
  int n = static_cast<int>(rng.UniformInt(1, 40));
  for (int i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
  }
  std::vector<int> fast = ParetoFilter(points);
  std::vector<int> brute = BruteForcePareto(points);
  EXPECT_EQ(fast, brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoFilterProperty,
                         ::testing::Range<uint64_t>(1, 13));

TEST(ConfigSpaceTest, GridAndCapacityFilter) {
  const std::vector<ResourceConfig>& grid = DefaultConfigGrid();
  EXPECT_GE(grid.size(), 40u);
  std::vector<ResourceConfig> small = FilterByCapacity(grid, 2.0, 8.0);
  for (const ResourceConfig& theta : small) {
    EXPECT_LE(theta.cores, 2.0);
    EXPECT_LE(theta.memory_gb, 8.0);
  }
  EXPECT_LT(small.size(), grid.size());
  EXPECT_TRUE(FilterByCapacity(grid, 0.01, 0.01).empty());
}

/// Synthetic latency model with a clean tradeoff: more cores -> faster.
double SyntheticLatency(const ResourceConfig& theta) {
  return 100.0 / std::pow(theta.cores, 0.7) +
         20.0 / std::sqrt(theta.memory_gb);
}

TEST(InstanceMooSolverTest, ExhaustiveIsParetoAndSorted) {
  InstanceMooSolver solver(CostWeights{});
  std::vector<InstanceParetoPoint> frontier =
      solver.SolveExhaustive(SyntheticLatency, DefaultConfigGrid());
  ASSERT_GE(frontier.size(), 2u);
  for (size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_LT(frontier[i].latency, frontier[i - 1].latency);
    EXPECT_GT(frontier[i].cost, frontier[i - 1].cost);
  }
}

TEST(InstanceMooSolverTest, ProgressiveSubsetOfExhaustive) {
  InstanceMooSolver solver(CostWeights{});
  std::vector<InstanceParetoPoint> exhaustive =
      solver.SolveExhaustive(SyntheticLatency, DefaultConfigGrid());
  std::vector<InstanceParetoPoint> progressive =
      solver.SolveProgressive(SyntheticLatency, DefaultConfigGrid(), 64);
  ASSERT_FALSE(progressive.empty());
  // Every PF point must be on the exhaustive frontier.
  for (const InstanceParetoPoint& p : progressive) {
    bool found = false;
    for (const InstanceParetoPoint& e : exhaustive) {
      if (std::abs(e.latency - p.latency) < 1e-12 &&
          std::abs(e.cost - p.cost) < 1e-15) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << p.latency;
  }
  // And PF must find the two anchor points.
  EXPECT_NEAR(progressive.back().latency, exhaustive.back().latency, 1e-12);
  EXPECT_NEAR(progressive.front().cost, exhaustive.front().cost, 1e-18);
}

TEST(MogdTest, MinimizesConvexQuadratic) {
  auto f = [](const Vec& x) {
    return (x[0] - 0.3) * (x[0] - 0.3) + (x[1] + 0.2) * (x[1] + 0.2);
  };
  Vec best = MinimizeFiniteDiff(f, {0.9, 0.9}, {-1, -1}, {1, 1},
                                {.iterations = 120, .restarts = 3, .lr = 0.4});
  EXPECT_NEAR(best[0], 0.3, 0.05);
  EXPECT_NEAR(best[1], -0.2, 0.05);
}

TEST(MogdTest, RespectsBoxConstraints) {
  auto f = [](const Vec& x) { return -x[0]; };  // wants x[0] -> +inf
  Vec best = MinimizeFiniteDiff(f, {0.0}, {0.0}, {2.0},
                                {.iterations = 60, .restarts = 1});
  EXPECT_LE(best[0], 2.0 + 1e-12);
  EXPECT_NEAR(best[0], 2.0, 0.05);
}

MooProblem MakeBiobjectiveProblem() {
  // Minimize (x, 1-x) over x in [0,1] with 8 vars averaged: classic convex
  // front; feasible iff x1 <= 0.9.
  MooProblem problem;
  problem.num_vars = 4;
  problem.num_objectives = 2;
  problem.sample_var = [](int, Rng* rng) { return rng->Uniform(0.0, 1.0); };
  problem.evaluate = [](const Vec& genome) {
    double mean = 0.0;
    for (double g : genome) mean += g;
    mean /= static_cast<double>(genome.size());
    MooEvaluation eval;
    eval.objectives = {mean, (1.0 - mean) * (1.0 - mean)};
    eval.violation = genome[0] > 0.9 ? genome[0] - 0.9 : 0.0;
    return eval;
  };
  return problem;
}

TEST(Nsga2Test, FindsSpreadFeasibleFront) {
  Nsga2Result result = RunNsga2(MakeBiobjectiveProblem(),
                                {.population = 32, .generations = 25,
                                 .seed = 9});
  ASSERT_GE(result.objectives.size(), 3u);
  double min_f1 = 1e18, max_f1 = -1e18;
  for (const std::vector<double>& obj : result.objectives) {
    min_f1 = std::min(min_f1, obj[0]);
    max_f1 = std::max(max_f1, obj[0]);
  }
  EXPECT_LT(min_f1, 0.25);
  EXPECT_GT(max_f1, 0.5);
  // Result must be mutually non-dominated.
  for (size_t i = 0; i < result.objectives.size(); ++i) {
    for (size_t j = 0; j < result.objectives.size(); ++j) {
      EXPECT_FALSE(i != j &&
                   Dominates(result.objectives[i], result.objectives[j]));
    }
  }
}

TEST(Nsga2Test, RespectsConstraint) {
  Nsga2Result result = RunNsga2(MakeBiobjectiveProblem(),
                                {.population = 24, .generations = 15,
                                 .seed = 10});
  for (const Vec& genome : result.genomes) {
    EXPECT_LE(genome[0], 0.9 + 1e-9);
  }
}

TEST(Nsga2Test, TimeLimitShortCircuits) {
  MooProblem slow = MakeBiobjectiveProblem();
  slow.evaluate = [base = slow.evaluate](const Vec& g) {
    volatile double sink = 0;
    for (int i = 0; i < 2000000; ++i) sink += i;
    return base(g);
  };
  Nsga2Result result = RunNsga2(slow, {.population = 64, .generations = 50,
                                       .time_limit_seconds = 0.2, .seed = 2});
  EXPECT_TRUE(result.timed_out);
}

TEST(WsSampleTest, FindsFeasibleFront) {
  WsSampleResult result = RunWeightedSumSampling(
      MakeBiobjectiveProblem(), {.num_samples = 2000, .seed = 3});
  EXPECT_GT(result.feasible_samples, 100);
  ASSERT_GE(result.objectives.size(), 2u);
  for (size_t i = 0; i < result.objectives.size(); ++i) {
    for (size_t j = 0; j < result.objectives.size(); ++j) {
      EXPECT_FALSE(i != j &&
                   Dominates(result.objectives[i], result.objectives[j]));
    }
  }
}

TEST(WsSampleTest, InfeasibleProblemReturnsEmpty) {
  MooProblem problem = MakeBiobjectiveProblem();
  problem.evaluate = [](const Vec&) {
    MooEvaluation e;
    e.objectives = {1, 1};
    e.violation = 1.0;
    return e;
  };
  WsSampleResult result = RunWeightedSumSampling(problem, {.num_samples = 100});
  EXPECT_EQ(result.feasible_samples, 0);
  EXPECT_TRUE(result.objectives.empty());
}

TEST(WunTest, PicksKneePoint) {
  std::vector<std::vector<double>> pareto = {
      {0.0, 10.0}, {1.0, 1.0}, {10.0, 0.0}};
  EXPECT_EQ(WeightedUtopiaNearest(pareto), 1);
}

TEST(WunTest, WeightsShiftTheChoice) {
  std::vector<std::vector<double>> pareto = {
      {0.0, 10.0}, {5.0, 5.0}, {10.0, 0.0}};
  // Heavy latency weight picks the low-latency end.
  EXPECT_EQ(WeightedUtopiaNearest(pareto, {100.0, 1.0}), 0);
  EXPECT_EQ(WeightedUtopiaNearest(pareto, {1.0, 100.0}), 2);
}

TEST(WunTest, EdgeCases) {
  EXPECT_EQ(WeightedUtopiaNearest({}), -1);
  EXPECT_EQ(WeightedUtopiaNearest({{1.0, 2.0}}), 0);
}

TEST(WunTest, NonFinitePointsNeverWin) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  // A NaN point would otherwise poison the lo/hi normalization bounds and
  // could win on a NaN distance comparison.
  std::vector<std::vector<double>> pareto = {
      {nan, 0.0}, {0.0, 10.0}, {1.0, 1.0}, {10.0, 0.0}, {0.0, inf}};
  EXPECT_EQ(WeightedUtopiaNearest(pareto), 2);
  // No finite candidate at all: -1, not an arbitrary corrupt pick.
  EXPECT_EQ(WeightedUtopiaNearest({{nan, 1.0}, {1.0, inf}}), -1);
}

TEST(ConstrainedCompareTest, FeasibilityFirst) {
  MooEvaluation feasible{{5, 5}, 0.0};
  MooEvaluation infeasible{{1, 1}, 2.0};
  MooEvaluation less_infeasible{{9, 9}, 1.0};
  EXPECT_EQ(ConstrainedCompare(feasible, infeasible), 1);
  EXPECT_EQ(ConstrainedCompare(infeasible, feasible), -1);
  EXPECT_EQ(ConstrainedCompare(less_infeasible, infeasible), 1);
  MooEvaluation better{{1, 5}, 0.0};
  EXPECT_EQ(ConstrainedCompare(better, feasible), 1);
  EXPECT_EQ(ConstrainedCompare(feasible, feasible), 0);
}

}  // namespace
}  // namespace fgro
