#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/adam.h"
#include "nn/graph_embedder.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/qppnet.h"
#include "nn/tree_lstm.h"

namespace fgro {
namespace {

/// Checks every parameter's analytic gradient against central finite
/// differences. `loss` must be a pure function of the current parameter
/// values; `backward` must accumulate gradients of that loss.
void CheckGradients(const std::vector<Param*>& params,
                    const std::function<double()>& loss,
                    const std::function<void()>& backward,
                    double tolerance = 1e-5) {
  for (Param* p : params) p->ZeroGrad();
  backward();
  const double h = 1e-5;
  int checked = 0;
  for (Param* p : params) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      if (++checked % 3 != 0) continue;  // spot-check a third of the params
      double saved = p->value[i];
      p->value[i] = saved + h;
      double up = loss();
      p->value[i] = saved - h;
      double down = loss();
      p->value[i] = saved;
      double numeric = (up - down) / (2 * h);
      EXPECT_NEAR(p->grad[i], numeric,
                  tolerance * std::max(1.0, std::abs(numeric)))
          << "param element " << i;
    }
  }
}

TEST(LinearTest, ForwardMatchesManualComputation) {
  Rng rng(1);
  Linear layer(2, 2, &rng);
  std::vector<Param*> params;
  layer.AppendParams(&params);
  // Overwrite with known weights: W = [[1,2],[3,4]], b = [0.5, -0.5].
  params[0]->value = {1, 2, 3, 4};
  params[1]->value = {0.5, -0.5};
  Vec y = layer.Forward({10, 20});
  EXPECT_DOUBLE_EQ(y[0], 10 + 40 + 0.5);
  EXPECT_DOUBLE_EQ(y[1], 30 + 80 - 0.5);
}

TEST(LinearTest, GradientsMatchFiniteDifference) {
  Rng rng(2);
  Linear layer(3, 2, &rng);
  std::vector<Param*> params;
  layer.AppendParams(&params);
  Vec x = {0.3, -1.2, 0.7};
  Vec target = {1.0, -0.5};
  auto loss = [&]() {
    Vec y = layer.Forward(x);
    return 0.5 * ((y[0] - target[0]) * (y[0] - target[0]) +
                  (y[1] - target[1]) * (y[1] - target[1]));
  };
  auto backward = [&]() {
    Vec y = layer.Forward(x);
    layer.Backward(x, {y[0] - target[0], y[1] - target[1]});
  };
  CheckGradients(params, loss, backward);
}

TEST(LinearTest, BackwardReturnsInputGradient) {
  Rng rng(3);
  Linear layer(2, 1, &rng);
  std::vector<Param*> params;
  layer.AppendParams(&params);
  params[0]->value = {2.0, -3.0};
  Vec dx = layer.Backward({1.0, 1.0}, {1.0});
  EXPECT_DOUBLE_EQ(dx[0], 2.0);
  EXPECT_DOUBLE_EQ(dx[1], -3.0);
}

TEST(ActivationTest, ReluAndBackward) {
  Vec y = Relu({-1.0, 0.0, 2.0});
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
  Vec dx = ReluBackward(y, {5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(dx[0], 0.0);
  EXPECT_DOUBLE_EQ(dx[2], 5.0);
}

TEST(MlpTest, GradientsMatchFiniteDifference) {
  Rng rng(4);
  Mlp mlp({3, 5, 4, 1}, &rng);
  std::vector<Param*> params;
  mlp.AppendParams(&params);
  Vec x = {0.5, -0.2, 1.1};
  auto loss = [&]() {
    double y = mlp.Forward(x)[0];
    return 0.5 * (y - 2.0) * (y - 2.0);
  };
  auto backward = [&]() {
    MlpCache cache;
    double y = mlp.Forward(x, &cache)[0];
    mlp.Backward(cache, {y - 2.0});
  };
  CheckGradients(params, loss, backward);
}

TEST(LinearTest, ForwardBatchMatchesForwardPerRow) {
  Rng rng(21);
  Linear layer(5, 3, &rng);
  Rng data_rng(22);
  // 10 rows: two full 4-row GEMM blocks plus a 2-row tail.
  Mat x;
  x.Resize(10, 5);
  for (double& v : x.data) v = data_rng.Normal();
  Mat y;
  layer.ForwardBatch(x, &y);
  ASSERT_EQ(y.rows, 10);
  ASSERT_EQ(y.cols, 3);
  for (int r = 0; r < x.rows; ++r) {
    Vec row(x.Row(r), x.Row(r) + x.cols);
    Vec expected = layer.Forward(row);
    for (int c = 0; c < y.cols; ++c) {
      // Exact: the blocked GEMM keeps each output element's accumulation
      // order identical to the scalar path.
      EXPECT_EQ(y.Row(r)[c], expected[static_cast<size_t>(c)])
          << "row " << r << " col " << c;
    }
  }
}

TEST(LinearTest, ForwardIntoMatchesForward) {
  Rng rng(23);
  Linear layer(4, 4, &rng);
  Vec x = {0.3, -1.1, 2.2, 0.0};
  Vec expected = layer.Forward(x);
  Vec out;
  layer.ForwardInto(x, &out);
  ASSERT_EQ(out.size(), expected.size());
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], expected[i]);
}

TEST(MlpTest, CachedAndUncachedForwardAgree) {
  Rng rng(5);
  Mlp mlp({4, 8, 2}, &rng);
  Vec x = {1, 2, 3, 4};
  MlpCache cache;
  Vec a = mlp.Forward(x, &cache);
  Vec b = mlp.Forward(x);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize 0.5 * (w - 3)^2 for each of 4 scalar params.
  Param p;
  p.Resize(4, 1);
  Adam adam(Adam::Options{.lr = 0.1});
  std::vector<Param*> params = {&p};
  for (int step = 0; step < 300; ++step) {
    adam.ZeroGrad(params);
    for (size_t i = 0; i < 4; ++i) p.grad[i] = p.value[i] - 3.0;
    adam.Step(params, 1);
  }
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(p.value[i], 3.0, 0.05);
}

TEST(AdamTest, BatchAveragingScalesStep) {
  Param a, b;
  a.Resize(1, 1);
  b.Resize(1, 1);
  Adam opt_a(Adam::Options{.lr = 0.1}), opt_b(Adam::Options{.lr = 0.1});
  a.grad[0] = 8.0;
  b.grad[0] = 2.0;
  opt_a.Step({&a}, 4);   // 8/4 = 2
  opt_b.Step({&b}, 1);   // 2
  EXPECT_NEAR(a.value[0], b.value[0], 1e-12);
}

PlanGraph MakeDiamondGraph(int feat_dim) {
  PlanGraph g;
  g.node_features = {Vec(static_cast<size_t>(feat_dim), 0.1),
                     Vec(static_cast<size_t>(feat_dim), -0.3),
                     Vec(static_cast<size_t>(feat_dim), 0.7),
                     Vec(static_cast<size_t>(feat_dim), 0.2)};
  for (int i = 0; i < feat_dim; ++i) {
    g.node_features[2][static_cast<size_t>(i)] = 0.1 * i;
  }
  g.children = {{}, {0}, {0}, {1, 2}};
  g.node_types = {0, 1, 2, 3};
  return g;
}

TEST(GraphEmbedderTest, OutputDimAndDeterminism) {
  Rng rng(6);
  GraphEmbedder gnn(4, 6, 2, &rng);
  PlanGraph g = MakeDiamondGraph(4);
  GraphEmbedder::Cache c1, c2;
  Vec e1 = gnn.Forward(g, &c1);
  Vec e2 = gnn.Forward(g, &c2);
  ASSERT_EQ(e1.size(), 6u);
  for (size_t i = 0; i < e1.size(); ++i) EXPECT_DOUBLE_EQ(e1[i], e2[i]);
}

TEST(GraphEmbedderTest, SensitiveToStructure) {
  Rng rng(7);
  GraphEmbedder gnn(4, 6, 2, &rng);
  PlanGraph diamond = MakeDiamondGraph(4);
  PlanGraph chain = diamond;
  chain.children = {{}, {0}, {1}, {2}};
  GraphEmbedder::Cache c1, c2;
  Vec e1 = gnn.Forward(diamond, &c1);
  Vec e2 = gnn.Forward(chain, &c2);
  double diff = 0.0;
  for (size_t i = 0; i < e1.size(); ++i) diff += std::abs(e1[i] - e2[i]);
  EXPECT_GT(diff, 1e-6);
}

TEST(GraphEmbedderTest, GradientsMatchFiniteDifference) {
  Rng rng(8);
  GraphEmbedder gnn(4, 5, 2, &rng);
  Mlp head({5, 1}, &rng);
  PlanGraph g = MakeDiamondGraph(4);
  std::vector<Param*> params;
  gnn.AppendParams(&params);
  head.AppendParams(&params);
  auto loss = [&]() {
    GraphEmbedder::Cache cache;
    double y = head.Forward(gnn.Forward(g, &cache))[0];
    return 0.5 * (y - 1.0) * (y - 1.0);
  };
  auto backward = [&]() {
    GraphEmbedder::Cache cache;
    Vec emb = gnn.Forward(g, &cache);
    MlpCache mc;
    double y = head.Forward(emb, &mc)[0];
    Vec demb = head.Backward(mc, {y - 1.0});
    gnn.Backward(cache, demb);
  };
  CheckGradients(params, loss, backward, 1e-4);
}

PlanGraph MakeTree(int feat_dim) {
  // 0 <- 1, 0 <- 2, 2 <- 3 (root = 0)
  PlanGraph g;
  g.node_features.assign(4, Vec(static_cast<size_t>(feat_dim), 0.0));
  for (int n = 0; n < 4; ++n) {
    for (int i = 0; i < feat_dim; ++i) {
      g.node_features[static_cast<size_t>(n)][static_cast<size_t>(i)] =
          0.05 * (n + 1) * (i + 1);
    }
  }
  g.children = {{1, 2}, {}, {3}, {}};
  g.node_types = {0, 1, 2, 3};
  return g;
}

TEST(TreeLstmTest, ForwardShapeAndDeterminism) {
  Rng rng(9);
  TreeLstm lstm(4, 6, &rng);
  PlanGraph tree = MakeTree(4);
  TreeLstm::Cache c1, c2;
  Vec h1 = lstm.Forward(tree, 0, &c1);
  Vec h2 = lstm.Forward(tree, 0, &c2);
  ASSERT_EQ(h1.size(), 6u);
  for (size_t i = 0; i < h1.size(); ++i) EXPECT_DOUBLE_EQ(h1[i], h2[i]);
}

TEST(TreeLstmTest, GradientsMatchFiniteDifference) {
  Rng rng(10);
  TreeLstm lstm(3, 4, &rng);
  Mlp head({4, 1}, &rng);
  PlanGraph tree = MakeTree(3);
  std::vector<Param*> params;
  lstm.AppendParams(&params);
  head.AppendParams(&params);
  auto loss = [&]() {
    TreeLstm::Cache cache;
    double y = head.Forward(lstm.Forward(tree, 0, &cache))[0];
    return 0.5 * (y - 0.7) * (y - 0.7);
  };
  auto backward = [&]() {
    TreeLstm::Cache cache;
    Vec h = lstm.Forward(tree, 0, &cache);
    MlpCache mc;
    double y = head.Forward(h, &mc)[0];
    Vec dh = head.Backward(mc, {y - 0.7});
    lstm.Backward(cache, dh);
  };
  CheckGradients(params, loss, backward, 1e-4);
}

TEST(QppNetTest, ForwardIsDeterministic) {
  Rng rng(11);
  QppNet qpp(5, 3, 4, 6, &rng);
  PlanGraph tree = MakeTree(3);
  QppNet::Cache c1, c2;
  EXPECT_DOUBLE_EQ(qpp.Forward(tree, 0, &c1), qpp.Forward(tree, 0, &c2));
}

TEST(QppNetTest, ArtificialRootUsesExtraUnit) {
  Rng rng(12);
  QppNet qpp(5, 3, 4, 6, &rng);
  PlanGraph tree = MakeTree(3);
  tree.node_types[0] = -1;  // artificial root
  QppNet::Cache cache;
  EXPECT_NO_FATAL_FAILURE(qpp.Forward(tree, 0, &cache));
  EXPECT_EQ(cache.nodes[0].unit, 5);  // index num_types = artificial unit
}

TEST(QppNetTest, GradientsMatchFiniteDifference) {
  Rng rng(13);
  QppNet qpp(5, 3, 3, 5, &rng);
  PlanGraph tree = MakeTree(3);
  std::vector<Param*> params;
  qpp.AppendParams(&params);
  auto loss = [&]() {
    QppNet::Cache cache;
    double y = qpp.Forward(tree, 0, &cache);
    return 0.5 * (y - 1.5) * (y - 1.5);
  };
  auto backward = [&]() {
    QppNet::Cache cache;
    double y = qpp.Forward(tree, 0, &cache);
    qpp.Backward(cache, y - 1.5);
  };
  CheckGradients(params, loss, backward, 1e-4);
}

TEST(TrainingSmokeTest, MlpFitsLinearFunction) {
  Rng rng(14);
  Mlp mlp({2, 16, 1}, &rng);
  std::vector<Param*> params;
  mlp.AppendParams(&params);
  Adam adam(Adam::Options{.lr = 5e-3});
  Rng data_rng(15);
  double final_loss = 0.0;
  for (int step = 0; step < 2000; ++step) {
    adam.ZeroGrad(params);
    double loss_sum = 0.0;
    for (int b = 0; b < 8; ++b) {
      Vec x = {data_rng.Uniform(-1, 1), data_rng.Uniform(-1, 1)};
      double target = 2.0 * x[0] - 0.5 * x[1] + 0.25;
      MlpCache cache;
      double y = mlp.Forward(x, &cache)[0];
      loss_sum += 0.5 * (y - target) * (y - target);
      mlp.Backward(cache, {y - target});
    }
    adam.Step(params, 8);
    final_loss = loss_sum / 8;
  }
  EXPECT_LT(final_loss, 1e-3);
}

}  // namespace
}  // namespace fgro
