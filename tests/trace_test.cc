#include <gtest/gtest.h>

#include <set>

#include "trace/data_split.h"
#include "trace/trace_collector.h"
#include "trace/workload_gen.h"

namespace fgro {
namespace {

class WorkloadGenTest
    : public ::testing::TestWithParam<WorkloadId> {};

TEST_P(WorkloadGenTest, GeneratesValidJobs) {
  WorkloadProfile profile = GetWorkloadProfile(GetParam(), /*scale=*/0.08);
  WorkloadGenerator gen(profile);
  Result<Workload> workload = gen.Generate();
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  EXPECT_EQ(static_cast<int>(workload->jobs.size()), profile.num_jobs);
  double prev_arrival = -1.0;
  for (const Job& job : workload->jobs) {
    EXPECT_TRUE(job.Validate().ok());
    EXPECT_GE(job.arrival_time, prev_arrival);
    prev_arrival = job.arrival_time;
    EXPECT_LE(job.stage_count(), profile.max_stages_per_job);
  }
}

TEST_P(WorkloadGenTest, InstanceFractionsSumToOne) {
  WorkloadGenerator gen(GetWorkloadProfile(GetParam(), 0.05));
  Result<Workload> workload = gen.Generate();
  ASSERT_TRUE(workload.ok());
  for (const Job& job : workload->jobs) {
    for (const Stage& stage : job.stages) {
      double total = 0.0;
      for (const InstanceMeta& meta : stage.instances) {
        total += meta.input_fraction;
        EXPECT_GT(meta.hidden_skew, 0.0);
        EXPECT_GE(meta.input_rows, 0.0);
      }
      EXPECT_NEAR(total, 1.0, 1e-6);
    }
  }
}

TEST_P(WorkloadGenTest, RecurringTemplatesDominate) {
  WorkloadProfile profile = GetWorkloadProfile(GetParam(), 0.2);
  WorkloadGenerator gen(profile);
  Result<Workload> workload = gen.Generate();
  ASSERT_TRUE(workload.ok());
  std::set<int> templates;
  for (const Job& job : workload->jobs) {
    for (const Stage& stage : job.stages) templates.insert(stage.template_id);
  }
  // Far fewer distinct stage templates than stages: jobs recur.
  EXPECT_LT(static_cast<int>(templates.size()), workload->TotalStages());
}

TEST_P(WorkloadGenTest, Deterministic) {
  WorkloadProfile profile = GetWorkloadProfile(GetParam(), 0.05);
  Result<Workload> a = WorkloadGenerator(profile).Generate();
  Result<Workload> b = WorkloadGenerator(profile).Generate();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->jobs.size(), b->jobs.size());
  for (size_t j = 0; j < a->jobs.size(); ++j) {
    EXPECT_DOUBLE_EQ(a->jobs[j].arrival_time, b->jobs[j].arrival_time);
    ASSERT_EQ(a->jobs[j].stage_count(), b->jobs[j].stage_count());
    for (int s = 0; s < a->jobs[j].stage_count(); ++s) {
      EXPECT_EQ(a->jobs[j].stages[static_cast<size_t>(s)].instance_count(),
                b->jobs[j].stages[static_cast<size_t>(s)].instance_count());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadGenTest,
                         ::testing::Values(WorkloadId::kA, WorkloadId::kB,
                                           WorkloadId::kC),
                         [](const auto& info) {
                           return std::string(WorkloadName(info.param));
                         });

TEST(WorkloadProfileTest, ShapesMatchTableOne) {
  WorkloadProfile a = GetWorkloadProfile(WorkloadId::kA);
  WorkloadProfile b = GetWorkloadProfile(WorkloadId::kB);
  WorkloadProfile c = GetWorkloadProfile(WorkloadId::kC);
  // A has the most jobs; B the most complex DAGs; C the widest stages.
  EXPECT_GT(a.num_jobs, b.num_jobs);
  EXPECT_GT(b.num_jobs, c.num_jobs);
  EXPECT_GT(b.avg_stages_per_job, a.avg_stages_per_job);
  EXPECT_GT(b.avg_ops_per_stage, a.avg_ops_per_stage);
  EXPECT_GT(c.plan.leaf_rows_log_mean, a.plan.leaf_rows_log_mean);
  // B is the noisiest environment (19% WMAPE in Table 3).
  EXPECT_GT(b.env.noise_sigma, a.env.noise_sigma);
  EXPECT_GT(b.env.noise_sigma, c.env.noise_sigma);
}

TEST(WorkloadProfileTest, ScaleAdjustsJobCount) {
  EXPECT_EQ(GetWorkloadProfile(WorkloadId::kA, 0.5).num_jobs,
            GetWorkloadProfile(WorkloadId::kA, 1.0).num_jobs / 2);
  EXPECT_GE(GetWorkloadProfile(WorkloadId::kA, 0.0001).num_jobs, 4);
}

class TraceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadGenerator gen(GetWorkloadProfile(WorkloadId::kA, 0.08));
    Result<Workload> w = gen.Generate();
    ASSERT_TRUE(w.ok());
    workload_ = std::move(w).value();
    TraceCollector collector(ClusterOptions{.num_machines = 64, .seed = 9},
                             /*seed=*/31);
    Result<TraceDataset> d = collector.Collect(workload_);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    dataset_ = std::move(d).value();
  }

  Workload workload_;
  TraceDataset dataset_;
};

TEST_F(TraceFixture, OneRecordPerInstance) {
  EXPECT_EQ(static_cast<int>(dataset_.records.size()),
            workload_.TotalInstances());
}

TEST_F(TraceFixture, RecordsAreConsistent) {
  for (const InstanceRecord& r : dataset_.records) {
    const Stage& stage = dataset_.StageOf(r);
    EXPECT_GE(r.instance_idx, 0);
    EXPECT_LT(r.instance_idx, stage.instance_count());
    EXPECT_GT(r.actual_latency, 0.0);
    EXPECT_GT(r.actual_cpu_seconds, 0.0);
    EXPECT_GT(r.actual_cpu_seconds_star, 0.0);
    EXPECT_LE(r.actual_cpu_seconds, r.actual_latency * 3.0);
    EXPECT_EQ(r.op_seconds.size(), stage.operators.size());
    EXPECT_GE(r.hardware_type, 0);
    EXPECT_LT(r.hardware_type, 5);
    EXPECT_GT(r.theta.cores, 0.0);
    EXPECT_GT(r.machine_state.cpu_util, 0.0);
    EXPECT_LT(r.machine_state.cpu_util, 1.0);
  }
}

TEST_F(TraceFixture, ResourcePlansVaryAcrossTrace) {
  std::set<std::pair<double, double>> plans;
  for (const InstanceRecord& r : dataset_.records) {
    plans.insert({r.theta.cores, r.theta.memory_gb});
  }
  // The paper observes 17-38 distinct plans; ours must be plural too.
  EXPECT_GE(plans.size(), 4u);
}

TEST_F(TraceFixture, SplitIsDisjointAndComplete) {
  Rng rng(7);
  DataSplit split = SplitByTemplateFrequency(dataset_, &rng);
  std::set<int> seen;
  for (const std::vector<int>* part : {&split.train, &split.val, &split.test}) {
    for (int idx : *part) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, static_cast<int>(dataset_.records.size()));
    }
  }
  EXPECT_EQ(seen.size(), dataset_.records.size());
  EXPECT_GT(split.train.size(), split.val.size());
  EXPECT_FALSE(split.val.empty());
  EXPECT_FALSE(split.test.empty());
}

TEST_F(TraceFixture, TimeBucketsPartitionRecords) {
  std::vector<std::vector<int>> buckets =
      BucketRecordsByTime(dataset_, 6 * 3600.0);
  size_t total = 0;
  for (const std::vector<int>& b : buckets) total += b.size();
  EXPECT_EQ(total, dataset_.records.size());
  // Records within a bucket respect its window.
  for (size_t b = 0; b < buckets.size(); ++b) {
    for (int idx : buckets[b]) {
      double t = dataset_.records[static_cast<size_t>(idx)].submit_time;
      EXPECT_GE(t, static_cast<double>(b) * 6 * 3600.0 - 1e-6);
    }
  }
}

TEST_F(TraceFixture, LatencyDescBucketsAreSorted) {
  std::vector<std::vector<int>> buckets =
      BucketRecordsByStageLatencyDesc(dataset_, 10);
  ASSERT_GE(buckets.size(), 2u);
  auto stage_max = [&](const std::vector<int>& bucket) {
    double mx = 0.0;
    for (int idx : bucket) {
      mx = std::max(mx, dataset_.records[static_cast<size_t>(idx)]
                            .actual_latency);
    }
    return mx;
  };
  // First bucket holds the longest-running stages.
  EXPECT_GE(stage_max(buckets.front()), stage_max(buckets.back()));
  size_t total = 0;
  for (const std::vector<int>& b : buckets) total += b.size();
  EXPECT_EQ(total, dataset_.records.size());
}

}  // namespace
}  // namespace fgro
